//! Whole-flow integration tests: parse → DSE → compile → simulate →
//! compare against the golden CPU reference, across CONV modes,
//! dataflows, kernel sizes, strides, and precisions.

use hybriddnn::flow::Framework;
use hybriddnn::model::{quant::QFormat, reference, synth, zoo, Network, NetworkBuilder, Shape};
use hybriddnn::{
    AcceleratorConfig, Compiler, ConvMode, Dataflow, FpgaSpec, MappingStrategy, Profile, QuantSpec,
    SimMode, Simulator, TileConfig,
};

fn check_compiled(
    net: &Network,
    cfg: AcceleratorConfig,
    strategy: &MappingStrategy,
    quant: QuantSpec,
    bw: f64,
    tol: f32,
    seed: u64,
) {
    let compiled = Compiler::new(cfg)
        .with_quant(quant)
        .compile(net, strategy)
        .unwrap();
    let mut sim = Simulator::new(&compiled, SimMode::Functional, bw);
    let input = match quant.activations {
        Some(fmt) => synth::quantized_tensor(net.input_shape(), seed, fmt),
        None => synth::tensor(net.input_shape(), seed),
    };
    let run = sim.run(&compiled, &input).unwrap();
    if quant.is_quantized() {
        let golden = hybriddnn::report::golden_quantized(net, &compiled, &input);
        assert_eq!(run.output, golden, "quantized path must be bit-exact");
    } else {
        let golden = reference::run_network(net, &input).unwrap();
        let diff = run.output.max_abs_diff(&golden);
        assert!(diff < tol, "sim vs reference diff {diff} (tol {tol})");
    }
    assert!(run.total_cycles > 0.0);
}

#[test]
fn vgg_tiny_all_mode_dataflow_combinations() {
    let mut net = zoo::vgg_tiny();
    synth::bind_random(&mut net, 11).unwrap();
    for tile in TileConfig::ALL {
        let cfg = AcceleratorConfig::new(4, 4, tile);
        for mode in [ConvMode::Spatial, ConvMode::Winograd] {
            for df in [Dataflow::InputStationary, Dataflow::WeightStationary] {
                let strategy = MappingStrategy::uniform(&net, mode, df);
                check_compiled(&net, cfg, &strategy, QuantSpec::float32(), 16.0, 2e-2, 3);
            }
        }
    }
}

#[test]
fn mixed_per_layer_strategy() {
    // Alternate modes per layer — exercises the SAVE-side layout
    // transforms between WINO and SPAT regions (Figure 5's four cases).
    let mut net = zoo::vgg_tiny();
    synth::bind_random(&mut net, 12).unwrap();
    let n = net.layers().iter().filter(|l| l.is_compute()).count();
    let choices: Vec<(ConvMode, Dataflow)> = (0..n)
        .map(|i| {
            (
                if i % 2 == 0 {
                    ConvMode::Winograd
                } else {
                    ConvMode::Spatial
                },
                if i % 3 == 0 {
                    Dataflow::InputStationary
                } else {
                    Dataflow::WeightStationary
                },
            )
        })
        .collect();
    let cfg = AcceleratorConfig::new(4, 4, TileConfig::F4x4);
    check_compiled(
        &net,
        cfg,
        &MappingStrategy::new(choices),
        QuantSpec::float32(),
        16.0,
        2e-2,
        4,
    );
}

#[test]
fn strided_and_large_kernel_network() {
    let net = NetworkBuilder::new(Shape::new(3, 32, 32))
        .conv_cfg(
            "c7",
            hybriddnn::model::Conv2d {
                in_channels: 3,
                out_channels: 8,
                kernel_h: 7,
                kernel_w: 7,
                stride: 2,
                padding: hybriddnn::model::Padding::same(3),
                activation: hybriddnn::model::Activation::Relu,
                bias: true,
            },
        )
        .conv("c5", 8, 8, 5)
        .conv("c3", 8, 16, 3)
        .max_pool("p", 2)
        .fc("out", 10)
        .build()
        .unwrap();
    let mut net = net;
    synth::bind_random(&mut net, 13).unwrap();
    // Winograd requested everywhere: the strided 7x7 layer must fall back
    // to Spatial; the 5x5 decomposes into four 3x3 blocks.
    let cfg = AcceleratorConfig::new(4, 4, TileConfig::F4x4);
    check_compiled(
        &net,
        cfg,
        &MappingStrategy::all_winograd(&net),
        QuantSpec::float32(),
        16.0,
        2e-2,
        5,
    );
}

#[test]
fn asymmetric_parallel_factors() {
    // PI > PO configurations exercise the K_BASE / lane bookkeeping.
    let mut net = zoo::tiny_cnn();
    synth::bind_random(&mut net, 14).unwrap();
    for (pi, po) in [(8, 4), (8, 2), (4, 1), (2, 2)] {
        let cfg = AcceleratorConfig::new(pi, po, TileConfig::F2x2);
        check_compiled(
            &net,
            cfg,
            &MappingStrategy::all_winograd(&net),
            QuantSpec::float32(),
            16.0,
            1e-2,
            6,
        );
    }
}

#[test]
fn quantized_bit_exactness_across_modes() {
    let mut net = zoo::vgg_tiny();
    synth::bind_random_quantized(&mut net, 15, QFormat::WEIGHT8).unwrap();
    let cfg = AcceleratorConfig::new(4, 4, TileConfig::F2x2);
    for mode in [ConvMode::Spatial, ConvMode::Winograd] {
        let strategy = MappingStrategy::uniform(&net, mode, Dataflow::WeightStationary);
        check_compiled(&net, cfg, &strategy, QuantSpec::paper_12bit(), 16.0, 0.0, 7);
    }
}

#[test]
fn parsed_model_runs_end_to_end() {
    let text = "
input 3 16 16
conv c1 8 3x3 relu
maxpool p1 2
conv c2 16 3x3 relu
maxpool p2 2
fc out 10 relu
";
    let mut net = hybriddnn::parser::parse_model(text).unwrap();
    synth::bind_random(&mut net, 16).unwrap();
    let deployment = Framework::new(FpgaSpec::pynq_z1(), Profile::pynq_z1())
        .build(&net)
        .unwrap();
    let input = synth::tensor(net.input_shape(), 8);
    let run = deployment.run(&input, SimMode::Functional).unwrap();
    let golden = reference::run_network(&net, &input).unwrap();
    assert!(run.output.max_abs_diff(&golden) < 1e-2);
}

#[test]
fn instruction_streams_roundtrip_through_encoding() {
    // Every program the compiler emits must survive binary encode/decode
    // (the accelerator only ever sees the 128-bit words).
    let mut net = zoo::vgg_tiny();
    synth::bind_random(&mut net, 17).unwrap();
    let cfg = AcceleratorConfig::new(4, 4, TileConfig::F4x4);
    let compiled = Compiler::new(cfg)
        .compile(&net, &MappingStrategy::all_winograd(&net))
        .unwrap();
    for layer in compiled.layers() {
        let words = layer.program().encode().unwrap();
        let decoded = hybriddnn::Program::decode(&words).unwrap();
        assert_eq!(&decoded, layer.program());
    }
}

#[test]
fn intermediate_activations_match_reference_layerwise() {
    // Check every stage boundary, not just the final output.
    let mut net = zoo::tiny_cnn();
    synth::bind_random(&mut net, 18).unwrap();
    let cfg = AcceleratorConfig::new(4, 4, TileConfig::F2x2);
    let compiled = Compiler::new(cfg)
        .compile(&net, &MappingStrategy::all_winograd(&net))
        .unwrap();
    let mut sim = Simulator::new(&compiled, SimMode::Functional, 16.0);
    let input = synth::tensor(net.input_shape(), 9);
    sim.run(&compiled, &input).unwrap();
    let trace = reference::run_network_trace(&net, &input).unwrap();
    // Stage 0 output = after conv1+pool1 = trace[1]; stage 1 = trace[2].
    let s0 = compiled.read_stage_output(sim.memory(), 0, trace[1].shape());
    assert!(s0.max_abs_diff(&trace[1]) < 1e-2);
    let s1 = compiled.read_stage_output(sim.memory(), 1, trace[2].shape());
    assert!(s1.max_abs_diff(&trace[2]) < 1e-2);
}

#[test]
fn stem_cnn_full_flow_on_both_devices() {
    // 7x7 stride-2 stem (Spatial fallback) + 5x5 decomposition + pooling
    // + FC, through the complete DSE -> compile -> simulate flow.
    let mut net = zoo::stem_cnn();
    synth::bind_random(&mut net, 77).unwrap();
    for (device, profile) in [
        (FpgaSpec::pynq_z1(), Profile::pynq_z1()),
        (FpgaSpec::vu9p(), Profile::vu9p()),
    ] {
        let deployment = Framework::new(device.clone(), profile).build(&net).unwrap();
        // The strided stem must have fallen back to Spatial.
        assert_eq!(
            deployment.dse.per_layer[0].mode,
            ConvMode::Spatial,
            "{}",
            device.name()
        );
        let input = synth::tensor(net.input_shape(), 5);
        let run = deployment.run(&input, SimMode::Functional).unwrap();
        let golden = reference::run_network(&net, &input).unwrap();
        let diff = run.output.max_abs_diff(&golden);
        assert!(diff < 1e-2, "{}: diff {diff}", device.name());
    }
}
