//! VGG16 case-study integration (paper §6.1) at structural scale:
//! the full 16-stage network compiles for both paper configurations and
//! the timing simulation reproduces the headline operating points.
//!
//! (Functional VGG16 simulation is exercised in EXPERIMENTS.md's harness;
//! here we keep weights zeroed so the test stays minutes-scale.)

use hybriddnn::flow::Framework;
use hybriddnn::model::{zoo, LayerKind, Network};
use hybriddnn::{ConvMode, FpgaSpec, Profile, SimMode};

fn bind_zeros(net: &mut Network) {
    for i in 0..net.layers().len() {
        let (w, b) = match net.layers()[i].kind() {
            LayerKind::Conv(c) => (c.weight_shape().len(), c.out_channels),
            LayerKind::Fc(fc) => (fc.weight_shape().len(), fc.out_features),
            _ => continue,
        };
        net.bind(i, vec![0.0; w], vec![0.0; b]).unwrap();
    }
}

#[test]
fn vgg16_vu9p_full_flow_timing() {
    let mut net = zoo::vgg16();
    bind_zeros(&mut net);
    let framework = Framework::new(FpgaSpec::vu9p(), Profile::vu9p());
    let deployment = framework.build(&net).unwrap();

    // Paper configuration reproduced.
    assert_eq!(deployment.dse.design.accel.pt(), 6);
    assert_eq!(deployment.dse.design.ni, 6);
    for layer in deployment.compiled.layers() {
        if !layer.plan().is_fc() {
            assert_eq!(layer.plan().mode, ConvMode::Winograd, "{}", layer.name());
        }
    }

    let input = hybriddnn::Tensor::zeros(net.input_shape());
    let run = deployment.run(&input, SimMode::TimingOnly).unwrap();

    // Headline: 3375.7 GOPS on VU9P. The simulator should land in the
    // same regime (the substrate differs; shape, not digits).
    let gops = deployment.throughput_gops(&run);
    assert!(
        (2000.0..4500.0).contains(&gops),
        "simulated VU9P VGG16 throughput {gops:.0} GOPS"
    );

    // §6.2: analytical estimates within a few percent of the measured
    // implementation (paper: 4.27% on VU9P).
    let report = hybriddnn::report::AccuracyReport::measure(&deployment).unwrap();
    let err = report.total_error_pct();
    assert!(err < 10.0, "estimator vs simulator total error {err:.2}%");
}

#[test]
fn vgg16_pynq_full_flow_timing() {
    let mut net = zoo::vgg16();
    bind_zeros(&mut net);
    let framework = Framework::new(FpgaSpec::pynq_z1(), Profile::pynq_z1());
    let deployment = framework.build(&net).unwrap();

    assert_eq!(deployment.dse.design.accel.pt(), 4);
    assert_eq!(deployment.dse.design.ni, 1);

    let input = hybriddnn::Tensor::zeros(net.input_shape());
    let run = deployment.run(&input, SimMode::TimingOnly).unwrap();

    // Headline: 83.3 GOPS on PYNQ-Z1.
    let gops = deployment.throughput_gops(&run);
    assert!(
        (40.0..140.0).contains(&gops),
        "simulated PYNQ VGG16 throughput {gops:.0} GOPS"
    );

    // Paper: 4.03% model error on PYNQ-Z1.
    let report = hybriddnn::report::AccuracyReport::measure(&deployment).unwrap();
    let err = report.total_error_pct();
    assert!(err < 10.0, "estimator vs simulator total error {err:.2}%");

    // Modeled power lands near the paper's 2.6 W.
    let p = deployment.power().total_w();
    assert!((1.5..4.0).contains(&p), "modeled PYNQ power {p:.2} W");
}

#[test]
fn vgg16_spatial_baseline_is_slower() {
    // The hybrid design's win: forcing the conventional (Spatial-only)
    // architecture on the same device costs ~4x on CONV throughput.
    let mut net = zoo::vgg16();
    bind_zeros(&mut net);
    let framework = Framework::new(FpgaSpec::vu9p(), Profile::vu9p());
    let hybrid = framework.build(&net).unwrap();

    let mut forced = hybrid.dse.clone();
    for c in &mut forced.per_layer {
        c.mode = ConvMode::Spatial;
    }
    let spatial = framework.build_with(&net, forced).unwrap();

    let input = hybriddnn::Tensor::zeros(net.input_shape());
    let h = hybrid.run(&input, SimMode::TimingOnly).unwrap();
    let s = spatial.run(&input, SimMode::TimingOnly).unwrap();
    let speedup = s.total_cycles / h.total_cycles;
    assert!(
        speedup > 1.5,
        "hybrid should clearly beat the Spatial baseline, got {speedup:.2}x"
    );
}
