//! DSE integration tests: the explored designs must be buildable,
//! runnable, and reproduce the paper's §6.1 configuration choices.

use hybriddnn::flow::Framework;
use hybriddnn::model::{synth, zoo};
use hybriddnn::{ConvMode, DseEngine, FpgaSpec, Profile, SimMode};

#[test]
fn vu9p_vgg16_design_matches_paper() {
    let engine = DseEngine::new(FpgaSpec::vu9p(), Profile::vu9p());
    let result = engine.explore(&zoo::vgg16()).unwrap();
    // §6.1: six instances of PI=4, PO=4, PT=6 (two per die).
    assert_eq!(
        (
            result.design.accel.pi,
            result.design.accel.po,
            result.design.accel.pt()
        ),
        (4, 4, 6)
    );
    assert_eq!(result.design.ni, 6);
    // §6.2: every CONV layer in Winograd mode.
    for c in &result.per_layer {
        if c.workload.out_h > 1 {
            assert_eq!(c.mode, ConvMode::Winograd, "{}", c.name);
        }
    }
    // Headline throughput lands in the neighbourhood of 3375.7 GOPS.
    let gops = result.throughput_gops(167.0);
    assert!(
        (2500.0..4500.0).contains(&gops),
        "estimated VU9P throughput {gops} GOPS is out of family"
    );
}

#[test]
fn pynq_vgg16_design_matches_paper() {
    let engine = DseEngine::new(FpgaSpec::pynq_z1(), Profile::pynq_z1());
    let result = engine.explore(&zoo::vgg16()).unwrap();
    assert_eq!(
        (
            result.design.accel.pi,
            result.design.accel.po,
            result.design.accel.pt()
        ),
        (4, 4, 4)
    );
    assert_eq!(result.design.ni, 1);
    // Headline: 83.3 GOPS on PYNQ-Z1.
    let gops = result.throughput_gops(100.0);
    assert!(
        (50.0..130.0).contains(&gops),
        "estimated PYNQ throughput {gops} GOPS is out of family"
    );
}

#[test]
fn explored_design_compiles_and_simulates() {
    let mut net = zoo::vgg_tiny();
    synth::bind_random(&mut net, 21).unwrap();
    let framework = Framework::new(FpgaSpec::pynq_z1(), Profile::pynq_z1());
    let deployment = framework.build(&net).unwrap();
    let run = deployment
        .run(&synth::tensor(net.input_shape(), 1), SimMode::TimingOnly)
        .unwrap();
    assert!(run.total_cycles > 0.0);
    // The simulated instance never exceeds the device's compute peak.
    let gops_inst = run.gops(deployment.device.freq_mhz());
    let wino_peak = deployment
        .dse
        .design
        .accel
        .peak_gops(deployment.device.freq_mhz())
        * deployment.dse.design.accel.tile.reduction_factor();
    assert!(
        gops_inst <= wino_peak,
        "{gops_inst} > wino peak {wino_peak}"
    );
}

#[test]
fn custom_device_spec_explores() {
    // A made-up mid-range device parsed from text.
    let spec = hybriddnn::parser::parse_fpga(
        "name MID\ndies 2\ndie_lut 150000\ndie_dsp 1000\ndie_bram18 600\n\
         bram_width 36\nfreq_mhz 150\nbw_words 64\nmax_instances 4\n",
    )
    .unwrap();
    let engine = DseEngine::new(spec, Profile::vu9p());
    let result = engine.explore(&zoo::vgg16()).unwrap();
    assert!(result.design.ni >= 1);
    assert!(result
        .total_resources
        .fits_within(&engine.device().total_resources()));
}

#[test]
fn dse_estimates_agree_with_simulator_on_vgg_tiny() {
    // The whole point of the analytical model (§6.2): estimates close to
    // the implementation. Compare on a small network end-to-end.
    let mut net = zoo::vgg_tiny();
    synth::bind_random(&mut net, 22).unwrap();
    let deployment = Framework::new(FpgaSpec::pynq_z1(), Profile::pynq_z1())
        .build(&net)
        .unwrap();
    let report = hybriddnn::report::AccuracyReport::measure(&deployment).unwrap();
    let err = report.total_error_pct();
    assert!(
        err < 30.0,
        "estimator vs simulator error {err}% on vgg_tiny"
    );
}
