//! The full "Inst. & Data Files" loop of Figure 1: compile, serialize to
//! disk, load the artifacts back, and drive the simulator from the files
//! alone — proving the on-disk format carries everything the accelerator
//! needs.

use hybriddnn::flow::Framework;
use hybriddnn::model::{reference, synth, zoo};
use hybriddnn::{FpgaSpec, Profile, SimMode};
use hybriddnn_compiler::{read_artifacts, write_artifacts};
use hybriddnn_sim::Accelerator;

#[test]
fn simulator_runs_from_on_disk_artifacts() {
    let mut net = zoo::stem_cnn();
    synth::bind_random(&mut net, 404).unwrap();
    let framework = Framework::new(FpgaSpec::pynq_z1(), Profile::pynq_z1());
    let deployment = framework.build(&net).unwrap();

    let dir = std::env::temp_dir().join(format!("hybriddnn_flow_{}", std::process::id()));
    write_artifacts(&deployment.compiled, &dir).unwrap();
    let artifacts = read_artifacts(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    // Drive the raw accelerator from the loaded files: stage the data
    // segments, write the input through the compiled memory map (the
    // manifest carries programs and data; the host keeps the region
    // geometry), then execute stage by stage.
    let mut mem = hybriddnn::ExternalMemory::new();
    artifacts.stage_data(&mut mem);
    let input = synth::tensor(net.input_shape(), 7);
    deployment.compiled.write_input(&mut mem, &input).unwrap();

    let bw = framework
        .device()
        .instance_bandwidth(deployment.dse.design.ni);
    let mut accel = Accelerator::new(
        *deployment.compiled.config(),
        bw,
        deployment.compiled.quant().activations,
        true,
    );
    let mut total = 0.0;
    for (_, program) in &artifacts.stages {
        total += accel.run_stage(program, &mut mem).unwrap().cycles;
    }
    let output = deployment.compiled.read_output(&mem);

    // Must agree with both the golden reference and an in-memory run.
    let golden = reference::run_network(&net, &input).unwrap();
    assert!(output.max_abs_diff(&golden) < 1e-2);
    let run = deployment.run(&input, SimMode::Functional).unwrap();
    assert_eq!(
        output, run.output,
        "file-driven and in-memory runs must agree"
    );
    assert_eq!(total, run.total_cycles, "cycle counts must agree too");
}
