//! Cross-validation of the analytical models (Eq. 3–15) against the
//! cycle-level simulator on paper-scale single layers — the §6.2
//! "only 4.27% and 4.03% errors" claim, measured here per layer.

use hybriddnn::model::zoo;
use hybriddnn::{
    AcceleratorConfig, Compiler, ConvMode, Dataflow, MappingStrategy, SimMode, Simulator,
    TileConfig,
};
use hybriddnn_estimator::latency;

/// Builds the layer, runs both the estimator and the timing simulator,
/// returns (estimated, simulated) cycles.
fn both(
    cfg: AcceleratorConfig,
    mode: ConvMode,
    dataflow: Dataflow,
    feature: usize,
    channels: usize,
    kernel: usize,
    bw: f64,
) -> (f64, f64) {
    let mut net = zoo::single_conv(feature, channels, channels, kernel);
    // Timing only: zero weights keep compilation fast.
    for i in 0..net.layers().len() {
        let hybriddnn::model::LayerKind::Conv(c) = net.layers()[i].kind() else {
            continue;
        };
        let (w, b) = (c.weight_shape().len(), c.out_channels);
        net.bind(i, vec![0.0; w], vec![0.0; b]).unwrap();
    }
    let wl = hybriddnn::LayerWorkload::conv(
        channels, channels, kernel, kernel, feature, feature, feature, feature, 1,
    );
    let est = latency::layer_latency(&cfg, mode, dataflow, &wl, bw);
    let strategy = MappingStrategy::new(vec![(mode, dataflow)]);
    let compiled = Compiler::new(cfg).compile(&net, &strategy).unwrap();
    let mut sim = Simulator::new(&compiled, SimMode::TimingOnly, bw);
    let run = sim
        .run(&compiled, &hybriddnn::Tensor::zeros(net.input_shape()))
        .unwrap();
    (est.cycles, run.total_cycles)
}

#[test]
fn estimator_tracks_simulator_on_compute_bound_layers() {
    let cfg = AcceleratorConfig::new(4, 4, TileConfig::F4x4);
    for (feat, ch) in [(28, 128), (14, 256), (56, 64)] {
        for mode in [ConvMode::Spatial, ConvMode::Winograd] {
            let (est, sim) = both(cfg, mode, Dataflow::WeightStationary, feat, ch, 3, 64.0);
            let err = (est - sim).abs() / sim * 100.0;
            assert!(
                err < 15.0,
                "{mode} {feat}x{feat}x{ch}: est {est:.0} vs sim {sim:.0} ({err:.1}%)"
            );
        }
    }
}

#[test]
fn estimator_tracks_simulator_when_memory_bound() {
    let cfg = AcceleratorConfig::new(4, 4, TileConfig::F4x4);
    // Bandwidth-starved Winograd: the paper's Figure 6 dips.
    let (est, sim) = both(
        cfg,
        ConvMode::Winograd,
        Dataflow::WeightStationary,
        14,
        256,
        3,
        2.0,
    );
    let err = (est - sim).abs() / sim * 100.0;
    assert!(
        err < 30.0,
        "memory-bound est {est:.0} vs sim {sim:.0} ({err:.1}%)"
    );
    // And the simulator agrees the layer got slower than at full BW.
    let (_, fast) = both(
        cfg,
        ConvMode::Winograd,
        Dataflow::WeightStationary,
        14,
        256,
        3,
        64.0,
    );
    assert!(
        sim > 2.0 * fast,
        "BW=2 should slow the layer: {sim} vs {fast}"
    );
}

#[test]
fn winograd_speedup_shape_matches_theory() {
    // Compute-bound 3x3 layers: simulated Winograd speedup approaches
    // the m²·r²/PT² reduction factor (4x for F(4x4,3x3)).
    let cfg = AcceleratorConfig::new(4, 4, TileConfig::F4x4);
    let (_, spat) = both(
        cfg,
        ConvMode::Spatial,
        Dataflow::WeightStationary,
        28,
        128,
        3,
        1e6,
    );
    let (_, wino) = both(
        cfg,
        ConvMode::Winograd,
        Dataflow::WeightStationary,
        28,
        128,
        3,
        1e6,
    );
    let speedup = spat / wino;
    assert!(
        (3.0..4.5).contains(&speedup),
        "simulated Winograd speedup {speedup:.2} should be near 4x"
    );
}

#[test]
fn is_vs_ws_crossover_in_simulator() {
    // WS wins for weight-heavy layers, IS competes on big feature maps —
    // the §4.2.4 guidance, observed in the cycle-level simulator.
    let cfg = AcceleratorConfig::new(4, 4, TileConfig::F4x4);
    let bw = 8.0;
    let (_, ws) = both(
        cfg,
        ConvMode::Spatial,
        Dataflow::WeightStationary,
        14,
        512,
        3,
        bw,
    );
    let (_, is) = both(
        cfg,
        ConvMode::Spatial,
        Dataflow::InputStationary,
        14,
        512,
        3,
        bw,
    );
    assert!(
        ws < is,
        "weight-heavy layer: WS {ws:.0} should beat IS {is:.0}"
    );
}

#[test]
fn kernel_decomposition_cost_scales_with_blocks() {
    // A 5x5 kernel decomposes into 4 blocks: Winograd compute should be
    // ~4x the 3x3 cost (paper §4.2.5 / Eq. 7's ⌈R/r⌉⌈S/r⌉ factor).
    let cfg = AcceleratorConfig::new(4, 4, TileConfig::F4x4);
    let (_, k3) = both(
        cfg,
        ConvMode::Winograd,
        Dataflow::WeightStationary,
        28,
        64,
        3,
        1e6,
    );
    let (_, k5) = both(
        cfg,
        ConvMode::Winograd,
        Dataflow::WeightStationary,
        28,
        64,
        5,
        1e6,
    );
    let ratio = k5 / k3;
    assert!(
        (3.0..5.5).contains(&ratio),
        "5x5/3x3 Winograd cost ratio {ratio:.2} should be near 4"
    );
}
