//! Host parallelism must be invisible in the results: the simulator,
//! the CPU reference model, and the DSE split work by output channel
//! (or candidate) so every f64 accumulation chain is the same operation
//! sequence at any thread count. These tests pin that contract down to
//! the bit level for threads ∈ {1, 2, 4}.

use hybriddnn::flow::Framework;
use hybriddnn::model::{reference, synth, zoo};
use hybriddnn::{DseEngine, FpgaSpec, Profile, SimMode, Simulator, Tensor};

const THREADS: [usize; 3] = [1, 2, 4];

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn simulator_output_is_bit_identical_across_thread_counts() {
    let mut net = zoo::tiny_cnn();
    synth::bind_random(&mut net, 7).unwrap();
    let deployment = Framework::new(FpgaSpec::pynq_z1(), Profile::pynq_z1())
        .build(&net)
        .unwrap();
    let input = synth::tensor(net.input_shape(), 11);

    let runs: Vec<_> = THREADS
        .iter()
        .map(|&t| {
            let bw = deployment
                .device
                .instance_bandwidth(deployment.dse.design.ni);
            let mut sim = Simulator::with_threads(&deployment.compiled, SimMode::Functional, bw, t);
            sim.run(&deployment.compiled, &input).unwrap()
        })
        .collect();

    for (run, &t) in runs[1..].iter().zip(&THREADS[1..]) {
        assert_eq!(
            bits(&runs[0].output),
            bits(&run.output),
            "simulator output diverged at {t} threads"
        );
        assert_eq!(
            runs[0].total_cycles, run.total_cycles,
            "cycle model diverged at {t} threads"
        );
    }
}

#[test]
fn reference_model_is_bit_identical_across_thread_counts() {
    let mut net = zoo::tiny_cnn();
    synth::bind_random(&mut net, 7).unwrap();
    let input = synth::tensor(net.input_shape(), 11);

    // The reference model sizes its pool from the process-wide default;
    // sweep it sequentially and restore the "all cores" setting after.
    let outputs: Vec<Tensor> = THREADS
        .iter()
        .map(|&t| {
            hybriddnn::par::set_default_threads(t);
            reference::run_network(&net, &input).unwrap()
        })
        .collect();
    hybriddnn::par::set_default_threads(0);

    for (out, &t) in outputs[1..].iter().zip(&THREADS[1..]) {
        assert_eq!(
            bits(&outputs[0]),
            bits(out),
            "reference output diverged at {t} threads"
        );
    }
}

#[test]
fn dse_result_is_identical_across_thread_counts() {
    let mut net = zoo::vgg_tiny();
    synth::bind_random(&mut net, 7).unwrap();
    let results: Vec<_> = THREADS
        .iter()
        .map(|&t| {
            DseEngine::new(FpgaSpec::pynq_z1(), Profile::pynq_z1())
                .with_threads(t)
                .explore(&net)
                .unwrap()
        })
        .collect();
    for (r, &t) in results[1..].iter().zip(&THREADS[1..]) {
        assert_eq!(&results[0], r, "DSE winner diverged at {t} threads");
    }
}
