//! Property-based tests of the Figure 5 data-layout machinery: the two
//! DDR layouts, the four SAVE transforms, and the region address math.

use hybriddnn::model::Shape;
use hybriddnn::{ConvMode, ExternalMemory};
use hybriddnn_compiler::{FmapRegion, MemoryMap};
use proptest::prelude::*;

fn region_strategy() -> impl Strategy<Value = FmapRegion> {
    (
        1usize..=12, // channels
        1usize..=10, // h
        1usize..=10, // w
        0usize..=2,  // pad_h
        0usize..=2,  // pad_w
        prop_oneof![Just(ConvMode::Spatial), Just(ConvMode::Winograd)],
        prop_oneof![Just(2usize), Just(4usize)], // pi
    )
        .prop_map(|(channels, h, w, pad_h, pad_w, layout, pi)| FmapRegion {
            base: 1000,
            channels,
            h,
            w,
            pad_h,
            pad_w,
            layout,
            pi,
        })
}

proptest! {
    /// Every (c, y, x) maps to a unique in-bounds word address.
    #[test]
    fn region_addresses_are_unique_and_in_bounds(r in region_strategy()) {
        let mut seen = std::collections::HashSet::new();
        for c in 0..r.channels {
            for y in 0..r.padded_h() {
                for x in 0..r.padded_w() {
                    let a = r.addr_padded(c, y, x);
                    prop_assert!(a >= r.base);
                    prop_assert!(a < r.base + r.words());
                    prop_assert!(seen.insert(a));
                }
            }
        }
    }

    /// Writing a tensor through one layout and reading it back through
    /// the same region is the identity, independent of layout and halo.
    #[test]
    fn write_read_roundtrip(r in region_strategy(), seed in 0u64..1000) {
        let mut mem = ExternalMemory::new();
        let shape = Shape::new(r.channels, r.h, r.w);
        let t = hybriddnn::model::synth::tensor(shape, seed);
        for c in 0..shape.c {
            for y in 0..shape.h {
                for x in 0..shape.w {
                    mem.host_store(r.addr(c, y, x), t.at(c, y, x));
                }
            }
        }
        for c in 0..shape.c {
            for y in 0..shape.h {
                for x in 0..shape.w {
                    prop_assert_eq!(mem.host_load(r.addr(c, y, x)), t.at(c, y, x));
                }
            }
        }
    }

    /// Interior addresses are affine in (y, x) for both layouts — the
    /// property the SAVE instruction's folded DRAM_BASE relies on.
    #[test]
    fn interior_addressing_is_affine(r in region_strategy()) {
        if r.h >= 2 && r.w >= 2 {
            let base = r.addr(0, 0, 0);
            let dy = r.addr(0, 1, 0) - base;
            let dx = r.addr(0, 0, 1) - base;
            for y in 0..r.h {
                for x in 0..r.w {
                    prop_assert_eq!(r.addr(0, y, x), base + y as u64 * dy + x as u64 * dx);
                }
            }
        }
    }

    /// A SPAT-layout region and a WINO-layout region of identical
    /// geometry permute the same full word set at lane granularity (the
    /// SAVE transforms move every word somewhere; none are dropped).
    #[test]
    fn layouts_cover_identical_word_sets(r in region_strategy()) {
        let full = FmapRegion { channels: r.cv() * r.pi, ..r };
        let twin = FmapRegion {
            layout: match r.layout {
                ConvMode::Spatial => ConvMode::Winograd,
                ConvMode::Winograd => ConvMode::Spatial,
            },
            ..full
        };
        let set_a: std::collections::BTreeSet<u64> = iter_addrs(&full).collect();
        let set_b: std::collections::BTreeSet<u64> = iter_addrs(&twin).collect();
        prop_assert_eq!(&set_a, &set_b);
        // And they tile the region densely.
        prop_assert_eq!(set_a.len() as u64, r.words());
    }
}

fn iter_addrs(r: &FmapRegion) -> impl Iterator<Item = u64> + '_ {
    let (c, h, w) = (r.channels, r.padded_h(), r.padded_w());
    (0..c)
        .flat_map(move |ci| (0..h).flat_map(move |y| (0..w).map(move |x| r.addr_padded(ci, y, x))))
}

#[test]
fn memory_map_regions_never_overlap() {
    let mut map = MemoryMap::new();
    let mut ids = Vec::new();
    for i in 1..6 {
        ids.push(map.alloc_region(i * 3, i * 2, i * 2 + 1, 1, 1, ConvMode::Winograd, 4));
    }
    let mut spans: Vec<(u64, u64)> = ids
        .iter()
        .map(|&i| {
            let r = map.region(i);
            (r.base, r.base + r.words())
        })
        .collect();
    spans.sort();
    for pair in spans.windows(2) {
        assert!(pair[0].1 <= pair[1].0, "regions overlap: {pair:?}");
    }
}
