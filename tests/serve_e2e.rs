//! End-to-end test of the serving runtime through the top-level
//! framework flow: parse → explore → compile → serve, checking the
//! served outputs against the pure-software reference network.

use hybriddnn::flow::Framework;
use hybriddnn::model::{reference, synth, zoo};
use hybriddnn::{FpgaSpec, Profile, SimMode};
use std::time::Duration;

#[test]
fn deployment_serves_functional_requests_matching_reference() {
    let mut net = zoo::tiny_cnn();
    synth::bind_random(&mut net, 42).unwrap();

    let framework = Framework::new(FpgaSpec::pynq_z1(), Profile::pynq_z1());
    let deployment = framework.build(&net).unwrap();
    assert!(deployment.predicted_cycles() > 0.0);

    let config = deployment
        .service_config(SimMode::Functional)
        .with_workers(2)
        .with_max_batch_size(4)
        .with_max_wait(Duration::from_micros(200));
    let service = deployment.into_service(config).unwrap();

    let inputs: Vec<_> = (0..8)
        .map(|i| synth::tensor(net.input_shape(), 100 + i))
        .collect();
    let handles: Vec<_> = inputs
        .iter()
        .map(|input| service.submit(input.clone(), None).unwrap())
        .collect();

    for (handle, input) in handles.into_iter().zip(&inputs) {
        let response = handle.wait().unwrap();
        let want = reference::run_network(&net, input).unwrap();
        assert_eq!(response.output.shape(), want.shape());
        for (got, exp) in response.output.as_slice().iter().zip(want.as_slice()) {
            assert!(
                (got - exp).abs() <= 1e-2 * exp.abs().max(1.0),
                "served output diverged from reference: {got} vs {exp}"
            );
        }
        assert!(response.total_cycles > 0.0);
    }

    let metrics = service.shutdown();
    assert_eq!(metrics.completed, 8);
    assert_eq!(metrics.failed + metrics.expired + metrics.rejected_full, 0);
    assert!(metrics.batches >= 2);
}

#[test]
fn deployment_serves_timing_only_requests() {
    let mut net = zoo::tiny_cnn();
    synth::bind_random(&mut net, 7).unwrap();

    let framework = Framework::new(FpgaSpec::vu9p(), Profile::vu9p());
    let deployment = framework.build(&net).unwrap();
    let config = deployment
        .service_config(SimMode::TimingOnly)
        .with_workers(3)
        .with_sjf();
    let service = deployment.into_service(config).unwrap();

    let handles: Vec<_> = (0..12)
        .map(|i| {
            service
                .submit(synth::tensor(net.input_shape(), i), None)
                .unwrap()
        })
        .collect();
    for handle in handles {
        let response = handle.wait().unwrap();
        assert!(response.total_cycles > 0.0);
        assert!(response.latency > Duration::ZERO);
    }
    assert_eq!(service.shutdown().completed, 12);
}
