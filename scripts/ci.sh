#!/usr/bin/env bash
# Offline CI gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "CI OK"
