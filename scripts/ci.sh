#!/usr/bin/env bash
# Offline CI gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -p hybriddnn-par -- -D warnings"
cargo clippy -p hybriddnn-par --all-targets --offline -- -D warnings

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

# Benchmarks that emit BENCH_sim.json must at least build; running them
# is a manual step (they measure host speed, which CI machines vary on).
echo "==> bench-json binaries build"
cargo build --release --offline -p hybriddnn-bench --bins --examples

# Host-parallelism smoke test: the same functional inference at 1 and 4
# threads must print the same validation error bit for bit (the full
# bit-identity contract is tests/parallel_determinism.rs; this exercises
# the CLI --threads plumbing end to end).
echo "==> --threads 1 vs 4 smoke test"
one=$(./target/release/hybriddnn specs/vgg_tiny.hdnn pynq-z1 --functional --threads 1 | grep validation)
four=$(./target/release/hybriddnn specs/vgg_tiny.hdnn pynq-z1 --functional --threads 4 | grep validation)
if [ "$one" != "$four" ]; then
    echo "thread-count divergence: [$one] vs [$four]" >&2
    exit 1
fi
echo "    $one"

# Session-plan smoke test: stage_probe exercises record + replay across
# every stage of the pipeline. BENCH_JSON points at a scratch file so a
# CI run never dirties the repo's committed BENCH_sim.json; the numbers
# it measures are discarded — this only checks that the probe runs.
echo "==> stage_probe smoke test (session-plan record/replay)"
BENCH_JSON="$(mktemp)" ./target/release/examples/stage_probe > /dev/null

# Schedule-replay validation: run the CLI twice in one session with the
# cached timing schedule cross-checked against a full re-simulation.
echo "==> --validate-plan smoke test"
./target/release/hybriddnn specs/vgg_tiny.hdnn pynq-z1 --functional --validate-plan --threads 1 | grep "plan"

# Chaos suite: the serving layer under deterministic fault injection
# (transients retried to bit-identical results, hangs watchdog-cancelled,
# wedges respawned, full-quarantine drains with typed errors).
echo "==> chaos tests (fault injection + self-healing)"
cargo test -q --offline --release -p hybriddnn-runtime --test chaos

# Faulted serving smoke test: serve-bench with a uniform fault plan must
# answer every request (served or typed error) and print fault metrics.
echo "==> serve-bench --fault-rate 0.01 smoke test"
./target/release/hybriddnn serve-bench tiny-cnn pynq-z1 --requests 200 --workers 2 \
    --fault-rate 0.01 --retries 8 | grep "fault tolerance"

echo "CI OK"
