#!/usr/bin/env bash
# Offline CI gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -p hybriddnn-par -- -D warnings"
cargo clippy -p hybriddnn-par --all-targets --offline -- -D warnings

echo "==> cargo clippy -p hybriddnn-server -- -D warnings"
cargo clippy -p hybriddnn-server --all-targets --offline -- -D warnings

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

# Benchmarks that emit BENCH_sim.json must at least build; running them
# is a manual step (they measure host speed, which CI machines vary on).
echo "==> bench-json binaries build"
cargo build --release --offline -p hybriddnn-bench --bins --examples

# Host-parallelism smoke test: the same functional inference at 1 and 4
# threads must print the same validation error bit for bit (the full
# bit-identity contract is tests/parallel_determinism.rs; this exercises
# the CLI --threads plumbing end to end).
echo "==> --threads 1 vs 4 smoke test"
one=$(./target/release/hybriddnn specs/vgg_tiny.hdnn pynq-z1 --functional --threads 1 | grep validation)
four=$(./target/release/hybriddnn specs/vgg_tiny.hdnn pynq-z1 --functional --threads 4 | grep validation)
if [ "$one" != "$four" ]; then
    echo "thread-count divergence: [$one] vs [$four]" >&2
    exit 1
fi
echo "    $one"

# Session-plan smoke test: stage_probe exercises record + replay across
# every stage of the pipeline. BENCH_JSON points at a scratch file so a
# CI run never dirties the repo's committed BENCH_sim.json; the numbers
# it measures are discarded — this only checks that the probe runs.
echo "==> stage_probe smoke test (session-plan record/replay)"
BENCH_JSON="$(mktemp)" ./target/release/examples/stage_probe > /dev/null

# Batched-execution smoke test: batch_probe measures functional µs per
# batch element at B ∈ {1, 4, 16}; B=16 must beat B=1 per-run — the
# O(weights + B·activations) amortization of the batched kernels. The
# asserted floor is 1.0x (strictly faster), not the ~2x this host
# records, so a loaded CI machine doesn't flake the gate.
echo "==> batch_probe smoke test (B=16 must beat B=1 per-run)"
probe_out="$(BENCH_JSON="$(mktemp)" ./target/release/examples/batch_probe)"
echo "$probe_out" | sed 's/^/    /'
ratio=$(echo "$probe_out" | awk '/amortization/ {gsub(/x$/, "", $NF); print $NF}')
if ! awk -v r="$ratio" 'BEGIN {exit !(r > 1.0)}'; then
    echo "batched execution no faster than sequential (ratio ${ratio}x)" >&2
    exit 1
fi

# Batched 1-vs-4-thread output equality: the batch suite pins batched
# runs bit-identical to sequential ones at both thread counts (outputs,
# cycles, stage stats, and error outcomes).
echo "==> batched output equality, 1 vs 4 threads"
cargo test -q --offline --release -p hybriddnn-sim --test batch \
    tiny_cnn_batched_is_bit_identical

# Schedule-replay validation: run the CLI twice in one session with the
# cached timing schedule cross-checked against a full re-simulation.
echo "==> --validate-plan smoke test"
./target/release/hybriddnn specs/vgg_tiny.hdnn pynq-z1 --functional --validate-plan --threads 1 | grep "plan"

# Chaos suite: the serving layer under deterministic fault injection
# (transients retried to bit-identical results, hangs watchdog-cancelled,
# wedges respawned, full-quarantine drains with typed errors).
echo "==> chaos tests (fault injection + self-healing)"
cargo test -q --offline --release -p hybriddnn-runtime --test chaos

# Faulted serving smoke test: serve-bench with a uniform fault plan must
# answer every request (served or typed error) and print fault metrics.
echo "==> serve-bench --fault-rate 0.01 smoke test"
./target/release/hybriddnn serve-bench tiny-cnn pynq-z1 --requests 200 --workers 2 \
    --fault-rate 0.01 --retries 8 | grep "fault tolerance"

# Network-serving smoke test: serve-net on an ephemeral port, the
# net_throughput load generator driving 256 concurrent pipelined
# connections over real sockets, then a wire-protocol DRAIN. Asserts
# nonzero throughput (the load generator exits nonzero if it serves
# nothing), that the reactor multiplexes every connection on a fixed
# thread pool (thread count must not scale with connections:
# main + acceptor + 2 io + pump + batcher + 2 workers = 8, asserted
# with slack at 12), and a clean server shutdown (bounded PID wait).
echo "==> serve-net + net_throughput 256-connection smoke test"
serve_log="$(mktemp)"
./target/release/hybriddnn serve-net tiny-cnn vu9p --port 0 --workers 2 \
    --io-threads 2 --max-conns 512 > "$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(grep -m1 '^listening on ' "$serve_log" | awk '{print $3}' || true)
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve-net never reported a listening address" >&2
    cat "$serve_log" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
./target/release/net_throughput --addr "$addr" --requests 2000 --conns 256
nthreads=$(awk '/^Threads:/ {print $2}' "/proc/$serve_pid/status")
if [ "$nthreads" -gt 12 ]; then
    echo "serve-net running $nthreads threads for 256 connections" \
         "(thread-per-connection regression?)" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
echo "    server threads under 256-connection load: $nthreads"
./target/release/net_throughput --addr "$addr" --requests 300 --drain
for _ in $(seq 1 100); do
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
    echo "serve-net did not shut down after drain" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
wait "$serve_pid"
grep "drained:" "$serve_log"

echo "CI OK"
