use crate::{ModelError, Shape, WeightShape};
use std::fmt;

/// Zero-padding applied symmetrically around a feature map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Padding {
    /// Rows of zeros added above and below.
    pub h: usize,
    /// Columns of zeros added left and right.
    pub w: usize,
}

impl Padding {
    /// Symmetric padding of `p` in both dimensions.
    pub const fn same(p: usize) -> Self {
        Padding { h: p, w: p }
    }
}

/// Per-layer activation function fused into the accelerator's COMP stage
/// (the `RELU_FLAG` instruction field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Identity (no activation).
    #[default]
    None,
    /// Rectified linear unit, `max(x, 0)`.
    Relu,
}

/// A 2-D convolution layer.
///
/// All of VGG16's feature extraction is built from these. Kernel sizes
/// larger than 3×3 are supported by the accelerator through the kernel
/// decomposition of §4.2.5.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Conv2d {
    /// Input channels (`C`).
    pub in_channels: usize,
    /// Output channels (`K`).
    pub out_channels: usize,
    /// Kernel height (`R`).
    pub kernel_h: usize,
    /// Kernel width (`S`).
    pub kernel_w: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding.
    pub padding: Padding,
    /// Fused activation.
    pub activation: Activation,
    /// Whether a bias vector of length `K` is added.
    pub bias: bool,
}

impl Conv2d {
    /// A square-kernel convolution with stride 1 and "same" padding
    /// (the VGG16 style `3x3/1/1` block).
    pub fn same(in_channels: usize, out_channels: usize, kernel: usize) -> Self {
        Conv2d {
            in_channels,
            out_channels,
            kernel_h: kernel,
            kernel_w: kernel,
            stride: 1,
            padding: Padding::same(kernel / 2),
            activation: Activation::Relu,
            bias: true,
        }
    }

    /// Shape of this layer's weight tensor.
    pub fn weight_shape(&self) -> WeightShape {
        WeightShape::new(
            self.out_channels,
            self.in_channels,
            self.kernel_h,
            self.kernel_w,
        )
    }

    /// Output shape given an input shape.
    fn output_shape(&self, input: Shape) -> Shape {
        let h = (input.h + 2 * self.padding.h - self.kernel_h) / self.stride + 1;
        let w = (input.w + 2 * self.padding.w - self.kernel_w) / self.stride + 1;
        Shape::new(self.out_channels, h, w)
    }
}

/// A fully-connected layer, mapped onto the accelerator's COMP path as a
/// 1×1 convolution over a 1×1 feature map (§5.3 treats "CONV or FC layers"
/// uniformly).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FullyConnected {
    /// Input features (flattened length of the incoming tensor).
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
    /// Fused activation.
    pub activation: Activation,
    /// Whether a bias vector is added.
    pub bias: bool,
}

impl FullyConnected {
    /// Creates an FC layer with ReLU and bias (the VGG16 style).
    pub fn new(in_features: usize, out_features: usize) -> Self {
        FullyConnected {
            in_features,
            out_features,
            activation: Activation::Relu,
            bias: true,
        }
    }

    /// Shape of this layer's weight tensor viewed as a 1×1 convolution.
    pub fn weight_shape(&self) -> WeightShape {
        WeightShape::new(self.out_features, self.in_features, 1, 1)
    }
}

/// A max-pooling layer, fused into the accelerator's SAVE stage
/// (the `POOL_SIZE` instruction field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MaxPool2d {
    /// Square window size (also used as the stride; VGG16 uses 2×2/2).
    pub size: usize,
}

impl MaxPool2d {
    /// Creates a max-pool with window = stride = `size`.
    pub const fn new(size: usize) -> Self {
        MaxPool2d { size }
    }

    fn output_shape(&self, input: Shape) -> Shape {
        Shape::new(input.c, input.h / self.size, input.w / self.size)
    }
}

/// The kind of computation a [`Layer`] performs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LayerKind {
    /// 2-D convolution.
    Conv(Conv2d),
    /// Fully-connected / inner product.
    Fc(FullyConnected),
    /// Max pooling.
    MaxPool(MaxPool2d),
}

/// A named layer in a [`crate::Network`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layer {
    name: String,
    kind: LayerKind,
}

impl Layer {
    /// Creates a named layer.
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Self {
        Layer {
            name: name.into(),
            kind,
        }
    }

    /// The layer's name (unique within its network).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer's computation kind.
    pub fn kind(&self) -> &LayerKind {
        &self.kind
    }

    /// Whether this layer runs on the accelerator's COMP module
    /// (convolutions and FC layers do; pooling rides along in SAVE).
    pub fn is_compute(&self) -> bool {
        matches!(self.kind, LayerKind::Conv(_) | LayerKind::Fc(_))
    }

    /// Validates the layer's structural parameters.
    ///
    /// # Errors
    /// Returns [`ModelError::InvalidLayer`] for zero-sized channels,
    /// kernels, strides or pool windows.
    pub fn validate(&self) -> Result<(), ModelError> {
        let invalid = |detail: &str| ModelError::InvalidLayer {
            layer: self.name.clone(),
            detail: detail.to_string(),
        };
        match &self.kind {
            LayerKind::Conv(c) => {
                if c.in_channels == 0 || c.out_channels == 0 {
                    return Err(invalid("channel counts must be nonzero"));
                }
                if c.kernel_h == 0 || c.kernel_w == 0 {
                    return Err(invalid("kernel must be nonzero"));
                }
                if c.stride == 0 {
                    return Err(invalid("stride must be nonzero"));
                }
            }
            LayerKind::Fc(fc) => {
                if fc.in_features == 0 || fc.out_features == 0 {
                    return Err(invalid("feature counts must be nonzero"));
                }
            }
            LayerKind::MaxPool(p) => {
                if p.size == 0 {
                    return Err(invalid("pool size must be nonzero"));
                }
            }
        }
        Ok(())
    }

    /// Computes the output shape for `input`, checking compatibility.
    ///
    /// # Errors
    /// Returns [`ModelError::ShapeMismatch`] if the input does not fit this
    /// layer (wrong channel count, too small after padding, or not evenly
    /// divisible by a pooling window).
    pub fn infer_shape(&self, input: Shape) -> Result<Shape, ModelError> {
        let mismatch = |detail: String| ModelError::ShapeMismatch {
            layer: self.name.clone(),
            detail,
        };
        match &self.kind {
            LayerKind::Conv(c) => {
                if input.c != c.in_channels {
                    return Err(mismatch(format!(
                        "expects {} input channels, got {}",
                        c.in_channels, input.c
                    )));
                }
                if input.h + 2 * c.padding.h < c.kernel_h || input.w + 2 * c.padding.w < c.kernel_w
                {
                    return Err(mismatch(format!(
                        "padded input {}x{} smaller than kernel {}x{}",
                        input.h + 2 * c.padding.h,
                        input.w + 2 * c.padding.w,
                        c.kernel_h,
                        c.kernel_w
                    )));
                }
                Ok(c.output_shape(input))
            }
            LayerKind::Fc(fc) => {
                if input.len() != fc.in_features {
                    return Err(mismatch(format!(
                        "expects {} input features, got {} ({input})",
                        fc.in_features,
                        input.len()
                    )));
                }
                Ok(Shape::new(fc.out_features, 1, 1))
            }
            LayerKind::MaxPool(p) => {
                if !input.h.is_multiple_of(p.size) || !input.w.is_multiple_of(p.size) {
                    return Err(mismatch(format!(
                        "feature map {}x{} not divisible by pool size {}",
                        input.h, input.w, p.size
                    )));
                }
                Ok(p.output_shape(input))
            }
        }
    }

    /// Number of arithmetic operations (multiplies + adds, the GOPS
    /// convention: 2 ops per MAC) this layer performs on `input`.
    ///
    /// Pooling layers count zero, matching the paper's CONV/FC accounting.
    pub fn ops(&self, input: Shape) -> u64 {
        match &self.kind {
            LayerKind::Conv(c) => {
                let out = c.output_shape(input);
                2 * (c.out_channels * c.in_channels * c.kernel_h * c.kernel_w) as u64
                    * (out.h * out.w) as u64
            }
            LayerKind::Fc(fc) => 2 * (fc.in_features * fc.out_features) as u64,
            LayerKind::MaxPool(_) => 0,
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            LayerKind::Conv(c) => write!(
                f,
                "{}: conv {}x{} {}→{} stride {} pad {}x{}",
                self.name,
                c.kernel_h,
                c.kernel_w,
                c.in_channels,
                c.out_channels,
                c.stride,
                c.padding.h,
                c.padding.w
            ),
            LayerKind::Fc(fc) => {
                write!(
                    f,
                    "{}: fc {}→{}",
                    self.name, fc.in_features, fc.out_features
                )
            }
            LayerKind::MaxPool(p) => write!(f, "{}: maxpool {}x{}", self.name, p.size, p.size),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_same_preserves_spatial_size() {
        let conv = Conv2d::same(3, 64, 3);
        let layer = Layer::new("c1", LayerKind::Conv(conv));
        let out = layer.infer_shape(Shape::new(3, 224, 224)).unwrap();
        assert_eq!(out, Shape::new(64, 224, 224));
    }

    #[test]
    fn conv_stride_two_halves() {
        let mut conv = Conv2d::same(16, 32, 3);
        conv.stride = 2;
        let layer = Layer::new("c", LayerKind::Conv(conv));
        let out = layer.infer_shape(Shape::new(16, 32, 32)).unwrap();
        assert_eq!(out, Shape::new(32, 16, 16));
    }

    #[test]
    fn conv_rejects_wrong_channels() {
        let layer = Layer::new("c", LayerKind::Conv(Conv2d::same(3, 8, 3)));
        let err = layer.infer_shape(Shape::new(4, 8, 8)).unwrap_err();
        assert!(matches!(err, ModelError::ShapeMismatch { .. }));
    }

    #[test]
    fn conv_rejects_kernel_larger_than_padded_input() {
        let mut conv = Conv2d::same(1, 1, 7);
        conv.padding = Padding::same(0);
        let layer = Layer::new("c", LayerKind::Conv(conv));
        assert!(layer.infer_shape(Shape::new(1, 4, 4)).is_err());
    }

    #[test]
    fn fc_flattens_input() {
        let layer = Layer::new("fc", LayerKind::Fc(FullyConnected::new(512 * 7 * 7, 4096)));
        let out = layer.infer_shape(Shape::new(512, 7, 7)).unwrap();
        assert_eq!(out, Shape::new(4096, 1, 1));
    }

    #[test]
    fn fc_rejects_wrong_feature_count() {
        let layer = Layer::new("fc", LayerKind::Fc(FullyConnected::new(100, 10)));
        assert!(layer.infer_shape(Shape::new(2, 7, 7)).is_err());
    }

    #[test]
    fn maxpool_requires_divisibility() {
        let layer = Layer::new("p", LayerKind::MaxPool(MaxPool2d::new(2)));
        assert_eq!(
            layer.infer_shape(Shape::new(8, 10, 10)).unwrap(),
            Shape::new(8, 5, 5)
        );
        assert!(layer.infer_shape(Shape::new(8, 9, 10)).is_err());
    }

    #[test]
    fn validate_rejects_degenerate_layers() {
        let bad = Layer::new(
            "z",
            LayerKind::Conv(Conv2d {
                in_channels: 0,
                out_channels: 4,
                kernel_h: 3,
                kernel_w: 3,
                stride: 1,
                padding: Padding::same(1),
                activation: Activation::None,
                bias: false,
            }),
        );
        assert!(bad.validate().is_err());
        let bad_stride = Layer::new(
            "s",
            LayerKind::Conv(Conv2d {
                stride: 0,
                ..Conv2d::same(1, 1, 3)
            }),
        );
        assert!(bad_stride.validate().is_err());
        assert!(Layer::new("p", LayerKind::MaxPool(MaxPool2d::new(0)))
            .validate()
            .is_err());
    }

    #[test]
    fn ops_counts_two_per_mac() {
        // 1 output pixel, 1x1 kernel, 1 channel: exactly one MAC = 2 ops.
        let mut conv = Conv2d::same(1, 1, 1);
        conv.padding = Padding::same(0);
        let layer = Layer::new("c", LayerKind::Conv(conv));
        assert_eq!(layer.ops(Shape::new(1, 1, 1)), 2);

        // VGG16 conv1_1: 2 * 64*3*3*3 * 224*224 = 173 408 256.
        let layer = Layer::new("c", LayerKind::Conv(Conv2d::same(3, 64, 3)));
        assert_eq!(layer.ops(Shape::new(3, 224, 224)), 173_408_256);
    }

    #[test]
    fn pooling_counts_zero_ops() {
        let layer = Layer::new("p", LayerKind::MaxPool(MaxPool2d::new(2)));
        assert_eq!(layer.ops(Shape::new(64, 112, 112)), 0);
    }
}
