use std::fmt;

/// Errors produced while constructing or evaluating DNN models.
///
/// Every fallible public function in this crate returns `Result<_, ModelError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A tensor was created with a shape whose element count does not match
    /// the supplied data length.
    ShapeDataMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// A layer received an input whose shape is incompatible with the layer
    /// configuration (wrong channel count or too-small spatial extent).
    ShapeMismatch {
        /// Name of the offending layer.
        layer: String,
        /// Human-readable description of the incompatibility.
        detail: String,
    },
    /// A layer parameter is structurally invalid (e.g. zero channels,
    /// zero-sized kernel, zero stride).
    InvalidLayer {
        /// Name of the offending layer.
        layer: String,
        /// Human-readable description of the invalid parameter.
        detail: String,
    },
    /// A network was built with no layers.
    EmptyNetwork,
    /// Weights bound to a layer have the wrong shape.
    WeightMismatch {
        /// Name of the offending layer.
        layer: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ShapeDataMismatch { expected, actual } => write!(
                f,
                "tensor shape expects {expected} elements but {actual} were supplied"
            ),
            ModelError::ShapeMismatch { layer, detail } => {
                write!(f, "layer `{layer}` input shape mismatch: {detail}")
            }
            ModelError::InvalidLayer { layer, detail } => {
                write!(f, "layer `{layer}` is invalid: {detail}")
            }
            ModelError::EmptyNetwork => write!(f, "network contains no layers"),
            ModelError::WeightMismatch { layer, detail } => {
                write!(f, "layer `{layer}` weight mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = ModelError::EmptyNetwork;
        let s = e.to_string();
        assert!(s.starts_with("network"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
