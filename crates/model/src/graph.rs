use crate::{Layer, LayerKind, ModelError, Shape, Tensor};

/// Weights and bias bound to one compute layer of a [`Network`].
///
/// Weight data is stored flat in `KCRS` order (matching
/// [`crate::WeightShape::index`]); the bias has length `K`.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerBinding {
    /// Flat `KCRS` weight data.
    pub weights: Vec<f32>,
    /// Per-output-channel bias (empty when the layer has no bias).
    pub bias: Vec<f32>,
}

/// A sequential DNN: an input shape, a list of layers, and (optionally)
/// bound parameters.
///
/// The paper targets feed-forward CNNs (VGG16 in the evaluation); a
/// sequential graph with shape inference covers the workload faithfully.
///
/// # Example
/// ```
/// use hybriddnn_model::{NetworkBuilder, Shape};
///
/// # fn main() -> Result<(), hybriddnn_model::ModelError> {
/// let net = NetworkBuilder::new(Shape::new(3, 32, 32))
///     .conv("conv1", 3, 16, 3)
///     .max_pool("pool1", 2)
///     .fc("fc1", 10)
///     .build()?;
/// assert_eq!(net.output_shape(), Shape::new(10, 1, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    input_shape: Shape,
    layers: Vec<Layer>,
    /// Per-layer input shapes (same length as `layers`).
    input_shapes: Vec<Shape>,
    /// Per-layer output shapes (same length as `layers`).
    output_shapes: Vec<Shape>,
    /// Parameter bindings, indexed like `layers` (`None` for pooling).
    bindings: Vec<Option<LayerBinding>>,
}

impl Network {
    /// Builds a network from layers, running shape inference.
    ///
    /// # Errors
    /// Returns an error if the network is empty, a layer is structurally
    /// invalid, or consecutive shapes are incompatible.
    pub fn new(input_shape: Shape, layers: Vec<Layer>) -> Result<Self, ModelError> {
        if layers.is_empty() {
            return Err(ModelError::EmptyNetwork);
        }
        let mut input_shapes = Vec::with_capacity(layers.len());
        let mut output_shapes = Vec::with_capacity(layers.len());
        let mut shape = input_shape;
        for layer in &layers {
            layer.validate()?;
            input_shapes.push(shape);
            shape = layer.infer_shape(shape)?;
            output_shapes.push(shape);
        }
        let bindings = vec![None; layers.len()];
        Ok(Network {
            input_shape,
            layers,
            input_shapes,
            output_shapes,
            bindings,
        })
    }

    /// The network's input shape.
    pub fn input_shape(&self) -> Shape {
        self.input_shape
    }

    /// The final output shape.
    pub fn output_shape(&self) -> Shape {
        *self.output_shapes.last().expect("network is non-empty")
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Input shape of layer `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn layer_input_shape(&self, i: usize) -> Shape {
        self.input_shapes[i]
    }

    /// Output shape of layer `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn layer_output_shape(&self, i: usize) -> Shape {
        self.output_shapes[i]
    }

    /// Parameter binding of layer `i`, if any.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn binding(&self, i: usize) -> Option<&LayerBinding> {
        self.bindings[i].as_ref()
    }

    /// Binds weights and bias to compute layer `i`.
    ///
    /// # Errors
    /// Returns [`ModelError::WeightMismatch`] if the layer is not a compute
    /// layer, or the data lengths do not match the layer's weight shape.
    pub fn bind(&mut self, i: usize, weights: Vec<f32>, bias: Vec<f32>) -> Result<(), ModelError> {
        let layer = &self.layers[i];
        let mismatch = |detail: String| ModelError::WeightMismatch {
            layer: layer.name().to_string(),
            detail,
        };
        let (wlen, blen) = match layer.kind() {
            LayerKind::Conv(c) => (
                c.weight_shape().len(),
                if c.bias { c.out_channels } else { 0 },
            ),
            LayerKind::Fc(fc) => (
                fc.weight_shape().len(),
                if fc.bias { fc.out_features } else { 0 },
            ),
            LayerKind::MaxPool(_) => {
                return Err(mismatch("pooling layers take no parameters".to_string()))
            }
        };
        if weights.len() != wlen {
            return Err(mismatch(format!(
                "expected {wlen} weights, got {}",
                weights.len()
            )));
        }
        if bias.len() != blen {
            return Err(mismatch(format!(
                "expected {blen} bias values, got {}",
                bias.len()
            )));
        }
        self.bindings[i] = Some(LayerBinding { weights, bias });
        Ok(())
    }

    /// Whether every compute layer has parameters bound.
    pub fn is_fully_bound(&self) -> bool {
        self.layers
            .iter()
            .zip(&self.bindings)
            .all(|(l, b)| !l.is_compute() || b.is_some())
    }

    /// Total arithmetic operations for one inference (2 per MAC).
    pub fn total_ops(&self) -> u64 {
        self.layers
            .iter()
            .zip(&self.input_shapes)
            .map(|(l, &s)| l.ops(s))
            .sum()
    }

    /// Total parameter count (weights + biases) across compute layers.
    pub fn total_params(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| match l.kind() {
                LayerKind::Conv(c) => {
                    (c.weight_shape().len() + if c.bias { c.out_channels } else { 0 }) as u64
                }
                LayerKind::Fc(fc) => {
                    (fc.weight_shape().len() + if fc.bias { fc.out_features } else { 0 }) as u64
                }
                LayerKind::MaxPool(_) => 0,
            })
            .sum()
    }

    /// Validates that `input` matches this network's input shape.
    ///
    /// # Errors
    /// Returns [`ModelError::ShapeMismatch`] on mismatch.
    pub fn check_input(&self, input: &Tensor) -> Result<(), ModelError> {
        if input.shape() != self.input_shape {
            return Err(ModelError::ShapeMismatch {
                layer: "<input>".to_string(),
                detail: format!(
                    "network expects {}, got {}",
                    self.input_shape,
                    input.shape()
                ),
            });
        }
        Ok(())
    }
}

/// Incremental builder for [`Network`].
///
/// The `fc` method infers its input feature count from the running shape,
/// so builders read like the architecture table of a paper.
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    input_shape: Shape,
    shape: Shape,
    layers: Vec<Layer>,
}

impl NetworkBuilder {
    /// Starts a builder for a network with the given input shape.
    pub fn new(input_shape: Shape) -> Self {
        NetworkBuilder {
            input_shape,
            shape: input_shape,
            layers: Vec::new(),
        }
    }

    fn push(mut self, layer: Layer) -> Self {
        // Track the running shape optimistically; Network::new re-validates.
        if let Ok(s) = layer.infer_shape(self.shape) {
            self.shape = s;
        }
        self.layers.push(layer);
        self
    }

    /// Appends a square same-padded stride-1 convolution with ReLU.
    pub fn conv(self, name: &str, in_ch: usize, out_ch: usize, kernel: usize) -> Self {
        self.push(Layer::new(
            name,
            LayerKind::Conv(crate::Conv2d::same(in_ch, out_ch, kernel)),
        ))
    }

    /// Appends an arbitrary convolution.
    pub fn conv_cfg(self, name: &str, conv: crate::Conv2d) -> Self {
        self.push(Layer::new(name, LayerKind::Conv(conv)))
    }

    /// Appends a max-pool with window = stride = `size`.
    pub fn max_pool(self, name: &str, size: usize) -> Self {
        self.push(Layer::new(
            name,
            LayerKind::MaxPool(crate::MaxPool2d::new(size)),
        ))
    }

    /// Appends a fully-connected layer; input features inferred from the
    /// running shape.
    pub fn fc(self, name: &str, out_features: usize) -> Self {
        let in_features = self.shape.len();
        self.push(Layer::new(
            name,
            LayerKind::Fc(crate::FullyConnected::new(in_features, out_features)),
        ))
    }

    /// Finishes the builder.
    ///
    /// # Errors
    /// Propagates any validation error from [`Network::new`].
    pub fn build(self) -> Result<Network, ModelError> {
        Network::new(self.input_shape, self.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Conv2d;

    fn small() -> Network {
        NetworkBuilder::new(Shape::new(3, 8, 8))
            .conv("c1", 3, 4, 3)
            .max_pool("p1", 2)
            .fc("fc", 5)
            .build()
            .unwrap()
    }

    #[test]
    fn shape_inference_chains() {
        let net = small();
        assert_eq!(net.layer_input_shape(0), Shape::new(3, 8, 8));
        assert_eq!(net.layer_output_shape(0), Shape::new(4, 8, 8));
        assert_eq!(net.layer_output_shape(1), Shape::new(4, 4, 4));
        assert_eq!(net.output_shape(), Shape::new(5, 1, 1));
    }

    #[test]
    fn empty_network_is_rejected() {
        assert_eq!(
            Network::new(Shape::new(1, 1, 1), vec![]).unwrap_err(),
            ModelError::EmptyNetwork
        );
    }

    #[test]
    fn incompatible_chain_is_rejected() {
        let r = NetworkBuilder::new(Shape::new(3, 8, 8))
            .conv("c1", 5, 4, 3) // wrong in_channels
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn binding_validates_lengths() {
        let mut net = small();
        // c1: 4x3x3x3 weights = 108, bias 4.
        assert!(net.bind(0, vec![0.0; 108], vec![0.0; 4]).is_ok());
        assert!(net.bind(0, vec![0.0; 100], vec![0.0; 4]).is_err());
        assert!(net.bind(0, vec![0.0; 108], vec![0.0; 3]).is_err());
        // pooling takes no parameters
        assert!(net.bind(1, vec![], vec![]).is_err());
    }

    #[test]
    fn fully_bound_tracks_compute_layers_only() {
        let mut net = small();
        assert!(!net.is_fully_bound());
        net.bind(0, vec![0.0; 108], vec![0.0; 4]).unwrap();
        net.bind(2, vec![0.0; 64 * 5], vec![0.0; 5]).unwrap();
        assert!(net.is_fully_bound());
    }

    #[test]
    fn total_ops_sums_layers() {
        let net = NetworkBuilder::new(Shape::new(1, 4, 4))
            .conv_cfg(
                "c",
                Conv2d {
                    padding: crate::Padding::same(0),
                    bias: false,
                    ..Conv2d::same(1, 1, 1)
                },
            )
            .build()
            .unwrap();
        // 1x1 conv over 4x4, 1 channel: 16 MACs = 32 ops.
        assert_eq!(net.total_ops(), 32);
    }

    #[test]
    fn total_params_counts_weights_and_bias() {
        let net = small();
        // c1: 108 + 4, fc: 4*4*4*5 + 5 = 320 + 5.
        assert_eq!(net.total_params(), 108 + 4 + 320 + 5);
    }

    #[test]
    fn check_input_validates_shape() {
        let net = small();
        assert!(net.check_input(&Tensor::zeros(Shape::new(3, 8, 8))).is_ok());
        assert!(net
            .check_input(&Tensor::zeros(Shape::new(3, 9, 8)))
            .is_err());
    }
}
