//! Deterministic synthetic data generation.
//!
//! The paper evaluates with pretrained VGG16 weights; throughput and
//! resource results are data-independent, so this reproduction substitutes
//! seeded pseudo-random parameters (DESIGN.md §2). A tiny SplitMix64
//! generator is embedded here so library results are reproducible across
//! platforms without pulling `rand` into non-dev dependencies.

use crate::{quant::QFormat, LayerKind, ModelError, Network, Shape, Tensor};

/// A small, fast, deterministic PRNG (SplitMix64).
///
/// Not cryptographic; used only to fabricate reproducible test data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[-1, 1)`.
    pub fn next_unit(&mut self) -> f32 {
        // 24 mantissa bits → exact dyadic rationals.
        let bits = (self.next_u64() >> 40) as u32; // 24 random bits
        (bits as f32) / (1 << 23) as f32 - 1.0
    }
}

/// A deterministic tensor with values in `[-1, 1)`.
pub fn tensor(shape: Shape, seed: u64) -> Tensor {
    let mut rng = SplitMix64::new(seed);
    let data = (0..shape.len()).map(|_| rng.next_unit()).collect();
    Tensor::from_vec(shape, data).expect("generated data matches shape")
}

/// A deterministic tensor quantized onto `fmt`'s grid.
pub fn quantized_tensor(shape: Shape, seed: u64, fmt: QFormat) -> Tensor {
    let mut t = tensor(shape, seed);
    fmt.quantize_tensor(&mut t);
    t
}

/// Binds deterministic parameters to every compute layer of `net`.
///
/// Weights are scaled by `1/sqrt(fan_in)` (He-style) so activations stay
/// in a sane numeric range through deep networks.
///
/// # Errors
/// Propagates binding errors (cannot occur for shapes generated here, but
/// the signature stays honest).
pub fn bind_random(net: &mut Network, seed: u64) -> Result<(), ModelError> {
    bind_random_with(net, seed, None)
}

/// Like [`bind_random`], but additionally quantizes parameters onto `fmt`.
///
/// # Errors
/// Propagates binding errors.
pub fn bind_random_quantized(net: &mut Network, seed: u64, fmt: QFormat) -> Result<(), ModelError> {
    bind_random_with(net, seed, Some(fmt))
}

fn bind_random_with(net: &mut Network, seed: u64, fmt: Option<QFormat>) -> Result<(), ModelError> {
    let mut rng = SplitMix64::new(seed);
    for i in 0..net.layers().len() {
        let (wlen, blen, fan_in) = match net.layers()[i].kind() {
            LayerKind::Conv(c) => (
                c.weight_shape().len(),
                if c.bias { c.out_channels } else { 0 },
                c.in_channels * c.kernel_h * c.kernel_w,
            ),
            LayerKind::Fc(fc) => (
                fc.weight_shape().len(),
                if fc.bias { fc.out_features } else { 0 },
                fc.in_features,
            ),
            LayerKind::MaxPool(_) => continue,
        };
        let scale = 1.0 / (fan_in as f32).sqrt();
        let mut weights: Vec<f32> = (0..wlen).map(|_| rng.next_unit() * scale).collect();
        let mut bias: Vec<f32> = (0..blen).map(|_| rng.next_unit() * 0.1).collect();
        if let Some(f) = fmt {
            f.quantize_slice(&mut weights);
            f.quantize_slice(&mut bias);
        }
        net.bind(i, weights, bias)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_values_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = rng.next_unit();
            assert!((-1.0..1.0).contains(&v), "{v} out of range");
        }
    }

    #[test]
    fn tensor_generation_is_reproducible() {
        let a = tensor(Shape::new(2, 3, 3), 5);
        let b = tensor(Shape::new(2, 3, 3), 5);
        assert_eq!(a, b);
        let c = tensor(Shape::new(2, 3, 3), 6);
        assert_ne!(a, c);
    }

    #[test]
    fn quantized_tensor_lies_on_grid() {
        let fmt = QFormat::FEATURE12;
        let t = quantized_tensor(Shape::new(1, 8, 8), 3, fmt);
        for &v in t.as_slice() {
            assert!(fmt.contains(v as f64), "{v} not on grid");
        }
    }

    #[test]
    fn bind_random_fills_every_compute_layer() {
        let mut net = NetworkBuilder::new(Shape::new(3, 8, 8))
            .conv("c1", 3, 4, 3)
            .max_pool("p", 2)
            .fc("fc", 10)
            .build()
            .unwrap();
        bind_random(&mut net, 11).unwrap();
        assert!(net.is_fully_bound());
        assert!(net.binding(1).is_none());
    }

    #[test]
    fn bind_random_quantized_respects_format() {
        let fmt = QFormat::WEIGHT8;
        let mut net = NetworkBuilder::new(Shape::new(1, 4, 4))
            .conv("c1", 1, 2, 3)
            .build()
            .unwrap();
        bind_random_quantized(&mut net, 9, fmt).unwrap();
        for &w in &net.binding(0).unwrap().weights {
            assert!(fmt.contains(w as f64));
        }
    }
}
