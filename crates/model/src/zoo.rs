//! Model builders for the networks used in the paper's evaluation and in
//! this repository's test-suite.

use crate::{Conv2d, Network, NetworkBuilder, Padding, Shape};

/// VGG16 for 224×224×3 inputs: 13 CONV layers (all 3×3/1/1 + ReLU, with
/// five 2×2 max-pools) followed by 3 FC layers — the paper's case-study
/// workload (§6.1).
///
/// # Panics
/// Never panics; the architecture is statically consistent.
pub fn vgg16() -> Network {
    NetworkBuilder::new(Shape::new(3, 224, 224))
        .conv("conv1_1", 3, 64, 3)
        .conv("conv1_2", 64, 64, 3)
        .max_pool("pool1", 2)
        .conv("conv2_1", 64, 128, 3)
        .conv("conv2_2", 128, 128, 3)
        .max_pool("pool2", 2)
        .conv("conv3_1", 128, 256, 3)
        .conv("conv3_2", 256, 256, 3)
        .conv("conv3_3", 256, 256, 3)
        .max_pool("pool3", 2)
        .conv("conv4_1", 256, 512, 3)
        .conv("conv4_2", 512, 512, 3)
        .conv("conv4_3", 512, 512, 3)
        .max_pool("pool4", 2)
        .conv("conv5_1", 512, 512, 3)
        .conv("conv5_2", 512, 512, 3)
        .conv("conv5_3", 512, 512, 3)
        .max_pool("pool5", 2)
        .fc("fc6", 4096)
        .fc("fc7", 4096)
        .fc("fc8", 1000)
        .build()
        .expect("VGG16 architecture is consistent")
}

/// A scaled-down VGG-style network over 32×32 inputs, small enough for
/// exhaustive end-to-end simulation in tests while exercising the same
/// layer mix (3×3 CONV stacks, pooling, FC head).
pub fn vgg_tiny() -> Network {
    NetworkBuilder::new(Shape::new(3, 32, 32))
        .conv("conv1_1", 3, 16, 3)
        .conv("conv1_2", 16, 16, 3)
        .max_pool("pool1", 2)
        .conv("conv2_1", 16, 32, 3)
        .conv("conv2_2", 32, 32, 3)
        .max_pool("pool2", 2)
        .conv("conv3_1", 32, 64, 3)
        .max_pool("pool3", 2)
        .fc("fc1", 64)
        .fc("fc2", 10)
        .build()
        .expect("vgg_tiny architecture is consistent")
}

/// A minimal CNN for quick tests: one CONV, one pool, one FC.
pub fn tiny_cnn() -> Network {
    NetworkBuilder::new(Shape::new(3, 16, 16))
        .conv("conv1", 3, 8, 3)
        .max_pool("pool1", 2)
        .fc("fc1", 10)
        .build()
        .expect("tiny_cnn architecture is consistent")
}

/// A network with a ResNet-style stem (7×7 stride-2 convolution) over a
/// VGG-style body — exercises the kernel-decomposition and
/// strided-fallback paths inside a full pipeline.
pub fn stem_cnn() -> Network {
    let stem = Conv2d {
        in_channels: 3,
        out_channels: 16,
        kernel_h: 7,
        kernel_w: 7,
        stride: 2,
        padding: Padding::same(3),
        activation: crate::Activation::Relu,
        bias: true,
    };
    NetworkBuilder::new(Shape::new(3, 48, 48))
        .conv_cfg("stem", stem)
        .conv("conv2", 16, 24, 5)
        .max_pool("pool1", 2)
        .conv("conv3", 24, 32, 3)
        .max_pool("pool2", 2)
        .fc("head", 10)
        .build()
        .expect("stem_cnn architecture is consistent")
}

/// A single convolution layer as a standalone network — the building block
/// of the Figure 6 layer sweep (60 layers on VU9P, 40 on PYNQ-Z1, varying
/// feature size, channels, and kernel size).
///
/// # Panics
/// Panics if the configuration is inconsistent (e.g. kernel larger than
/// the padded feature map); sweep generators only produce valid combos.
pub fn single_conv(feature: usize, channels: usize, out_channels: usize, kernel: usize) -> Network {
    let conv = Conv2d {
        in_channels: channels,
        out_channels,
        kernel_h: kernel,
        kernel_w: kernel,
        stride: 1,
        padding: Padding::same(kernel / 2),
        activation: crate::Activation::Relu,
        bias: true,
    };
    NetworkBuilder::new(Shape::new(channels, feature, feature))
        .conv_cfg("conv", conv)
        .build()
        .expect("single_conv configuration is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerKind;

    #[test]
    fn vgg16_has_13_conv_and_3_fc() {
        let net = vgg16();
        let convs = net
            .layers()
            .iter()
            .filter(|l| matches!(l.kind(), LayerKind::Conv(_)))
            .count();
        let fcs = net
            .layers()
            .iter()
            .filter(|l| matches!(l.kind(), LayerKind::Fc(_)))
            .count();
        assert_eq!(convs, 13);
        assert_eq!(fcs, 3);
        assert_eq!(net.output_shape(), Shape::new(1000, 1, 1));
    }

    #[test]
    fn vgg16_op_count_matches_literature() {
        // VGG16 is commonly quoted at ~30.9 GOP (2 ops/MAC) for 224x224.
        let gop = vgg16().total_ops() as f64 / 1e9;
        assert!((30.0..31.5).contains(&gop), "got {gop} GOP");
    }

    #[test]
    fn vgg16_param_count_matches_literature() {
        // ~138M parameters.
        let m = vgg16().total_params() as f64 / 1e6;
        assert!((130.0..145.0).contains(&m), "got {m}M params");
    }

    #[test]
    fn vgg16_final_conv_shape_is_512x7x7() {
        let net = vgg16();
        // pool5 is layer index 17 (0-based) in the layer list.
        let pool5_idx = net
            .layers()
            .iter()
            .position(|l| l.name() == "pool5")
            .unwrap();
        assert_eq!(net.layer_output_shape(pool5_idx), Shape::new(512, 7, 7));
    }

    #[test]
    fn small_networks_build() {
        assert_eq!(vgg_tiny().output_shape(), Shape::new(10, 1, 1));
        assert_eq!(tiny_cnn().output_shape(), Shape::new(10, 1, 1));
    }

    #[test]
    fn stem_cnn_halves_then_pools() {
        let net = stem_cnn();
        assert_eq!(net.layer_output_shape(0), Shape::new(16, 24, 24));
        assert_eq!(net.output_shape(), Shape::new(10, 1, 1));
        // The stem is strided (Winograd-ineligible); conv2 decomposes.
        let LayerKind::Conv(stem) = net.layers()[0].kind() else {
            panic!()
        };
        assert_eq!((stem.kernel_h, stem.stride), (7, 2));
    }

    #[test]
    fn single_conv_parameterizes_sweeps() {
        let net = single_conv(56, 128, 256, 5);
        assert_eq!(net.input_shape(), Shape::new(128, 56, 56));
        assert_eq!(net.output_shape(), Shape::new(256, 56, 56));
    }
}
