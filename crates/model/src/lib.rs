//! DNN model intermediate representation for the HybridDNN framework.
//!
//! This crate provides everything the rest of the workspace needs to talk
//! about neural networks *as workloads*:
//!
//! * [`Tensor`] — a dense NCHW tensor (activations are `N=1` in this
//!   inference-oriented reproduction; weights use the `K,C,R,S` axes).
//! * [`Layer`] / [`Network`] — a sequential layer graph with shape
//!   inference and operation counting (the paper reports GOPS, so exact
//!   multiply-accumulate counts matter).
//! * [`mod@reference`] — golden CPU implementations of every operator
//!   (spatial convolution, fully-connected, max-pooling, ReLU) used to
//!   validate the accelerator simulator bit-for-bit on the quantized path.
//! * [`quant`] — the fixed-point model of the paper's 12-bit datapath
//!   (8-bit weights, 12-bit activations; Table 4 footnote).
//! * [`zoo`] — model builders, most importantly VGG16 (the paper's case
//!   study) plus small synthetic networks used by the test-suite.
//! * [`synth`] — deterministic synthetic weight/activation generation
//!   (substitute for pretrained ImageNet weights; see DESIGN.md §2).
//!
//! # Example
//!
//! ```
//! use hybriddnn_model::{zoo, synth, reference};
//!
//! # fn main() -> Result<(), hybriddnn_model::ModelError> {
//! let net = zoo::vgg16();
//! let compute = net.layers().iter().filter(|l| l.is_compute()).count();
//! assert_eq!(compute, 16); // 13 CONV + 3 FC
//! let giga_ops = net.total_ops() as f64 / 1e9;
//! assert!(giga_ops > 30.0); // VGG16 is ~30.9 GOP per image
//!
//! // Run a tiny network on the golden CPU reference.
//! let mut small = zoo::tiny_cnn();
//! synth::bind_random(&mut small, 1)?;
//! let input = synth::tensor(small.input_shape(), 7);
//! let output = reference::run_network(&small, &input)?;
//! assert_eq!(output.shape().c, 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;
mod layer;
mod tensor;

pub mod quant;
pub mod reference;
pub mod synth;
pub mod zoo;

pub use error::ModelError;
pub use graph::{LayerBinding, Network, NetworkBuilder};
pub use layer::{Activation, Conv2d, FullyConnected, Layer, LayerKind, MaxPool2d, Padding};
pub use tensor::{Shape, Tensor, WeightShape};
