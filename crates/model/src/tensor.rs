use crate::ModelError;
use std::fmt;

/// Shape of an activation tensor in `C × H × W` layout (single-image
/// inference, so there is no batch axis).
///
/// The field names follow the paper's notation: a convolutional layer has a
/// 3-dim input feature `D` of size `H × W` with `C` channels (§4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Shape {
    /// Number of channels (`C`).
    pub c: usize,
    /// Feature-map height (`H`).
    pub h: usize,
    /// Feature-map width (`W`).
    pub w: usize,
}

impl Shape {
    /// Creates a new shape.
    ///
    /// # Example
    /// ```
    /// use hybriddnn_model::Shape;
    /// let s = Shape::new(3, 224, 224);
    /// assert_eq!(s.len(), 3 * 224 * 224);
    /// ```
    pub const fn new(c: usize, h: usize, w: usize) -> Self {
        Shape { c, h, w }
    }

    /// Total number of elements.
    pub const fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Whether the shape contains no elements.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `(c, y, x)` in CHW order.
    ///
    /// # Panics
    /// Panics in debug builds if any coordinate is out of bounds.
    #[inline]
    pub fn index(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.c && y < self.h && x < self.w);
        (c * self.h + y) * self.w + x
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.c, self.h, self.w)
    }
}

/// Shape of a convolution weight tensor in `K × C × R × S` layout.
///
/// `K` output channels, `C` input channels, `R × S` kernel window — the
/// paper's 4-dim kernel `G` (§4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WeightShape {
    /// Output channels (`K`).
    pub k: usize,
    /// Input channels (`C`).
    pub c: usize,
    /// Kernel height (`R`).
    pub r: usize,
    /// Kernel width (`S`).
    pub s: usize,
}

impl WeightShape {
    /// Creates a new weight shape.
    pub const fn new(k: usize, c: usize, r: usize, s: usize) -> Self {
        WeightShape { k, c, r, s }
    }

    /// Total number of weight elements.
    pub const fn len(&self) -> usize {
        self.k * self.c * self.r * self.s
    }

    /// Whether the shape contains no elements.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `(k, c, r, s)` in KCRS order.
    #[inline]
    pub fn index(&self, k: usize, c: usize, r: usize, s: usize) -> usize {
        debug_assert!(k < self.k && c < self.c && r < self.r && s < self.s);
        ((k * self.c + c) * self.r + r) * self.s + s
    }
}

impl fmt::Display for WeightShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.k, self.c, self.r, self.s)
    }
}

/// A dense activation tensor in CHW layout.
///
/// Element values are `f32`. The fixed-point datapath of the paper is
/// modeled by constraining values to a quantization grid (see
/// [`crate::quant`]) while accumulating in `f64`, which keeps integer-grid
/// arithmetic exact (products of 8-bit × 12-bit values summed over any VGG16
/// reduction fit well inside `f64`'s 53-bit mantissa).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw CHW data.
    ///
    /// # Errors
    /// Returns [`ModelError::ShapeDataMismatch`] if `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self, ModelError> {
        if data.len() != shape.len() {
            return Err(ModelError::ShapeDataMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(shape: Shape) -> Self {
        Tensor {
            shape,
            data: vec![0.0; shape.len()],
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Borrow the underlying CHW data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying CHW data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning the underlying data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(c, y, x)`.
    ///
    /// # Panics
    /// Panics if any coordinate is out of bounds.
    #[inline]
    pub fn at(&self, c: usize, y: usize, x: usize) -> f32 {
        self.data[self.shape.index(c, y, x)]
    }

    /// Sets the element at `(c, y, x)`.
    ///
    /// # Panics
    /// Panics if any coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        let i = self.shape.index(c, y, x);
        self.data[i] = v;
    }

    /// Element at `(c, y, x)` treating out-of-bounds spatial coordinates as
    /// zero padding (channel must be in range).
    ///
    /// `y`/`x` are signed so callers can probe the padded halo directly.
    #[inline]
    pub fn at_padded(&self, c: usize, y: isize, x: isize) -> f32 {
        if y < 0 || x < 0 || y as usize >= self.shape.h || x as usize >= self.shape.w {
            0.0
        } else {
            self.at(c, y as usize, x as usize)
        }
    }

    /// Maximum absolute difference against another tensor.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "tensor shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_indexing_is_chw() {
        let s = Shape::new(2, 3, 4);
        assert_eq!(s.index(0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 3), 3);
        assert_eq!(s.index(0, 1, 0), 4);
        assert_eq!(s.index(1, 0, 0), 12);
        assert_eq!(s.index(1, 2, 3), 23);
        assert_eq!(s.len(), 24);
    }

    #[test]
    fn weight_shape_indexing_is_kcrs() {
        let s = WeightShape::new(2, 3, 3, 3);
        assert_eq!(s.index(0, 0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 0, 2), 2);
        assert_eq!(s.index(0, 0, 1, 0), 3);
        assert_eq!(s.index(0, 1, 0, 0), 9);
        assert_eq!(s.index(1, 0, 0, 0), 27);
        assert_eq!(s.len(), 54);
    }

    #[test]
    fn from_vec_validates_length() {
        let s = Shape::new(1, 2, 2);
        assert!(Tensor::from_vec(s, vec![0.0; 4]).is_ok());
        let err = Tensor::from_vec(s, vec![0.0; 5]).unwrap_err();
        assert_eq!(
            err,
            ModelError::ShapeDataMismatch {
                expected: 4,
                actual: 5
            }
        );
    }

    #[test]
    fn padded_access_returns_zero_outside() {
        let mut t = Tensor::zeros(Shape::new(1, 2, 2));
        t.set(0, 0, 0, 5.0);
        assert_eq!(t.at_padded(0, 0, 0), 5.0);
        assert_eq!(t.at_padded(0, -1, 0), 0.0);
        assert_eq!(t.at_padded(0, 0, 2), 0.0);
        assert_eq!(t.at_padded(0, 2, -3), 0.0);
    }

    #[test]
    fn max_abs_diff_measures_worst_element() {
        let a = Tensor::from_vec(Shape::new(1, 1, 3), vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(Shape::new(1, 1, 3), vec![1.0, 2.5, 2.0]).unwrap();
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape::new(3, 224, 224).to_string(), "3x224x224");
        assert_eq!(WeightShape::new(64, 3, 3, 3).to_string(), "64x3x3x3");
    }
}
