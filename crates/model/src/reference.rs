//! Golden CPU reference implementations of every operator.
//!
//! The loop nests are kept simple — the point is obviousness, not
//! cleverness. The accelerator simulator in `hybriddnn-sim` is validated
//! against these functions: exactly (quantized grid + `f64` accumulation,
//! see [`crate::quant`]) or within tight tolerance (`f32` data).
//!
//! Two mechanical optimizations keep large reference runs tolerable
//! without changing a single result bit:
//!
//! - **Output-channel parallelism.** Every output channel's arithmetic is
//!   self-contained, and the output tensor is channel-major, so channels
//!   fan out across a [`hybriddnn_par::WorkPool`] as contiguous planes.
//!   Each output value is still one `f64` accumulator summed in the same
//!   `(c, r, s)` order regardless of thread count.
//! - **Interior fast path.** Pixels whose kernel window is fully in
//!   bounds skip the per-tap zero-padding branch and run the identical
//!   chain over direct row slices; halo pixels keep the obvious
//!   `at_padded` loop.

use crate::{
    Activation, Conv2d, FullyConnected, LayerKind, MaxPool2d, ModelError, Network, Shape, Tensor,
};
use hybriddnn_par::WorkPool;

/// Minimum MACs per extra worker before a reference operator forks —
/// the same scheduling-only gate the simulator uses (results are
/// bit-identical either way).
const PAR_MIN_MACS: usize = 32 * 1024;

/// Spatial (direct) 2-D convolution with zero padding, stride, optional
/// bias and fused activation.
///
/// `weights` is flat `KCRS`; `bias` is either empty or length `K`.
///
/// # Errors
/// Returns [`ModelError::WeightMismatch`] if parameter lengths are wrong,
/// or [`ModelError::ShapeMismatch`] if the input channel count differs.
pub fn conv2d(
    input: &Tensor,
    conv: &Conv2d,
    weights: &[f32],
    bias: &[f32],
) -> Result<Tensor, ModelError> {
    let ws = conv.weight_shape();
    if weights.len() != ws.len() {
        return Err(ModelError::WeightMismatch {
            layer: "<conv2d>".to_string(),
            detail: format!("expected {} weights, got {}", ws.len(), weights.len()),
        });
    }
    if !bias.is_empty() && bias.len() != conv.out_channels {
        return Err(ModelError::WeightMismatch {
            layer: "<conv2d>".to_string(),
            detail: format!(
                "expected {} bias values, got {}",
                conv.out_channels,
                bias.len()
            ),
        });
    }
    let ishape = input.shape();
    if ishape.c != conv.in_channels {
        return Err(ModelError::ShapeMismatch {
            layer: "<conv2d>".to_string(),
            detail: format!("expected {} channels, got {}", conv.in_channels, ishape.c),
        });
    }
    let oh = (ishape.h + 2 * conv.padding.h - conv.kernel_h) / conv.stride + 1;
    let ow = (ishape.w + 2 * conv.padding.w - conv.kernel_w) / conv.stride + 1;
    let mut out = Tensor::zeros(Shape::new(conv.out_channels, oh, ow));
    let (ih, iw) = (ishape.h, ishape.w);
    let (kh, kw, stride) = (conv.kernel_h, conv.kernel_w, conv.stride);
    let (ph, pw) = (conv.padding.h, conv.padding.w);
    let cin = conv.in_channels;
    let act = conv.activation;
    let x = input.as_slice();
    let plane = oh * ow;
    let macs = conv.out_channels * plane * cin * kh * kw;
    let pool = WorkPool::default().capped(macs / PAR_MIN_MACS);
    let mut slots = vec![(); pool.threads()];
    pool.for_each_chunk_mut(out.as_mut_slice(), plane, &mut slots, |_, ks, chunk, ()| {
        for (k_local, k) in ks.enumerate() {
            let b = bias.get(k).copied().unwrap_or(0.0) as f64;
            let out_k = &mut chunk[k_local * plane..(k_local + 1) * plane];
            for oy in 0..oh {
                let in_y = oy * stride >= ph && oy * stride + kh <= ih + ph;
                for ox in 0..ow {
                    let mut acc = b;
                    if in_y && ox * stride >= pw && ox * stride + kw <= iw + pw {
                        // Window fully in bounds: the same (c, r, s) chain
                        // over direct row slices, no halo branch per tap.
                        let iy0 = oy * stride - ph;
                        let ix0 = ox * stride - pw;
                        for c in 0..cin {
                            let plane_c = &x[c * ih * iw..(c + 1) * ih * iw];
                            for r in 0..kh {
                                let row = &plane_c[(iy0 + r) * iw + ix0..][..kw];
                                let wrow = &weights[((k * cin + c) * kh + r) * kw..][..kw];
                                for (xv, wv) in row.iter().zip(wrow) {
                                    acc += *xv as f64 * *wv as f64;
                                }
                            }
                        }
                    } else {
                        for c in 0..cin {
                            for r in 0..kh {
                                for s in 0..kw {
                                    let iy = (oy * stride + r) as isize - ph as isize;
                                    let ix = (ox * stride + s) as isize - pw as isize;
                                    let xv = input.at_padded(c, iy, ix) as f64;
                                    let wv = weights[ws.index(k, c, r, s)] as f64;
                                    acc += xv * wv;
                                }
                            }
                        }
                    }
                    out_k[oy * ow + ox] = apply_activation(acc, act);
                }
            }
        }
    });
    Ok(out)
}

/// Fully-connected layer over a flattened input.
///
/// `weights` is `out_features × in_features` row-major (equivalently `KC11`
/// in the KCRS view).
///
/// # Errors
/// Returns [`ModelError::WeightMismatch`] or [`ModelError::ShapeMismatch`]
/// analogous to [`conv2d`].
pub fn fully_connected(
    input: &Tensor,
    fc: &FullyConnected,
    weights: &[f32],
    bias: &[f32],
) -> Result<Tensor, ModelError> {
    if weights.len() != fc.in_features * fc.out_features {
        return Err(ModelError::WeightMismatch {
            layer: "<fc>".to_string(),
            detail: format!(
                "expected {} weights, got {}",
                fc.in_features * fc.out_features,
                weights.len()
            ),
        });
    }
    if !bias.is_empty() && bias.len() != fc.out_features {
        return Err(ModelError::WeightMismatch {
            layer: "<fc>".to_string(),
            detail: format!(
                "expected {} bias values, got {}",
                fc.out_features,
                bias.len()
            ),
        });
    }
    if input.shape().len() != fc.in_features {
        return Err(ModelError::ShapeMismatch {
            layer: "<fc>".to_string(),
            detail: format!(
                "expected {} features, got {}",
                fc.in_features,
                input.shape().len()
            ),
        });
    }
    let x = input.as_slice();
    let mut out = Tensor::zeros(Shape::new(fc.out_features, 1, 1));
    let in_f = fc.in_features;
    let act = fc.activation;
    let pool = WorkPool::default().capped(fc.out_features * in_f / PAR_MIN_MACS);
    let mut slots = vec![(); pool.threads()];
    pool.for_each_chunk_mut(out.as_mut_slice(), 1, &mut slots, |_, ks, chunk, ()| {
        for (k_local, k) in ks.enumerate() {
            let mut acc = bias.get(k).copied().unwrap_or(0.0) as f64;
            let row = &weights[k * in_f..(k + 1) * in_f];
            for (xi, wi) in x.iter().zip(row) {
                acc += (*xi as f64) * (*wi as f64);
            }
            chunk[k_local] = apply_activation(acc, act);
        }
    });
    Ok(out)
}

/// Max pooling with window = stride = `pool.size`.
///
/// # Errors
/// Returns [`ModelError::ShapeMismatch`] if the feature map is not evenly
/// divisible by the window.
pub fn max_pool(input: &Tensor, pool: &MaxPool2d) -> Result<Tensor, ModelError> {
    let s = input.shape();
    if !s.h.is_multiple_of(pool.size) || !s.w.is_multiple_of(pool.size) {
        return Err(ModelError::ShapeMismatch {
            layer: "<maxpool>".to_string(),
            detail: format!("{}x{} not divisible by {}", s.h, s.w, pool.size),
        });
    }
    let mut out = Tensor::zeros(Shape::new(s.c, s.h / pool.size, s.w / pool.size));
    for c in 0..s.c {
        for oy in 0..s.h / pool.size {
            for ox in 0..s.w / pool.size {
                let mut m = f32::NEG_INFINITY;
                for dy in 0..pool.size {
                    for dx in 0..pool.size {
                        m = m.max(input.at(c, oy * pool.size + dy, ox * pool.size + dx));
                    }
                }
                out.set(c, oy, ox, m);
            }
        }
    }
    Ok(out)
}

/// Element-wise ReLU.
pub fn relu(input: &Tensor) -> Tensor {
    let mut out = input.clone();
    for v in out.as_mut_slice() {
        *v = v.max(0.0);
    }
    out
}

fn apply_activation(acc: f64, act: Activation) -> f32 {
    match act {
        Activation::None => acc as f32,
        Activation::Relu => acc.max(0.0) as f32,
    }
}

/// Runs one layer of a network (using its binding) on `input`.
///
/// # Errors
/// Returns [`ModelError::WeightMismatch`] if a compute layer has no bound
/// parameters, or any shape/weight error from the underlying operator.
///
/// # Panics
/// Panics if `i` is out of range.
pub fn run_layer(net: &Network, i: usize, input: &Tensor) -> Result<Tensor, ModelError> {
    let layer = &net.layers()[i];
    match layer.kind() {
        LayerKind::Conv(c) => {
            let b = net.binding(i).ok_or_else(|| ModelError::WeightMismatch {
                layer: layer.name().to_string(),
                detail: "no parameters bound".to_string(),
            })?;
            conv2d(input, c, &b.weights, &b.bias)
        }
        LayerKind::Fc(fc) => {
            let b = net.binding(i).ok_or_else(|| ModelError::WeightMismatch {
                layer: layer.name().to_string(),
                detail: "no parameters bound".to_string(),
            })?;
            fully_connected(input, fc, &b.weights, &b.bias)
        }
        LayerKind::MaxPool(p) => max_pool(input, p),
    }
}

/// Runs the whole network on `input`, returning the final activation.
///
/// # Errors
/// Propagates any error from [`run_layer`] plus an input-shape check.
pub fn run_network(net: &Network, input: &Tensor) -> Result<Tensor, ModelError> {
    net.check_input(input)?;
    let mut act = input.clone();
    for i in 0..net.layers().len() {
        act = run_layer(net, i, &act)?;
    }
    Ok(act)
}

/// Runs the network, returning every intermediate activation (index `i` is
/// the *output* of layer `i`). Useful for layer-by-layer simulator checks.
///
/// # Errors
/// Propagates any error from [`run_layer`] plus an input-shape check.
pub fn run_network_trace(net: &Network, input: &Tensor) -> Result<Vec<Tensor>, ModelError> {
    net.check_input(input)?;
    let mut acts = Vec::with_capacity(net.layers().len());
    let mut act = input.clone();
    for i in 0..net.layers().len() {
        act = run_layer(net, i, &act)?;
        acts.push(act.clone());
    }
    Ok(acts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkBuilder, Padding};

    fn id_conv() -> Conv2d {
        Conv2d {
            in_channels: 1,
            out_channels: 1,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            padding: Padding::same(0),
            activation: Activation::None,
            bias: false,
        }
    }

    #[test]
    fn identity_conv_passes_through() {
        let input = Tensor::from_vec(Shape::new(1, 2, 2), vec![1.0, -2.0, 3.0, -4.0]).unwrap();
        let out = conv2d(&input, &id_conv(), &[1.0], &[]).unwrap();
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn relu_clamps_negatives() {
        let input = Tensor::from_vec(Shape::new(1, 2, 2), vec![1.0, -2.0, 3.0, -4.0]).unwrap();
        let mut conv = id_conv();
        conv.activation = Activation::Relu;
        let out = conv2d(&input, &conv, &[1.0], &[]).unwrap();
        assert_eq!(out.as_slice(), &[1.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn conv_3x3_hand_computed() {
        // 3x3 input, 3x3 kernel of all ones, no padding: single output =
        // sum of inputs.
        let input =
            Tensor::from_vec(Shape::new(1, 3, 3), (1..=9).map(|v| v as f32).collect()).unwrap();
        let conv = Conv2d {
            in_channels: 1,
            out_channels: 1,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: Padding::same(0),
            activation: Activation::None,
            bias: false,
        };
        let out = conv2d(&input, &conv, &[1.0; 9], &[]).unwrap();
        assert_eq!(out.shape(), Shape::new(1, 1, 1));
        assert_eq!(out.at(0, 0, 0), 45.0);
    }

    #[test]
    fn conv_padding_sees_zero_halo() {
        // Same-padded all-ones kernel at the corner sums only the 2x2
        // in-bounds quadrant.
        let input = Tensor::from_vec(Shape::new(1, 2, 2), vec![1.0; 4]).unwrap();
        let conv = Conv2d {
            padding: Padding::same(1),
            bias: false,
            activation: Activation::None,
            ..Conv2d::same(1, 1, 3)
        };
        let out = conv2d(&input, &conv, &[1.0; 9], &[]).unwrap();
        assert_eq!(out.shape(), Shape::new(1, 2, 2));
        assert_eq!(out.at(0, 0, 0), 4.0);
    }

    #[test]
    fn conv_stride_subsamples() {
        let input =
            Tensor::from_vec(Shape::new(1, 4, 4), (0..16).map(|v| v as f32).collect()).unwrap();
        let conv = Conv2d {
            in_channels: 1,
            out_channels: 1,
            kernel_h: 1,
            kernel_w: 1,
            stride: 2,
            padding: Padding::same(0),
            activation: Activation::None,
            bias: false,
        };
        let out = conv2d(&input, &conv, &[1.0], &[]).unwrap();
        assert_eq!(out.as_slice(), &[0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn conv_bias_offsets_every_output() {
        let input = Tensor::zeros(Shape::new(1, 2, 2));
        let mut conv = id_conv();
        conv.bias = true;
        let out = conv2d(&input, &conv, &[1.0], &[0.5]).unwrap();
        assert_eq!(out.as_slice(), &[0.5; 4]);
    }

    #[test]
    fn conv_multi_channel_sums_channels() {
        // 2 input channels, each all-ones 1x1 kernel: output = sum over c.
        let input = Tensor::from_vec(Shape::new(2, 1, 1), vec![3.0, 4.0]).unwrap();
        let conv = Conv2d {
            in_channels: 2,
            out_channels: 1,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            padding: Padding::same(0),
            activation: Activation::None,
            bias: false,
        };
        let out = conv2d(&input, &conv, &[1.0, 1.0], &[]).unwrap();
        assert_eq!(out.at(0, 0, 0), 7.0);
    }

    #[test]
    fn conv_rejects_bad_parameters() {
        let input = Tensor::zeros(Shape::new(1, 2, 2));
        assert!(conv2d(&input, &id_conv(), &[1.0, 2.0], &[]).is_err());
        let mut conv = id_conv();
        conv.bias = true;
        assert!(conv2d(&input, &conv, &[1.0], &[1.0, 2.0]).is_err());
        let mut conv = id_conv();
        conv.in_channels = 2;
        assert!(conv2d(&input, &conv, &[1.0, 1.0], &[]).is_err());
    }

    #[test]
    fn fc_matches_matrix_vector_product() {
        let input = Tensor::from_vec(Shape::new(3, 1, 1), vec![1.0, 2.0, 3.0]).unwrap();
        let fc = FullyConnected {
            in_features: 3,
            out_features: 2,
            activation: Activation::None,
            bias: true,
        };
        let w = vec![1.0, 0.0, 0.0, /* row0 */ 1.0, 1.0, 1.0 /* row1 */];
        let out = fully_connected(&input, &fc, &w, &[10.0, -1.0]).unwrap();
        assert_eq!(out.as_slice(), &[11.0, 5.0]);
    }

    #[test]
    fn fc_relu_applies() {
        let input = Tensor::from_vec(Shape::new(1, 1, 1), vec![1.0]).unwrap();
        let fc = FullyConnected::new(1, 1);
        let out = fully_connected(&input, &fc, &[-2.0], &[0.0]).unwrap();
        assert_eq!(out.as_slice(), &[0.0]);
    }

    #[test]
    fn max_pool_takes_window_max() {
        let input = Tensor::from_vec(
            Shape::new(1, 2, 4),
            vec![1.0, 5.0, 2.0, 0.0, 3.0, -1.0, 4.0, 9.0],
        )
        .unwrap();
        let out = max_pool(&input, &MaxPool2d::new(2)).unwrap();
        assert_eq!(out.as_slice(), &[5.0, 9.0]);
    }

    #[test]
    fn max_pool_handles_negative_regions() {
        let input = Tensor::from_vec(Shape::new(1, 2, 2), vec![-5.0, -3.0, -9.0, -4.0]).unwrap();
        let out = max_pool(&input, &MaxPool2d::new(2)).unwrap();
        assert_eq!(out.as_slice(), &[-3.0]);
    }

    #[test]
    fn run_network_chains_layers() {
        let mut net = NetworkBuilder::new(Shape::new(1, 4, 4))
            .conv_cfg(
                "c",
                Conv2d {
                    activation: Activation::None,
                    bias: false,
                    ..id_conv()
                },
            )
            .max_pool("p", 2)
            .build()
            .unwrap();
        net.bind(0, vec![2.0], vec![]).unwrap();
        let input =
            Tensor::from_vec(Shape::new(1, 4, 4), (0..16).map(|v| v as f32).collect()).unwrap();
        let out = run_network(&net, &input).unwrap();
        // conv doubles, pool takes max of each 2x2 block.
        assert_eq!(out.as_slice(), &[10.0, 14.0, 26.0, 30.0]);
    }

    #[test]
    fn run_network_requires_bindings() {
        let net = NetworkBuilder::new(Shape::new(1, 4, 4))
            .conv("c", 1, 1, 3)
            .build()
            .unwrap();
        let input = Tensor::zeros(Shape::new(1, 4, 4));
        assert!(run_network(&net, &input).is_err());
    }

    #[test]
    fn trace_returns_every_activation() {
        let mut net = NetworkBuilder::new(Shape::new(1, 4, 4))
            .conv_cfg(
                "c",
                Conv2d {
                    bias: false,
                    activation: Activation::None,
                    ..id_conv()
                },
            )
            .max_pool("p", 2)
            .build()
            .unwrap();
        net.bind(0, vec![1.0], vec![]).unwrap();
        let input = Tensor::zeros(Shape::new(1, 4, 4));
        let trace = run_network_trace(&net, &input).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].shape(), Shape::new(1, 4, 4));
        assert_eq!(trace[1].shape(), Shape::new(1, 2, 2));
    }
}
