//! Fixed-point quantization model of the paper's 12-bit datapath.
//!
//! Table 4's footnote: *"DNN parameters are quantized to 8-bit; input
//! feature maps are set to 12-bit in PE due to the Winograd matrix
//! transformation"*. This module models that scheme with symmetric
//! power-of-two scaling: a [`QFormat`] is `(bits, frac)` where values are
//! integers `q ∈ [-2^(bits-1), 2^(bits-1)-1]` representing `q / 2^frac`.
//!
//! All quantized values are carried as `f32` constrained to the grid, and
//! all accumulation downstream happens in `f64`. Because an 8-bit × 12-bit
//! product has ≤ 20 significant bits and VGG16's largest reduction
//! (`C·R·S = 512·3·3`) adds ≤ 13 more, every intermediate fits exactly in
//! `f64`'s 53-bit mantissa — so the quantized simulator path is bit-exact
//! regardless of summation order, which the test-suite relies on.

use crate::Tensor;

/// A symmetric fixed-point format: `bits` total (two's complement), with
/// `frac` fractional bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    /// Total bit width, including sign. Must be in `1..=24`.
    pub bits: u32,
    /// Number of fractional bits (scale = `2^-frac`). May exceed `bits`.
    pub frac: i32,
}

impl QFormat {
    /// The paper's weight format: 8-bit parameters.
    pub const WEIGHT8: QFormat = QFormat { bits: 8, frac: 6 };
    /// The paper's PE feature-map format: 12-bit activations.
    pub const FEATURE12: QFormat = QFormat { bits: 12, frac: 8 };
    /// A 16-bit format matching the baselines in Table 4.
    pub const FEATURE16: QFormat = QFormat { bits: 16, frac: 10 };

    /// Creates a format.
    ///
    /// # Panics
    /// Panics if `bits` is 0 or greater than 24 (the exactness argument in
    /// the module docs requires narrow operands).
    pub fn new(bits: u32, frac: i32) -> Self {
        assert!((1..=24).contains(&bits), "QFormat bits must be in 1..=24");
        QFormat { bits, frac }
    }

    /// Smallest representable step, `2^-frac`.
    pub fn step(&self) -> f64 {
        2f64.powi(-self.frac)
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f64 {
        ((1i64 << (self.bits - 1)) - 1) as f64 * self.step()
    }

    /// Smallest (most negative) representable value.
    pub fn min_value(&self) -> f64 {
        -((1i64 << (self.bits - 1)) as f64) * self.step()
    }

    /// Quantizes `v`: round-to-nearest-even onto the grid, then saturate.
    pub fn quantize(&self, v: f64) -> f32 {
        let scaled = v / self.step();
        let q = round_ties_even(scaled);
        let lo = -(1i64 << (self.bits - 1)) as f64;
        let hi = ((1i64 << (self.bits - 1)) - 1) as f64;
        (q.clamp(lo, hi) * self.step()) as f32
    }

    /// Whether `v` already lies exactly on this format's grid.
    pub fn contains(&self, v: f64) -> bool {
        let scaled = v / self.step();
        scaled == scaled.trunc()
            && scaled >= -(1i64 << (self.bits - 1)) as f64
            && scaled <= ((1i64 << (self.bits - 1)) - 1) as f64
    }

    /// Quantizes every element of a tensor in place.
    pub fn quantize_tensor(&self, t: &mut Tensor) {
        for v in t.as_mut_slice() {
            *v = self.quantize(*v as f64);
        }
    }

    /// Quantizes every element of a slice in place.
    pub fn quantize_slice(&self, s: &mut [f32]) {
        for v in s {
            *v = self.quantize(*v as f64);
        }
    }
}

/// Round-to-nearest, ties to even — matching hardware convergent rounding.
fn round_ties_even(x: f64) -> f64 {
    let r = x.round();
    if (x - x.trunc()).abs() == 0.5 {
        // `f64::round` rounds half away from zero; fix up ties.
        let down = x.floor();
        let up = x.ceil();
        if (down / 2.0).fract() == 0.0 {
            down
        } else {
            up
        }
    } else {
        r
    }
}

/// Requantization parameter carried in the COMP instruction's `QUAN_PARAM`
/// field: after accumulation, results are scaled by `2^-shift` and clamped
/// to the activation format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Requant {
    /// Right-shift applied to the raw accumulator (in fractional-bit space).
    pub shift: i32,
}

impl Requant {
    /// Applies requantization of an `f64` accumulator into `fmt`.
    pub fn apply(&self, acc: f64, fmt: QFormat) -> f32 {
        fmt.quantize(acc * 2f64.powi(-self.shift))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn step_and_range() {
        let f = QFormat::new(8, 6);
        assert_eq!(f.step(), 1.0 / 64.0);
        assert_eq!(f.max_value(), 127.0 / 64.0);
        assert_eq!(f.min_value(), -2.0);
    }

    #[test]
    fn quantize_rounds_and_saturates() {
        let f = QFormat::new(8, 0); // plain i8
        assert_eq!(f.quantize(3.2), 3.0);
        assert_eq!(f.quantize(-3.7), -4.0);
        assert_eq!(f.quantize(1000.0), 127.0);
        assert_eq!(f.quantize(-1000.0), -128.0);
    }

    #[test]
    fn ties_round_to_even() {
        let f = QFormat::new(8, 0);
        assert_eq!(f.quantize(2.5), 2.0);
        assert_eq!(f.quantize(3.5), 4.0);
        assert_eq!(f.quantize(-2.5), -2.0);
        assert_eq!(f.quantize(-3.5), -4.0);
    }

    #[test]
    fn quantize_is_idempotent() {
        let f = QFormat::FEATURE12;
        for v in [-1.7, 0.013, 3.99, -2.0e3, 7.5] {
            let q1 = f.quantize(v);
            let q2 = f.quantize(q1 as f64);
            assert_eq!(q1, q2);
        }
    }

    #[test]
    fn contains_accepts_grid_points_only() {
        let f = QFormat::new(8, 2);
        assert!(f.contains(0.25));
        assert!(f.contains(-32.0));
        assert!(!f.contains(0.3));
        assert!(!f.contains(100.0)); // out of range
    }

    #[test]
    fn quantize_tensor_constrains_all_elements() {
        let mut t = Tensor::from_vec(Shape::new(1, 1, 4), vec![0.33, -1.26, 9.0, -9.0]).unwrap();
        let f = QFormat::new(4, 1); // range [-4, 3.5], step 0.5
        f.quantize_tensor(&mut t);
        assert_eq!(t.as_slice(), &[0.5, -1.5, 3.5, -4.0]);
    }

    #[test]
    fn requant_shifts_then_quantizes() {
        let rq = Requant { shift: 2 };
        let f = QFormat::new(8, 0);
        assert_eq!(rq.apply(10.0, f), 2.0); // 10/4 = 2.5 → ties-even → 2
        assert_eq!(rq.apply(12.0, f), 3.0);
    }

    #[test]
    #[should_panic(expected = "QFormat bits")]
    fn new_rejects_wide_formats() {
        let _ = QFormat::new(32, 0);
    }
}
