//! Property-based tests on the model substrate: quantization laws,
//! tensor/shape invariants, network shape inference, and reference
//! operator identities.

use hybriddnn_model::{
    quant::QFormat, reference, synth, Activation, Conv2d, MaxPool2d, NetworkBuilder, Padding,
    Shape, Tensor,
};
use proptest::prelude::*;

fn fmt_strategy() -> impl Strategy<Value = QFormat> {
    (2u32..=16, -4i32..=12).prop_map(|(bits, frac)| QFormat::new(bits, frac))
}

proptest! {
    /// Quantization is idempotent and always lands in range.
    #[test]
    fn quantize_idempotent_and_bounded(fmt in fmt_strategy(), v in -1e4f64..1e4) {
        let q1 = fmt.quantize(v);
        let q2 = fmt.quantize(q1 as f64);
        prop_assert_eq!(q1, q2);
        prop_assert!((q1 as f64) <= fmt.max_value() + 1e-12);
        prop_assert!((q1 as f64) >= fmt.min_value() - 1e-12);
        prop_assert!(fmt.contains(q1 as f64));
    }

    /// Quantization is monotone: v1 <= v2 → q(v1) <= q(v2).
    #[test]
    fn quantize_monotone(fmt in fmt_strategy(), a in -100.0f64..100.0, b in -100.0f64..100.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(fmt.quantize(lo) <= fmt.quantize(hi));
    }

    /// Quantization error is bounded by half a step inside the range.
    #[test]
    fn quantize_error_bound(fmt in fmt_strategy(), v in -1.0f64..1.0) {
        let v = v * fmt.max_value().min(1e6);
        let q = fmt.quantize(v) as f64;
        if v <= fmt.max_value() && v >= fmt.min_value() {
            prop_assert!((q - v).abs() <= fmt.step() / 2.0 + 1e-12, "{v} -> {q}");
        }
    }

    /// Shape indexing is a bijection onto 0..len.
    #[test]
    fn shape_index_bijection(c in 1usize..5, h in 1usize..7, w in 1usize..7) {
        let s = Shape::new(c, h, w);
        let mut seen = vec![false; s.len()];
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let i = s.index(ci, y, x);
                    prop_assert!(!seen[i]);
                    seen[i] = true;
                }
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    /// ReLU output is non-negative and fixes non-negative inputs.
    #[test]
    fn relu_properties(seed in 0u64..1000) {
        let t = synth::tensor(Shape::new(2, 4, 4), seed);
        let r = reference::relu(&t);
        for (&a, &b) in t.as_slice().iter().zip(r.as_slice()) {
            prop_assert!(b >= 0.0);
            if a >= 0.0 { prop_assert_eq!(a, b); }
        }
        // Idempotent.
        prop_assert_eq!(reference::relu(&r), r);
    }

    /// Convolution is linear in the input (bias off, activation off).
    #[test]
    fn conv_is_linear_in_input(seed in 0u64..500, scale in -2.0f32..2.0) {
        let conv = Conv2d {
            in_channels: 2,
            out_channels: 3,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: Padding::same(1),
            activation: Activation::None,
            bias: false,
        };
        let mut rng = synth::SplitMix64::new(seed);
        let weights: Vec<f32> = (0..conv.weight_shape().len()).map(|_| rng.next_unit()).collect();
        let x = synth::tensor(Shape::new(2, 6, 6), seed + 1);
        let mut sx = x.clone();
        for v in sx.as_mut_slice() { *v *= scale; }
        let y = reference::conv2d(&x, &conv, &weights, &[]).expect("valid");
        let sy = reference::conv2d(&sx, &conv, &weights, &[]).expect("valid");
        for (&a, &b) in y.as_slice().iter().zip(sy.as_slice()) {
            prop_assert!((a * scale - b).abs() < 1e-3, "{a}*{scale} vs {b}");
        }
    }

    /// Max-pool of a constant tensor is that constant; pooling never
    /// produces a value absent from its window's input.
    #[test]
    fn max_pool_selects_existing_values(seed in 0u64..500, size in 1usize..4) {
        let h = size * 3;
        let t = synth::tensor(Shape::new(2, h, h), seed);
        let p = reference::max_pool(&t, &MaxPool2d::new(size)).expect("divides");
        let inputs: std::collections::BTreeSet<u32> =
            t.as_slice().iter().map(|v| v.to_bits()).collect();
        for &v in p.as_slice() {
            prop_assert!(inputs.contains(&v.to_bits()));
        }
    }

    /// Shape inference composes: the builder's running shape equals the
    /// validated network's layer shapes.
    #[test]
    fn network_shapes_consistent(
        c in 1usize..5,
        hw in prop_oneof![Just(8usize), Just(12), Just(16)],
        k1 in 1usize..8,
        k2 in 1usize..8,
        out in 1usize..10,
    ) {
        let net = NetworkBuilder::new(Shape::new(c, hw, hw))
            .conv("a", c, k1, 3)
            .conv("b", k1, k2, 3)
            .max_pool("p", 2)
            .fc("f", out)
            .build()
            .expect("consistent chain");
        prop_assert_eq!(net.layer_output_shape(0), Shape::new(k1, hw, hw));
        prop_assert_eq!(net.layer_output_shape(1), Shape::new(k2, hw, hw));
        prop_assert_eq!(net.layer_output_shape(2), Shape::new(k2, hw / 2, hw / 2));
        prop_assert_eq!(net.output_shape(), Shape::new(out, 1, 1));
        // ops are additive over layers
        let total: u64 = (0..net.layers().len())
            .map(|i| net.layers()[i].ops(net.layer_input_shape(i)))
            .sum();
        prop_assert_eq!(total, net.total_ops());
    }

    /// Tensor round-trip through from_vec/into_vec preserves data.
    #[test]
    fn tensor_vec_roundtrip(c in 1usize..4, h in 1usize..6, w in 1usize..6, seed in 0u64..100) {
        let s = Shape::new(c, h, w);
        let t = synth::tensor(s, seed);
        let data = t.clone().into_vec();
        let back = Tensor::from_vec(s, data).expect("same length");
        prop_assert_eq!(t, back);
    }
}
