//! The `hybriddnn` command-line tool: the end-to-end design flow of
//! Figure 1 from text files.
//!
//! ```text
//! hybriddnn <MODEL.hdnn> <DEVICE.fpga> [--quant] [--functional]
//!           [--disasm] [--hls] [--emit DIR] [--seed N] [--threads N]
//! ```
//!
//! * `MODEL.hdnn` — model description (see `hybriddnn::parser`).
//! * `DEVICE.fpga` — device spec, or one of the built-ins `vu9p` / `pynq-z1`.
//! * `--quant` — compile at the paper's 12-bit deployment precision.
//! * `--functional` — move real data (synthetic weights/input) and
//!   validate against the golden CPU reference.
//! * `--disasm` — dump the disassembled instruction stream per stage.
//! * `--hls` — print the HLS template configuration header (Step 3).
//! * `--emit DIR` — write the instruction & data artifacts to `DIR`.
//! * `--batch N` — additionally simulate an `N`-image batch across the
//!   design's `NI` instances and report device throughput.
//! * `--validate-plan` — run a reused session twice with schedule
//!   validation on: the second run re-simulates the cached timing
//!   schedule and fails if it diverges from the recording.
//! * `--seed N` — PRNG seed for the synthetic parameters (default 42).
//! * `--threads N` — host threads for the simulator/DSE work pools
//!   (default: all available cores; `1` = strictly sequential). Outputs
//!   are bit-identical at any thread count.
//!
//! A second subcommand drives the concurrent serving runtime:
//!
//! ```text
//! hybriddnn serve-bench <MODEL.hdnn|tiny-cnn|vgg-tiny> <DEVICE.fpga|vu9p|pynq-z1>
//!           [--workers N] [--requests N] [--batch-size N] [--max-wait-us N]
//!           [--queue-capacity N] [--policy fifo|sjf] [--functional]
//!           [--pace-mhz F] [--seed N] [--threads N]
//!           [--fault-rate F] [--fault-seed N] [--retries N] [--min-healthy N]
//! ```
//!
//! It builds the deployment, starts an [`hybriddnn::runtime::InferenceService`],
//! pushes synthetic traffic through it (retrying on backpressure), and
//! reports aggregate throughput plus the service metrics snapshot.
//!
//! `--fault-rate F` arms a deterministic uniform fault plan (DRAM/SAVE
//! corruption at rate `F`, hangs at `F/4`, wedges at `F/16`) on every
//! worker replica, seeded from `--fault-seed` (default: `--seed`), and
//! enables a 50 ms watchdog. `--retries` bounds per-request transient
//! retries; `--min-healthy` sets the degraded-mode floor. Individual
//! request failures are tallied instead of aborting the benchmark.
//!
//! A third subcommand exposes the runtime over TCP (see
//! `hybriddnn-server` and DESIGN.md §10):
//!
//! ```text
//! hybriddnn serve-net <MODEL.hdnn|tiny-cnn|vgg-tiny> <DEVICE.fpga|vu9p|pynq-z1>
//!           [--port N] [--name NAME] [--workers N] [--functional]
//!           [--quota N] [--max-conns N] [--io-threads N] [--fault-rate F]
//!           [--fault-seed N] [--retries N] [--seed N] [--threads N]
//! ```
//!
//! It preloads the model into a registry (more can be hot-loaded over
//! the wire with `LOAD_MODEL`), binds `127.0.0.1:<port>` (`--port 0`,
//! the default, picks an ephemeral port), prints
//! `listening on 127.0.0.1:PORT`, and serves until some client sends
//! `DRAIN` — then completes in-flight work, prints the final aggregate
//! stats, and exits with every thread joined. Talk to it with
//! `hybriddnn_server::Client` or the `net_throughput` load generator
//! (`--addr`).

use hybriddnn::flow::Framework;
use hybriddnn::model::{reference, synth, zoo};
use hybriddnn::report::AccuracyReport;
use hybriddnn::runtime::{RuntimeError, TrafficGen};
use hybriddnn::{parser, FpgaSpec, Profile, QuantSpec, SimMode};
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Args {
    model_path: String,
    device: String,
    quant: bool,
    functional: bool,
    disasm: bool,
    hls: bool,
    emit: Option<String>,
    batch: usize,
    validate_plan: bool,
    seed: u64,
    threads: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut quant = false;
    let mut functional = false;
    let mut disasm = false;
    let mut hls = false;
    let mut emit = None;
    let mut batch = 0usize;
    let mut validate_plan = false;
    let mut seed = 42u64;
    let mut threads = 0usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quant" => quant = true,
            "--functional" => functional = true,
            "--disasm" => disasm = true,
            "--hls" => hls = true,
            "--emit" => {
                emit = Some(it.next().ok_or("--emit requires a directory")?);
            }
            "--batch" => {
                let v = it.next().ok_or("--batch requires a count")?;
                batch = v.parse().map_err(|_| format!("bad batch size `{v}`"))?;
            }
            "--validate-plan" => validate_plan = true,
            "--seed" => {
                let v = it.next().ok_or("--seed requires a value")?;
                seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads requires a count")?;
                threads = v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
            }
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        return Err("expected exactly two arguments: MODEL.hdnn DEVICE.fpga".to_string());
    }
    Ok(Args {
        model_path: positional[0].clone(),
        device: positional[1].clone(),
        quant,
        functional,
        disasm,
        hls,
        emit,
        batch,
        validate_plan,
        seed,
        threads,
    })
}

struct ServeArgs {
    model: String,
    device: String,
    workers: usize,
    requests: usize,
    batch_size: usize,
    max_wait: Duration,
    queue_capacity: usize,
    sjf: bool,
    functional: bool,
    pace_mhz: Option<f64>,
    seed: u64,
    threads: usize,
    fault_rate: f64,
    fault_seed: Option<u64>,
    retries: u32,
    min_healthy: usize,
}

fn parse_serve_args<I: Iterator<Item = String>>(mut it: I) -> Result<ServeArgs, String> {
    let mut positional = Vec::new();
    let mut workers = 4usize;
    let mut requests = 1000usize;
    let mut batch_size = 32usize;
    let mut max_wait = Duration::from_micros(200);
    let mut queue_capacity = 1024usize;
    let mut sjf = false;
    let mut functional = false;
    let mut pace_mhz = None;
    let mut seed = 42u64;
    let mut threads = 0usize;
    let mut fault_rate = 0.0f64;
    let mut fault_seed = None;
    let mut retries = 0u32;
    let mut min_healthy = 0usize;
    fn value<I: Iterator<Item = String>, T: std::str::FromStr>(
        it: &mut I,
        flag: &str,
    ) -> Result<T, String> {
        let v = it
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        v.parse().map_err(|_| format!("bad value `{v}` for {flag}"))
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => workers = value(&mut it, "--workers")?,
            "--requests" => requests = value(&mut it, "--requests")?,
            "--batch-size" => batch_size = value(&mut it, "--batch-size")?,
            "--max-wait-us" => {
                max_wait = Duration::from_micros(value(&mut it, "--max-wait-us")?);
            }
            "--queue-capacity" => queue_capacity = value(&mut it, "--queue-capacity")?,
            "--policy" => {
                sjf = match it.next().as_deref() {
                    Some("fifo") => false,
                    Some("sjf") => true,
                    other => return Err(format!("--policy must be fifo|sjf, got {other:?}")),
                };
            }
            "--functional" => functional = true,
            "--pace-mhz" => pace_mhz = Some(value(&mut it, "--pace-mhz")?),
            "--seed" => seed = value(&mut it, "--seed")?,
            "--threads" => threads = value(&mut it, "--threads")?,
            "--fault-rate" => fault_rate = value(&mut it, "--fault-rate")?,
            "--fault-seed" => fault_seed = Some(value(&mut it, "--fault-seed")?),
            "--retries" => retries = value(&mut it, "--retries")?,
            "--min-healthy" => min_healthy = value(&mut it, "--min-healthy")?,
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        return Err("serve-bench expects exactly two arguments: MODEL DEVICE".to_string());
    }
    if workers == 0 || batch_size == 0 || queue_capacity == 0 {
        return Err("--workers, --batch-size, and --queue-capacity must be positive".to_string());
    }
    if !(0.0..=1.0).contains(&fault_rate) {
        return Err(format!("--fault-rate must be in [0, 1], got {fault_rate}"));
    }
    Ok(ServeArgs {
        model: positional[0].clone(),
        device: positional[1].clone(),
        workers,
        requests,
        batch_size,
        max_wait,
        queue_capacity,
        sjf,
        functional,
        pace_mhz,
        seed,
        threads,
        fault_rate,
        fault_seed,
        retries,
        min_healthy,
    })
}

struct ServeNetArgs {
    model: String,
    device: String,
    port: u16,
    name: Option<String>,
    workers: u32,
    functional: bool,
    quota: u32,
    max_conns: usize,
    io_threads: usize,
    fault_rate: f64,
    fault_seed: Option<u64>,
    retries: u32,
    seed: u64,
    threads: usize,
}

fn parse_serve_net_args<I: Iterator<Item = String>>(mut it: I) -> Result<ServeNetArgs, String> {
    let mut positional = Vec::new();
    let mut port = 0u16;
    let mut name = None;
    let mut workers = 4u32;
    let mut functional = false;
    let mut quota = 0u32;
    let mut max_conns = 64usize;
    let mut io_threads = 0usize;
    let mut fault_rate = 0.0f64;
    let mut fault_seed = None;
    let mut retries = 0u32;
    let mut seed = 42u64;
    let mut threads = 0usize;
    fn value<I: Iterator<Item = String>, T: std::str::FromStr>(
        it: &mut I,
        flag: &str,
    ) -> Result<T, String> {
        let v = it
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        v.parse().map_err(|_| format!("bad value `{v}` for {flag}"))
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--port" => port = value(&mut it, "--port")?,
            "--name" => name = Some(it.next().ok_or("--name requires a value")?),
            "--workers" => workers = value(&mut it, "--workers")?,
            "--functional" => functional = true,
            "--quota" => quota = value(&mut it, "--quota")?,
            "--max-conns" => max_conns = value(&mut it, "--max-conns")?,
            "--io-threads" => io_threads = value(&mut it, "--io-threads")?,
            "--fault-rate" => fault_rate = value(&mut it, "--fault-rate")?,
            "--fault-seed" => fault_seed = Some(value(&mut it, "--fault-seed")?),
            "--retries" => retries = value(&mut it, "--retries")?,
            "--seed" => seed = value(&mut it, "--seed")?,
            "--threads" => threads = value(&mut it, "--threads")?,
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        return Err("serve-net expects exactly two arguments: MODEL DEVICE".to_string());
    }
    if !(0.0..=1.0).contains(&fault_rate) {
        return Err(format!("--fault-rate must be in [0, 1], got {fault_rate}"));
    }
    Ok(ServeNetArgs {
        model: positional[0].clone(),
        device: positional[1].clone(),
        port,
        name,
        workers,
        functional,
        quota,
        max_conns,
        io_threads,
        fault_rate,
        fault_seed,
        retries,
        seed,
        threads,
    })
}

/// The CLI's model/device resolver for the network registry: the zoo
/// names plus `.hdnn` / `.fpga` file paths (the plug point that keeps
/// `hybriddnn-server` free of the parser dependency).
fn cli_resolver() -> hybriddnn_server::Resolver {
    std::sync::Arc::new(|model: &str, device: &str, seed: u64| {
        let net = model_for(model, seed)?;
        let (device, profile) = device_for(device)?;
        Ok(hybriddnn_server::ResolvedModel {
            net,
            device,
            profile,
        })
    })
}

fn run_serve_net(args: ServeNetArgs) -> Result<(), String> {
    use hybriddnn_server::{LoadRequest, Registry, Server, ServerConfig};
    hybriddnn::par::set_default_threads(args.threads);
    let registry = std::sync::Arc::new(Registry::new(cli_resolver()));
    let name = args.name.clone().unwrap_or_else(|| args.model.clone());
    let request = LoadRequest {
        name: name.clone(),
        version: 1,
        model: args.model.clone(),
        device: args.device.clone(),
        seed: args.seed,
        workers: args.workers,
        functional: args.functional,
        quota: args.quota,
        fault_rate: args.fault_rate,
        fault_seed: args.fault_seed.unwrap_or(args.seed),
        retries: args.retries,
    };
    let model_id = registry.load_blocking(request).map_err(|e| e.to_string())?;
    let mut config = ServerConfig {
        max_connections: args.max_conns,
        ..ServerConfig::default()
    };
    if args.io_threads > 0 {
        config.io_threads = args.io_threads;
    }
    let server = Server::bind(
        std::sync::Arc::clone(&registry),
        &format!("127.0.0.1:{}", args.port),
        config,
    )
    .map_err(|e| format!("bind failed: {e}"))?;
    println!(
        "serve-net: `{name}` (model id {model_id}) on {} — {} worker(s), {} mode{}",
        args.device,
        args.workers,
        if args.functional {
            "functional"
        } else {
            "timing-only"
        },
        if args.fault_rate > 0.0 {
            format!(", fault rate {}", args.fault_rate)
        } else {
            String::new()
        },
    );
    // The line load generators and CI parse for the ephemeral port.
    println!("listening on {}", server.local_addr());
    server.wait_drained();
    let stats = server.shutdown();
    println!(
        "drained: {} model(s), {} submitted, {} completed, {} failed, {} expired, \
         {} rejected, {} batches, {} retries, p99 {:.3} ms",
        stats.models,
        stats.submitted,
        stats.completed,
        stats.failed,
        stats.expired,
        stats.rejected,
        stats.batches,
        stats.retries,
        stats.latency_p99_nanos as f64 / 1e6,
    );
    Ok(())
}

/// Resolve a model argument: a builtin zoo name or a `.hdnn` file path.
fn model_for(spec: &str, seed: u64) -> Result<hybriddnn::Network, String> {
    let mut net = match spec {
        "tiny-cnn" => zoo::tiny_cnn(),
        "vgg-tiny" => zoo::vgg_tiny(),
        "stem-cnn" => zoo::stem_cnn(),
        path => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            parser::parse_model(&text).map_err(|e| format!("{path}: {e}"))?
        }
    };
    synth::bind_random(&mut net, seed).map_err(|e| e.to_string())?;
    Ok(net)
}

fn run_serve_bench(args: ServeArgs) -> Result<(), String> {
    hybriddnn::par::set_default_threads(args.threads);
    let net = model_for(&args.model, args.seed)?;
    let (device, profile) = device_for(&args.device)?;
    let mode = if args.functional {
        SimMode::Functional
    } else {
        SimMode::TimingOnly
    };
    let deployment = Framework::new(device, profile)
        .build(&net)
        .map_err(|e| e.to_string())?;
    println!(
        "serve-bench: {} on {} — {} workers, batch ≤{}, wait ≤{:?}, {} mode, {} requests, {} sim thread(s)/worker",
        args.model,
        args.device,
        args.workers,
        args.batch_size,
        args.max_wait,
        if args.functional {
            "functional"
        } else {
            "timing-only"
        },
        args.requests,
        hybriddnn::par::WorkPool::default().threads(),
    );

    let mut config = deployment
        .service_config(mode)
        .with_workers(args.workers)
        .with_queue_capacity(args.queue_capacity)
        .with_max_batch_size(args.batch_size)
        .with_max_wait(args.max_wait);
    if args.sjf {
        config = config.with_sjf();
    }
    if let Some(mhz) = args.pace_mhz {
        config = config.with_device_pacing(mhz);
    }
    let faulted = args.fault_rate > 0.0;
    if faulted {
        let fault_seed = args.fault_seed.unwrap_or(args.seed);
        println!(
            "faults           : uniform rate {} seed {fault_seed}, {} retries, min-healthy {}",
            args.fault_rate, args.retries, args.min_healthy
        );
        config = config
            .with_fault_plan(hybriddnn::runtime::FaultPlan::uniform(
                fault_seed,
                args.fault_rate,
            ))
            // Hangs are part of the uniform plan; without a watchdog a
            // single hang would stall its replica for the full
            // stall-escape window.
            .with_watchdog(Duration::from_millis(50));
    }
    config = config
        .with_retries(args.retries)
        .with_min_healthy(args.min_healthy);
    let service = deployment.into_service(config).map_err(|e| e.to_string())?;

    let mut gen = TrafficGen::new(net.input_shape(), args.seed);
    let start = Instant::now();
    let mut handles = Vec::with_capacity(args.requests);
    let mut retries = 0u64;
    for _ in 0..args.requests {
        let (input, deadline) = gen.next_request();
        // Backpressure: spin-retry with a short yield until admitted.
        // Degraded-mode rejections also back off — the fleet may recover.
        loop {
            match service.submit(input.clone(), deadline) {
                Ok(handle) => {
                    handles.push(handle);
                    break;
                }
                Err(RuntimeError::QueueFull { .. } | RuntimeError::Degraded { .. }) => {
                    retries += 1;
                    std::thread::yield_now();
                }
                Err(e) => return Err(e.to_string()),
            }
        }
    }
    let mut served = 0u64;
    let mut errored = 0u64;
    for handle in handles {
        // Under injected faults individual requests may legitimately
        // fail (hangs, exhausted retry budgets); tally rather than
        // abort so the benchmark reports the service's real behaviour.
        match handle.wait() {
            Ok(_) => served += 1,
            Err(e) if faulted => {
                errored += 1;
                if errored <= 3 {
                    println!("request failed   : {e}");
                }
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    let elapsed = start.elapsed();
    let metrics = service.shutdown();

    let reqs_per_s = metrics.completed as f64 / elapsed.as_secs_f64();
    println!("wall time        : {elapsed:?} ({reqs_per_s:.0} requests/s)");
    println!(
        "completed        : {} ({} batches, mean size {:.2})",
        metrics.completed, metrics.batches, metrics.mean_batch_size
    );
    println!(
        "latency p50/p95/p99: {:?} / {:?} / {:?}",
        metrics.latency_p50, metrics.latency_p95, metrics.latency_p99
    );
    println!(
        "backpressure     : {} submit retries, {} rejected",
        retries, metrics.rejected_full
    );
    if metrics.expired > 0 || metrics.failed > 0 {
        println!(
            "degraded         : {} expired, {} failed",
            metrics.expired, metrics.failed
        );
    }
    if faulted {
        println!(
            "fault tolerance  : {} injected, {} observed, {} retries, {} restarts, {} quarantined",
            metrics.faults_injected,
            metrics.faults_observed,
            metrics.retries,
            metrics.restarts,
            metrics.quarantines
        );
        println!(
            "fleet            : {}/{} healthy, {:.3}s degraded, {} shed, {} rejected degraded ({served} served, {errored} errored)",
            metrics.healthy_workers,
            args.workers,
            metrics.degraded_secs,
            metrics.degraded_served,
            metrics.rejected_degraded
        );
    }
    Ok(())
}

fn device_for(spec: &str) -> Result<(FpgaSpec, Profile), String> {
    match spec {
        "vu9p" => Ok((FpgaSpec::vu9p(), Profile::vu9p())),
        "pynq-z1" | "pynq" => Ok((FpgaSpec::pynq_z1(), Profile::pynq_z1())),
        path => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let spec = parser::parse_fpga(&text).map_err(|e| format!("{path}: {e}"))?;
            // Custom devices default to the VU9P-fitted profile.
            Ok((spec, Profile::vu9p()))
        }
    }
}

fn run(args: Args) -> Result<(), String> {
    hybriddnn::par::set_default_threads(args.threads);
    // Step 1: parse.
    let text = std::fs::read_to_string(&args.model_path)
        .map_err(|e| format!("cannot read `{}`: {e}", args.model_path))?;
    let mut net = parser::parse_model(&text).map_err(|e| format!("{}: {e}", args.model_path))?;
    let (device, profile) = device_for(&args.device)?;
    synth::bind_random(&mut net, args.seed).map_err(|e| e.to_string())?;
    println!(
        "model : {} ({} layers, {:.3} GOP/inference)",
        args.model_path,
        net.layers().len(),
        net.total_ops() as f64 / 1e9
    );
    println!("device: {device}");

    // Steps 2-3: DSE + compile.
    let mut framework = Framework::new(device.clone(), profile);
    if args.quant {
        framework = framework.with_quant(QuantSpec::paper_12bit());
    }
    let deployment = framework.build(&net).map_err(|e| e.to_string())?;
    println!(
        "\ndesign: {} ({} candidates explored)",
        deployment.dse.design, deployment.dse.candidates
    );
    let (l, d, b) = deployment
        .dse
        .total_resources
        .utilization(&device.total_resources());
    println!(
        "usage : {} ({:.1}% LUT, {:.1}% DSP, {:.1}% BRAM)",
        deployment.dse.total_resources,
        l * 100.0,
        d * 100.0,
        b * 100.0
    );
    println!("\nper-layer mapping:");
    for c in &deployment.dse.per_layer {
        println!(
            "  {:<12} {} {}  ~{:>10.0} cycles ({}-bound)",
            c.name, c.mode, c.dataflow, c.estimate.cycles, c.estimate.bound
        );
    }
    println!(
        "\ncompiled {} instructions over {} stages, {} DRAM words",
        deployment.compiled.instruction_count(),
        deployment.compiled.layers().len(),
        deployment.compiled.memory_map().total_words()
    );
    if args.disasm {
        for layer in deployment.compiled.layers() {
            println!("\n;; stage {}", layer.name());
            print!("{}", layer.program().disassemble());
        }
    }
    if args.hls {
        println!("\n// ---- HLS template configuration ----");
        print!(
            "{}",
            hybriddnn::hls::template_header(
                &deployment.dse.design,
                &device,
                deployment.compiled.quant()
            )
        );
    }
    if let Some(dir) = &args.emit {
        hybriddnn_compiler::write_artifacts(&deployment.compiled, std::path::Path::new(dir))
            .map_err(|e| e.to_string())?;
        println!("artifacts written to {dir}/ (manifest.txt, *.inst, data.bin)");
    }

    // Step 4: run.
    let input = synth::tensor(net.input_shape(), args.seed ^ 0xF00D);
    let mode = if args.functional {
        SimMode::Functional
    } else {
        SimMode::TimingOnly
    };
    let run = deployment.run(&input, mode).map_err(|e| e.to_string())?;
    println!(
        "\nsimulated: {:.3} ms/image/instance, {:.1} GOPS device throughput",
        deployment.latency_ms(&run),
        deployment.throughput_gops(&run)
    );
    println!(
        "power    : {:.2} W (modeled) -> {:.1} GOPS/W",
        deployment.power().total_w(),
        deployment.energy_efficiency(&run)
    );
    if args.functional {
        if args.quant {
            let golden = hybriddnn::report::golden_quantized(&net, &deployment.compiled, &input);
            let exact = run.output == golden;
            println!(
                "validation: {} the fixed-point golden reference",
                if exact {
                    "bit-exact against"
                } else {
                    "MISMATCH against"
                }
            );
            if !exact {
                return Err("quantized output mismatch".to_string());
            }
        } else {
            let golden = reference::run_network(&net, &input).map_err(|e| e.to_string())?;
            println!(
                "validation: max |err| vs CPU reference = {:.2e}",
                run.output.max_abs_diff(&golden)
            );
        }
    }
    if args.validate_plan {
        // First run records the session plan; the second replays it with
        // validation on, re-simulating the timing schedule and comparing
        // stage by stage.
        let mut session = deployment.simulator(mode).with_schedule_validation(true);
        session
            .run(&deployment.compiled, &input)
            .map_err(|e| e.to_string())?;
        session
            .run(&deployment.compiled, &input)
            .map_err(|e| e.to_string())?;
        println!(
            "plan     : cached schedule validated against re-simulation ({} pack words)",
            session.plan_pack_words()
        );
    }
    if args.batch > 1 {
        let inputs: Vec<_> = (0..args.batch)
            .map(|i| synth::tensor(net.input_shape(), args.seed.wrapping_add(i as u64)))
            .collect();
        let result = deployment
            .run_batch(&inputs, SimMode::TimingOnly)
            .map_err(|e| e.to_string())?;
        println!(
            "batch({}) : {:.1} GOPS device, {:.1} images/s across {} instance(s)",
            args.batch,
            result.throughput_gops(device.freq_mhz()),
            result.images_per_second(device.freq_mhz()),
            deployment.dse.design.ni
        );
    }
    let report = AccuracyReport::measure(&deployment).map_err(|e| e.to_string())?;
    println!(
        "model accuracy: {:.2}% (estimator vs cycle-level simulation)",
        report.total_error_pct()
    );
    Ok(())
}

fn main() -> ExitCode {
    if std::env::args().nth(1).as_deref() == Some("serve-net") {
        return match parse_serve_net_args(std::env::args().skip(2)) {
            Ok(args) => match run_serve_net(args) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(msg) => {
                if !msg.is_empty() {
                    eprintln!("error: {msg}\n");
                }
                eprintln!(
                    "usage: hybriddnn serve-net <MODEL.hdnn|tiny-cnn|vgg-tiny> \
                     <DEVICE.fpga|vu9p|pynq-z1> [--port N] [--name NAME] \
                     [--workers N] [--functional] [--quota N] [--max-conns N] \
                     [--io-threads N] [--fault-rate F] [--fault-seed N] \
                     [--retries N] [--seed N] [--threads N]"
                );
                ExitCode::FAILURE
            }
        };
    }
    if std::env::args().nth(1).as_deref() == Some("serve-bench") {
        return match parse_serve_args(std::env::args().skip(2)) {
            Ok(args) => match run_serve_bench(args) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(msg) => {
                if !msg.is_empty() {
                    eprintln!("error: {msg}\n");
                }
                eprintln!(
                    "usage: hybriddnn serve-bench <MODEL.hdnn|tiny-cnn|vgg-tiny> \
                     <DEVICE.fpga|vu9p|pynq-z1> [--workers N] [--requests N] \
                     [--batch-size N] [--max-wait-us N] [--queue-capacity N] \
                     [--policy fifo|sjf] [--functional] [--pace-mhz F] [--seed N] \
                     [--threads N] [--fault-rate F] [--fault-seed N] [--retries N] \
                     [--min-healthy N]"
                );
                ExitCode::FAILURE
            }
        };
    }
    match parse_args() {
        Ok(args) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!(
                "usage: hybriddnn <MODEL.hdnn> <DEVICE.fpga|vu9p|pynq-z1> \
                 [--quant] [--functional] [--disasm] [--hls] [--emit DIR] \
                 [--batch N] [--validate-plan] [--seed N] [--threads N]\n\
                 \x20      hybriddnn serve-bench --help"
            );
            ExitCode::FAILURE
        }
    }
}
