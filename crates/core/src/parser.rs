//! The HybridDNN parser (Figure 1, Step 1): line-oriented text formats
//! for DNN models and FPGA specifications.
//!
//! # Model format (`.hdnn`)
//!
//! ```text
//! # comments start with '#'
//! input 3 224 224
//! conv conv1_1 64 3x3 stride 1 pad 1 relu
//! maxpool pool1 2
//! fc fc6 4096 relu
//! ```
//!
//! `conv NAME OUT_CHANNELS RxS [stride N] [pad N] [relu] [nobias]`
//! infers its input channel count from the running shape.
//!
//! # FPGA specification format (`.fpga`)
//!
//! ```text
//! name VU9P
//! dies 3
//! die_lut 394080
//! die_dsp 2280
//! die_bram18 1440
//! bram_width 36
//! freq_mhz 167
//! bw_words 384
//! max_instances 6
//! ```

use hybriddnn_fpga::{FpgaSpec, Resources};
use hybriddnn_model::{
    Activation, Conv2d, Layer, LayerKind, MaxPool2d, ModelError, Network, Padding, Shape,
};
use std::fmt;

/// Errors produced while parsing model or FPGA specification text.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// A line could not be understood.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        detail: String,
    },
    /// A required directive is missing.
    Missing {
        /// The missing directive.
        directive: &'static str,
    },
    /// The parsed model is structurally invalid.
    Model(ModelError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, detail } => write!(f, "line {line}: {detail}"),
            ParseError::Missing { directive } => write!(f, "missing `{directive}` directive"),
            ParseError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for ParseError {
    fn from(e: ModelError) -> Self {
        ParseError::Model(e)
    }
}

/// Parses a model description.
///
/// # Errors
/// Returns [`ParseError::Syntax`] for malformed lines,
/// [`ParseError::Missing`] if no `input` directive precedes the layers,
/// and [`ParseError::Model`] if the resulting network is inconsistent.
pub fn parse_model(text: &str) -> Result<Network, ParseError> {
    let mut input: Option<Shape> = None;
    let mut shape: Option<Shape> = None;
    let mut layers: Vec<Layer> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let stripped = raw.split('#').next().unwrap_or("").trim();
        if stripped.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = stripped.split_whitespace().collect();
        let syntax = |detail: String| ParseError::Syntax { line, detail };
        match tokens[0] {
            "input" => {
                if tokens.len() != 4 {
                    return Err(syntax("expected `input C H W`".to_string()));
                }
                let c = parse_num(tokens[1], line)?;
                let h = parse_num(tokens[2], line)?;
                let w = parse_num(tokens[3], line)?;
                let s = Shape::new(c, h, w);
                input = Some(s);
                shape = Some(s);
            }
            "conv" => {
                let cur = shape.ok_or(ParseError::Missing { directive: "input" })?;
                if tokens.len() < 4 {
                    return Err(syntax(
                        "expected `conv NAME OUT_CH RxS [stride N] [pad N] [relu] [nobias]`"
                            .to_string(),
                    ));
                }
                let name = tokens[1];
                let out_ch = parse_num(tokens[2], line)?;
                let (kh, kw) = parse_kernel(tokens[3], line)?;
                let mut stride = 1;
                let mut pad = kh / 2;
                let mut relu = false;
                let mut bias = true;
                let mut t = 4;
                while t < tokens.len() {
                    match tokens[t] {
                        "stride" => {
                            stride = parse_num(tokens.get(t + 1).copied().unwrap_or(""), line)?;
                            t += 2;
                        }
                        "pad" => {
                            pad = parse_num(tokens.get(t + 1).copied().unwrap_or(""), line)?;
                            t += 2;
                        }
                        "relu" => {
                            relu = true;
                            t += 1;
                        }
                        "nobias" => {
                            bias = false;
                            t += 1;
                        }
                        other => return Err(syntax(format!("unknown conv option `{other}`"))),
                    }
                }
                let conv = Conv2d {
                    in_channels: cur.c,
                    out_channels: out_ch,
                    kernel_h: kh,
                    kernel_w: kw,
                    stride,
                    padding: Padding::same(pad),
                    activation: if relu {
                        Activation::Relu
                    } else {
                        Activation::None
                    },
                    bias,
                };
                let layer = Layer::new(name, LayerKind::Conv(conv));
                shape = Some(layer.infer_shape(cur)?);
                layers.push(layer);
            }
            "maxpool" => {
                let cur = shape.ok_or(ParseError::Missing { directive: "input" })?;
                if tokens.len() != 3 {
                    return Err(syntax("expected `maxpool NAME SIZE`".to_string()));
                }
                let layer = Layer::new(
                    tokens[1],
                    LayerKind::MaxPool(MaxPool2d::new(parse_num(tokens[2], line)?)),
                );
                shape = Some(layer.infer_shape(cur)?);
                layers.push(layer);
            }
            "fc" => {
                let cur = shape.ok_or(ParseError::Missing { directive: "input" })?;
                if tokens.len() < 3 {
                    return Err(syntax("expected `fc NAME OUT [relu] [nobias]`".to_string()));
                }
                let out = parse_num(tokens[2], line)?;
                let mut fc = hybriddnn_model::FullyConnected::new(cur.len(), out);
                // Like `conv`, activation is opt-in in the text format.
                fc.activation = Activation::None;
                for opt in &tokens[3..] {
                    match *opt {
                        "relu" => fc.activation = Activation::Relu,
                        "norelu" => fc.activation = Activation::None,
                        "nobias" => fc.bias = false,
                        other => return Err(syntax(format!("unknown fc option `{other}`"))),
                    }
                }
                let layer = Layer::new(tokens[1], LayerKind::Fc(fc));
                shape = Some(layer.infer_shape(cur)?);
                layers.push(layer);
            }
            other => return Err(syntax(format!("unknown directive `{other}`"))),
        }
    }
    let input = input.ok_or(ParseError::Missing { directive: "input" })?;
    Ok(Network::new(input, layers)?)
}

/// Parses an FPGA specification.
///
/// # Errors
/// Returns [`ParseError::Syntax`] for malformed lines and
/// [`ParseError::Missing`] for absent directives.
pub fn parse_fpga(text: &str) -> Result<FpgaSpec, ParseError> {
    let mut name: Option<String> = None;
    let mut dies = 1usize;
    let mut lut: Option<u64> = None;
    let mut dsp: Option<u64> = None;
    let mut bram: Option<u64> = None;
    let mut bram_width = 36u32;
    let mut freq: Option<f64> = None;
    let mut bw: Option<f64> = None;
    let mut max_instances: Option<usize> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let stripped = raw.split('#').next().unwrap_or("").trim();
        if stripped.is_empty() {
            continue;
        }
        let mut it = stripped.split_whitespace();
        let key = it.next().expect("non-empty line");
        let value = it.next().unwrap_or("");
        let syntax = |detail: String| ParseError::Syntax { line, detail };
        match key {
            "name" => name = Some(value.to_string()),
            "dies" => dies = parse_num(value, line)?,
            "die_lut" => lut = Some(parse_num::<u64>(value, line)?),
            "die_dsp" => dsp = Some(parse_num::<u64>(value, line)?),
            "die_bram18" => bram = Some(parse_num::<u64>(value, line)?),
            "bram_width" => bram_width = parse_num(value, line)?,
            "freq_mhz" => {
                freq = Some(
                    value
                        .parse()
                        .map_err(|_| syntax(format!("bad number `{value}`")))?,
                )
            }
            "bw_words" => {
                bw = Some(
                    value
                        .parse()
                        .map_err(|_| syntax(format!("bad number `{value}`")))?,
                )
            }
            "max_instances" => max_instances = Some(parse_num(value, line)?),
            other => return Err(syntax(format!("unknown key `{other}`"))),
        }
    }
    let name = name.ok_or(ParseError::Missing { directive: "name" })?;
    let lut = lut.ok_or(ParseError::Missing {
        directive: "die_lut",
    })?;
    let dsp = dsp.ok_or(ParseError::Missing {
        directive: "die_dsp",
    })?;
    let bram = bram.ok_or(ParseError::Missing {
        directive: "die_bram18",
    })?;
    let freq = freq.ok_or(ParseError::Missing {
        directive: "freq_mhz",
    })?;
    let bw = bw.ok_or(ParseError::Missing {
        directive: "bw_words",
    })?;
    let max_instances = max_instances.unwrap_or(dies * 2);
    Ok(FpgaSpec::new(
        name,
        dies,
        Resources::new(lut, dsp, bram),
        bram_width,
        freq,
        bw,
        max_instances,
    ))
}

/// Renders a network back into the model text format (round-trip aid).
pub fn model_to_text(net: &Network) -> String {
    let mut out = String::new();
    let s = net.input_shape();
    out.push_str(&format!("input {} {} {}\n", s.c, s.h, s.w));
    for layer in net.layers() {
        match layer.kind() {
            LayerKind::Conv(c) => {
                out.push_str(&format!(
                    "conv {} {} {}x{} stride {} pad {}{}{}\n",
                    layer.name(),
                    c.out_channels,
                    c.kernel_h,
                    c.kernel_w,
                    c.stride,
                    c.padding.h,
                    if c.activation == Activation::Relu {
                        " relu"
                    } else {
                        ""
                    },
                    if c.bias { "" } else { " nobias" },
                ));
            }
            LayerKind::MaxPool(p) => {
                out.push_str(&format!("maxpool {} {}\n", layer.name(), p.size));
            }
            LayerKind::Fc(fc) => {
                out.push_str(&format!(
                    "fc {} {}{}{}\n",
                    layer.name(),
                    fc.out_features,
                    if fc.activation == Activation::Relu {
                        " relu"
                    } else {
                        ""
                    },
                    if fc.bias { "" } else { " nobias" },
                ));
            }
            _ => {}
        }
    }
    out
}

fn parse_num<T: std::str::FromStr>(s: &str, line: usize) -> Result<T, ParseError> {
    s.parse().map_err(|_| ParseError::Syntax {
        line,
        detail: format!("bad number `{s}`"),
    })
}

fn parse_kernel(s: &str, line: usize) -> Result<(usize, usize), ParseError> {
    let mut parts = s.split('x');
    let a = parts.next().unwrap_or("");
    let b = parts.next().unwrap_or(a);
    if parts.next().is_some() {
        return Err(ParseError::Syntax {
            line,
            detail: format!("bad kernel `{s}`"),
        });
    }
    Ok((parse_num(a, line)?, parse_num(b, line)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybriddnn_model::zoo;

    const SMALL: &str = "
# a tiny model
input 3 16 16
conv c1 8 3x3 stride 1 pad 1 relu
maxpool p1 2
fc out 10 relu
";

    #[test]
    fn parses_small_model() {
        let net = parse_model(SMALL).unwrap();
        assert_eq!(net.input_shape(), Shape::new(3, 16, 16));
        assert_eq!(net.output_shape(), Shape::new(10, 1, 1));
        assert_eq!(net.layers().len(), 3);
    }

    #[test]
    fn conv_defaults_same_padding() {
        let net = parse_model("input 1 8 8\nconv c 4 5x5\n").unwrap();
        assert_eq!(net.output_shape(), Shape::new(4, 8, 8));
    }

    #[test]
    fn conv_options_parse() {
        let net = parse_model("input 1 8 8\nconv c 4 3x3 stride 2 pad 1 nobias\n").unwrap();
        let LayerKind::Conv(c) = net.layers()[0].kind() else {
            panic!()
        };
        assert_eq!(c.stride, 2);
        assert!(!c.bias);
        assert_eq!(c.activation, Activation::None);
    }

    #[test]
    fn missing_input_is_reported() {
        let err = parse_model("conv c 4 3x3\n").unwrap_err();
        assert_eq!(err, ParseError::Missing { directive: "input" });
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse_model("input 3 8 8\nconv c 4 3y3\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 2, .. }));
        let err = parse_model("input 3 8 8\nwibble\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 2, .. }));
        let err = parse_model("input 3 8 8\nconv c 4 3x3 frobnicate\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 2, .. }));
    }

    #[test]
    fn model_round_trips_through_text() {
        let net = zoo::vgg16();
        let text = model_to_text(&net);
        let parsed = parse_model(&text).unwrap();
        assert_eq!(parsed, net);
    }

    #[test]
    fn parses_fpga_spec() {
        let spec = parse_fpga(
            "name VU9P\ndies 3\ndie_lut 394080\ndie_dsp 2280\ndie_bram18 1440\n\
             bram_width 36\nfreq_mhz 167\nbw_words 384\nmax_instances 6\n",
        )
        .unwrap();
        assert_eq!(spec.name(), "VU9P");
        assert_eq!(spec.dies(), 3);
        assert_eq!(spec.total_resources(), FpgaSpec::vu9p().total_resources());
        assert_eq!(spec.max_instances(), 6);
    }

    #[test]
    fn fpga_spec_missing_keys_reported() {
        let err = parse_fpga("name X\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::Missing {
                directive: "die_lut"
            }
        );
    }

    #[test]
    fn fpga_spec_unknown_key_reported() {
        let err = parse_fpga("name X\nvoltage 12\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 2, .. }));
    }
}
