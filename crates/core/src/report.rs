//! Model-accuracy reporting (§6.2): how far the analytical estimates of
//! Eq. 3–15 land from the cycle-level simulator — the paper reports
//! 4.27 % (VU9P) and 4.03 % (PYNQ-Z1) against its hardware — plus the
//! fixed-point golden reference used for bit-exact functional checks.

use crate::flow::{Deployment, FlowError};
use hybriddnn_compiler::CompiledNetwork;
use hybriddnn_estimator::ConvMode;
use hybriddnn_model::Tensor;
use hybriddnn_sim::SimMode;
use hybriddnn_winograd::gemm;

/// One layer's estimated vs measured latency.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerAccuracy {
    /// Layer name.
    pub name: String,
    /// Analytical estimate (cycles, Eq. 12–15).
    pub estimated: f64,
    /// Simulator measurement (cycles).
    pub simulated: f64,
}

impl LayerAccuracy {
    /// Relative error of the estimate in percent
    /// (`|est − sim| / sim · 100`).
    pub fn error_pct(&self) -> f64 {
        if self.simulated == 0.0 {
            return 0.0;
        }
        (self.estimated - self.simulated).abs() / self.simulated * 100.0
    }
}

/// The full estimator-vs-simulator comparison for a deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyReport {
    /// Per-layer rows, in execution order.
    pub per_layer: Vec<LayerAccuracy>,
}

impl AccuracyReport {
    /// Builds the report by running a timing-only simulation of the
    /// deployment and comparing each stage against the DSE's estimates.
    ///
    /// # Errors
    /// Propagates simulator failures.
    pub fn measure(deployment: &Deployment) -> Result<AccuracyReport, FlowError> {
        let input = Tensor::zeros(deployment.compiled.input_shape());
        let run = deployment.run(&input, SimMode::TimingOnly)?;
        let per_layer = deployment
            .dse
            .per_layer
            .iter()
            .zip(&run.stage_stats)
            .map(|(choice, stats)| LayerAccuracy {
                name: choice.name.clone(),
                estimated: choice.estimate.cycles,
                simulated: stats.cycles,
            })
            .collect();
        Ok(AccuracyReport { per_layer })
    }

    /// Whole-network relative error in percent (total estimated vs total
    /// simulated cycles — the aggregate the paper reports).
    pub fn total_error_pct(&self) -> f64 {
        let est: f64 = self.per_layer.iter().map(|l| l.estimated).sum();
        let sim: f64 = self.per_layer.iter().map(|l| l.simulated).sum();
        if sim == 0.0 {
            return 0.0;
        }
        (est - sim).abs() / sim * 100.0
    }

    /// Mean of the per-layer relative errors in percent.
    pub fn mean_error_pct(&self) -> f64 {
        if self.per_layer.is_empty() {
            return 0.0;
        }
        self.per_layer.iter().map(|l| l.error_pct()).sum::<f64>() / self.per_layer.len() as f64
    }

    /// The worst per-layer relative error in percent.
    pub fn max_error_pct(&self) -> f64 {
        self.per_layer
            .iter()
            .map(|l| l.error_pct())
            .fold(0.0, f64::max)
    }
}

/// Runs the *golden fixed-point reference* for a compiled network: the
/// same quantization decisions the accelerator makes (quantized offline
/// weights — transformed ones for Winograd layers — `f64` accumulation,
/// requantization at every layer boundary), evaluated with plain loop
/// nests on the CPU.
///
/// On the quantized path this is **bit-exact** against the functional
/// simulator: all operands live on integer grids and every intermediate
/// fits `f64`'s mantissa, so summation order cannot matter.
///
/// # Panics
/// Panics if the network's bindings and the compiled plans disagree
/// (cannot happen for a network compiled from the same bindings).
pub fn golden_quantized(
    net: &hybriddnn_model::Network,
    compiled: &CompiledNetwork,
    input: &Tensor,
) -> Tensor {
    let quant = compiled.quant();
    let mut act = input.clone();
    if let Some(fmt) = quant.activations {
        fmt.quantize_tensor(&mut act);
    }
    // Walk compute layers in stage order.
    let mut stage = 0usize;
    let mut i = 0usize;
    while i < net.layers().len() {
        let layer = &net.layers()[i];
        match layer.kind() {
            hybriddnn_model::LayerKind::Conv(_) | hybriddnn_model::LayerKind::Fc(_) => {
                let plan = compiled.layers()[stage].plan().clone();
                let binding = net.binding(i).expect("bound layer");
                act = golden_stage(&act, layer, &binding.weights, &binding.bias, &plan, quant);
                // The stage already applied its fused pooling; skip the
                // network's MaxPool layer that was fused into it.
                if plan.pool >= 2 {
                    i += 1;
                }
                stage += 1;
            }
            hybriddnn_model::LayerKind::MaxPool(p) => {
                // Only reachable for pools the compiler did not fuse.
                act = hybriddnn_model::reference::max_pool(&act, p).expect("pool divides");
            }
            _ => {}
        }
        i += 1;
    }
    act
}

fn golden_stage(
    input: &Tensor,
    layer: &hybriddnn_model::Layer,
    weights: &[f32],
    bias: &[f32],
    plan: &hybriddnn_compiler::LayerPlan,
    quant: hybriddnn_compiler::QuantSpec,
) -> Tensor {
    use hybriddnn_model::Shape;
    let wl = &plan.wl;
    let q = |v: f32| -> f64 {
        match quant.weights {
            Some(fmt) => fmt.quantize(v as f64) as f64,
            None => v as f64,
        }
    };
    let (out_h, out_w) = (wl.out_h, wl.out_w);
    let mut accum = vec![0.0f64; wl.k * out_h * out_w];

    let (pad_h, pad_w, activation) = match layer.kind() {
        hybriddnn_model::LayerKind::Conv(c) => {
            (c.padding.h as isize, c.padding.w as isize, c.activation)
        }
        hybriddnn_model::LayerKind::Fc(fc) => (0, 0, fc.activation),
        _ => unreachable!("golden_stage only sees compute layers"),
    };

    if plan.is_fc() {
        // FC: flat CHW matrix-vector product in f64 (the simulator's
        // permuted image reorders columns but multiplies the same pairs).
        let x = input.as_slice();
        for k in 0..wl.k {
            let mut acc = 0.0f64;
            for (c, &xv) in x.iter().enumerate() {
                acc += xv as f64 * q(weights[k * wl.c + c]);
            }
            accum[k] = acc;
        }
    } else {
        match plan.mode {
            ConvMode::Spatial => {
                for k in 0..wl.k {
                    for oy in 0..out_h {
                        for ox in 0..out_w {
                            let mut acc = 0.0f64;
                            for c in 0..wl.c {
                                for r in 0..wl.r {
                                    for s in 0..wl.s {
                                        let iy = (oy * wl.stride + r) as isize - pad_h;
                                        let ix = (ox * wl.stride + s) as isize - pad_w;
                                        let x = input.at_padded(c, iy, ix) as f64;
                                        let w = q(weights[((k * wl.c + c) * wl.r + r) * wl.s + s]);
                                        acc += x * w;
                                    }
                                }
                            }
                            accum[(k * out_h + oy) * out_w + ox] = acc;
                        }
                    }
                }
            }
            ConvMode::Winograd => {
                // Mirror the accelerator exactly: transform the *raw*
                // pretrained weights offline, then quantize the
                // transformed values (what the weight DRAM image stores).
                let tile = plan.tile;
                let mut u = gemm::TransformedWeights::new(
                    tile,
                    hybriddnn_model::WeightShape::new(wl.k, wl.c, wl.r, wl.s),
                    weights,
                );
                if let Some(fmt) = quant.weights {
                    u.quantize(fmt);
                }
                let (blocks_r, blocks_s) = u.blocks();
                for br in 0..blocks_r {
                    for bs in 0..blocks_s {
                        let origin_y = (br * 3) as isize - pad_h;
                        let origin_x = (bs * 3) as isize - pad_w;
                        let v = gemm::TransformedInput::new(
                            tile, input, out_h, out_w, origin_y, origin_x,
                        );
                        let m = gemm::ewmm_gemm(&u, (br, bs), &v);
                        gemm::accumulate_output(
                            tile,
                            &m,
                            wl.k,
                            v.tiles(),
                            out_h,
                            out_w,
                            &mut accum,
                        );
                    }
                }
            }
        }
    }

    // Bias, requantization shift, activation, grid — same order as the
    // simulator's COMP flush.
    let mut out = Tensor::zeros(Shape::new(wl.k, out_h, out_w));
    let data = out.as_mut_slice();
    for k in 0..wl.k {
        let b = if plan.bias { q(bias[k]) } else { 0.0 };
        for idx in 0..out_h * out_w {
            let mut v = (accum[k * out_h * out_w + idx] + b) * 2f64.powi(-(plan.quan_shift as i32));
            if activation == hybriddnn_model::Activation::Relu {
                v = v.max(0.0);
            }
            data[k * out_h * out_w + idx] = match quant.activations {
                Some(fmt) => fmt.quantize(v),
                None => v as f32,
            };
        }
    }
    // Fused pooling.
    if plan.pool >= 2 {
        out =
            hybriddnn_model::reference::max_pool(&out, &hybriddnn_model::MaxPool2d::new(plan.pool))
                .expect("plan guarantees divisibility");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Framework;
    use hybriddnn_compiler::QuantSpec;
    use hybriddnn_estimator::Profile;
    use hybriddnn_fpga::FpgaSpec;
    use hybriddnn_model::{synth, zoo};

    #[test]
    fn accuracy_report_for_tiny_cnn() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 1).unwrap();
        let deployment = Framework::new(FpgaSpec::pynq_z1(), Profile::pynq_z1())
            .build(&net)
            .unwrap();
        let report = AccuracyReport::measure(&deployment).unwrap();
        assert_eq!(report.per_layer.len(), 2);
        // Analytical vs cycle-level should agree within tens of percent
        // even on this tiny workload (the paper's 4% holds for VGG16-scale
        // layers; see EXPERIMENTS.md).
        assert!(
            report.total_error_pct() < 50.0,
            "{}",
            report.total_error_pct()
        );
        assert!(report.max_error_pct() >= report.mean_error_pct());
    }

    #[test]
    fn golden_quantized_is_bit_exact_with_simulator() {
        let fmt = hybriddnn_model::quant::QFormat::FEATURE12;
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 3).unwrap();
        let deployment = Framework::new(FpgaSpec::pynq_z1(), Profile::pynq_z1())
            .with_quant(QuantSpec::paper_12bit())
            .build(&net)
            .unwrap();
        let input = synth::quantized_tensor(net.input_shape(), 5, fmt);
        let run = deployment.run(&input, SimMode::Functional).unwrap();
        let golden = golden_quantized(&net, &deployment.compiled, &input);
        assert_eq!(run.output, golden, "quantized path must be bit-exact");
    }

    #[test]
    fn golden_quantized_float_mode_matches_reference() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 4).unwrap();
        let deployment = Framework::new(FpgaSpec::pynq_z1(), Profile::pynq_z1())
            .build(&net)
            .unwrap();
        let input = synth::tensor(net.input_shape(), 6);
        let golden = golden_quantized(&net, &deployment.compiled, &input);
        let reference = hybriddnn_model::reference::run_network(&net, &input).unwrap();
        assert!(golden.max_abs_diff(&reference) < 1e-2);
    }
}
