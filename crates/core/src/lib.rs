//! # HybridDNN
//!
//! A framework for building high-performance hybrid Spatial/Winograd DNN
//! accelerators — a from-scratch Rust reproduction of *HybridDNN: A
//! Framework for High-Performance Hybrid DNN Accelerator Design and
//! Implementation* (Ye et al., DAC 2020), with the FPGA implementation
//! replaced by a functionally-exact, cycle-approximate simulator
//! (see `DESIGN.md`).
//!
//! The end-to-end design flow of the paper's Figure 1:
//!
//! 1. **Parse** ([`parser`]) — ingest a DNN model description and an FPGA
//!    specification.
//! 2. **Explore** ([`hybriddnn_dse`]) — pick `PI / PO / PT / NI` and the
//!    per-layer CONV mode + dataflow.
//! 3. **Compile** ([`hybriddnn_compiler`]) — emit the 128-bit instruction
//!    streams and DRAM data images.
//! 4. **Run** ([`hybriddnn_sim`]) — execute on the simulated accelerator
//!    through the light-weight [`flow::Deployment`] runtime.
//!
//! # Quickstart
//!
//! ```
//! use hybriddnn::flow::Framework;
//! use hybriddnn::{FpgaSpec, Profile, SimMode};
//! use hybriddnn::model::{synth, zoo};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small CNN with deterministic synthetic weights.
//! let mut net = zoo::tiny_cnn();
//! synth::bind_random(&mut net, 42)?;
//!
//! // Target the embedded board from the paper's evaluation.
//! let framework = Framework::new(FpgaSpec::pynq_z1(), Profile::pynq_z1());
//! let deployment = framework.build(&net)?;
//!
//! // Run one inference on the simulated accelerator.
//! let input = synth::tensor(net.input_shape(), 7);
//! let run = deployment.run(&input, SimMode::Functional)?;
//! println!("latency: {:.3} ms, {:.1} GOPS",
//!          deployment.latency_ms(&run), deployment.throughput_gops(&run));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow;
pub mod hls;
pub mod parser;
pub mod report;

/// The DNN model IR (re-export of `hybriddnn-model`).
pub mod model {
    pub use hybriddnn_model::*;
}

/// The concurrent, batching inference-serving runtime (re-export of
/// `hybriddnn-runtime`); see [`flow::Deployment::into_service`].
pub mod runtime {
    pub use hybriddnn_runtime::*;
}

/// The host work-group pool behind the simulator, reference model, and
/// DSE hot paths (re-export of `hybriddnn-par`). Set the process-wide
/// thread budget with [`par::set_default_threads`] — the CLI's
/// `--threads` flag maps straight onto it.
pub mod par {
    pub use hybriddnn_par::*;
}

pub use flow::{BatchResult, Deployment, Framework};
pub use hybriddnn_compiler::{CompileError, CompiledNetwork, Compiler, MappingStrategy, QuantSpec};
pub use hybriddnn_dse::{DseEngine, DseError, DseResult};
pub use hybriddnn_estimator::{
    AcceleratorConfig, ConvMode, Dataflow, DesignPoint, LayerWorkload, Profile,
};
pub use hybriddnn_fpga::{EnergyModel, ExternalMemory, FpgaSpec, Resources};
pub use hybriddnn_isa::{Instruction, Program};
pub use hybriddnn_model::{Network, NetworkBuilder, Shape, Tensor};
pub use hybriddnn_sim::{RunResult, SimError, SimMode, Simulator};
pub use hybriddnn_winograd::TileConfig;
pub use parser::ParseError;
pub use report::AccuracyReport;
