//! The end-to-end design flow (Figure 1): parse → DSE → compile → run.

use hybriddnn_compiler::{CompileError, CompiledNetwork, Compiler, MappingStrategy, QuantSpec};
use hybriddnn_dse::{DseEngine, DseError, DseResult};
use hybriddnn_estimator::Profile;
use hybriddnn_fpga::{EnergyModel, FpgaSpec, PowerBreakdown};
use hybriddnn_model::{Network, Tensor};
use hybriddnn_runtime::{CostHints, InferenceService, RuntimeError, ServiceConfig};
use hybriddnn_sim::{RunResult, SimError, SimMode, Simulator};
use std::fmt;
use std::sync::Arc;

/// Errors of the end-to-end flow.
#[derive(Debug)]
#[non_exhaustive]
pub enum FlowError {
    /// Design space exploration failed.
    Dse(DseError),
    /// Compilation failed.
    Compile(CompileError),
    /// Simulation failed.
    Sim(SimError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Dse(e) => write!(f, "dse: {e}"),
            FlowError::Compile(e) => write!(f, "compile: {e}"),
            FlowError::Sim(e) => write!(f, "sim: {e}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Dse(e) => Some(e),
            FlowError::Compile(e) => Some(e),
            FlowError::Sim(e) => Some(e),
        }
    }
}

impl From<DseError> for FlowError {
    fn from(e: DseError) -> Self {
        FlowError::Dse(e)
    }
}

impl From<CompileError> for FlowError {
    fn from(e: CompileError) -> Self {
        FlowError::Compile(e)
    }
}

impl From<SimError> for FlowError {
    fn from(e: SimError) -> Self {
        FlowError::Sim(e)
    }
}

/// The HybridDNN framework: a target device, its resource profile, and a
/// numeric precision, ready to build deployments.
#[derive(Debug, Clone)]
pub struct Framework {
    device: FpgaSpec,
    profile: Profile,
    quant: QuantSpec,
}

impl Framework {
    /// Creates a framework for a device (full-precision data by default).
    pub fn new(device: FpgaSpec, profile: Profile) -> Self {
        Framework {
            device,
            profile,
            quant: QuantSpec::float32(),
        }
    }

    /// Sets the deployment precision (e.g. [`QuantSpec::paper_12bit`]).
    pub fn with_quant(mut self, quant: QuantSpec) -> Self {
        self.quant = quant;
        self
    }

    /// The target device.
    pub fn device(&self) -> &FpgaSpec {
        &self.device
    }

    /// Runs Steps 2–3 of the design flow: explore the design space, then
    /// compile the network under the winning mapping strategy.
    ///
    /// # Errors
    /// Propagates DSE and compilation failures.
    pub fn build(&self, net: &Network) -> Result<Deployment, FlowError> {
        let dse = DseEngine::new(self.device.clone(), self.profile).explore(net)?;
        self.build_with(net, dse)
    }

    /// Compiles a network under a pre-computed DSE result (useful for
    /// forcing configurations in experiments).
    ///
    /// # Errors
    /// Propagates compilation failures.
    pub fn build_with(&self, net: &Network, dse: DseResult) -> Result<Deployment, FlowError> {
        let strategy = MappingStrategy::new(dse.strategy_choices());
        let compiled = Compiler::new(dse.design.accel)
            .with_quant(self.quant)
            .compile(net, &strategy)?;
        Ok(Deployment {
            device: self.device.clone(),
            dse,
            compiled,
        })
    }
}

/// A built deployment: the DSE decision plus the compiled artifacts,
/// bound to the target device (the paper's "Inst. & Data Files" +
/// "FPGA Bitstream" stand-in).
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The target device.
    pub device: FpgaSpec,
    /// The design space exploration result.
    pub dse: DseResult,
    /// The compiled network.
    pub compiled: CompiledNetwork,
}

impl Deployment {
    /// Creates a simulator session for this deployment (one accelerator
    /// instance with its bandwidth share).
    pub fn simulator(&self, mode: SimMode) -> Simulator {
        let bw = self.device.instance_bandwidth(self.dse.design.ni);
        Simulator::new(&self.compiled, mode, bw)
    }

    /// Runs one inference on a fresh simulator session.
    ///
    /// # Errors
    /// Propagates simulator failures.
    pub fn run(&self, input: &Tensor, mode: SimMode) -> Result<RunResult, FlowError> {
        Ok(self.simulator(mode).run(&self.compiled, input)?)
    }

    /// Per-image latency of a run in milliseconds.
    pub fn latency_ms(&self, run: &RunResult) -> f64 {
        run.latency_ms(self.device.freq_mhz())
    }

    /// Device throughput in GOPS: `NI` batch-parallel instances, each
    /// delivering the measured per-image rate.
    pub fn throughput_gops(&self, run: &RunResult) -> f64 {
        run.gops(self.device.freq_mhz()) * self.dse.design.ni as f64
    }

    /// Modeled board power (Table 4's W column; modeled, not measured).
    pub fn power(&self) -> PowerBreakdown {
        EnergyModel::calibrated().power(&self.dse.total_resources, self.device.freq_mhz())
    }

    /// Modeled energy efficiency in GOPS/W for a run.
    pub fn energy_efficiency(&self, run: &RunResult) -> f64 {
        self.throughput_gops(run) / self.power().total_w()
    }

    /// DSP efficiency in GOPS per DSP slice (Table 4's GOPS/DSP column).
    pub fn dsp_efficiency(&self, run: &RunResult) -> f64 {
        self.throughput_gops(run) / self.dse.total_resources.dsp as f64
    }

    /// The estimator's predicted cycles for one inference — the job-cost
    /// hint behind the serving runtime's shortest-predicted-job-first
    /// dispatch. Summed over the per-layer estimates for the *deployed*
    /// strategy: if the per-layer `(mode, dataflow)` choices were forced
    /// away from the DSE winners (see [`Framework::build_with`]), the
    /// latency model is re-evaluated for what actually runs rather than
    /// reusing the winners' cached estimates.
    pub fn predicted_cycles(&self) -> f64 {
        let bw = self.device.instance_bandwidth(self.dse.design.ni);
        hybriddnn_estimator::latency::strategy_network_cycles(
            &self.dse.design.accel,
            self.dse
                .per_layer
                .iter()
                .map(|c| (c.mode, c.dataflow, &c.workload)),
            bw,
        )
    }

    /// A [`ServiceConfig`] pre-filled with this deployment's bandwidth
    /// share and a memoized estimator cost hint (the latency model is
    /// re-evaluated at most once per distinct input shape, not per
    /// request); tune it with the `with_*` methods and pass it to
    /// [`Deployment::into_service`].
    pub fn service_config(&self, mode: SimMode) -> ServiceConfig {
        let bw = self.device.instance_bandwidth(self.dse.design.ni);
        let accel = self.dse.design.accel;
        let per_layer: Vec<_> = self
            .dse
            .per_layer
            .iter()
            .map(|c| (c.mode, c.dataflow, c.workload))
            .collect();
        let hints = CostHints::from_fn(move |_shape| {
            hybriddnn_estimator::latency::strategy_network_cycles(
                &accel,
                per_layer.iter().map(|(m, d, w)| (*m, *d, w)),
                bw,
            )
        })
        .with_weight_fraction(self.weight_fraction());
        ServiceConfig::new(mode, bw).with_cost_hints(Arc::new(hints))
    }

    /// The fraction of one inference's data traffic that is **weights
    /// and biases** — the batch-invariant share that the simulator's
    /// batched replay pays once per dispatched group instead of once
    /// per request. Feeds the serving runtime's
    /// `O(weights + B·activations)` batch cost model
    /// ([`CostHints::with_weight_fraction`]).
    pub fn weight_fraction(&self) -> f64 {
        let mut weights = 0u64;
        let mut acts = 0u64;
        for c in &self.dse.per_layer {
            let w = &c.workload;
            weights += (w.k * w.c * w.r * w.s + w.k) as u64;
            acts += (w.c * w.in_h * w.in_w + w.k * w.out_h * w.out_w) as u64;
        }
        if weights + acts == 0 {
            return 0.0;
        }
        weights as f64 / (weights + acts) as f64
    }

    /// Consumes the deployment and starts a concurrent, batching
    /// inference service over it (see [`hybriddnn_runtime`]). Use
    /// [`Deployment::service_config`] to build `config` so the
    /// bandwidth share and cost hint match the deployment.
    ///
    /// # Errors
    /// [`RuntimeError::InvalidConfig`] for degenerate configurations
    /// (zero workers, zero queue capacity, …) — nothing is spawned.
    ///
    /// [`RuntimeError::InvalidConfig`]: hybriddnn_runtime::RuntimeError::InvalidConfig
    pub fn into_service(self, config: ServiceConfig) -> Result<InferenceService, RuntimeError> {
        InferenceService::try_start(Arc::new(self.compiled), config)
    }

    /// Runs a batch of images across the deployment's `NI` batch-parallel
    /// instances (each instance processes every `NI`-th image on its own
    /// simulator session) and reports the batch results plus the device
    /// makespan in cycles — the steady-state throughput picture behind
    /// Table 4's GOPS. Each instance executes its strided share through
    /// the simulator's batched replay, so its weight traversal is paid
    /// once, not once per image (`O(weights + B·activations)`).
    ///
    /// # Errors
    /// Propagates the first simulator failure.
    pub fn run_batch(&self, inputs: &[Tensor], mode: SimMode) -> Result<BatchResult, FlowError> {
        let ni = self.dse.design.ni;
        let mut runs: Vec<Option<RunResult>> = (0..inputs.len()).map(|_| None).collect();
        let mut instance_cycles = vec![0.0f64; ni];
        for (instance, cycles) in instance_cycles.iter_mut().enumerate() {
            let mut sim = self.simulator(mode);
            let (idxs, mine): (Vec<usize>, Vec<Tensor>) = inputs
                .iter()
                .enumerate()
                .filter(|(i, _)| i % ni == instance)
                .map(|(i, t)| (i, t.clone()))
                .unzip();
            let results = sim.run_batch_results(&self.compiled, &mine);
            for (i, result) in idxs.into_iter().zip(results) {
                let run = result?;
                *cycles += run.total_cycles;
                runs[i] = Some(run);
            }
        }
        let makespan_cycles = instance_cycles.iter().copied().fold(0.0, f64::max);
        Ok(BatchResult {
            runs: runs
                .into_iter()
                .map(|r| r.expect("every image assigned"))
                .collect(),
            makespan_cycles,
        })
    }
}

/// The result of a batched run across all instances.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-image results, in input order.
    pub runs: Vec<RunResult>,
    /// Device makespan in cycles (the slowest instance's total).
    pub makespan_cycles: f64,
}

impl BatchResult {
    /// Aggregate device throughput in GOPS at `freq_mhz`.
    pub fn throughput_gops(&self, freq_mhz: f64) -> f64 {
        let ops: u64 = self
            .runs
            .iter()
            .flat_map(|r| r.stage_stats.iter().map(|s| s.ops))
            .sum();
        if self.makespan_cycles == 0.0 {
            return 0.0;
        }
        ops as f64 / (self.makespan_cycles / (freq_mhz * 1e6)) / 1e9
    }

    /// Images per second at `freq_mhz`.
    pub fn images_per_second(&self, freq_mhz: f64) -> f64 {
        self.runs.len() as f64 / (self.makespan_cycles / (freq_mhz * 1e6))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybriddnn_estimator::ConvMode;
    use hybriddnn_model::{reference, synth, zoo};

    fn pynq_framework() -> Framework {
        Framework::new(FpgaSpec::pynq_z1(), Profile::pynq_z1())
    }

    #[test]
    fn end_to_end_tiny_cnn() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 1).unwrap();
        let deployment = pynq_framework().build(&net).unwrap();
        let input = synth::tensor(net.input_shape(), 2);
        let run = deployment.run(&input, SimMode::Functional).unwrap();
        let golden = reference::run_network(&net, &input).unwrap();
        assert!(run.output.max_abs_diff(&golden) < 1e-2);
        assert!(deployment.latency_ms(&run) > 0.0);
        assert!(deployment.throughput_gops(&run) > 0.0);
        assert!(deployment.power().total_w() > 0.0);
        assert!(deployment.energy_efficiency(&run) > 0.0);
        assert!(deployment.dsp_efficiency(&run) > 0.0);
    }

    #[test]
    fn batched_run_scales_with_instances() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 3).unwrap();
        let deployment = pynq_framework().build(&net).unwrap();
        let inputs: Vec<_> = (0..4)
            .map(|i| synth::tensor(net.input_shape(), i))
            .collect();
        let batch = deployment.run_batch(&inputs, SimMode::Functional).unwrap();
        assert_eq!(batch.runs.len(), 4);
        // Each image's output matches its own reference.
        for (run, input) in batch.runs.iter().zip(&inputs) {
            let golden = reference::run_network(&net, input).unwrap();
            assert!(run.output.max_abs_diff(&golden) < 1e-2);
        }
        // NI=1 on this deployment: makespan = sum of per-image cycles.
        let sum: f64 = batch.runs.iter().map(|r| r.total_cycles).sum();
        assert!((batch.makespan_cycles - sum).abs() < 1e-9);
        assert!(batch.throughput_gops(100.0) > 0.0);
        assert!(batch.images_per_second(100.0) > 0.0);
    }

    #[test]
    fn build_with_forces_configuration() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 2).unwrap();
        let fw = pynq_framework();
        let mut dse = DseEngine::new(fw.device().clone(), Profile::pynq_z1())
            .explore(&net)
            .unwrap();
        // Force everything spatial.
        for c in &mut dse.per_layer {
            c.mode = ConvMode::Spatial;
        }
        let deployment = fw.build_with(&net, dse).unwrap();
        for l in deployment.compiled.layers() {
            assert_eq!(l.plan().mode, ConvMode::Spatial);
        }
    }

    #[test]
    fn cost_hint_tracks_deployed_strategy() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 4).unwrap();
        let fw = pynq_framework();
        let dse = DseEngine::new(fw.device().clone(), Profile::pynq_z1())
            .explore(&net)
            .unwrap();
        let winning = fw.build_with(&net, dse.clone()).unwrap();
        // The winning deployment's hint matches the DSE objective.
        assert!((winning.predicted_cycles() - dse.total_cycles).abs() < 1e-6);
        // Forcing a slower strategy must change the hint: the SJF cost
        // hint describes what actually runs, not the DSE winner.
        let mut forced = dse.clone();
        for c in &mut forced.per_layer {
            c.mode = ConvMode::Spatial;
        }
        let deployed = fw.build_with(&net, forced).unwrap();
        if dse.per_layer.iter().any(|c| c.mode != ConvMode::Spatial) {
            assert!(deployed.predicted_cycles() > winning.predicted_cycles());
        }
        let config = deployed.service_config(SimMode::Functional);
        let shape = deployed.compiled.input_shape();
        assert!((config.cost_hints.cycles(shape) - deployed.predicted_cycles()).abs() < 1e-9);
        // Memoized: pricing the same shape again runs no new estimation.
        config.cost_hints.cycles(shape);
        assert_eq!(config.cost_hints.estimator_calls(), 1);
    }

    #[test]
    fn into_service_rejects_degenerate_config() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 5).unwrap();
        let deployment = pynq_framework().build(&net).unwrap();
        let mut config = deployment.service_config(SimMode::TimingOnly);
        config.workers = 0;
        match deployment.into_service(config) {
            Err(RuntimeError::InvalidConfig { detail }) => {
                assert!(detail.contains("workers"), "{detail}")
            }
            Ok(_) => panic!("zero-worker config must not start a service"),
            Err(e) => panic!("expected InvalidConfig, got {e:?}"),
        }
    }

    #[test]
    fn flow_error_displays() {
        let e = FlowError::Dse(DseError::EmptyNetwork);
        assert!(e.to_string().contains("dse"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
