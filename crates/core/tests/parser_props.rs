//! Property-based tests of the Step-1 parser: model text round-trips,
//! and arbitrary junk never panics — it errors with a line number.

use hybriddnn::model::{Conv2d, Layer, LayerKind, MaxPool2d, Network, Padding, Shape};
use hybriddnn::parser::{model_to_text, parse_fpga, parse_model, ParseError};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum LayerSpec {
    Conv {
        out: usize,
        kernel: usize,
        stride: usize,
        relu: bool,
        bias: bool,
    },
    Pool,
    Fc {
        out: usize,
        relu: bool,
    },
}

fn layers_strategy() -> impl Strategy<Value = Vec<LayerSpec>> {
    prop::collection::vec(
        prop_oneof![
            (
                1usize..20,
                prop_oneof![Just(1usize), Just(3), Just(5)],
                1usize..3,
                any::<bool>(),
                any::<bool>()
            )
                .prop_map(|(out, kernel, stride, relu, bias)| LayerSpec::Conv {
                    out,
                    kernel,
                    stride,
                    relu,
                    bias
                }),
            Just(LayerSpec::Pool),
            (1usize..20, any::<bool>()).prop_map(|(out, relu)| LayerSpec::Fc { out, relu }),
        ],
        1..6,
    )
}

/// Builds a network from specs, skipping layers that would be
/// geometrically inconsistent at that point in the chain.
fn build_network(specs: &[LayerSpec]) -> Option<Network> {
    let input = Shape::new(3, 32, 32);
    let mut shape = input;
    let mut layers = Vec::new();
    let mut seen_fc = false;
    for (i, spec) in specs.iter().enumerate() {
        let layer = match spec {
            LayerSpec::Conv {
                out,
                kernel,
                stride,
                relu,
                bias,
            } => {
                if seen_fc {
                    continue;
                }
                Layer::new(
                    format!("c{i}"),
                    LayerKind::Conv(Conv2d {
                        in_channels: shape.c,
                        out_channels: *out,
                        kernel_h: *kernel,
                        kernel_w: *kernel,
                        stride: *stride,
                        padding: Padding::same(kernel / 2),
                        activation: if *relu {
                            hybriddnn::model::Activation::Relu
                        } else {
                            hybriddnn::model::Activation::None
                        },
                        bias: *bias,
                    }),
                )
            }
            LayerSpec::Pool => {
                if seen_fc
                    || !shape.h.is_multiple_of(2)
                    || !shape.w.is_multiple_of(2)
                    || shape.h < 2
                {
                    continue;
                }
                Layer::new(format!("p{i}"), LayerKind::MaxPool(MaxPool2d::new(2)))
            }
            LayerSpec::Fc { out, relu } => {
                seen_fc = true;
                let mut fc = hybriddnn::model::FullyConnected::new(shape.len(), *out);
                fc.activation = if *relu {
                    hybriddnn::model::Activation::Relu
                } else {
                    hybriddnn::model::Activation::None
                };
                Layer::new(format!("f{i}"), LayerKind::Fc(fc))
            }
        };
        shape = layer.infer_shape(shape).ok()?;
        layers.push(layer);
    }
    if layers.is_empty() {
        return None;
    }
    Network::new(input, layers).ok()
}

proptest! {
    /// Any network expressible in the format survives
    /// render → parse → render.
    #[test]
    fn model_text_roundtrips(specs in layers_strategy()) {
        let Some(net) = build_network(&specs) else { return Ok(()); };
        let text = model_to_text(&net);
        let parsed = parse_model(&text).expect("rendered text parses");
        prop_assert_eq!(&parsed, &net);
        prop_assert_eq!(model_to_text(&parsed), text);
    }

    /// The parser never panics on junk; syntax errors carry the right
    /// 1-based line number.
    #[test]
    fn junk_never_panics(lines in prop::collection::vec("[ -~]{0,30}", 0..10)) {
        let text = lines.join("\n");
        match parse_model(&text) {
            Ok(_) => {}
            Err(ParseError::Syntax { line, .. }) => {
                prop_assert!(line >= 1 && line <= lines.len().max(1));
            }
            Err(_) => {}
        }
        let _ = parse_fpga(&text); // must also not panic
    }

    /// FPGA specs round-trip through the parser's own vocabulary.
    #[test]
    fn fpga_spec_roundtrips(
        dies in 1usize..5,
        lut in 1_000u64..1_000_000,
        dsp in 10u64..10_000,
        bram in 10u64..5_000,
        mhz in 1u32..500,
        bw in 1u32..1_000,
        ports in 1usize..10,
    ) {
        let text = format!(
            "name X\ndies {dies}\ndie_lut {lut}\ndie_dsp {dsp}\ndie_bram18 {bram}\n\
             bram_width 36\nfreq_mhz {mhz}\nbw_words {bw}\nmax_instances {ports}\n"
        );
        let spec = parse_fpga(&text).expect("well-formed spec parses");
        prop_assert_eq!(spec.dies(), dies);
        prop_assert_eq!(spec.die_resources(), hybriddnn::Resources::new(lut, dsp, bram));
        prop_assert_eq!(spec.freq_mhz(), mhz as f64);
        prop_assert_eq!(spec.ddr_words_per_cycle(), bw as f64);
        prop_assert_eq!(spec.max_instances(), ports);
    }
}
