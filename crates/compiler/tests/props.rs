//! Property-based tests of the compiler: every program it emits for a
//! random layer/strategy/configuration respects the machine's physical
//! limits — buffer capacities, encodable fields, and balanced token
//! protocols — and its memory map never aliases.

use hybriddnn_compiler::{Compiler, MappingStrategy};
use hybriddnn_estimator::{AcceleratorConfig, ConvMode, Dataflow};
use hybriddnn_isa::{Instruction, LoadKind};
use hybriddnn_model::{synth, NetworkBuilder, Shape};
use hybriddnn_winograd::TileConfig;
use proptest::prelude::*;

fn cfg_strategy() -> impl Strategy<Value = AcceleratorConfig> {
    (
        prop_oneof![Just(TileConfig::F2x2), Just(TileConfig::F4x4)],
        prop_oneof![
            Just((2usize, 2usize)),
            Just((4, 4)),
            Just((4, 2)),
            Just((8, 4))
        ],
    )
        .prop_map(|(tile, (pi, po))| AcceleratorConfig::new(pi, po, tile))
}

#[derive(Debug, Clone)]
struct NetSpec {
    in_c: usize,
    hw: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    pool: bool,
    fc: bool,
    mode: ConvMode,
    dataflow: Dataflow,
}

fn net_strategy() -> impl Strategy<Value = NetSpec> {
    (
        1usize..8,
        prop_oneof![Just(8usize), Just(12), Just(16), Just(20)],
        1usize..10,
        prop_oneof![Just(1usize), Just(3), Just(5), Just(7)],
        prop_oneof![Just(1usize), Just(2)],
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(in_c, hw, out_c, kernel, stride, pool, fc, wino, is)| NetSpec {
                in_c,
                hw,
                out_c,
                kernel,
                stride,
                pool,
                fc,
                mode: if wino {
                    ConvMode::Winograd
                } else {
                    ConvMode::Spatial
                },
                dataflow: if is {
                    Dataflow::InputStationary
                } else {
                    Dataflow::WeightStationary
                },
            },
        )
}

fn build(spec: &NetSpec, cfg: AcceleratorConfig) -> Option<hybriddnn_compiler::CompiledNetwork> {
    let conv = hybriddnn_model::Conv2d {
        in_channels: spec.in_c,
        out_channels: spec.out_c,
        kernel_h: spec.kernel,
        kernel_w: spec.kernel,
        stride: spec.stride,
        padding: hybriddnn_model::Padding::same(spec.kernel / 2),
        activation: hybriddnn_model::Activation::Relu,
        bias: true,
    };
    let mut b = NetworkBuilder::new(Shape::new(spec.in_c, spec.hw, spec.hw)).conv_cfg("c", conv);
    // Pooling needs an even post-conv map.
    let post = (spec.hw + 2 * (spec.kernel / 2) - spec.kernel) / spec.stride + 1;
    let pooled = spec.pool && post.is_multiple_of(2);
    if pooled {
        b = b.max_pool("p", 2);
    }
    if spec.fc {
        b = b.fc("f", 5);
    }
    let mut net = b.build().ok()?;
    synth::bind_random(&mut net, 99).ok()?;
    let n = net.layers().iter().filter(|l| l.is_compute()).count();
    let strategy = MappingStrategy::new(vec![(spec.mode, spec.dataflow); n]);
    Compiler::new(cfg).compile(&net, &strategy).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every emitted LOAD lands inside its buffer; every COMP/SAVE base
    /// is within the double-buffered capacity; everything encodes.
    #[test]
    fn programs_respect_buffer_capacities(spec in net_strategy(), cfg in cfg_strategy()) {
        let Some(compiled) = build(&spec, cfg) else { return Ok(()); };
        let icap = 2 * cfg.input_buffer_words();
        let wcap = 2 * cfg.weight_buffer_words();
        let ocap = 2 * cfg.output_buffer_words();
        for layer in compiled.layers() {
            prop_assert!(layer.program().encode().is_ok());
            for inst in layer.program().instructions() {
                match inst {
                    Instruction::Load(l) => {
                        let end = l.buff_base as usize + l.words() as usize;
                        match l.kind {
                            LoadKind::Input => prop_assert!(end <= icap, "inp load {end}/{icap}"),
                            LoadKind::Weight => prop_assert!(end <= wcap, "wgt load {end}/{wcap}"),
                            LoadKind::Bias => prop_assert!(end <= 8192),
                        }
                    }
                    Instruction::Comp(c) => {
                        prop_assert!((c.inp_base as usize) < icap);
                        prop_assert!((c.wgt_base as usize) < wcap);
                        let out_end = c.out_base as usize
                            + c.oc_vecs as usize * cfg.po
                            * c.out_rows as usize * c.out_w as usize;
                        prop_assert!(out_end <= ocap, "comp out {out_end}/{ocap}");
                    }
                    Instruction::Save(s) => {
                        let end = s.buff_base as usize
                            + s.oc_vecs as usize * cfg.po
                            * s.rows as usize * s.out_w as usize;
                        prop_assert!(end <= ocap, "save {end}/{ocap}");
                    }
                }
            }
        }
    }

    /// Token protocol balance: ready/free tokens pair exactly, and no
    /// consumer ever waits before its producer has been enqueued.
    #[test]
    fn token_protocol_is_balanced(spec in net_strategy(), cfg in cfg_strategy()) {
        let Some(compiled) = build(&spec, cfg) else { return Ok(()); };
        for layer in compiled.layers() {
            let mut inp = 0i64;
            let mut wgt = 0i64;
            let mut out = 0i64;
            let mut inp_free = 2i64;
            let mut wgt_free = 2i64;
            for inst in layer.program().instructions() {
                match inst {
                    Instruction::Load(l) => match l.kind {
                        LoadKind::Input => {
                            if l.wait_free { inp_free -= 1; }
                            prop_assert!(inp_free >= 0, "input slot underflow");
                            if l.signal_ready { inp += 1; }
                        }
                        LoadKind::Weight => {
                            if l.wait_free { wgt_free -= 1; }
                            prop_assert!(wgt_free >= 0, "weight slot underflow");
                            if l.signal_ready { wgt += 1; }
                        }
                        LoadKind::Bias => {}
                    },
                    Instruction::Comp(c) => {
                        if c.wait_inp { inp -= 1; }
                        if c.wait_wgt { wgt -= 1; }
                        prop_assert!(inp >= 0 && wgt >= 0, "COMP waits on missing token");
                        if c.free_inp { inp_free += 1; }
                        if c.free_wgt { wgt_free += 1; }
                        if c.acc_final { out += 1; }
                    }
                    Instruction::Save(s) => {
                        if s.wait_data { out -= 1; }
                        prop_assert!(out >= 0, "SAVE waits on missing token");
                    }
                }
            }
            prop_assert_eq!(inp, 0, "dangling input tokens");
            prop_assert_eq!(wgt, 0, "dangling weight tokens");
            prop_assert_eq!(out, 0, "dangling output tokens");
        }
    }

    /// The memory map's regions and data segments never alias.
    #[test]
    fn memory_map_never_aliases(spec in net_strategy(), cfg in cfg_strategy()) {
        let Some(compiled) = build(&spec, cfg) else { return Ok(()); };
        let mut spans: Vec<(u64, u64)> = compiled
            .memory_map()
            .regions()
            .iter()
            .map(|r| (r.base, r.base + r.words()))
            .collect();
        for (base, words) in compiled.data_segments() {
            spans.push((*base, base + words.len() as u64));
        }
        spans.sort();
        for pair in spans.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].0, "overlap: {pair:?}");
        }
    }
}
