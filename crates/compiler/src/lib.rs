//! The HybridDNN compiler: lowers a DNN model plus a mapping strategy to
//! executable accelerator instructions and DRAM data images
//! ("Inst. & Data Files", Figure 1 Step 3).
//!
//! The compiler owns all the data-organization machinery of §4.2.3–§4.3:
//!
//! * [`layout`] — the WINO/SPAT feature-map layouts of Figure 5 and the
//!   DRAM region table (activation regions carry the *consumer's* zero
//!   halo, so loads are pure rectangular block copies).
//! * [`plan`] — per-layer execution plans: CONV mode, dataflow, fused
//!   pooling, the §4.2.4 partition into row groups × width blocks ×
//!   weight groups (the `IW_BLK` / `OC_BLK` / `OW_BLK` numbers of the
//!   SAVE instruction), and FC channel chunking.
//! * [`image`] — offline data preparation: Winograd weight transform
//!   (`G g Gᵀ`, re-quantized like the hardware stores it), weight/bias
//!   DRAM images in exact buffer load order, FC weight permutation to the
//!   feature-map storage order.
//! * [`lower`] — instruction emission for both IS and WS dataflows with
//!   ping-pong buffer assignment and handshake-token dependency flags.
//!
//! # Example
//!
//! ```
//! use hybriddnn_compiler::{Compiler, MappingStrategy};
//! use hybriddnn_estimator::AcceleratorConfig;
//! use hybriddnn_model::{synth, zoo};
//! use hybriddnn_winograd::TileConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut net = zoo::tiny_cnn();
//! synth::bind_random(&mut net, 1)?;
//! let cfg = AcceleratorConfig::new(4, 4, TileConfig::F2x2);
//! let compiled = Compiler::new(cfg).compile(&net, &MappingStrategy::all_winograd(&net))?;
//! assert_eq!(compiled.layers().len(), 2); // conv(+pool fused) and fc
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
mod compile;
mod error;
pub mod image;
pub mod layout;
pub mod lower;
pub mod plan;

pub use artifacts::{read_artifacts, write_artifacts, Artifacts};
pub use compile::{CompiledLayer, CompiledNetwork, Compiler, QuantSpec};
pub use error::CompileError;
pub use layout::{FmapRegion, MemoryMap};
pub use plan::{LayerPlan, MappingStrategy};
