use hybriddnn_isa::IsaError;
use hybriddnn_model::ModelError;
use hybriddnn_winograd::WinogradError;
use std::fmt;

/// Errors produced while compiling a network for the accelerator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// A layer cannot be mapped onto the configured accelerator (e.g. a
    /// single minimal work unit exceeds an on-chip buffer).
    Infeasible {
        /// Layer name.
        layer: String,
        /// Human-readable description.
        detail: String,
    },
    /// The network shape is unsupported by the lowering (e.g. a pooling
    /// layer with no preceding convolution to fuse into).
    Unsupported {
        /// Layer name.
        layer: String,
        /// Human-readable description.
        detail: String,
    },
    /// The network is missing bound parameters.
    MissingWeights {
        /// Layer name.
        layer: String,
    },
    /// An instruction field overflowed while emitting code.
    Isa(IsaError),
    /// An underlying model error.
    Model(ModelError),
    /// An underlying Winograd transform error.
    Winograd(WinogradError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Infeasible { layer, detail } => {
                write!(f, "layer `{layer}` cannot be mapped: {detail}")
            }
            CompileError::Unsupported { layer, detail } => {
                write!(f, "layer `{layer}` is unsupported: {detail}")
            }
            CompileError::MissingWeights { layer } => {
                write!(f, "layer `{layer}` has no bound parameters")
            }
            CompileError::Isa(e) => write!(f, "{e}"),
            CompileError::Model(e) => write!(f, "{e}"),
            CompileError::Winograd(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Isa(e) => Some(e),
            CompileError::Model(e) => Some(e),
            CompileError::Winograd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for CompileError {
    fn from(e: IsaError) -> Self {
        CompileError::Isa(e)
    }
}

impl From<ModelError> for CompileError {
    fn from(e: ModelError) -> Self {
        CompileError::Model(e)
    }
}

impl From<WinogradError> for CompileError {
    fn from(e: WinogradError) -> Self {
        CompileError::Winograd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: CompileError = ModelError::EmptyNetwork.into();
        assert!(e.to_string().contains("no layers"));
        let e: CompileError = IsaError::InvalidOpcode { opcode: 7 }.into();
        assert!(std::error::Error::source(&e).is_some());
        let e = CompileError::MissingWeights {
            layer: "conv1".into(),
        };
        assert!(e.to_string().contains("conv1"));
    }
}
