//! Per-layer execution plans: the §4.2.4 partitioning plus the practical
//! blocking the instruction set expresses (width blocks — the SAVE
//! instruction's `IW_BLK`/`OW_BLK` numbers — and FC channel chunking).

use crate::CompileError;
use hybriddnn_estimator::{AcceleratorConfig, ConvMode, Dataflow, LayerWorkload};
use hybriddnn_model::{LayerKind, Network};

/// The complete lowering plan for one compute stage (a CONV or FC layer,
/// with an optionally fused max-pool).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerPlan {
    /// CONV mode.
    pub mode: ConvMode,
    /// Dataflow strategy.
    pub dataflow: Dataflow,
    /// The layer's geometry.
    pub wl: LayerWorkload,
    /// Fused max-pool window (0/1 = none).
    pub pool: usize,
    /// Output rows per row group (`m`-aligned for Winograd, pool-aligned
    /// always).
    pub rows_per_group: usize,
    /// Number of row groups.
    pub row_groups: usize,
    /// Output columns per width block (last block may be smaller).
    pub width_block: usize,
    /// Number of width blocks.
    pub width_blocks: usize,
    /// Output channels per weight group (multiple of `PO`).
    pub k_per_group: usize,
    /// Number of weight groups (`GK`).
    pub gk: usize,
    /// Input-channel vectors per chunk (= all of them unless this is an
    /// FC layer too wide for the input buffer).
    pub c_chunk_vecs: usize,
    /// Number of input-channel chunks.
    pub c_chunks: usize,
    /// Flattened input store width for FC layers (`H·W·CV·PI` of the
    /// producing region); equals `c` for CONV layers.
    pub c_store: usize,
    /// Fused ReLU.
    pub relu: bool,
    /// Whether a bias vector is added.
    pub bias: bool,
    /// Requantization shift (`QUAN_PARAM`).
    pub quan_shift: i8,
    /// Channel-vector width `PI` of the accelerator this plan targets.
    pub pi: usize,
    /// The Winograd tile configuration of the target accelerator.
    pub tile: hybriddnn_winograd::TileConfig,
}

impl LayerPlan {
    /// Builds a plan for one stage.
    ///
    /// # Errors
    /// Returns [`CompileError::Infeasible`] when no legal blocking fits
    /// the on-chip buffers, or when a dimension exceeds an ISA field.
    #[allow(clippy::too_many_arguments)]
    pub fn compute(
        cfg: &AcceleratorConfig,
        name: &str,
        mode: ConvMode,
        dataflow: Dataflow,
        wl: LayerWorkload,
        pool: usize,
        c_store: usize,
        relu: bool,
        bias: bool,
    ) -> Result<LayerPlan, CompileError> {
        let infeasible = |detail: String| CompileError::Infeasible {
            layer: name.to_string(),
            detail,
        };
        let mode = if wl.supports_winograd() {
            mode
        } else {
            ConvMode::Spatial
        };
        let pool = if pool <= 1 { 0 } else { pool };
        let pi = cfg.pi;
        let is_fc = wl.out_h == 1 && wl.out_w == 1;
        // FC layers always run Spatial (a 1×1 Winograd tile wastes
        // PT²/m² of the PE) and Weight-Stationary ordering (channel
        // chunks must stay innermost so the accumulator survives).
        let (mode, dataflow) = if is_fc {
            (ConvMode::Spatial, Dataflow::WeightStationary)
        } else {
            (mode, dataflow)
        };

        // Row grouping: m rows for Winograd, 1 for Spatial, aligned up to
        // the pooling window so SAVE sees whole vertical pool windows.
        let base_rows = match mode {
            ConvMode::Spatial => 1,
            ConvMode::Winograd => cfg.m(),
        };
        let rows_per_group = if pool > 0 {
            lcm(base_rows, pool)
        } else {
            base_rows
        };
        if rows_per_group > 15 {
            return Err(infeasible(format!(
                "row group of {rows_per_group} exceeds the 4-bit OUT_ROWS field"
            )));
        }
        if pool > 0 && (!wl.out_h.is_multiple_of(pool) || !wl.out_w.is_multiple_of(pool)) {
            return Err(infeasible(format!(
                "output {}x{} not divisible by fused pool {pool}",
                wl.out_h, wl.out_w
            )));
        }
        let row_groups = wl.out_h.div_ceil(rows_per_group);

        // Input-channel chunking (FC layers only; CONV keeps C whole).
        let cv_store = c_store.div_ceil(pi);
        let (c_chunk_vecs, c_chunks) = if is_fc {
            let cap_vecs = cfg.input_buffer_words() / pi;
            let chunk = cv_store.min(cap_vecs).min(1024);
            if chunk == 0 {
                return Err(infeasible(
                    "input buffer cannot hold one channel vector".into(),
                ));
            }
            (chunk, cv_store.div_ceil(chunk))
        } else {
            if cv_store > 1024 {
                return Err(infeasible(format!(
                    "{cv_store} input-channel vectors exceed the IC_VECS field"
                )));
            }
            (cv_store, 1)
        };

        // Weight grouping + width blocking: shared with the estimator's
        // partitioning (one source of truth for the §4.2.4 blocking).
        let align = lcm(
            if mode == ConvMode::Winograd {
                cfg.m()
            } else {
                1
            },
            pool.max(1),
        );
        let (width_block, width_blocks, k_per_group, gk) = if is_fc {
            // FC: weight group bounded by the chunk-padded image width.
            let words_per_k = c_chunks * c_chunk_vecs * pi;
            let wcap = cfg.weight_buffer_words();
            let k_fit = (wcap / words_per_k) / cfg.po * cfg.po;
            if k_fit == 0 {
                return Err(infeasible(format!(
                    "one output channel needs {words_per_k} weight words; buffer holds {wcap}"
                )));
            }
            let kpg = k_fit.min(wl.k.next_multiple_of(cfg.po)).min(511 * cfg.po);
            (1, 1, kpg, wl.k.div_ceil(kpg))
        } else {
            let p =
                hybriddnn_estimator::Partition::compute_with(cfg, mode, &wl, rows_per_group, align)
                    .ok_or_else(|| {
                        infeasible("no legal blocking fits the on-chip buffers".to_string())
                    })?;
            (p.width_block, p.width_blocks, p.k_per_group, p.gk)
        };

        Ok(LayerPlan {
            mode,
            dataflow,
            wl,
            pool,
            rows_per_group,
            row_groups,
            width_block,
            width_blocks,
            k_per_group,
            gk,
            c_chunk_vecs,
            c_chunks,
            c_store,
            relu,
            bias,
            quan_shift: 0,
            pi,
            tile: cfg.tile,
        })
    }

    /// Whether this stage is an FC layer (1×1 output geometry).
    pub fn is_fc(&self) -> bool {
        self.wl.out_h == 1 && self.wl.out_w == 1
    }

    /// Output rows of row group `g` (the last group may be short).
    pub fn group_rows(&self, g: usize) -> usize {
        let start = g * self.rows_per_group;
        self.rows_per_group.min(self.wl.out_h - start)
    }

    /// Output columns of width block `b` (the last block may be short).
    pub fn block_cols(&self, b: usize) -> usize {
        let start = b * self.width_block;
        self.width_block.min(self.wl.out_w - start)
    }

    /// Output channels of weight group `gk` (the last may be short).
    pub fn group_k(&self, gk: usize) -> usize {
        let start = gk * self.k_per_group;
        self.k_per_group.min(self.wl.k - start)
    }

    /// Input-channel vector count over the store width (`⌈c_store/PI⌉`).
    pub fn cv_store(&self) -> usize {
        self.c_store.div_ceil(self.pi)
    }

    /// Input-channel vectors of chunk `c` (the last may be short).
    pub fn chunk_vecs(&self, c: usize) -> usize {
        let start = c * self.c_chunk_vecs;
        self.c_chunk_vecs.min(self.cv_store() - start)
    }

    /// Total COMP work units (`row_groups × width_blocks × GK ×
    /// decomposition blocks × chunks`).
    pub fn comp_units(&self) -> usize {
        self.row_groups
            * self.width_blocks
            * self.gk
            * self.wl.wino_blocks_for(self.mode)
            * self.c_chunks
    }
}

/// Extension trait hook: block count respecting the mode.
trait WinoBlocksFor {
    fn wino_blocks_for(&self, mode: ConvMode) -> usize;
}

impl WinoBlocksFor for LayerWorkload {
    fn wino_blocks_for(&self, mode: ConvMode) -> usize {
        match mode {
            ConvMode::Spatial => 1,
            ConvMode::Winograd => self.wino_blocks(),
        }
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

/// The per-layer software choices — the DSE's "SW parameters"
/// (`{mode_l}`, `{dataflow_l}` of Table 2), indexed by *compute* layer
/// order (pooling layers are fused and carry no choice).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingStrategy {
    choices: Vec<(ConvMode, Dataflow)>,
}

impl MappingStrategy {
    /// Builds a strategy from explicit per-compute-layer choices.
    pub fn new(choices: Vec<(ConvMode, Dataflow)>) -> Self {
        MappingStrategy { choices }
    }

    /// Winograd + WS everywhere (strided layers fall back to Spatial
    /// during planning).
    pub fn all_winograd(net: &Network) -> Self {
        Self::uniform(net, ConvMode::Winograd, Dataflow::WeightStationary)
    }

    /// Spatial + WS everywhere — the "conventional architecture" baseline
    /// of §6.1.
    pub fn all_spatial(net: &Network) -> Self {
        Self::uniform(net, ConvMode::Spatial, Dataflow::WeightStationary)
    }

    /// A uniform strategy.
    pub fn uniform(net: &Network, mode: ConvMode, dataflow: Dataflow) -> Self {
        let n = net.layers().iter().filter(|l| l.is_compute()).count();
        MappingStrategy {
            choices: vec![(mode, dataflow); n],
        }
    }

    /// The per-compute-layer choices.
    pub fn choices(&self) -> &[(ConvMode, Dataflow)] {
        &self.choices
    }

    /// The choice for compute layer `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn choice(&self, i: usize) -> (ConvMode, Dataflow) {
        self.choices[i]
    }

    /// Validates the strategy against a network.
    ///
    /// # Errors
    /// Returns [`CompileError::Unsupported`] if the choice count differs
    /// from the network's compute-layer count.
    pub fn check(&self, net: &Network) -> Result<(), CompileError> {
        let n = net.layers().iter().filter(|l| l.is_compute()).count();
        if self.choices.len() != n {
            return Err(CompileError::Unsupported {
                layer: "<strategy>".to_string(),
                detail: format!("{} choices for {n} compute layers", self.choices.len()),
            });
        }
        Ok(())
    }
}

/// Helper: count compute layers (CONV + FC) of a network.
pub fn compute_layer_count(net: &Network) -> usize {
    net.layers()
        .iter()
        .filter(|l| matches!(l.kind(), LayerKind::Conv(_) | LayerKind::Fc(_)))
        .count()
}
