//! Feature-map data layouts (paper Figure 5) and the DRAM region table.
//!
//! Each activation tensor lives in external memory in one of two layouts,
//! chosen to match the CONV mode of the layer that will *consume* it
//! ("the required data reordering is offloaded to the SAVE module, which
//! ensures proper data layouts for different CONV modes chosen by the
//! successive layer", §4.3).
//!
//! Elements are vectors of `PI` channels. With padded width `W'` and
//! channel-vector count `CV`:
//!
//! * **SPAT layout** — channel-vector innermost, so the load manager can
//!   broadcast one pixel's channels directly:
//!   `addr = ((y·W' + x)·CV + cv)·PI + lane`
//! * **WINO layout** — column innermost per channel-vector, so the load
//!   manager can stream `PT` consecutive columns of one channel vector
//!   for the tile transform:
//!   `addr = ((y·CV + cv)·W' + x)·PI + lane`
//!
//! Both layouts are y-major, which keeps every `LOAD` a single strided
//! rectangular block copy and lets `SAVE` implement all four transforms
//! (WINO/SPAT → WINO/SPAT) with pure address arithmetic.
//!
//! Regions carry the consumer's zero halo: a region for a `C × H × W`
//! tensor feeding a convolution with padding `(ph, pw)` allocates
//! `(H + 2ph) × (W + 2pw)` and the producer only ever writes the
//! interior, so the halo stays zero and loads never need bounds checks.

use hybriddnn_estimator::ConvMode;

/// A feature-map region in external memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FmapRegion {
    /// Base word address (start of the padded region).
    pub base: u64,
    /// Channels (`C`).
    pub channels: usize,
    /// Unpadded height.
    pub h: usize,
    /// Unpadded width.
    pub w: usize,
    /// Vertical halo (consumer's padding).
    pub pad_h: usize,
    /// Horizontal halo.
    pub pad_w: usize,
    /// Storage layout (the consumer's CONV mode).
    pub layout: ConvMode,
    /// Channel-vector width `PI`.
    pub pi: usize,
}

impl FmapRegion {
    /// Padded height `H'`.
    pub fn padded_h(&self) -> usize {
        self.h + 2 * self.pad_h
    }

    /// Padded width `W'`.
    pub fn padded_w(&self) -> usize {
        self.w + 2 * self.pad_w
    }

    /// Channel-vector count `CV = ⌈C / PI⌉`.
    pub fn cv(&self) -> usize {
        self.channels.div_ceil(self.pi)
    }

    /// Total allocated words (`H' · W' · CV · PI`).
    pub fn words(&self) -> u64 {
        (self.padded_h() * self.padded_w() * self.cv() * self.pi) as u64
    }

    /// Word address of element `(c, py, px)` in *padded* coordinates.
    ///
    /// # Panics
    /// Panics in debug builds if the coordinates exceed the padded extent.
    #[inline]
    pub fn addr_padded(&self, c: usize, py: usize, px: usize) -> u64 {
        debug_assert!(c < self.channels && py < self.padded_h() && px < self.padded_w());
        let cv = c / self.pi;
        let lane = c % self.pi;
        let vec_index = match self.layout {
            ConvMode::Spatial => (py * self.padded_w() + px) * self.cv() + cv,
            ConvMode::Winograd => (py * self.cv() + cv) * self.padded_w() + px,
        };
        self.base + (vec_index * self.pi + lane) as u64
    }

    /// Word address of element `(c, y, x)` in *interior* coordinates
    /// (`(0, 0)` is the first real pixel, inside the halo).
    #[inline]
    pub fn addr(&self, c: usize, y: usize, x: usize) -> u64 {
        self.addr_padded(c, y + self.pad_h, x + self.pad_w)
    }

    /// Interior base address — the `DRAM_BASE` a SAVE instruction uses,
    /// with the halo offset folded in (both layouts are linear in `y` and
    /// `x`, so the fold is exact).
    pub fn interior_base(&self) -> u64 {
        // addr(0, 0, 0) with cv = lane = 0.
        self.addr(0, 0, 0)
    }
}

/// The compiler's DRAM allocation table: one region per activation tensor
/// plus per-layer weight and bias image locations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MemoryMap {
    regions: Vec<FmapRegion>,
    next_free: u64,
}

impl MemoryMap {
    /// Creates an empty memory map.
    pub fn new() -> Self {
        MemoryMap::default()
    }

    /// Allocates a feature-map region, returning its index.
    #[allow(clippy::too_many_arguments)]
    pub fn alloc_region(
        &mut self,
        channels: usize,
        h: usize,
        w: usize,
        pad_h: usize,
        pad_w: usize,
        layout: ConvMode,
        pi: usize,
    ) -> usize {
        let region = FmapRegion {
            base: self.next_free,
            channels,
            h,
            w,
            pad_h,
            pad_w,
            layout,
            pi,
        };
        self.next_free += region.words();
        self.regions.push(region);
        self.regions.len() - 1
    }

    /// Allocates a raw span of `words`, returning its base address
    /// (used for weight and bias images).
    pub fn alloc_raw(&mut self, words: u64) -> u64 {
        let base = self.next_free;
        self.next_free += words;
        base
    }

    /// The region table.
    pub fn regions(&self) -> &[FmapRegion] {
        &self.regions
    }

    /// Region by index.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn region(&self, idx: usize) -> &FmapRegion {
        &self.regions[idx]
    }

    /// Total allocated words.
    pub fn total_words(&self) -> u64 {
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(layout: ConvMode) -> FmapRegion {
        FmapRegion {
            base: 100,
            channels: 6,
            h: 4,
            w: 5,
            pad_h: 1,
            pad_w: 1,
            layout,
            pi: 4,
        }
    }

    #[test]
    fn geometry() {
        let r = region(ConvMode::Spatial);
        assert_eq!(r.padded_h(), 6);
        assert_eq!(r.padded_w(), 7);
        assert_eq!(r.cv(), 2);
        assert_eq!(r.words(), (6 * 7 * 2 * 4) as u64);
    }

    #[test]
    fn spat_layout_is_channel_innermost() {
        let r = region(ConvMode::Spatial);
        // Consecutive channels within a vector are adjacent words.
        assert_eq!(r.addr_padded(1, 0, 0), r.addr_padded(0, 0, 0) + 1);
        // Next channel vector of the same pixel is PI words away.
        assert_eq!(r.addr_padded(4, 0, 0), r.addr_padded(0, 0, 0) + 4);
        // Next pixel is CV*PI words away.
        assert_eq!(r.addr_padded(0, 0, 1), r.addr_padded(0, 0, 0) + 8);
        // Next row is W'*CV*PI words away.
        assert_eq!(r.addr_padded(0, 1, 0), r.addr_padded(0, 0, 0) + 7 * 8);
    }

    #[test]
    fn wino_layout_is_column_innermost() {
        let r = region(ConvMode::Winograd);
        // Next column of the same channel vector is PI words away.
        assert_eq!(r.addr_padded(0, 0, 1), r.addr_padded(0, 0, 0) + 4);
        // Next channel vector is W'*PI words away.
        assert_eq!(r.addr_padded(4, 0, 0), r.addr_padded(0, 0, 0) + 7 * 4);
        // Next row is CV*W'*PI words away.
        assert_eq!(r.addr_padded(0, 1, 0), r.addr_padded(0, 0, 0) + 2 * 7 * 4);
    }

    #[test]
    fn layouts_are_bijections_over_the_region() {
        for layout in [ConvMode::Spatial, ConvMode::Winograd] {
            let r = region(layout);
            let mut seen = std::collections::HashSet::new();
            for c in 0..r.channels {
                for y in 0..r.padded_h() {
                    for x in 0..r.padded_w() {
                        let a = r.addr_padded(c, y, x);
                        assert!(a >= r.base && a < r.base + r.words());
                        assert!(seen.insert(a), "duplicate address {a}");
                    }
                }
            }
            // All words covered except the unused lanes of the last
            // partial channel vector (6 channels in vectors of 4 → 2
            // unused lanes per pixel).
            let expect = r.channels * r.padded_h() * r.padded_w();
            assert_eq!(seen.len(), expect);
        }
    }

    #[test]
    fn interior_base_offsets_halo() {
        let r = region(ConvMode::Spatial);
        assert_eq!(r.addr(0, 0, 0), r.interior_base());
        assert_eq!(r.addr_padded(0, 1, 1), r.interior_base());
        let rw = region(ConvMode::Winograd);
        assert_eq!(rw.addr_padded(0, 1, 1), rw.interior_base());
    }

    #[test]
    fn interior_addresses_are_linear_in_y_and_x() {
        // SAVE folds the unit's (y0, x0) into DRAM_BASE; verify linearity.
        for layout in [ConvMode::Spatial, ConvMode::Winograd] {
            let r = region(layout);
            let dy = r.addr(0, 1, 0) - r.addr(0, 0, 0);
            let dx = r.addr(0, 0, 1) - r.addr(0, 0, 0);
            for y in 0..r.h {
                for x in 0..r.w {
                    assert_eq!(
                        r.addr(0, y, x),
                        r.addr(0, 0, 0) + y as u64 * dy + x as u64 * dx
                    );
                }
            }
        }
    }

    #[test]
    fn memory_map_allocates_disjoint_regions() {
        let mut map = MemoryMap::new();
        let a = map.alloc_region(3, 8, 8, 1, 1, ConvMode::Spatial, 4);
        let b = map.alloc_region(16, 8, 8, 0, 0, ConvMode::Winograd, 4);
        let ra = *map.region(a);
        let rb = *map.region(b);
        assert_eq!(rb.base, ra.base + ra.words());
        let raw = map.alloc_raw(100);
        assert_eq!(raw, rb.base + rb.words());
        assert_eq!(map.total_words(), raw + 100);
        assert_eq!(map.regions().len(), 2);
    }
}
