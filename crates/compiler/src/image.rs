//! Offline data preparation: DRAM weight and bias images in the exact
//! order the accelerator's buffers consume them.
//!
//! Three image families (§4.2.3 "Regarding DNN parameters for Winograd,
//! we perform an offline transformation from pretrained DNN models"):
//!
//! * **Spatial CONV** — per weight group, `[k_local][c][r][s]` (the
//!   natural `KCRS` order, padded to whole `PO` vectors with zero
//!   channels so partial groups compute harmlessly).
//! * **Winograd CONV** — per group, the offline-transformed
//!   `[(br·BS+bs)·PT² + e][k_local][c]` layout of
//!   [`hybriddnn_winograd::gemm::TransformedWeights`], re-quantized to
//!   the weight format when fixed-point is enabled (the hardware stores
//!   transformed weights at weight precision).
//! * **FC** — per group, `[chunk][k_local][c_local]` with the weight
//!   columns *permuted to the feature-map storage order* of the producing
//!   region (the flattened input arrives in `(y, x, cv, lane)` order, not
//!   `CHW`), and chunks zero-padded to uniform width.

use crate::{layout::FmapRegion, plan::LayerPlan, CompileError};
use hybriddnn_estimator::{AcceleratorConfig, ConvMode};
use hybriddnn_model::{quant::QFormat, WeightShape};
use hybriddnn_winograd::gemm::TransformedWeights;

/// A stage's DRAM data: the weight image, per-group word offsets into it,
/// the bias image, and per-group bias offsets.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerImages {
    /// Weight image words.
    pub weights: Vec<f32>,
    /// Word offset of each weight group within the image.
    pub weight_group_offsets: Vec<u64>,
    /// Bias image words (empty when the layer has no bias).
    pub bias: Vec<f32>,
    /// Word offset of each bias group.
    pub bias_group_offsets: Vec<u64>,
}

impl LayerImages {
    /// Words in the weight image of group `gk`.
    pub fn weight_group_words(&self, gk: usize) -> u64 {
        let next = self
            .weight_group_offsets
            .get(gk + 1)
            .copied()
            .unwrap_or(self.weights.len() as u64);
        next - self.weight_group_offsets[gk]
    }
}

/// Builds the weight/bias DRAM images for one stage.
///
/// `fc_src` must be the producing feature-map region for FC layers (it
/// defines the flatten order); ignored for CONV layers.
///
/// # Errors
/// Returns [`CompileError::MissingWeights`] via the caller; this function
/// itself only fails on internal inconsistencies (which panic).
///
/// # Panics
/// Panics if `weights`/`bias` lengths disagree with the plan's geometry.
pub fn build_images(
    cfg: &AcceleratorConfig,
    plan: &LayerPlan,
    weights: &[f32],
    bias: &[f32],
    weight_fmt: Option<QFormat>,
    fc_src: Option<&FmapRegion>,
) -> Result<LayerImages, CompileError> {
    let wl = &plan.wl;
    let po = cfg.po;
    let mut image = Vec::new();
    let mut offsets = Vec::with_capacity(plan.gk);

    if plan.is_fc() {
        let src = fc_src.expect("FC stage requires its source region");
        let permuted = permute_fc_weights(wl.k, wl.c, src, weights);
        let chunk_words = plan.c_chunk_vecs * plan.pi;
        let store = plan.c_store;
        for gk in 0..plan.gk {
            offsets.push(image.len() as u64);
            let k0 = gk * plan.k_per_group;
            let kg = plan.group_k(gk);
            let kg_padded = kg.div_ceil(po) * po;
            for chunk in 0..plan.c_chunks {
                let f0 = chunk * chunk_words;
                for k in 0..kg_padded {
                    for f in 0..chunk_words {
                        let v = if k < kg && f0 + f < store {
                            permuted[(k0 + k) * store + f0 + f]
                        } else {
                            0.0
                        };
                        image.push(quantized(v, weight_fmt));
                    }
                }
            }
        }
    } else {
        // Channel lanes are padded to whole PI vectors (zero weights), so
        // the PE iterates ic_vecs·PI lanes uniformly.
        let c_lanes = plan.cv_store() * plan.pi;
        assert_eq!(weights.len(), wl.k * wl.c * wl.r * wl.s);
        let per_k = wl.c * wl.r * wl.s;
        let per_k_padded = c_lanes * wl.r * wl.s;
        match plan.mode {
            ConvMode::Spatial => {
                for gk in 0..plan.gk {
                    offsets.push(image.len() as u64);
                    let k0 = gk * plan.k_per_group;
                    let kg = plan.group_k(gk);
                    let kg_padded = kg.div_ceil(po) * po;
                    for k in 0..kg_padded {
                        if k < kg {
                            // [c][r][s] with c padded to c_lanes.
                            let src = &weights[(k0 + k) * per_k..(k0 + k + 1) * per_k];
                            image.extend(src.iter().map(|&v| quantized(v, weight_fmt)));
                            image.extend(std::iter::repeat_n(
                                0.0f32,
                                (c_lanes - wl.c) * wl.r * wl.s,
                            ));
                        } else {
                            image.extend(std::iter::repeat_n(0.0f32, per_k_padded));
                        }
                    }
                }
            }
            ConvMode::Winograd => {
                for gk in 0..plan.gk {
                    offsets.push(image.len() as u64);
                    let k0 = gk * plan.k_per_group;
                    let kg = plan.group_k(gk);
                    let kg_padded = kg.div_ceil(po) * po;
                    // Zero-pad both the K slice (whole PO vectors) and the
                    // channel dim (whole PI vectors) before transforming.
                    let mut slice = vec![0.0f32; kg_padded * per_k_padded];
                    for k in 0..kg {
                        for c in 0..wl.c {
                            let src = &weights[((k0 + k) * wl.c + c) * wl.r * wl.s
                                ..((k0 + k) * wl.c + c + 1) * wl.r * wl.s];
                            slice[(k * c_lanes + c) * wl.r * wl.s
                                ..(k * c_lanes + c + 1) * wl.r * wl.s]
                                .copy_from_slice(src);
                        }
                    }
                    let shape = WeightShape::new(kg_padded, c_lanes, wl.r, wl.s);
                    let mut u = TransformedWeights::new(cfg.tile, shape, &slice);
                    if let Some(fmt) = weight_fmt {
                        u.quantize(fmt);
                    }
                    image.extend(u.as_slice().iter().map(|&v| v as f32));
                }
            }
        }
    }

    // Bias image: per-group padded slices.
    let mut bias_image = Vec::new();
    let mut bias_offsets = Vec::with_capacity(plan.gk);
    if plan.bias {
        assert_eq!(bias.len(), wl.k);
        for gk in 0..plan.gk {
            bias_offsets.push(bias_image.len() as u64);
            let k0 = gk * plan.k_per_group;
            let kg = plan.group_k(gk);
            let kg_padded = kg.div_ceil(po) * po;
            for k in 0..kg_padded {
                let v = if k < kg { bias[k0 + k] } else { 0.0 };
                bias_image.push(quantized(v, weight_fmt));
            }
        }
    } else {
        bias_offsets.resize(plan.gk, 0);
    }

    Ok(LayerImages {
        weights: image,
        weight_group_offsets: offsets,
        bias: bias_image,
        bias_group_offsets: bias_offsets,
    })
}

/// Permutes FC weights from the model's `CHW`-flatten column order to the
/// feature-map store order `(y, x, cv, lane)` of the producing region,
/// zero-padding dead lanes. Output is `K × c_store` row-major.
fn permute_fc_weights(k: usize, in_features: usize, src: &FmapRegion, weights: &[f32]) -> Vec<f32> {
    assert_eq!(weights.len(), k * in_features);
    let (h, w, cv, pi) = (src.h, src.w, src.cv(), src.pi);
    let store = h * w * cv * pi;
    assert_eq!(
        in_features,
        src.channels * h * w,
        "FC fan-in mismatch with source region"
    );
    let mut out = vec![0.0f32; k * store];
    for row in 0..k {
        for f in 0..store {
            // Decompose the store index following the SPAT layout
            // (y, x, cv, lane).
            let lane = f % pi;
            let rest = f / pi;
            let cvi = rest % cv;
            let rest = rest / cv;
            let x = rest % w;
            let y = rest / w;
            let c = cvi * pi + lane;
            if c < src.channels {
                let chw = (c * h + y) * w + x;
                out[row * store + f] = weights[row * in_features + chw];
            }
        }
    }
    out
}

fn quantized(v: f32, fmt: Option<QFormat>) -> f32 {
    match fmt {
        Some(f) => f.quantize(v as f64),
        None => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybriddnn_estimator::{Dataflow, LayerWorkload};
    use hybriddnn_winograd::TileConfig;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::new(4, 4, TileConfig::F2x2)
    }

    fn conv_plan(mode: ConvMode, k: usize, c: usize) -> LayerPlan {
        let wl = LayerWorkload::conv(k, c, 3, 3, 8, 8, 8, 8, 1);
        LayerPlan::compute(
            &cfg(),
            "t",
            mode,
            Dataflow::WeightStationary,
            wl,
            0,
            c,
            true,
            true,
        )
        .unwrap()
    }

    #[test]
    fn spatial_image_is_kcrs_padded() {
        let plan = conv_plan(ConvMode::Spatial, 6, 2);
        let weights: Vec<f32> = (0..6 * 2 * 9).map(|i| i as f32).collect();
        let bias: Vec<f32> = (0..6).map(|i| i as f32).collect();
        let img = build_images(&cfg(), &plan, &weights, &bias, None, None).unwrap();
        // K: 6 pads to 8 (PO=4); C: 2 pads to 4 lanes (PI=4):
        // image = 8 k-rows of 4·9 = 36 words.
        assert_eq!(plan.gk, 1);
        assert_eq!(img.weights.len(), 8 * 36);
        for k in 0..6 {
            assert_eq!(
                &img.weights[k * 36..k * 36 + 18],
                &weights[k * 18..(k + 1) * 18]
            );
            assert!(img.weights[k * 36 + 18..(k + 1) * 36]
                .iter()
                .all(|&v| v == 0.0));
        }
        assert!(img.weights[6 * 36..].iter().all(|&v| v == 0.0));
        assert_eq!(img.bias.len(), 8);
        assert_eq!(&img.bias[..6], &bias[..]);
    }

    #[test]
    fn winograd_image_matches_transformed_weights() {
        let plan = conv_plan(ConvMode::Winograd, 4, 2);
        let weights: Vec<f32> = (0..4 * 2 * 9).map(|i| (i as f32) * 0.01).collect();
        let img = build_images(&cfg(), &plan, &weights, &[0.0; 4], None, None).unwrap();
        // Channel dim pads 2 → 4 lanes; compare against a transform of the
        // zero-padded kernel set.
        let mut padded = vec![0.0f32; 4 * 4 * 9];
        for k in 0..4 {
            for c in 0..2 {
                padded[(k * 4 + c) * 9..(k * 4 + c + 1) * 9]
                    .copy_from_slice(&weights[(k * 2 + c) * 9..(k * 2 + c + 1) * 9]);
            }
        }
        let u = TransformedWeights::new(TileConfig::F2x2, WeightShape::new(4, 4, 3, 3), &padded);
        assert_eq!(img.weights.len(), u.as_slice().len());
        for (a, b) in img.weights.iter().zip(u.as_slice()) {
            assert!((*a as f64 - b).abs() < 1e-6);
        }
    }

    #[test]
    fn winograd_quantized_image_is_on_grid() {
        let plan = conv_plan(ConvMode::Winograd, 4, 2);
        let weights: Vec<f32> = (0..4 * 2 * 9).map(|i| (i as f32) * 0.013 - 0.3).collect();
        let fmt = QFormat::FEATURE12;
        let img = build_images(&cfg(), &plan, &weights, &[0.0; 4], Some(fmt), None).unwrap();
        for &v in &img.weights {
            assert!(fmt.contains(v as f64), "{v}");
        }
    }

    #[test]
    fn group_offsets_partition_the_image() {
        // Force multiple groups with a big K.
        let c = 64;
        let k = 512;
        let plan = conv_plan(ConvMode::Winograd, k, c);
        assert!(
            plan.gk > 1,
            "expected multiple weight groups, gk={}",
            plan.gk
        );
        let weights = vec![0.5f32; k * c * 9];
        let img = build_images(&cfg(), &plan, &weights, &vec![0.0; k], None, None).unwrap();
        assert_eq!(img.weight_group_offsets.len(), plan.gk);
        assert_eq!(img.weight_group_offsets[0], 0);
        let per_group = img.weight_group_words(0);
        assert_eq!(img.weight_group_offsets[1], per_group);
        let total: u64 = (0..plan.gk).map(|g| img.weight_group_words(g)).sum();
        assert_eq!(total, img.weights.len() as u64);
    }

    #[test]
    fn fc_permutation_matches_store_order() {
        // Source region 2 channels, 2x2 fmap, PI=4 → store width 1·4·2·2=16.
        let src = FmapRegion {
            base: 0,
            channels: 2,
            h: 2,
            w: 2,
            pad_h: 0,
            pad_w: 0,
            layout: ConvMode::Spatial,
            pi: 4,
        };
        let in_features = 8; // 2·2·2
        let k = 1;
        // weight[chw] = chw index value for traceability.
        let weights: Vec<f32> = (0..in_features).map(|i| i as f32 + 1.0).collect();
        let permuted = permute_fc_weights(k, in_features, &src, &weights);
        assert_eq!(permuted.len(), 16);
        // store f: (y,x,cv,lane); c = lane (cv=0 only since CV=1? channels=2,pi=4→cv=1)
        // f = ((y*2+x)*1 + 0)*4 + lane.
        for y in 0..2 {
            for x in 0..2 {
                for lane in 0..4 {
                    let f = (y * 2 + x) * 4 + lane;
                    let expect = if lane < 2 {
                        let chw = (lane * 2 + y) * 2 + x;
                        weights[chw]
                    } else {
                        0.0
                    };
                    assert_eq!(permuted[f], expect, "y{y} x{x} lane{lane}");
                }
            }
        }
    }
}
