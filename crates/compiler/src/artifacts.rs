//! The "Inst. & Data Files" of Figure 1: serializing a compiled network
//! to on-disk artifacts the runtime ships to the board, and loading them
//! back.
//!
//! Format (all little-endian):
//!
//! * `<stage>.inst` — the stage's raw 128-bit instruction words;
//! * `data.bin` — concatenated weight/bias images as `f32` words;
//! * `manifest.txt` — line-oriented index: one `stage NAME INST_FILE`
//!   line per stage and one `segment BASE OFFSET LEN` line per data
//!   segment (word offsets into `data.bin`).

use crate::{CompileError, CompiledNetwork};
use hybriddnn_fpga::ExternalMemory;
use hybriddnn_isa::Program;
use std::io::{Read, Write};
use std::path::Path;

/// Writes the instruction and data files for a compiled network.
///
/// # Errors
/// Returns [`CompileError::Isa`] if an instruction fails to encode, or
/// an [`std::io::Error`] (wrapped in `Infeasible` with the path) on I/O
/// failure.
pub fn write_artifacts(compiled: &CompiledNetwork, dir: &Path) -> Result<(), CompileError> {
    let io_err = |e: std::io::Error| CompileError::Infeasible {
        layer: dir.display().to_string(),
        detail: format!("artifact I/O failed: {e}"),
    };
    std::fs::create_dir_all(dir).map_err(io_err)?;
    let mut manifest = String::new();

    for layer in compiled.layers() {
        let words = layer.program().encode()?;
        let file = format!("{}.inst", layer.name());
        let mut f = std::fs::File::create(dir.join(&file)).map_err(io_err)?;
        for w in words {
            f.write_all(&w.to_le_bytes()).map_err(io_err)?;
        }
        manifest.push_str(&format!("stage {} {}\n", layer.name(), file));
    }

    let mut data = std::fs::File::create(dir.join("data.bin")).map_err(io_err)?;
    let mut offset = 0u64;
    for (base, words) in compiled.data_segments() {
        manifest.push_str(&format!("segment {base} {offset} {}\n", words.len()));
        for w in words {
            data.write_all(&w.to_le_bytes()).map_err(io_err)?;
        }
        offset += words.len() as u64;
    }
    std::fs::write(dir.join("manifest.txt"), manifest).map_err(io_err)?;
    Ok(())
}

/// The loaded form of the on-disk artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifacts {
    /// `(stage name, program)` in execution order.
    pub stages: Vec<(String, Program)>,
    /// `(dram base, words)` data segments.
    pub segments: Vec<(u64, Vec<f32>)>,
}

impl Artifacts {
    /// Stages all data segments into an external memory (what the
    /// runtime's one-time DMA setup does on the board).
    pub fn stage_data(&self, mem: &mut ExternalMemory) {
        for (base, words) in &self.segments {
            mem.host_write(*base, words);
        }
    }
}

/// Loads artifacts previously written by [`write_artifacts`].
///
/// # Errors
/// Returns [`CompileError::Infeasible`] describing any missing or
/// malformed file, or [`CompileError::Isa`] for undecodable words.
pub fn read_artifacts(dir: &Path) -> Result<Artifacts, CompileError> {
    let bad = |detail: String| CompileError::Infeasible {
        layer: dir.display().to_string(),
        detail,
    };
    let manifest = std::fs::read_to_string(dir.join("manifest.txt"))
        .map_err(|e| bad(format!("manifest: {e}")))?;
    let data_bytes =
        std::fs::read(dir.join("data.bin")).map_err(|e| bad(format!("data.bin: {e}")))?;
    let data_words: Vec<f32> = data_bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();

    let mut stages = Vec::new();
    let mut segments = Vec::new();
    for (n, line) in manifest.lines().enumerate() {
        let mut it = line.split_whitespace();
        match it.next() {
            Some("stage") => {
                let name = it
                    .next()
                    .ok_or_else(|| bad(format!("line {n}: stage name")))?;
                let file = it
                    .next()
                    .ok_or_else(|| bad(format!("line {n}: stage file")))?;
                let mut f =
                    std::fs::File::open(dir.join(file)).map_err(|e| bad(format!("{file}: {e}")))?;
                let mut bytes = Vec::new();
                f.read_to_end(&mut bytes)
                    .map_err(|e| bad(format!("{file}: {e}")))?;
                if bytes.len() % 16 != 0 {
                    return Err(bad(format!("{file}: not a whole number of 128-bit words")));
                }
                let words: Vec<u128> = bytes
                    .chunks_exact(16)
                    .map(|c| u128::from_le_bytes(c.try_into().expect("16-byte chunk")))
                    .collect();
                stages.push((name.to_string(), Program::decode(&words)?));
            }
            Some("segment") => {
                let parse = |s: Option<&str>| -> Result<u64, CompileError> {
                    s.and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad(format!("line {n}: bad segment")))
                };
                let base = parse(it.next())?;
                let off = parse(it.next())? as usize;
                let len = parse(it.next())? as usize;
                if off + len > data_words.len() {
                    return Err(bad(format!("line {n}: segment beyond data.bin")));
                }
                segments.push((base, data_words[off..off + len].to_vec()));
            }
            Some(other) => return Err(bad(format!("line {n}: unknown entry `{other}`"))),
            None => {}
        }
    }
    Ok(Artifacts { stages, segments })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, MappingStrategy};
    use hybriddnn_estimator::AcceleratorConfig;
    use hybriddnn_model::{synth, zoo};
    use hybriddnn_winograd::TileConfig;

    fn compiled() -> CompiledNetwork {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 1).unwrap();
        Compiler::new(AcceleratorConfig::new(4, 4, TileConfig::F2x2))
            .compile(&net, &MappingStrategy::all_winograd(&net))
            .unwrap()
    }

    #[test]
    fn artifacts_roundtrip() {
        let c = compiled();
        let dir = std::env::temp_dir().join(format!("hybriddnn_artifacts_{}", std::process::id()));
        write_artifacts(&c, &dir).unwrap();
        let loaded = read_artifacts(&dir).unwrap();
        assert_eq!(loaded.stages.len(), c.layers().len());
        for ((name, prog), layer) in loaded.stages.iter().zip(c.layers()) {
            assert_eq!(name, layer.name());
            assert_eq!(prog, layer.program());
        }
        // Staging the loaded segments reproduces the compiler's DRAM image.
        let mut from_compiled = ExternalMemory::new();
        c.stage_data(&mut from_compiled);
        let mut from_files = ExternalMemory::new();
        loaded.stage_data(&mut from_files);
        assert_eq!(
            from_files.host_read(0, from_compiled.len()),
            from_compiled.host_read(0, from_compiled.len())
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_reported() {
        let dir = std::env::temp_dir().join("hybriddnn_artifacts_missing");
        std::fs::remove_dir_all(&dir).ok();
        let err = read_artifacts(&dir).unwrap_err();
        assert!(err.to_string().contains("manifest"));
    }

    #[test]
    fn truncated_inst_file_is_reported() {
        let c = compiled();
        let dir = std::env::temp_dir().join(format!("hybriddnn_artifacts_t{}", std::process::id()));
        write_artifacts(&c, &dir).unwrap();
        let stage_file = dir.join(format!("{}.inst", c.layers()[0].name()));
        let bytes = std::fs::read(&stage_file).unwrap();
        std::fs::write(&stage_file, &bytes[..bytes.len() - 3]).unwrap();
        let err = read_artifacts(&dir).unwrap_err();
        assert!(err.to_string().contains("128-bit"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
