//! Instruction emission: turns a [`LayerPlan`] plus region/image addresses
//! into the accelerator's instruction stream, realizing the IS/WS loop
//! orders of §4.2.4–4.2.5 with ping-pong buffers and handshake-token
//! dependency flags (§4.1).

use crate::{layout::FmapRegion, plan::LayerPlan, CompileError};
use hybriddnn_estimator::{AcceleratorConfig, ConvMode, Dataflow};
use hybriddnn_isa::{
    BufferHalf, CompInst, Instruction, LoadInst, LoadKind, PadSpec, Program, SaveInst,
};

/// Everything the lowering needs to know about one stage.
#[derive(Debug)]
pub struct StageContext<'a> {
    /// The accelerator configuration.
    pub cfg: &'a AcceleratorConfig,
    /// The stage plan.
    pub plan: &'a LayerPlan,
    /// Source feature-map region (layout matches `plan.mode`).
    pub input: &'a FmapRegion,
    /// Destination feature-map region (layout the next stage expects).
    pub output: &'a FmapRegion,
    /// DRAM base of the stage's weight image.
    pub wgt_dram_base: u64,
    /// Word offset of each weight group within the image.
    pub wgt_group_offsets: &'a [u64],
    /// Words of each weight group.
    pub wgt_group_words: &'a [u64],
    /// DRAM base of the stage's bias image.
    pub bias_dram_base: u64,
    /// Word offset of each bias group.
    pub bias_group_offsets: &'a [u64],
}

/// Lowers one stage to its instruction stream.
///
/// # Errors
/// Returns [`CompileError::Isa`] if a field overflows (the plan should
/// have prevented this) or [`CompileError::Infeasible`] for block shapes
/// the load splitter cannot express.
pub fn lower_stage(ctx: &StageContext<'_>) -> Result<Program, CompileError> {
    let mut e = Emitter::new(ctx);
    let plan = ctx.plan;
    match plan.dataflow {
        Dataflow::WeightStationary => {
            for gk in 0..plan.gk {
                e.load_bias_and_weights(gk)?;
                let units = unit_list(plan);
                let last_unit = units.len() - 1;
                for (ui, &(g, wb)) in units.iter().enumerate() {
                    e.process_unit(g, wb, gk, ui == 0, ui == last_unit)?;
                }
                e.wgt_half = e.wgt_half.other();
            }
        }
        Dataflow::InputStationary => {
            debug_assert_eq!(plan.c_chunks, 1, "IS requires unchunked channels");
            for &(g, wb) in &unit_list(plan) {
                e.load_input(g, wb, 0)?;
                for gk in 0..plan.gk {
                    e.load_bias_and_weights(gk)?;
                    e.comp_and_save(g, wb, gk, true, true, gk == 0, gk + 1 == plan.gk)?;
                    e.wgt_half = e.wgt_half.other();
                }
                e.inp_half = e.inp_half.other();
            }
        }
    }
    Ok(e.prog)
}

/// The (row group, width block) unit traversal order.
fn unit_list(plan: &LayerPlan) -> Vec<(usize, usize)> {
    let mut units = Vec::with_capacity(plan.row_groups * plan.width_blocks);
    for g in 0..plan.row_groups {
        for wb in 0..plan.width_blocks {
            units.push((g, wb));
        }
    }
    units
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Half {
    Ping,
    Pong,
}

impl Half {
    fn other(self) -> Half {
        match self {
            Half::Ping => Half::Pong,
            Half::Pong => Half::Ping,
        }
    }

    fn id(self) -> BufferHalf {
        match self {
            Half::Ping => BufferHalf::Ping,
            Half::Pong => BufferHalf::Pong,
        }
    }

    fn base(self, half_words: usize) -> u32 {
        match self {
            Half::Ping => 0,
            Half::Pong => half_words as u32,
        }
    }
}

struct Emitter<'a> {
    ctx: &'a StageContext<'a>,
    prog: Program,
    inp_half: Half,
    wgt_half: Half,
    out_half: Half,
}

impl<'a> Emitter<'a> {
    fn new(ctx: &'a StageContext<'a>) -> Self {
        Emitter {
            ctx,
            prog: Program::new(),
            inp_half: Half::Ping,
            wgt_half: Half::Ping,
            out_half: Half::Ping,
        }
    }

    /// WS inner body: all chunks/blocks of one (g, wb, gk) unit.
    fn process_unit(
        &mut self,
        g: usize,
        wb: usize,
        gk: usize,
        first_unit: bool,
        last_unit: bool,
    ) -> Result<(), CompileError> {
        let plan = self.ctx.plan;
        for chunk in 0..plan.c_chunks {
            self.load_input(g, wb, chunk)?;
            let first = chunk == 0;
            let last = chunk + 1 == plan.c_chunks;
            self.comp_blocks(
                g,
                wb,
                gk,
                chunk,
                first,
                last,
                first_unit && first,
                last_unit && last,
            )?;
            self.inp_half = self.inp_half.other();
        }
        self.save(g, wb, gk)?;
        Ok(())
    }

    /// IS inner body: one loaded input reused against one weight group.
    #[allow(clippy::too_many_arguments)]
    fn comp_and_save(
        &mut self,
        g: usize,
        wb: usize,
        gk: usize,
        _first_unit: bool,
        _last_unit: bool,
        first_gk: bool,
        last_gk: bool,
    ) -> Result<(), CompileError> {
        // In IS the input token is consumed by the first weight group and
        // freed by the last; weight tokens cycle per group.
        self.comp_blocks_is(g, wb, gk, first_gk, last_gk)?;
        self.save(g, wb, gk)?;
        Ok(())
    }

    fn load_bias_and_weights(&mut self, gk: usize) -> Result<(), CompileError> {
        let ctx = self.ctx;
        let plan = ctx.plan;
        if plan.bias {
            let kg_padded = plan.group_k(gk).div_ceil(ctx.cfg.po) * ctx.cfg.po;
            // Bias shares the LOAD_WGT module and its half alternation; it
            // precedes the weight block so the weight-ready token also
            // implies the bias is in place.
            self.emit_block_load(
                LoadKind::Bias,
                self.wgt_half.base(bias_half_words(ctx.cfg)),
                ctx.bias_dram_base + ctx.bias_group_offsets[gk],
                1,
                kg_padded as u32,
                0,
                false,
                false,
            )?;
        }
        let words = ctx.wgt_group_words[gk];
        let (rows, row_len) = weight_block_shape(plan, ctx.cfg, gk, words)?;
        self.emit_block_load(
            LoadKind::Weight,
            self.wgt_half.base(ctx.cfg.weight_buffer_words()),
            ctx.wgt_dram_base + ctx.wgt_group_offsets[gk],
            rows,
            row_len,
            row_len,
            true,
            true,
        )?;
        Ok(())
    }

    fn load_input(&mut self, g: usize, wb: usize, chunk: usize) -> Result<(), CompileError> {
        let ctx = self.ctx;
        let plan = ctx.plan;
        let r = ctx.input;
        let pi = plan.pi;
        let buff = self.inp_half.base(ctx.cfg.input_buffer_words());
        if plan.is_fc() {
            let off = (chunk * plan.c_chunk_vecs * pi) as u64;
            let len = (plan.chunk_vecs(chunk) * pi) as u32;
            return self.emit_block_load(
                LoadKind::Input,
                buff,
                r.base + off,
                1,
                len,
                0,
                true,
                true,
            );
        }
        let rows_out = plan.group_rows(g);
        let cols_out = plan.block_cols(wb);
        let rows_l = (rows_out - 1) * plan.wl.stride + plan.wl.r;
        let cols_l = (cols_out - 1) * plan.wl.stride + plan.wl.s;
        let py0 = g * plan.rows_per_group * plan.wl.stride;
        let px0 = wb * plan.width_block * plan.wl.stride;
        let cv = r.cv();
        let wp = r.padded_w();
        let (dram, rows, row_len, stride) = match r.layout {
            ConvMode::Spatial => (
                r.base + ((py0 * wp + px0) * cv * pi) as u64,
                rows_l as u32,
                (cols_l * cv * pi) as u32,
                (wp * cv * pi) as u32,
            ),
            ConvMode::Winograd => (
                r.base + ((py0 * cv * wp + px0) * pi) as u64,
                (rows_l * cv) as u32,
                (cols_l * pi) as u32,
                (wp * pi) as u32,
            ),
        };
        self.emit_block_load(
            LoadKind::Input,
            buff,
            dram,
            rows,
            row_len,
            stride,
            true,
            true,
        )
    }

    /// Emits the decomposition-block COMP sequence for one chunk of one
    /// unit (WS path).
    #[allow(clippy::too_many_arguments)]
    fn comp_blocks(
        &mut self,
        g: usize,
        wb: usize,
        gk: usize,
        chunk: usize,
        first_chunk: bool,
        last_chunk: bool,
        wait_wgt: bool,
        free_wgt: bool,
    ) -> Result<(), CompileError> {
        let plan = self.ctx.plan;
        let blocks = blocks_of(plan);
        let nb = blocks.len();
        for (bi, &(br, bs)) in blocks.iter().enumerate() {
            let comp = self.make_comp(
                g,
                wb,
                gk,
                chunk,
                (br, bs),
                CompFlags {
                    wait_inp: bi == 0,
                    free_inp: bi + 1 == nb,
                    wait_wgt: wait_wgt && bi == 0,
                    free_wgt: free_wgt && bi + 1 == nb,
                    acc_init: first_chunk && bi == 0,
                    acc_final: last_chunk && bi + 1 == nb,
                },
            );
            self.prog.push(Instruction::Comp(comp));
        }
        Ok(())
    }

    /// IS variant: input token consumed on the first weight group only.
    fn comp_blocks_is(
        &mut self,
        g: usize,
        wb: usize,
        gk: usize,
        first_gk: bool,
        last_gk: bool,
    ) -> Result<(), CompileError> {
        let plan = self.ctx.plan;
        let blocks = blocks_of(plan);
        let nb = blocks.len();
        for (bi, &(br, bs)) in blocks.iter().enumerate() {
            let comp = self.make_comp(
                g,
                wb,
                gk,
                0,
                (br, bs),
                CompFlags {
                    wait_inp: first_gk && bi == 0,
                    free_inp: last_gk && bi + 1 == nb,
                    wait_wgt: bi == 0,
                    free_wgt: bi + 1 == nb,
                    acc_init: bi == 0,
                    acc_final: bi + 1 == nb,
                },
            );
            self.prog.push(Instruction::Comp(comp));
        }
        Ok(())
    }

    fn make_comp(
        &self,
        g: usize,
        wb: usize,
        gk: usize,
        chunk: usize,
        (br, bs): (usize, usize),
        flags: CompFlags,
    ) -> CompInst {
        let ctx = self.ctx;
        let plan = ctx.plan;
        let cfg = ctx.cfg;
        let kg_padded = plan.group_k(gk).div_ceil(cfg.po) * cfg.po;
        let blocks_s = plan.wl.s.div_ceil(3);
        let wgt_block_off = match (plan.mode, plan.is_fc()) {
            (_, true) => chunk * kg_padded * plan.c_chunk_vecs * plan.pi,
            (ConvMode::Spatial, false) => 0,
            (ConvMode::Winograd, false) => {
                let pt2 = cfg.pt() * cfg.pt();
                (br * blocks_s + bs) * pt2 * kg_padded * plan.cv_store() * plan.pi
            }
        };
        let ic_vecs = if plan.is_fc() {
            plan.chunk_vecs(chunk) as u32
        } else {
            plan.cv_store() as u32
        };
        CompInst {
            wait_inp: flags.wait_inp,
            free_inp: flags.free_inp,
            wait_wgt: flags.wait_wgt,
            free_wgt: flags.free_wgt,
            buf_id: self.out_half.id(),
            inp_base: self.inp_half.base(cfg.input_buffer_words()),
            wgt_base: self.wgt_half.base(cfg.weight_buffer_words()) + wgt_block_off as u32,
            out_base: self.out_half.base(cfg.output_buffer_words()),
            out_w: plan.block_cols(wb) as u32,
            out_rows: plan.group_rows(g) as u8,
            ic_vecs,
            oc_vecs: (kg_padded / cfg.po) as u32,
            kernel_h: plan.wl.r.min(7) as u8,
            kernel_w: plan.wl.s.min(7) as u8,
            stride: plan.wl.stride as u8,
            relu: plan.relu,
            quan_shift: plan.quan_shift,
            wino: plan.mode == ConvMode::Winograd,
            wino_offset: (br as u8, bs as u8),
            acc_init: flags.acc_init,
            acc_final: flags.acc_final,
            bias_en: plan.bias && flags.acc_init,
        }
    }

    fn save(&mut self, g: usize, wb: usize, gk: usize) -> Result<(), CompileError> {
        let ctx = self.ctx;
        let plan = ctx.plan;
        let cfg = ctx.cfg;
        let out = ctx.output;
        let pool = plan.pool.max(1);
        let kg_padded = plan.group_k(gk).div_ceil(cfg.po) * cfg.po;
        let y0 = g * plan.rows_per_group / pool;
        let x0 = wb * plan.width_block / pool;
        let inst = SaveInst {
            wait_data: true,
            signal_free: true,
            buf_id: self.out_half.id(),
            buff_base: self.out_half.base(cfg.output_buffer_words()),
            dram_base: out.addr(0, y0, x0),
            rows: plan.group_rows(g) as u8,
            out_w: plan.block_cols(wb) as u32,
            oc_vecs: (kg_padded / cfg.po) as u32,
            k_base: (gk * plan.k_per_group) as u32,
            y_base: (g * plan.rows_per_group) as u32,
            dst_w: out.padded_w() as u32,
            dst_cv: out.cv() as u32,
            src_wino: plan.mode == ConvMode::Winograd,
            dst_wino: out.layout == ConvMode::Winograd,
            pool: plan.pool as u8,
        };
        self.prog.push(Instruction::Save(inst));
        self.out_half = self.out_half.other();
        Ok(())
    }

    /// Emits a block load, splitting rows to honor the 10-bit ROWS field.
    #[allow(clippy::too_many_arguments)]
    fn emit_block_load(
        &mut self,
        kind: LoadKind,
        buff_base: u32,
        dram_base: u64,
        rows: u32,
        row_len: u32,
        row_stride: u32,
        wait_free: bool,
        signal_ready: bool,
    ) -> Result<(), CompileError> {
        if row_len > 131_071 {
            return Err(CompileError::Infeasible {
                layer: "<lower>".to_string(),
                detail: format!("load row of {row_len} words exceeds the ROW_LEN field"),
            });
        }
        let plan = self.ctx.plan;
        let region_pads = self.ctx.input;
        let pads = if matches!(kind, LoadKind::Input) {
            PadSpec {
                top: region_pads.pad_h.min(3) as u8,
                bottom: region_pads.pad_h.min(3) as u8,
                left: region_pads.pad_w.min(3) as u8,
                right: region_pads.pad_w.min(3) as u8,
            }
        } else {
            PadSpec::default()
        };
        let half = match kind {
            LoadKind::Input => self.inp_half,
            _ => self.wgt_half,
        };
        let mut r0: u32 = 0;
        while r0 < rows {
            let n = (rows - r0).min(1023);
            let inst = LoadInst {
                kind,
                wait_free: wait_free && r0 == 0,
                signal_ready: signal_ready && r0 + n == rows,
                buf_id: half.id(),
                buff_base: buff_base + r0 * row_len,
                dram_base: dram_base + (r0 as u64) * (row_stride as u64),
                rows: n,
                row_len,
                row_stride,
                pads,
                wino: plan.mode == ConvMode::Winograd,
                wino_offset: (0, 0),
            };
            self.prog.push(Instruction::Load(inst));
            r0 += n;
        }
        Ok(())
    }
}

struct CompFlags {
    wait_inp: bool,
    free_inp: bool,
    wait_wgt: bool,
    free_wgt: bool,
    acc_init: bool,
    acc_final: bool,
}

/// Decomposition blocks in traversal order.
fn blocks_of(plan: &LayerPlan) -> Vec<(usize, usize)> {
    match plan.mode {
        ConvMode::Spatial => vec![(0, 0)],
        ConvMode::Winograd => {
            let br = plan.wl.r.div_ceil(3);
            let bs = plan.wl.s.div_ceil(3);
            let mut v = Vec::with_capacity(br * bs);
            for i in 0..br {
                for j in 0..bs {
                    v.push((i, j));
                }
            }
            v
        }
    }
}

/// Bias buffer half size in words (one half per ping-pong side, sized for
/// the largest weight group's padded K).
pub fn bias_half_words(cfg: &AcceleratorConfig) -> usize {
    // 4096 covers the largest FC head of the evaluated models; the bias
    // buffer is tiny next to the data buffers.
    let _ = cfg;
    4096
}

/// Factorization of a weight-group image into a (rows × row_len) block.
fn weight_block_shape(
    plan: &LayerPlan,
    cfg: &AcceleratorConfig,
    gk: usize,
    words: u64,
) -> Result<(u32, u32), CompileError> {
    let kg_padded = plan.group_k(gk).div_ceil(cfg.po) * cfg.po;
    let (rows, row_len) = if plan.is_fc() {
        let chunk_words = plan.c_chunk_vecs * plan.pi;
        ((plan.c_chunks * kg_padded) as u32, chunk_words as u32)
    } else {
        let c_lanes = plan.cv_store() * plan.pi;
        match plan.mode {
            ConvMode::Spatial => (kg_padded as u32, (c_lanes * plan.wl.r * plan.wl.s) as u32),
            ConvMode::Winograd => {
                let pt2 = cfg.pt() * cfg.pt();
                (
                    (plan.wl.wino_blocks() * pt2) as u32,
                    (kg_padded * c_lanes) as u32,
                )
            }
        }
    };
    debug_assert_eq!(
        rows as u64 * row_len as u64,
        words,
        "weight image factorization"
    );
    Ok((rows, row_len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybriddnn_estimator::LayerWorkload;
    use hybriddnn_isa::Opcode;
    use hybriddnn_winograd::TileConfig;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::new(4, 4, TileConfig::F2x2)
    }

    fn make_ctx<'a>(
        cfg: &'a AcceleratorConfig,
        plan: &'a LayerPlan,
        input: &'a FmapRegion,
        output: &'a FmapRegion,
        offs: &'a [u64],
        words: &'a [u64],
        boffs: &'a [u64],
    ) -> StageContext<'a> {
        StageContext {
            cfg,
            plan,
            input,
            output,
            wgt_dram_base: 1_000_000,
            wgt_group_offsets: offs,
            wgt_group_words: words,
            bias_dram_base: 2_000_000,
            bias_group_offsets: boffs,
        }
    }

    fn simple_regions(mode: ConvMode) -> (FmapRegion, FmapRegion) {
        let input = FmapRegion {
            base: 0,
            channels: 8,
            h: 8,
            w: 8,
            pad_h: 1,
            pad_w: 1,
            layout: mode,
            pi: 4,
        };
        let output = FmapRegion {
            base: 10_000,
            channels: 8,
            h: 8,
            w: 8,
            pad_h: 0,
            pad_w: 0,
            layout: ConvMode::Spatial,
            pi: 4,
        };
        (input, output)
    }

    fn plan_for(mode: ConvMode, dataflow: Dataflow) -> LayerPlan {
        let wl = LayerWorkload::conv(8, 8, 3, 3, 8, 8, 8, 8, 1);
        LayerPlan::compute(&cfg(), "t", mode, dataflow, wl, 0, 8, true, true).unwrap()
    }

    #[test]
    fn ws_emits_expected_instruction_counts() {
        let cfg = cfg();
        let plan = plan_for(ConvMode::Winograd, Dataflow::WeightStationary);
        let (input, output) = simple_regions(ConvMode::Winograd);
        let ctx = make_ctx(&cfg, &plan, &input, &output, &[0], &[8 * 8 * 16], &[0]);
        let prog = lower_stage(&ctx).unwrap();
        let (li, lw, lb, comp, save) = prog.histogram();
        // 1 weight group: 1 LOAD_WGT + 1 LOAD_BIAS; units = row_groups ×
        // width_blocks; one LOAD_INP + COMP + SAVE each.
        let units = plan.row_groups * plan.width_blocks;
        assert_eq!(lw, 1);
        assert_eq!(lb, 1);
        assert_eq!(li, units);
        assert_eq!(comp, units); // 3x3 kernel → single decomposition block
        assert_eq!(save, units);
    }

    #[test]
    fn is_reloads_weights_per_unit() {
        let cfg = cfg();
        let plan = plan_for(ConvMode::Spatial, Dataflow::InputStationary);
        let (input, output) = simple_regions(ConvMode::Spatial);
        let ctx = make_ctx(&cfg, &plan, &input, &output, &[0], &[8 * 8 * 9], &[0]);
        let prog = lower_stage(&ctx).unwrap();
        let (li, lw, _, comp, save) = prog.histogram();
        let units = plan.row_groups * plan.width_blocks;
        assert_eq!(li, units);
        assert_eq!(lw, units * plan.gk);
        assert_eq!(comp, units * plan.gk);
        assert_eq!(save, units * plan.gk);
    }

    #[test]
    fn token_flags_pair_up() {
        // Every wait must have a matching signal: count token balance.
        let cfg = cfg();
        for (mode, df) in [
            (ConvMode::Winograd, Dataflow::WeightStationary),
            (ConvMode::Spatial, Dataflow::WeightStationary),
            (ConvMode::Spatial, Dataflow::InputStationary),
        ] {
            let plan = plan_for(mode, df);
            let (input, output) = simple_regions(mode);
            let words = match mode {
                ConvMode::Spatial => 8 * 8 * 9,
                ConvMode::Winograd => 8 * 8 * 16,
            };
            let words_arr = [words];
            let ctx = make_ctx(&cfg, &plan, &input, &output, &[0], &words_arr, &[0]);
            let prog = lower_stage(&ctx).unwrap();
            let mut inp_ready = 0i64;
            let mut wgt_ready = 0i64;
            let mut out_ready = 0i64;
            for inst in prog.instructions() {
                match inst {
                    Instruction::Load(l) if l.kind == LoadKind::Input && l.signal_ready => {
                        inp_ready += 1;
                    }
                    Instruction::Load(l) if l.kind == LoadKind::Weight && l.signal_ready => {
                        wgt_ready += 1;
                    }
                    Instruction::Comp(c) => {
                        if c.wait_inp {
                            inp_ready -= 1;
                        }
                        if c.wait_wgt {
                            wgt_ready -= 1;
                        }
                        assert!(inp_ready >= 0, "COMP waits for unposted input token");
                        assert!(wgt_ready >= 0, "COMP waits for unposted weight token");
                        if c.acc_final {
                            out_ready += 1;
                        }
                    }
                    Instruction::Save(s) => {
                        if s.wait_data {
                            out_ready -= 1;
                        }
                        assert!(out_ready >= 0, "SAVE waits for unposted output token");
                    }
                    _ => {}
                }
            }
            assert_eq!(inp_ready, 0, "unconsumed input tokens ({mode}, {df})");
            assert_eq!(wgt_ready, 0, "unconsumed weight tokens");
            assert_eq!(out_ready, 0, "unconsumed output tokens");
        }
    }

    #[test]
    fn ping_pong_alternates_loads() {
        let cfg = cfg();
        let plan = plan_for(ConvMode::Winograd, Dataflow::WeightStationary);
        let (input, output) = simple_regions(ConvMode::Winograd);
        let ctx = make_ctx(&cfg, &plan, &input, &output, &[0], &[8 * 8 * 16], &[0]);
        let prog = lower_stage(&ctx).unwrap();
        let mut prev: Option<BufferHalf> = None;
        for inst in prog.instructions() {
            if let Instruction::Load(l) = inst {
                if l.kind == LoadKind::Input {
                    if let Some(p) = prev {
                        assert_ne!(p, l.buf_id, "input loads must alternate halves");
                    }
                    prev = Some(l.buf_id);
                }
            }
        }
    }

    #[test]
    fn every_instruction_encodes() {
        let cfg = cfg();
        for (mode, df) in [
            (ConvMode::Winograd, Dataflow::WeightStationary),
            (ConvMode::Spatial, Dataflow::InputStationary),
        ] {
            let plan = plan_for(mode, df);
            let (input, output) = simple_regions(mode);
            let words = match mode {
                ConvMode::Spatial => 8 * 8 * 9,
                ConvMode::Winograd => 8 * 8 * 16,
            };
            let words_arr = [words];
            let ctx = make_ctx(&cfg, &plan, &input, &output, &[0], &words_arr, &[0]);
            let prog = lower_stage(&ctx).unwrap();
            let encoded = prog.encode().unwrap();
            assert_eq!(Program::decode(&encoded).unwrap(), prog);
        }
    }

    #[test]
    fn first_opcode_order_is_bias_weight_for_ws() {
        let cfg = cfg();
        let plan = plan_for(ConvMode::Spatial, Dataflow::WeightStationary);
        let (input, output) = simple_regions(ConvMode::Spatial);
        let ctx = make_ctx(&cfg, &plan, &input, &output, &[0], &[8 * 8 * 9], &[0]);
        let prog = lower_stage(&ctx).unwrap();
        let ops: Vec<Opcode> = prog.instructions().iter().map(|i| i.opcode()).collect();
        assert_eq!(ops[0], Opcode::LoadBias);
        assert_eq!(ops[1], Opcode::LoadWgt);
        assert_eq!(ops[2], Opcode::LoadInp);
    }
}
