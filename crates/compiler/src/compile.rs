//! Top-level compilation: network → stages → plans → regions → images →
//! instruction streams.

use crate::{
    image::{build_images, LayerImages},
    layout::MemoryMap,
    lower::{lower_stage, StageContext},
    plan::{LayerPlan, MappingStrategy},
    CompileError,
};
use hybriddnn_estimator::{AcceleratorConfig, ConvMode, LayerWorkload};
use hybriddnn_fpga::ExternalMemory;
use hybriddnn_isa::Program;
use hybriddnn_model::{quant::QFormat, LayerKind, ModelError, Network, Shape, Tensor};

/// Numeric precision of the compiled design.
///
/// `float32` is the validation mode (compare against the golden CPU
/// reference within floating-point tolerance); the paper's deployment
/// precision is [`QuantSpec::paper_12bit`] (8-bit weights, 12-bit
/// activations — Table 4 footnote).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuantSpec {
    /// Weight storage format (`None` = f32).
    pub weights: Option<QFormat>,
    /// Activation format applied at every layer boundary (`None` = f32).
    pub activations: Option<QFormat>,
}

impl QuantSpec {
    /// Full-precision compilation.
    pub fn float32() -> Self {
        QuantSpec {
            weights: None,
            activations: None,
        }
    }

    /// The paper's deployment precision: 8-bit weights, 12-bit feature
    /// maps in the PE.
    pub fn paper_12bit() -> Self {
        QuantSpec {
            weights: Some(QFormat::WEIGHT8),
            activations: Some(QFormat::FEATURE12),
        }
    }

    /// Whether any quantization is enabled.
    pub fn is_quantized(&self) -> bool {
        self.weights.is_some() || self.activations.is_some()
    }
}

/// One compiled stage: a CONV/FC layer (plus fused pooling) with its
/// instruction stream and region bindings.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledLayer {
    name: String,
    plan: LayerPlan,
    input_region: usize,
    output_region: usize,
    program: Program,
    wgt_dram_base: u64,
    bias_dram_base: u64,
    wgt_words: u64,
}

impl CompiledLayer {
    /// Stage name (the compute layer's name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The execution plan.
    pub fn plan(&self) -> &LayerPlan {
        &self.plan
    }

    /// Index of the input region in the memory map.
    pub fn input_region(&self) -> usize {
        self.input_region
    }

    /// Index of the output region in the memory map.
    pub fn output_region(&self) -> usize {
        self.output_region
    }

    /// The stage's instruction stream.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Words in this stage's weight image (the LOAD_WGT traffic per full
    /// pass over the weights).
    pub fn weight_words(&self) -> u64 {
        self.wgt_words
    }
}

/// A fully compiled network: everything the runtime needs to execute on
/// the accelerator (or its simulator).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledNetwork {
    config: AcceleratorConfig,
    quant: QuantSpec,
    memory_map: MemoryMap,
    layers: Vec<CompiledLayer>,
    data: Vec<(u64, Vec<f32>)>,
    input_region: usize,
    output_region: usize,
    input_shape: Shape,
    output_shape: Shape,
    total_ops: u64,
}

impl CompiledNetwork {
    /// The accelerator configuration this network was compiled for.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The numeric precision.
    pub fn quant(&self) -> QuantSpec {
        self.quant
    }

    /// The DRAM region table.
    pub fn memory_map(&self) -> &MemoryMap {
        &self.memory_map
    }

    /// The compiled stages in execution order.
    pub fn layers(&self) -> &[CompiledLayer] {
        &self.layers
    }

    /// Rewrites each stage's instruction stream through `f` (stage
    /// index, current program → replacement). A fault-injection and
    /// testing hook — e.g. corrupting a stream to prove the simulator's
    /// deadlock/overrun errors surface through a serving stack — not
    /// something the compiler itself ever needs: compiled programs are
    /// well-formed by construction.
    pub fn map_programs(&mut self, mut f: impl FnMut(usize, &Program) -> Program) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            layer.program = f(i, &layer.program);
        }
    }

    /// Arithmetic operation count of one inference (for GOPS).
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Network input shape.
    pub fn input_shape(&self) -> Shape {
        self.input_shape
    }

    /// Network output shape.
    pub fn output_shape(&self) -> Shape {
        self.output_shape
    }

    /// Stages all weight/bias images into external memory (the host
    /// runtime's one-time setup).
    pub fn stage_data(&self, mem: &mut ExternalMemory) {
        for (base, words) in &self.data {
            mem.host_write(*base, words);
        }
    }

    /// Writes an input tensor into the network's input region (quantizing
    /// onto the activation grid when fixed-point is enabled).
    ///
    /// # Errors
    /// Returns [`ModelError::ShapeMismatch`] if the tensor shape differs
    /// from the network input.
    pub fn write_input(&self, mem: &mut ExternalMemory, input: &Tensor) -> Result<(), ModelError> {
        if input.shape() != self.input_shape {
            return Err(ModelError::ShapeMismatch {
                layer: "<input>".to_string(),
                detail: format!("expected {}, got {}", self.input_shape, input.shape()),
            });
        }
        let region = self.memory_map.region(self.input_region);
        let s = input.shape();
        // Both layouts are linear in `x` for fixed `(c, y)`, so each
        // tensor row (contiguous in CHW order) is one strided store with
        // the per-word address math hoisted — the serving path stages
        // every input through here, so this loop is hot.
        let x_stride = if s.w > 1 {
            region.addr(0, 0, 1) - region.addr(0, 0, 0)
        } else {
            1
        };
        let data = input.as_slice();
        let mut row_array = [0.0f32; 64];
        let mut row_vec = Vec::new();
        for c in 0..s.c {
            for y in 0..s.h {
                let src = &data[(c * s.h + y) * s.w..][..s.w];
                let row = match self.quant.activations {
                    Some(fmt) => {
                        let row: &mut [f32] = if s.w <= row_array.len() {
                            &mut row_array[..s.w]
                        } else {
                            row_vec.resize(s.w, 0.0);
                            &mut row_vec
                        };
                        for (d, &v) in row.iter_mut().zip(src) {
                            *d = fmt.quantize(v as f64);
                        }
                        &*row
                    }
                    None => src,
                };
                mem.host_write_strided(region.addr(c, y, 0), x_stride, row);
            }
        }
        Ok(())
    }

    /// Reads the network output tensor back from external memory.
    pub fn read_output(&self, mem: &ExternalMemory) -> Tensor {
        let mut out = Tensor::zeros(self.output_shape);
        self.read_output_into(mem, &mut out);
        out
    }

    /// Like [`CompiledNetwork::read_output`], writing into a
    /// caller-provided tensor so steady-state serving loops can reuse one
    /// allocation across inferences. `out` is resized (reallocated) only
    /// if its shape does not already match the network output.
    pub fn read_output_into(&self, mem: &ExternalMemory, out: &mut Tensor) {
        let region = self.memory_map.region(self.output_region);
        let s = self.output_shape;
        if out.shape() != s {
            *out = Tensor::zeros(s);
        }
        for c in 0..s.c {
            for y in 0..s.h {
                for x in 0..s.w {
                    out.set(c, y, x, mem.host_load(region.addr(c, y, x)));
                }
            }
        }
    }

    /// Reads the activation tensor produced by stage `i` (for
    /// layer-by-layer validation against the golden reference).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn read_stage_output(&self, mem: &ExternalMemory, i: usize, shape: Shape) -> Tensor {
        let region = self.memory_map.region(self.layers[i].output_region);
        let mut out = Tensor::zeros(shape);
        for c in 0..shape.c {
            for y in 0..shape.h {
                for x in 0..shape.w {
                    out.set(c, y, x, mem.host_load(region.addr(c, y, x)));
                }
            }
        }
        out
    }

    /// Total instruction count across stages.
    pub fn instruction_count(&self) -> usize {
        self.layers.iter().map(|l| l.program().len()).sum()
    }

    /// The raw `(dram base, words)` weight/bias data segments — the
    /// "Data Files" half of Figure 1's compiler output.
    pub fn data_segments(&self) -> &[(u64, Vec<f32>)] {
        &self.data
    }
}

/// The HybridDNN compiler (Figure 1 Step 3).
#[derive(Debug, Clone)]
pub struct Compiler {
    cfg: AcceleratorConfig,
    quant: QuantSpec,
}

impl Compiler {
    /// Creates a compiler for one accelerator configuration, defaulting
    /// to full-precision (`f32`) data.
    pub fn new(cfg: AcceleratorConfig) -> Self {
        Compiler {
            cfg,
            quant: QuantSpec::float32(),
        }
    }

    /// Sets the numeric precision.
    pub fn with_quant(mut self, quant: QuantSpec) -> Self {
        self.quant = quant;
        self
    }

    /// Compiles a fully-bound network under the given per-layer mapping
    /// strategy.
    ///
    /// # Errors
    /// * [`CompileError::MissingWeights`] if a compute layer is unbound.
    /// * [`CompileError::Unsupported`] for layer sequences the lowering
    ///   cannot express (e.g. pooling with no preceding compute layer).
    /// * [`CompileError::Infeasible`] if a layer cannot be blocked into
    ///   the configured on-chip buffers.
    pub fn compile(
        &self,
        net: &Network,
        strategy: &MappingStrategy,
    ) -> Result<CompiledNetwork, CompileError> {
        strategy.check(net)?;

        // 1. Group layers into stages (compute layer + fused pooling).
        let stages = collect_stages(net)?;

        // 2. Build per-stage plans.
        let mut plans = Vec::with_capacity(stages.len());
        for (si, stage) in stages.iter().enumerate() {
            let layer = &net.layers()[stage.layer_idx];
            let in_shape = net.layer_input_shape(stage.layer_idx);
            let out_shape = net.layer_output_shape(stage.layer_idx);
            let wl = LayerWorkload::from_layer(layer, in_shape, out_shape)
                .expect("stage heads are compute layers");
            let (mode, dataflow) = strategy.choice(si);
            let c_store = if wl.out_h == 1 && wl.out_w == 1 {
                in_shape.h * in_shape.w * in_shape.c.div_ceil(self.cfg.pi) * self.cfg.pi
            } else {
                wl.c
            };
            let (relu, bias) = layer_relu_bias(layer);
            let plan = LayerPlan::compute(
                &self.cfg,
                layer.name(),
                mode,
                dataflow,
                wl,
                stage.pool,
                c_store,
                relu,
                bias,
            )?;
            plans.push(plan);
        }

        // 3. Allocate activation regions. Region s feeds stage s; region
        //    s+1 receives its output. Layout and halo follow the consumer.
        let mut map = MemoryMap::new();
        let mut region_ids = Vec::with_capacity(stages.len() + 1);
        for (si, stage) in stages.iter().enumerate() {
            let shape = net.layer_input_shape(stage.layer_idx);
            let (pad_h, pad_w) = stage_padding(net, stage.layer_idx);
            let id = map.alloc_region(
                shape.c,
                shape.h,
                shape.w,
                pad_h,
                pad_w,
                plans[si].mode,
                self.cfg.pi,
            );
            region_ids.push(id);
        }
        // Final output region: no halo, Spatial layout.
        let out_shape = net.output_shape();
        let final_id = map.alloc_region(
            out_shape.c,
            out_shape.h,
            out_shape.w,
            0,
            0,
            ConvMode::Spatial,
            self.cfg.pi,
        );
        region_ids.push(final_id);

        // 4. Build weight/bias images and lower each stage.
        let mut layers = Vec::with_capacity(stages.len());
        let mut data = Vec::new();
        for (si, stage) in stages.iter().enumerate() {
            let layer = &net.layers()[stage.layer_idx];
            let binding =
                net.binding(stage.layer_idx)
                    .ok_or_else(|| CompileError::MissingWeights {
                        layer: layer.name().to_string(),
                    })?;
            let input_region = *map.region(region_ids[si]);
            let images: LayerImages = build_images(
                &self.cfg,
                &plans[si],
                &binding.weights,
                &binding.bias,
                self.quant.weights,
                Some(&input_region),
            )?;
            let wgt_base = map.alloc_raw(images.weights.len() as u64);
            let bias_base = map.alloc_raw(images.bias.len().max(1) as u64);
            let wgt_words = images.weights.len() as u64;
            let group_words: Vec<u64> = (0..plans[si].gk)
                .map(|g| images.weight_group_words(g))
                .collect();
            let output_region = *map.region(region_ids[si + 1]);
            let ctx = StageContext {
                cfg: &self.cfg,
                plan: &plans[si],
                input: &input_region,
                output: &output_region,
                wgt_dram_base: wgt_base,
                wgt_group_offsets: &images.weight_group_offsets,
                wgt_group_words: &group_words,
                bias_dram_base: bias_base,
                bias_group_offsets: &images.bias_group_offsets,
            };
            let program = lower_stage(&ctx).map_err(|e| match e {
                CompileError::Isa(err) => CompileError::Infeasible {
                    layer: layer.name().to_string(),
                    detail: err.to_string(),
                },
                other => other,
            })?;
            // Validate every emitted instruction encodes.
            program.encode().map_err(|err| CompileError::Infeasible {
                layer: layer.name().to_string(),
                detail: err.to_string(),
            })?;
            data.push((wgt_base, images.weights));
            if !images.bias.is_empty() {
                data.push((bias_base, images.bias));
            }
            layers.push(CompiledLayer {
                name: layer.name().to_string(),
                plan: plans[si].clone(),
                input_region: region_ids[si],
                output_region: region_ids[si + 1],
                program,
                wgt_dram_base: wgt_base,
                bias_dram_base: bias_base,
                wgt_words,
            });
        }

        Ok(CompiledNetwork {
            config: self.cfg,
            quant: self.quant,
            memory_map: map,
            layers,
            data,
            input_region: region_ids[0],
            output_region: final_id,
            input_shape: net.input_shape(),
            output_shape: net.output_shape(),
            total_ops: net.total_ops(),
        })
    }
}

struct StageSpec {
    /// Index of the compute layer in the network.
    layer_idx: usize,
    /// Fused pool window (0 = none).
    pool: usize,
}

fn collect_stages(net: &Network) -> Result<Vec<StageSpec>, CompileError> {
    let mut stages: Vec<StageSpec> = Vec::new();
    for (i, layer) in net.layers().iter().enumerate() {
        match layer.kind() {
            LayerKind::Conv(_) | LayerKind::Fc(_) => {
                stages.push(StageSpec {
                    layer_idx: i,
                    pool: 0,
                });
            }
            LayerKind::MaxPool(p) => {
                let Some(stage) = stages.last_mut() else {
                    return Err(CompileError::Unsupported {
                        layer: layer.name().to_string(),
                        detail: "pooling with no preceding compute layer".to_string(),
                    });
                };
                if stage.pool != 0 {
                    return Err(CompileError::Unsupported {
                        layer: layer.name().to_string(),
                        detail: "consecutive pooling layers cannot be fused".to_string(),
                    });
                }
                if p.size > 3 {
                    return Err(CompileError::Unsupported {
                        layer: layer.name().to_string(),
                        detail: "POOL_SIZE field supports windows up to 3".to_string(),
                    });
                }
                stage.pool = p.size;
            }
            _ => {
                return Err(CompileError::Unsupported {
                    layer: layer.name().to_string(),
                    detail: "unknown layer kind".to_string(),
                })
            }
        }
    }
    if stages.is_empty() {
        return Err(CompileError::Model(ModelError::EmptyNetwork));
    }
    Ok(stages)
}

fn stage_padding(net: &Network, layer_idx: usize) -> (usize, usize) {
    match net.layers()[layer_idx].kind() {
        LayerKind::Conv(c) => (c.padding.h, c.padding.w),
        _ => (0, 0),
    }
}

fn layer_relu_bias(layer: &hybriddnn_model::Layer) -> (bool, bool) {
    match layer.kind() {
        LayerKind::Conv(c) => (
            matches!(c.activation, hybriddnn_model::Activation::Relu),
            c.bias,
        ),
        LayerKind::Fc(fc) => (
            matches!(fc.activation, hybriddnn_model::Activation::Relu),
            fc.bias,
        ),
        _ => (false, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybriddnn_model::{synth, zoo, NetworkBuilder};
    use hybriddnn_winograd::TileConfig;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::new(4, 4, TileConfig::F2x2)
    }

    fn bound(net: &mut Network) {
        synth::bind_random(net, 5).unwrap();
    }

    #[test]
    fn compiles_tiny_cnn() {
        let mut net = zoo::tiny_cnn();
        bound(&mut net);
        let c = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_winograd(&net))
            .unwrap();
        // conv1(+pool1) and fc1 → two stages.
        assert_eq!(c.layers().len(), 2);
        assert_eq!(c.layers()[0].plan().pool, 2);
        assert!(c.instruction_count() > 0);
        assert_eq!(c.output_shape(), Shape::new(10, 1, 1));
    }

    #[test]
    fn missing_weights_is_reported() {
        let net = zoo::tiny_cnn();
        let err = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_winograd(&net))
            .unwrap_err();
        assert!(matches!(err, CompileError::MissingWeights { .. }));
    }

    #[test]
    fn leading_pool_is_unsupported() {
        let mut net = NetworkBuilder::new(Shape::new(4, 8, 8))
            .max_pool("p", 2)
            .fc("fc", 4)
            .build()
            .unwrap();
        bound(&mut net);
        let err = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_spatial(&net))
            .unwrap_err();
        assert!(matches!(err, CompileError::Unsupported { .. }));
    }

    #[test]
    fn regions_follow_consumer_mode() {
        let mut net = zoo::vgg_tiny();
        bound(&mut net);
        let c = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_winograd(&net))
            .unwrap();
        // First region (network input) uses the first stage's mode.
        let r0 = c.memory_map().region(c.layers()[0].input_region());
        assert_eq!(r0.layout, c.layers()[0].plan().mode);
        // FC stages force Spatial; the region feeding the first FC layer
        // must therefore be Spatial.
        let fc_stage = c
            .layers()
            .iter()
            .find(|l| l.plan().is_fc())
            .expect("has FC stage");
        let rin = c.memory_map().region(fc_stage.input_region());
        assert_eq!(rin.layout, ConvMode::Spatial);
    }

    #[test]
    fn data_segments_are_disjoint_from_regions() {
        let mut net = zoo::tiny_cnn();
        bound(&mut net);
        let c = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_spatial(&net))
            .unwrap();
        let region_end: u64 = c
            .memory_map()
            .regions()
            .iter()
            .map(|r| r.base + r.words())
            .max()
            .unwrap();
        for (base, words) in &c.data {
            assert!(*base >= region_end || base + words.len() as u64 <= region_end);
        }
        assert!(c.memory_map().total_words() >= region_end);
    }

    #[test]
    fn write_read_input_roundtrip() {
        let mut net = zoo::tiny_cnn();
        bound(&mut net);
        let c = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_spatial(&net))
            .unwrap();
        let mut mem = ExternalMemory::new();
        let input = synth::tensor(net.input_shape(), 3);
        c.write_input(&mut mem, &input).unwrap();
        // Reading back through the same region must reproduce the tensor.
        let region = c.memory_map().region(c.layers()[0].input_region());
        let s = input.shape();
        for ch in 0..s.c {
            for y in 0..s.h {
                for x in 0..s.w {
                    assert_eq!(mem.host_load(region.addr(ch, y, x)), input.at(ch, y, x));
                }
            }
        }
        // Wrong shape is rejected.
        assert!(c
            .write_input(&mut mem, &Tensor::zeros(Shape::new(1, 2, 2)))
            .is_err());
    }

    #[test]
    fn quantized_compile_puts_weights_on_grid() {
        let mut net = zoo::tiny_cnn();
        bound(&mut net);
        let c = Compiler::new(cfg())
            .with_quant(QuantSpec::paper_12bit())
            .compile(&net, &MappingStrategy::all_spatial(&net))
            .unwrap();
        let fmt = QFormat::WEIGHT8;
        for (_, words) in &c.data {
            for &w in words {
                assert!(fmt.contains(w as f64) || QFormat::FEATURE12.contains(w as f64));
            }
        }
    }

    #[test]
    fn vgg16_compiles_for_vu9p_config() {
        // Structure-only check (weights zeroed to keep this test fast).
        let mut net = zoo::vgg16();
        for i in 0..net.layers().len() {
            let layer = net.layers()[i].clone();
            let (wlen, blen) = match layer.kind() {
                LayerKind::Conv(cv) => (cv.weight_shape().len(), cv.out_channels),
                LayerKind::Fc(fc) => (fc.weight_shape().len(), fc.out_features),
                _ => continue,
            };
            net.bind(i, vec![0.0; wlen], vec![0.0; blen]).unwrap();
        }
        let cfg6 = AcceleratorConfig::new(4, 4, TileConfig::F4x4);
        let c = Compiler::new(cfg6)
            .compile(&net, &MappingStrategy::all_winograd(&net))
            .unwrap();
        assert_eq!(c.layers().len(), 16);
        // All conv stages Winograd, FC stages Spatial.
        for l in c.layers() {
            if l.plan().is_fc() {
                assert_eq!(l.plan().mode, ConvMode::Spatial);
            } else {
                assert_eq!(l.plan().mode, ConvMode::Winograd, "{}", l.name());
            }
        }
        // DRAM footprint fits the 32-bit LOAD address space.
        assert!(c.memory_map().total_words() < (1 << 32));
    }
}
