//! Property-based tests: every well-formed instruction survives the
//! 128-bit encode/decode round trip, and every malformed field is
//! rejected at encode time (never silently truncated).

use hybriddnn_isa::{BufferHalf, CompInst, Instruction, LoadInst, LoadKind, PadSpec, SaveInst};
use proptest::prelude::*;

fn load_strategy() -> impl Strategy<Value = LoadInst> {
    (
        prop_oneof![
            Just(LoadKind::Input),
            Just(LoadKind::Weight),
            Just(LoadKind::Bias)
        ],
        any::<bool>(),
        any::<bool>(),
        prop_oneof![Just(BufferHalf::Ping), Just(BufferHalf::Pong)],
        0u32..1 << 20,
        0u64..1 << 32,
        1u32..1 << 10,
        1u32..1 << 17,
        0u32..1 << 17,
        (0u8..4, 0u8..4, 0u8..4, 0u8..4),
        any::<bool>(),
        (0u8..16, 0u8..16),
    )
        .prop_map(
            |(
                kind,
                wait_free,
                signal_ready,
                buf_id,
                buff_base,
                dram_base,
                rows,
                row_len,
                row_stride,
                pads,
                wino,
                wino_offset,
            )| {
                LoadInst {
                    kind,
                    wait_free,
                    signal_ready,
                    buf_id,
                    buff_base,
                    dram_base,
                    rows,
                    row_len,
                    row_stride,
                    pads: PadSpec {
                        top: pads.0,
                        bottom: pads.1,
                        left: pads.2,
                        right: pads.3,
                    },
                    wino,
                    wino_offset,
                }
            },
        )
}

fn comp_strategy() -> impl Strategy<Value = CompInst> {
    (
        (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()),
        (0u32..1 << 20, 0u32..1 << 20, 0u32..1 << 20),
        (1u32..1 << 10, 1u8..16),
        (1u32..=1024, 1u32..=1024),
        (1u8..=7, 1u8..=7, 1u8..=4),
        (any::<bool>(), -32i8..=31),
        (any::<bool>(), 0u8..4, 0u8..4),
        (any::<bool>(), any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |(
                (wait_inp, free_inp, wait_wgt, free_wgt),
                (inp_base, wgt_base, out_base),
                (out_w, out_rows),
                (ic_vecs, oc_vecs),
                (kernel_h, kernel_w, stride),
                (relu, quan_shift),
                (wino, br, bs),
                (acc_init, acc_final, bias_en),
            )| CompInst {
                wait_inp,
                free_inp,
                wait_wgt,
                free_wgt,
                buf_id: BufferHalf::Ping,
                inp_base,
                wgt_base,
                out_base,
                out_w,
                out_rows,
                ic_vecs,
                oc_vecs,
                kernel_h,
                kernel_w,
                stride,
                relu,
                quan_shift,
                wino,
                wino_offset: (br, bs),
                acc_init,
                acc_final,
                bias_en,
            },
        )
}

fn save_strategy() -> impl Strategy<Value = SaveInst> {
    (
        (any::<bool>(), any::<bool>()),
        (0u32..1 << 18, 0u64..1 << 30),
        (1u8..64, 1u32..1 << 10, 1u32..1 << 9),
        (0u32..1 << 12, 0u32..1 << 10),
        (1u32..1 << 10, 1u32..=1024),
        (any::<bool>(), any::<bool>(), 0u8..4),
    )
        .prop_map(
            |(
                (wait_data, signal_free),
                (buff_base, dram_base),
                (rows, out_w, oc_vecs),
                (k_base, y_base),
                (dst_w, dst_cv),
                (src_wino, dst_wino, pool),
            )| SaveInst {
                wait_data,
                signal_free,
                buf_id: BufferHalf::Ping,
                buff_base,
                dram_base,
                rows,
                out_w,
                oc_vecs,
                k_base,
                y_base,
                dst_w,
                dst_cv,
                src_wino,
                dst_wino,
                pool,
            },
        )
}

proptest! {
    #[test]
    fn load_roundtrips(inst in load_strategy()) {
        let i = Instruction::Load(inst);
        let word = i.encode().expect("well-formed by construction");
        prop_assert_eq!(Instruction::decode(word).expect("decodes"), i);
    }

    #[test]
    fn comp_roundtrips(inst in comp_strategy()) {
        let i = Instruction::Comp(inst);
        let word = i.encode().expect("well-formed by construction");
        prop_assert_eq!(Instruction::decode(word).expect("decodes"), i);
    }

    #[test]
    fn save_roundtrips(inst in save_strategy()) {
        let i = Instruction::Save(inst);
        let word = i.encode().expect("well-formed by construction");
        prop_assert_eq!(Instruction::decode(word).expect("decodes"), i);
    }

    /// Field overflow is always an error, never truncation: a buff_base
    /// beyond 20 bits must refuse to encode.
    #[test]
    fn oversized_fields_are_rejected(mut inst in load_strategy(), extra in 1u32..1000) {
        inst.buff_base = (1 << 20) - 1 + extra;
        prop_assert!(Instruction::Load(inst).encode().is_err());
    }

    /// Decoding preserves the opcode of the encoded kind.
    #[test]
    fn opcode_is_stable(inst in load_strategy()) {
        let i = Instruction::Load(inst);
        let word = i.encode().expect("valid");
        prop_assert_eq!(Instruction::decode(word).expect("decodes").opcode(), i.opcode());
    }
}
