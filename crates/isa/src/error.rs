use std::fmt;

/// Errors produced when encoding or decoding instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A field value does not fit in its allotted bit width.
    FieldOverflow {
        /// Field name (as in Figure 2 / the instruction struct).
        field: &'static str,
        /// The offending value.
        value: u64,
        /// The field's width in bits.
        bits: u32,
    },
    /// The opcode of a decoded word is not one of the five instructions.
    InvalidOpcode {
        /// The raw 4-bit opcode value.
        opcode: u8,
    },
    /// A decoded field carries a semantically invalid value (e.g. a zero
    /// dimension).
    InvalidField {
        /// Field name.
        field: &'static str,
        /// Human-readable description.
        detail: &'static str,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::FieldOverflow { field, value, bits } => {
                write!(
                    f,
                    "value {value} does not fit in {bits}-bit field `{field}`"
                )
            }
            IsaError::InvalidOpcode { opcode } => write!(f, "invalid opcode {opcode:#x}"),
            IsaError::InvalidField { field, detail } => {
                write!(f, "invalid field `{field}`: {detail}")
            }
        }
    }
}

impl std::error::Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = IsaError::FieldOverflow {
            field: "OUT_W",
            value: 5000,
            bits: 10,
        };
        assert!(e.to_string().contains("OUT_W"));
        assert!(IsaError::InvalidOpcode { opcode: 9 }
            .to_string()
            .contains("0x9"));
    }
}
