use crate::{Instruction, IsaError, Opcode};
use std::fmt;

/// An ordered instruction stream for the accelerator, as produced by the
/// HybridDNN compiler ("Inst. & Data Files" in Figure 1).
///
/// Instructions are dispatched in order by the CTRL module to their
/// functional modules, which then run concurrently subject to the
/// handshake-token dependencies encoded in each instruction's `DEPT_FLAG`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    instructions: Vec<Instruction>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program {
            instructions: Vec::new(),
        }
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: Instruction) {
        self.instructions.push(inst);
    }

    /// The instructions in dispatch order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Number of instructions per opcode:
    /// `(load_inp, load_wgt, load_bias, comp, save)`.
    pub fn histogram(&self) -> (usize, usize, usize, usize, usize) {
        let mut h = (0, 0, 0, 0, 0);
        for i in &self.instructions {
            match i.opcode() {
                Opcode::LoadInp => h.0 += 1,
                Opcode::LoadWgt => h.1 += 1,
                Opcode::LoadBias => h.2 += 1,
                Opcode::Comp => h.3 += 1,
                Opcode::Save => h.4 += 1,
            }
        }
        h
    }

    /// Encodes the whole program into 128-bit words.
    ///
    /// # Errors
    /// Returns the first encoding error with its instruction index folded
    /// into the message via the field name.
    pub fn encode(&self) -> Result<Vec<u128>, IsaError> {
        self.instructions.iter().map(Instruction::encode).collect()
    }

    /// Decodes a program from raw words.
    ///
    /// # Errors
    /// Returns the first decoding error.
    pub fn decode(words: &[u128]) -> Result<Program, IsaError> {
        let instructions = words
            .iter()
            .map(|&w| Instruction::decode(w))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Program { instructions })
    }

    /// Disassembles the program, one instruction per line.
    pub fn disassemble(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, inst) in self.instructions.iter().enumerate() {
            writeln!(f, "{i:6}: {inst}")?;
        }
        Ok(())
    }
}

impl FromIterator<Instruction> for Program {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        Program {
            instructions: iter.into_iter().collect(),
        }
    }
}

impl Extend<Instruction> for Program {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        self.instructions.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompInst, LoadInst, LoadKind, SaveInst};

    fn sample() -> Program {
        let mut p = Program::new();
        p.push(Instruction::Load(LoadInst {
            kind: LoadKind::Input,
            rows: 1,
            row_len: 8,
            ..LoadInst::default()
        }));
        p.push(Instruction::Load(LoadInst {
            kind: LoadKind::Weight,
            rows: 1,
            row_len: 9,
            ..LoadInst::default()
        }));
        p.push(Instruction::Comp(CompInst::default()));
        p.push(Instruction::Save(SaveInst::default()));
        p
    }

    #[test]
    fn roundtrip_program() {
        let p = sample();
        let words = p.encode().unwrap();
        assert_eq!(words.len(), 4);
        assert_eq!(Program::decode(&words).unwrap(), p);
    }

    #[test]
    fn histogram_counts_opcodes() {
        assert_eq!(sample().histogram(), (1, 1, 0, 1, 1));
    }

    #[test]
    fn disassembly_numbers_lines() {
        let text = sample().disassemble();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("LOAD_WGT"));
    }

    #[test]
    fn collect_from_iterator() {
        let p: Program = sample().instructions().to_vec().into_iter().collect();
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert!(Program::new().is_empty());
    }
}
