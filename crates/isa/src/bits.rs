//! Bitfield packing helpers over `u128` instruction words.
//!
//! Fields are addressed as `[hi:lo]` inclusive bit ranges, MSB-first like
//! hardware instruction-format diagrams (bit 127 is the left edge of
//! Figure 2).

use crate::IsaError;

/// Writes `value` into bits `[hi:lo]` of `word`.
///
/// Returns [`IsaError::FieldOverflow`] if `value` does not fit in
/// `hi - lo + 1` bits.
pub(crate) fn set_bits(
    word: &mut u128,
    field: &'static str,
    hi: u32,
    lo: u32,
    value: u128,
) -> Result<(), IsaError> {
    debug_assert!(hi >= lo && hi < 128);
    let width = hi - lo + 1;
    let max = if width == 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    };
    if value > max {
        return Err(IsaError::FieldOverflow {
            field,
            value: value as u64,
            bits: width,
        });
    }
    let mask = max << lo;
    *word = (*word & !mask) | (value << lo);
    Ok(())
}

/// Reads bits `[hi:lo]` of `word`.
pub(crate) fn get_bits(word: u128, hi: u32, lo: u32) -> u128 {
    debug_assert!(hi >= lo && hi < 128);
    let width = hi - lo + 1;
    let max = if width == 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    };
    (word >> lo) & max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut w = 0u128;
        set_bits(&mut w, "a", 127, 124, 0xB).unwrap();
        set_bits(&mut w, "b", 17, 3, 0x5A5A >> 1).unwrap();
        assert_eq!(get_bits(w, 127, 124), 0xB);
        assert_eq!(get_bits(w, 17, 3), 0x5A5A >> 1);
    }

    #[test]
    fn overflow_is_detected() {
        let mut w = 0u128;
        let err = set_bits(&mut w, "f", 3, 0, 16).unwrap_err();
        assert!(matches!(err, IsaError::FieldOverflow { field: "f", .. }));
        assert!(set_bits(&mut w, "f", 3, 0, 15).is_ok());
    }

    #[test]
    fn neighbouring_fields_do_not_clobber() {
        let mut w = 0u128;
        set_bits(&mut w, "lo", 3, 0, 0xF).unwrap();
        set_bits(&mut w, "hi", 7, 4, 0x0).unwrap();
        assert_eq!(get_bits(w, 3, 0), 0xF);
        set_bits(&mut w, "hi", 7, 4, 0xF).unwrap();
        assert_eq!(get_bits(w, 3, 0), 0xF);
        assert_eq!(get_bits(w, 7, 4), 0xF);
    }

    #[test]
    fn overwrite_clears_previous_value() {
        let mut w = 0u128;
        set_bits(&mut w, "f", 11, 4, 0xFF).unwrap();
        set_bits(&mut w, "f", 11, 4, 0x01).unwrap();
        assert_eq!(get_bits(w, 11, 4), 0x01);
    }
}
