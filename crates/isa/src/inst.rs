//! Instruction definitions, encoding, and decoding.
//!
//! # Bit layouts
//!
//! All instructions share a 9-bit header: `OPCODE [127:124]`,
//! `DEPT_FLAG [123:120]`, `BUFF_ID [119]`. The remaining 119 bits are laid
//! out per instruction; see the field tables on each struct.

use crate::bits::{get_bits, set_bits};
use crate::IsaError;
use std::fmt;

/// The five opcodes of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Load input feature-map block into the input buffer.
    LoadInp = 0,
    /// Load a weight group into the weight buffer.
    LoadWgt = 1,
    /// Load a bias group into the bias buffer.
    LoadBias = 2,
    /// Execute one (row-group × weight-group) computation unit.
    Comp = 3,
    /// Store an output group back to external memory.
    Save = 4,
}

impl Opcode {
    /// Decodes a raw 4-bit opcode.
    pub fn from_bits(v: u8) -> Result<Opcode, IsaError> {
        match v {
            0 => Ok(Opcode::LoadInp),
            1 => Ok(Opcode::LoadWgt),
            2 => Ok(Opcode::LoadBias),
            3 => Ok(Opcode::Comp),
            4 => Ok(Opcode::Save),
            _ => Err(IsaError::InvalidOpcode { opcode: v }),
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Opcode::LoadInp => "LOAD_INP",
            Opcode::LoadWgt => "LOAD_WGT",
            Opcode::LoadBias => "LOAD_BIAS",
            Opcode::Comp => "COMP",
            Opcode::Save => "SAVE",
        };
        f.write_str(s)
    }
}

/// Which kind of load a [`LoadInst`] performs (selects the destination
/// buffer and the issuing module).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LoadKind {
    /// Input feature maps → input buffer (LOAD_INP module).
    #[default]
    Input,
    /// Weights → weight buffer (LOAD_WGT module).
    Weight,
    /// Bias values → bias buffer (LOAD_WGT module).
    Bias,
}

/// Ping-pong buffer half (`BUFF_ID`). Double buffering overlaps data
/// access with computation (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BufferHalf {
    /// First half.
    #[default]
    Ping,
    /// Second half.
    Pong,
}

impl BufferHalf {
    fn bit(self) -> u128 {
        match self {
            BufferHalf::Ping => 0,
            BufferHalf::Pong => 1,
        }
    }

    fn from_bit(b: u128) -> BufferHalf {
        if b == 0 {
            BufferHalf::Ping
        } else {
            BufferHalf::Pong
        }
    }
}

/// Zero-padding annotation carried by `LOAD_INP` (`PADS_SIZE`): recorded
/// for disassembly/verification; the compiler has already folded the halo
/// into the DRAM block geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PadSpec {
    /// Rows of zeros above. 2 bits.
    pub top: u8,
    /// Rows of zeros below. 2 bits.
    pub bottom: u8,
    /// Columns of zeros to the left. 2 bits.
    pub left: u8,
    /// Columns of zeros to the right. 2 bits.
    pub right: u8,
}

/// `LOAD_INP` / `LOAD_WGT` / `LOAD_BIAS` — a strided rectangular block
/// copy from external memory into an on-chip buffer.
///
/// | field        | bits        | meaning                                   |
/// |--------------|-------------|-------------------------------------------|
/// | `BUFF_BASE`  | `[118:99]`  | destination word offset in the buffer     |
/// | `DRAM_BASE`  | `[98:67]`   | source word address                       |
/// | `ROWS`       | `[66:57]`   | number of block rows                      |
/// | `ROW_LEN`    | `[56:40]`   | words per block row                       |
/// | `ROW_STRIDE` | `[39:23]`   | DRAM words between consecutive block rows |
/// | `PADS_SIZE`  | `[22:15]`   | [`PadSpec`], 2 bits per side              |
/// | `WINO_FLAG`  | `[14]`      | CONV mode of the consuming layer          |
/// | `WINO_OFFSET`| `[13:6]`    | kernel-decomposition block `(br, bs)`     |
///
/// The destination buffer receives `rows × row_len` words contiguously.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LoadInst {
    /// Which buffer this load targets.
    pub kind: LoadKind,
    /// Wait for a buffer-free token from the consumer before overwriting
    /// (prevents data pollution, §4.1).
    pub wait_free: bool,
    /// Emit a data-ready token to the consumer when done.
    pub signal_ready: bool,
    /// Ping-pong half.
    pub buf_id: BufferHalf,
    /// Destination word offset within the buffer (20 bits).
    pub buff_base: u32,
    /// Source DRAM word address (32 bits).
    pub dram_base: u64,
    /// Number of block rows (10 bits).
    pub rows: u32,
    /// Words per block row (17 bits).
    pub row_len: u32,
    /// DRAM stride between block rows in words (17 bits).
    pub row_stride: u32,
    /// Padding annotation.
    pub pads: PadSpec,
    /// Winograd-mode flag of the consuming computation.
    pub wino: bool,
    /// Kernel-decomposition block `(br, bs)` (4 bits each).
    pub wino_offset: (u8, u8),
}

impl LoadInst {
    /// Total words this load transfers.
    pub fn words(&self) -> u64 {
        self.rows as u64 * self.row_len as u64
    }
}

/// `COMP` — execute one partition unit: `out_rows × out_w` outputs for
/// `oc_vecs` output-channel vectors, reducing over `ic_vecs`
/// input-channel vectors (§4.2.4: one `(row-group, weight-group)` pair).
///
/// | field        | bits        | meaning                                    |
/// |--------------|-------------|--------------------------------------------|
/// | `INP_BASE`   | `[118:99]`  | input-buffer word base                     |
/// | `WGT_BASE`   | `[98:79]`   | weight-buffer word base                    |
/// | `OUT_BASE`   | `[78:59]`   | output/accumulator-buffer word base        |
/// | `OUT_W`      | `[58:49]`   | output columns                             |
/// | `OUT_ROWS`   | `[48:45]`   | output rows in this unit (1, pool, or m)   |
/// | `IC_VECS`    | `[44:35]`   | input-channel vectors (`C / PI`), minus 1  |
/// | `OC_VECS`    | `[34:25]`   | output-channel vectors minus 1 (`Kg / PO`) |
/// | `KERNEL_H/W` | `[24:22]`/`[21:19]` | kernel geometry (RSRV liberty)     |
/// | `STRIDE`     | `[18:17]`   | stride − 1                                 |
/// | `RELU_FLAG`  | `[16]`      | fuse ReLU at `acc_final`                   |
/// | `QUAN_PARAM` | `[15:10]`   | requantization shift, biased by 32         |
/// | `WINO_FLAG`  | `[9]`       | Winograd vs Spatial mode                   |
/// | `WINO_OFFSET`| `[8:5]`     | decomposition block `(br, bs)`, 2 bits each|
/// | `ACC_INIT`   | `[4]`       | clear accumulator before this unit         |
/// | `ACC_FINAL`  | `[3]`       | flush accumulator to the output buffer     |
/// | `BIAS_EN`    | `[2]`       | add bias at `acc_init`                     |
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompInst {
    /// Pop a data-ready token from LOAD_INP before starting.
    pub wait_inp: bool,
    /// Return a buffer-free token to LOAD_INP when done.
    pub free_inp: bool,
    /// Pop a data-ready token from LOAD_WGT before starting.
    pub wait_wgt: bool,
    /// Return a buffer-free token to LOAD_WGT when done.
    pub free_wgt: bool,
    /// Ping-pong half (informational; bases already select the half).
    pub buf_id: BufferHalf,
    /// Input-buffer word base (20 bits).
    pub inp_base: u32,
    /// Weight-buffer word base (20 bits).
    pub wgt_base: u32,
    /// Output-buffer word base (18 bits).
    pub out_base: u32,
    /// Output columns (12 bits).
    pub out_w: u32,
    /// Output rows in this unit (4 bits).
    pub out_rows: u8,
    /// Input-channel vectors `C / PI` (10 bits).
    pub ic_vecs: u32,
    /// Output-channel vectors in this weight group (10 bits).
    pub oc_vecs: u32,
    /// Kernel height (3 bits, 1..=7).
    pub kernel_h: u8,
    /// Kernel width (3 bits, 1..=7).
    pub kernel_w: u8,
    /// Stride (stored as stride − 1; 1..=4).
    pub stride: u8,
    /// Fused ReLU flag.
    pub relu: bool,
    /// Requantization shift (`QUAN_PARAM`, in `-32..=31`); 0 means no
    /// extra scaling.
    pub quan_shift: i8,
    /// Winograd (`true`) or Spatial (`false`) mode.
    pub wino: bool,
    /// Kernel-decomposition block `(br, bs)` (4 bits each).
    pub wino_offset: (u8, u8),
    /// Clear the accumulator before this unit.
    pub acc_init: bool,
    /// Flush (activation + requantization) to the output buffer after.
    pub acc_final: bool,
    /// Add the bias vector when initializing the accumulator.
    pub bias_en: bool,
}

impl Default for CompInst {
    fn default() -> Self {
        CompInst {
            wait_inp: false,
            free_inp: false,
            wait_wgt: false,
            free_wgt: false,
            buf_id: BufferHalf::Ping,
            inp_base: 0,
            wgt_base: 0,
            out_base: 0,
            out_w: 1,
            out_rows: 1,
            ic_vecs: 1,
            oc_vecs: 1,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            relu: false,
            quan_shift: 0,
            wino: false,
            wino_offset: (0, 0),
            acc_init: true,
            acc_final: true,
            bias_en: false,
        }
    }
}

/// `SAVE` — store one output group to external memory, applying one of
/// the four layout transforms of Figure 5 and (optionally) fused
/// max-pooling (`POOL_SIZE`).
///
/// | field       | bits        | meaning                                     |
/// |-------------|-------------|---------------------------------------------|
/// | `BUFF_BASE` | `[118:101]` | source word offset in the output buffer     |
/// | `DRAM_BASE` | `[100:71]`  | base of the destination feature-map region  |
/// | `ROWS`      | `[70:65]`   | output rows in this unit (pre-pooling)      |
/// | `OUT_W`     | `[64:55]`   | output columns (pre-pooling)                |
/// | `OC_BLK`    | `[54:46]`   | output-channel vectors in this group        |
/// | `K_BASE`    | `[45:34]`   | first output channel of this group          |
/// | `Y_BASE`    | `[33:24]`   | first output row of this unit (pre-pooling) |
/// | `DST_W`     | `[23:14]`   | destination padded width                    |
/// | `DST_CV`    | `[13:4]`    | destination channel-vector count minus 1    |
/// | `SRC_WINO`  | `[3]`       | layout the data was computed in             |
/// | `DST_WINO`  | `[2]`       | layout the next layer expects               |
/// | `POOL_SIZE` | `[1:0]`     | max-pool window (0/1 = none)                |
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SaveInst {
    /// Pop a data-ready token from COMP before storing.
    pub wait_data: bool,
    /// Return a buffer-free token to COMP when done.
    pub signal_free: bool,
    /// Ping-pong half.
    pub buf_id: BufferHalf,
    /// Source word offset in the output buffer (18 bits).
    pub buff_base: u32,
    /// Destination feature-map region base in DRAM words (30 bits),
    /// already offset to the interior of any halo.
    pub dram_base: u64,
    /// Output rows in this unit before pooling (6 bits).
    pub rows: u8,
    /// Output columns before pooling (10 bits).
    pub out_w: u32,
    /// Output-channel vectors in this group (9 bits).
    pub oc_vecs: u32,
    /// Global index of the first output channel in this group (12 bits).
    pub k_base: u32,
    /// Global index of the first output row in this unit (10 bits).
    pub y_base: u32,
    /// Destination padded feature-map width (10 bits).
    pub dst_w: u32,
    /// Destination channel-vector count `⌈K_total / PI⌉` (10 bits).
    pub dst_cv: u32,
    /// Source data layout: Winograd (`true`) or Spatial (`false`).
    pub src_wino: bool,
    /// Destination layout the successive layer expects.
    pub dst_wino: bool,
    /// Fused max-pool window; 0 or 1 disables pooling (2 bits).
    pub pool: u8,
}

impl Default for SaveInst {
    fn default() -> Self {
        SaveInst {
            wait_data: false,
            signal_free: false,
            buf_id: BufferHalf::Ping,
            buff_base: 0,
            dram_base: 0,
            rows: 1,
            out_w: 1,
            oc_vecs: 1,
            k_base: 0,
            y_base: 0,
            dst_w: 1,
            dst_cv: 1,
            src_wino: false,
            dst_wino: false,
            pool: 0,
        }
    }
}

/// One decoded 128-bit accelerator instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// A load into an on-chip buffer (covers `LOAD_INP`, `LOAD_WGT`,
    /// `LOAD_BIAS`, distinguished by [`LoadInst::kind`]).
    Load(LoadInst),
    /// A computation unit.
    Comp(CompInst),
    /// A store with layout transform.
    Save(SaveInst),
}

impl Instruction {
    /// The instruction's opcode.
    pub fn opcode(&self) -> Opcode {
        match self {
            Instruction::Load(l) => match l.kind {
                LoadKind::Input => Opcode::LoadInp,
                LoadKind::Weight => Opcode::LoadWgt,
                LoadKind::Bias => Opcode::LoadBias,
            },
            Instruction::Comp(_) => Opcode::Comp,
            Instruction::Save(_) => Opcode::Save,
        }
    }

    /// Encodes to a 128-bit instruction word.
    ///
    /// # Errors
    /// Returns [`IsaError::FieldOverflow`] if any field exceeds its width,
    /// or [`IsaError::InvalidField`] for semantically invalid values
    /// (zero dimensions, stride outside `1..=4`, kernel outside `1..=7`).
    pub fn encode(&self) -> Result<u128, IsaError> {
        let mut w = 0u128;
        set_bits(&mut w, "OPCODE", 127, 124, self.opcode() as u8 as u128)?;
        match self {
            Instruction::Load(l) => {
                if l.rows == 0 || l.row_len == 0 {
                    return Err(IsaError::InvalidField {
                        field: "ROWS/ROW_LEN",
                        detail: "load block must be non-empty",
                    });
                }
                let dept = (l.wait_free as u128) << 3 | (l.signal_ready as u128) << 2;
                set_bits(&mut w, "DEPT_FLAG", 123, 120, dept)?;
                set_bits(&mut w, "BUFF_ID", 119, 119, l.buf_id.bit())?;
                set_bits(&mut w, "BUFF_BASE", 118, 99, l.buff_base as u128)?;
                set_bits(&mut w, "DRAM_BASE", 98, 67, l.dram_base as u128)?;
                set_bits(&mut w, "ROWS", 66, 57, l.rows as u128)?;
                set_bits(&mut w, "ROW_LEN", 56, 40, l.row_len as u128)?;
                set_bits(&mut w, "ROW_STRIDE", 39, 23, l.row_stride as u128)?;
                set_bits(&mut w, "PADS_TOP", 22, 21, l.pads.top as u128)?;
                set_bits(&mut w, "PADS_BOTTOM", 20, 19, l.pads.bottom as u128)?;
                set_bits(&mut w, "PADS_LEFT", 18, 17, l.pads.left as u128)?;
                set_bits(&mut w, "PADS_RIGHT", 16, 15, l.pads.right as u128)?;
                set_bits(&mut w, "WINO_FLAG", 14, 14, l.wino as u128)?;
                set_bits(&mut w, "WINO_OFF_R", 13, 10, l.wino_offset.0 as u128)?;
                set_bits(&mut w, "WINO_OFF_S", 9, 6, l.wino_offset.1 as u128)?;
            }
            Instruction::Comp(c) => {
                if c.out_w == 0 || c.out_rows == 0 || c.ic_vecs == 0 || c.oc_vecs == 0 {
                    return Err(IsaError::InvalidField {
                        field: "OUT_W/OUT_ROWS/IC/OC",
                        detail: "computation unit must be non-empty",
                    });
                }
                if !(1..=4).contains(&c.stride) {
                    return Err(IsaError::InvalidField {
                        field: "STRIDE_SIZE",
                        detail: "stride must be in 1..=4",
                    });
                }
                if !(1..=7).contains(&c.kernel_h) || !(1..=7).contains(&c.kernel_w) {
                    return Err(IsaError::InvalidField {
                        field: "KERNEL",
                        detail: "kernel edges must be in 1..=7",
                    });
                }
                if !(-32..=31).contains(&c.quan_shift) {
                    return Err(IsaError::InvalidField {
                        field: "QUAN_PARAM",
                        detail: "requantization shift must be in -32..=31",
                    });
                }
                if c.wino_offset.0 > 3 || c.wino_offset.1 > 3 {
                    return Err(IsaError::InvalidField {
                        field: "WINO_OFFSET",
                        detail: "decomposition block indices must be in 0..=3",
                    });
                }
                let dept = (c.wait_inp as u128) << 3
                    | (c.free_inp as u128) << 2
                    | (c.wait_wgt as u128) << 1
                    | (c.free_wgt as u128);
                set_bits(&mut w, "DEPT_FLAG", 123, 120, dept)?;
                set_bits(&mut w, "BUFF_ID", 119, 119, c.buf_id.bit())?;
                set_bits(&mut w, "INP_BASE", 118, 99, c.inp_base as u128)?;
                set_bits(&mut w, "WGT_BASE", 98, 79, c.wgt_base as u128)?;
                set_bits(&mut w, "OUT_BASE", 78, 59, c.out_base as u128)?;
                set_bits(&mut w, "OUT_W", 58, 49, c.out_w as u128)?;
                set_bits(&mut w, "OUT_ROWS", 48, 45, c.out_rows as u128)?;
                set_bits(&mut w, "IC_VECS", 44, 35, (c.ic_vecs - 1) as u128)?;
                set_bits(&mut w, "OC_VECS", 34, 25, (c.oc_vecs - 1) as u128)?;
                set_bits(&mut w, "KERNEL_H", 24, 22, c.kernel_h as u128)?;
                set_bits(&mut w, "KERNEL_W", 21, 19, c.kernel_w as u128)?;
                set_bits(&mut w, "STRIDE_SIZE", 18, 17, (c.stride - 1) as u128)?;
                set_bits(&mut w, "RELU_FLAG", 16, 16, c.relu as u128)?;
                set_bits(
                    &mut w,
                    "QUAN_PARAM",
                    15,
                    10,
                    (c.quan_shift as i16 + 32) as u128,
                )?;
                set_bits(&mut w, "WINO_FLAG", 9, 9, c.wino as u128)?;
                set_bits(&mut w, "WINO_OFF_R", 8, 7, c.wino_offset.0 as u128)?;
                set_bits(&mut w, "WINO_OFF_S", 6, 5, c.wino_offset.1 as u128)?;
                set_bits(&mut w, "ACC_INIT", 4, 4, c.acc_init as u128)?;
                set_bits(&mut w, "ACC_FINAL", 3, 3, c.acc_final as u128)?;
                set_bits(&mut w, "BIAS_EN", 2, 2, c.bias_en as u128)?;
            }
            Instruction::Save(s) => {
                if s.rows == 0 || s.out_w == 0 || s.oc_vecs == 0 || s.dst_w == 0 || s.dst_cv == 0 {
                    return Err(IsaError::InvalidField {
                        field: "ROWS/OUT_W/OC/DST",
                        detail: "save unit must be non-empty",
                    });
                }
                let dept = (s.wait_data as u128) << 3 | (s.signal_free as u128) << 2;
                set_bits(&mut w, "DEPT_FLAG", 123, 120, dept)?;
                set_bits(&mut w, "BUFF_ID", 119, 119, s.buf_id.bit())?;
                set_bits(&mut w, "BUFF_BASE", 118, 101, s.buff_base as u128)?;
                set_bits(&mut w, "DRAM_BASE", 100, 71, s.dram_base as u128)?;
                set_bits(&mut w, "ROWS", 70, 65, s.rows as u128)?;
                set_bits(&mut w, "OUT_W", 64, 55, s.out_w as u128)?;
                set_bits(&mut w, "OC_BLK", 54, 46, s.oc_vecs as u128)?;
                set_bits(&mut w, "K_BASE", 45, 34, s.k_base as u128)?;
                set_bits(&mut w, "Y_BASE", 33, 24, s.y_base as u128)?;
                set_bits(&mut w, "DST_W", 23, 14, s.dst_w as u128)?;
                set_bits(&mut w, "DST_CV", 13, 4, (s.dst_cv - 1) as u128)?;
                set_bits(&mut w, "SRC_WINO", 3, 3, s.src_wino as u128)?;
                set_bits(&mut w, "DST_WINO", 2, 2, s.dst_wino as u128)?;
                set_bits(&mut w, "POOL_SIZE", 1, 0, s.pool as u128)?;
            }
        }
        Ok(w)
    }

    /// Decodes a 128-bit instruction word.
    ///
    /// # Errors
    /// Returns [`IsaError::InvalidOpcode`] for unknown opcodes.
    pub fn decode(w: u128) -> Result<Instruction, IsaError> {
        let opcode = Opcode::from_bits(get_bits(w, 127, 124) as u8)?;
        let dept = get_bits(w, 123, 120);
        let buf_id = BufferHalf::from_bit(get_bits(w, 119, 119));
        match opcode {
            Opcode::LoadInp | Opcode::LoadWgt | Opcode::LoadBias => {
                Ok(Instruction::Load(LoadInst {
                    kind: match opcode {
                        Opcode::LoadInp => LoadKind::Input,
                        Opcode::LoadWgt => LoadKind::Weight,
                        _ => LoadKind::Bias,
                    },
                    wait_free: dept & 0b1000 != 0,
                    signal_ready: dept & 0b0100 != 0,
                    buf_id,
                    buff_base: get_bits(w, 118, 99) as u32,
                    dram_base: get_bits(w, 98, 67) as u64,
                    rows: get_bits(w, 66, 57) as u32,
                    row_len: get_bits(w, 56, 40) as u32,
                    row_stride: get_bits(w, 39, 23) as u32,
                    pads: PadSpec {
                        top: get_bits(w, 22, 21) as u8,
                        bottom: get_bits(w, 20, 19) as u8,
                        left: get_bits(w, 18, 17) as u8,
                        right: get_bits(w, 16, 15) as u8,
                    },
                    wino: get_bits(w, 14, 14) != 0,
                    wino_offset: (get_bits(w, 13, 10) as u8, get_bits(w, 9, 6) as u8),
                }))
            }
            Opcode::Comp => Ok(Instruction::Comp(CompInst {
                wait_inp: dept & 0b1000 != 0,
                free_inp: dept & 0b0100 != 0,
                wait_wgt: dept & 0b0010 != 0,
                free_wgt: dept & 0b0001 != 0,
                buf_id,
                inp_base: get_bits(w, 118, 99) as u32,
                wgt_base: get_bits(w, 98, 79) as u32,
                out_base: get_bits(w, 78, 59) as u32,
                out_w: get_bits(w, 58, 49) as u32,
                out_rows: get_bits(w, 48, 45) as u8,
                ic_vecs: get_bits(w, 44, 35) as u32 + 1,
                oc_vecs: get_bits(w, 34, 25) as u32 + 1,
                kernel_h: get_bits(w, 24, 22) as u8,
                kernel_w: get_bits(w, 21, 19) as u8,
                stride: get_bits(w, 18, 17) as u8 + 1,
                relu: get_bits(w, 16, 16) != 0,
                quan_shift: (get_bits(w, 15, 10) as i16 - 32) as i8,
                wino: get_bits(w, 9, 9) != 0,
                wino_offset: (get_bits(w, 8, 7) as u8, get_bits(w, 6, 5) as u8),
                acc_init: get_bits(w, 4, 4) != 0,
                acc_final: get_bits(w, 3, 3) != 0,
                bias_en: get_bits(w, 2, 2) != 0,
            })),
            Opcode::Save => Ok(Instruction::Save(SaveInst {
                wait_data: dept & 0b1000 != 0,
                signal_free: dept & 0b0100 != 0,
                buf_id,
                buff_base: get_bits(w, 118, 101) as u32,
                dram_base: get_bits(w, 100, 71) as u64,
                rows: get_bits(w, 70, 65) as u8,
                out_w: get_bits(w, 64, 55) as u32,
                oc_vecs: get_bits(w, 54, 46) as u32,
                k_base: get_bits(w, 45, 34) as u32,
                y_base: get_bits(w, 33, 24) as u32,
                dst_w: get_bits(w, 23, 14) as u32,
                dst_cv: get_bits(w, 13, 4) as u32 + 1,
                src_wino: get_bits(w, 3, 3) != 0,
                dst_wino: get_bits(w, 2, 2) != 0,
                pool: get_bits(w, 1, 0) as u8,
            })),
        }
    }
}

impl fmt::Display for Instruction {
    /// One-line disassembly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Load(l) => write!(
                f,
                "{op} buf[{base}] <- dram[{dram}] {rows}x{len} stride {st}{wino}",
                op = self.opcode(),
                base = l.buff_base,
                dram = l.dram_base,
                rows = l.rows,
                len = l.row_len,
                st = l.row_stride,
                wino = if l.wino { " wino" } else { "" },
            ),
            Instruction::Comp(c) => write!(
                f,
                "COMP {mode} out[{ob}] {rows}x{w} ic {ic} oc {oc} k{kh}x{kw}/{s}{relu}{init}{fin}",
                mode = if c.wino { "wino" } else { "spat" },
                ob = c.out_base,
                rows = c.out_rows,
                w = c.out_w,
                ic = c.ic_vecs,
                oc = c.oc_vecs,
                kh = c.kernel_h,
                kw = c.kernel_w,
                s = c.stride,
                relu = if c.relu { " relu" } else { "" },
                init = if c.acc_init { " init" } else { "" },
                fin = if c.acc_final { " final" } else { "" },
            ),
            Instruction::Save(s) => write!(
                f,
                "SAVE dram[{dram}] <- buf[{base}] {rows}x{w} k@{kb} y@{yb} {src}->{dst}{pool}",
                dram = s.dram_base,
                base = s.buff_base,
                rows = s.rows,
                w = s.out_w,
                kb = s.k_base,
                yb = s.y_base,
                src = if s.src_wino { "WINO" } else { "SPAT" },
                dst = if s.dst_wino { "WINO" } else { "SPAT" },
                pool = if s.pool >= 2 {
                    format!(" pool{}", s.pool)
                } else {
                    String::new()
                },
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_load() -> LoadInst {
        LoadInst {
            kind: LoadKind::Input,
            wait_free: true,
            signal_ready: true,
            buf_id: BufferHalf::Pong,
            buff_base: 0xF_FFFF,
            dram_base: 0xDEAD_BEEF,
            rows: 6,
            row_len: 115_712,
            row_stride: 115_712,
            pads: PadSpec {
                top: 1,
                bottom: 0,
                left: 1,
                right: 1,
            },
            wino: true,
            wino_offset: (1, 2),
        }
    }

    #[test]
    fn load_roundtrip() {
        let inst = Instruction::Load(sample_load());
        let w = inst.encode().unwrap();
        assert_eq!(Instruction::decode(w).unwrap(), inst);
    }

    #[test]
    fn comp_roundtrip() {
        let inst = Instruction::Comp(CompInst {
            wait_inp: true,
            free_inp: false,
            wait_wgt: true,
            free_wgt: true,
            inp_base: 1234,
            wgt_base: 99_000,
            out_base: 7,
            out_w: 224,
            out_rows: 4,
            ic_vecs: 128,
            oc_vecs: 16,
            kernel_h: 3,
            kernel_w: 3,
            stride: 2,
            relu: true,
            quan_shift: -8,
            wino: false,
            wino_offset: (0, 0),
            acc_init: true,
            acc_final: false,
            bias_en: true,
            ..CompInst::default()
        });
        let w = inst.encode().unwrap();
        assert_eq!(Instruction::decode(w).unwrap(), inst);
    }

    #[test]
    fn save_roundtrip() {
        let inst = Instruction::Save(SaveInst {
            wait_data: true,
            signal_free: true,
            buf_id: BufferHalf::Ping,
            buff_base: 42,
            dram_base: 0x3FFF_FFFF,
            rows: 4,
            out_w: 224,
            oc_vecs: 16,
            k_base: 4080,
            y_base: 220,
            dst_w: 226,
            dst_cv: 128,
            src_wino: true,
            dst_wino: false,
            pool: 2,
        });
        let w = inst.encode().unwrap();
        assert_eq!(Instruction::decode(w).unwrap(), inst);
    }

    #[test]
    fn bias_load_keeps_opcode() {
        let mut l = sample_load();
        l.kind = LoadKind::Bias;
        let inst = Instruction::Load(l);
        assert_eq!(inst.opcode(), Opcode::LoadBias);
        let w = inst.encode().unwrap();
        assert_eq!(Instruction::decode(w).unwrap().opcode(), Opcode::LoadBias);
    }

    #[test]
    fn field_overflow_rejected() {
        let mut l = sample_load();
        l.buff_base = 1 << 20;
        assert!(matches!(
            Instruction::Load(l).encode(),
            Err(IsaError::FieldOverflow {
                field: "BUFF_BASE",
                ..
            })
        ));
    }

    #[test]
    fn zero_dimensions_rejected() {
        let c = CompInst {
            out_w: 0,
            ..CompInst::default()
        };
        assert!(matches!(
            Instruction::Comp(c).encode(),
            Err(IsaError::InvalidField { .. })
        ));
        let s = SaveInst {
            rows: 0,
            ..SaveInst::default()
        };
        assert!(Instruction::Save(s).encode().is_err());
    }

    #[test]
    fn illegal_stride_and_kernel_rejected() {
        let mut c = CompInst {
            stride: 5,
            ..CompInst::default()
        };
        assert!(Instruction::Comp(c.clone()).encode().is_err());
        c.stride = 1;
        c.kernel_h = 8;
        assert!(Instruction::Comp(c.clone()).encode().is_err());
        c.kernel_h = 3;
        c.kernel_w = 0;
        assert!(Instruction::Comp(c).encode().is_err());
    }

    #[test]
    fn invalid_opcode_rejected() {
        let w = 0xFu128 << 124;
        assert_eq!(
            Instruction::decode(w).unwrap_err(),
            IsaError::InvalidOpcode { opcode: 0xF }
        );
    }

    #[test]
    fn quan_shift_covers_signed_range() {
        for shift in [-32i8, -1, 0, 1, 31] {
            let inst = Instruction::Comp(CompInst {
                quan_shift: shift,
                ..CompInst::default()
            });
            let w = inst.encode().unwrap();
            let Instruction::Comp(c) = Instruction::decode(w).unwrap() else {
                panic!("wrong variant");
            };
            assert_eq!(c.quan_shift, shift);
        }
    }

    #[test]
    fn disassembly_mentions_key_fields() {
        let s = Instruction::Load(sample_load()).to_string();
        assert!(s.contains("LOAD_INP"));
        assert!(s.contains("wino"));
        let c = Instruction::Comp(CompInst::default()).to_string();
        assert!(c.contains("COMP spat"));
        let sv = Instruction::Save(SaveInst {
            pool: 2,
            ..SaveInst::default()
        })
        .to_string();
        assert!(sv.contains("pool2"));
    }

    #[test]
    fn load_words_multiplies_block() {
        assert_eq!(sample_load().words(), 6 * 115_712);
    }
}
