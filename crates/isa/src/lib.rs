//! The customized 128-bit instruction set of the HybridDNN accelerator
//! (paper Figure 2).
//!
//! Five instructions drive the accelerator's five functional modules:
//!
//! | instruction | module     | purpose                                        |
//! |-------------|------------|------------------------------------------------|
//! | `LOAD_INP`  | LOAD_INP   | DRAM → input buffer (rectangular block)        |
//! | `LOAD_WGT`  | LOAD_WGT   | DRAM → weight buffer                           |
//! | `LOAD_BIAS` | LOAD_WGT   | DRAM → bias buffer                             |
//! | `COMP`      | COMP       | one (row-group × weight-group) partition unit  |
//! | `SAVE`      | SAVE       | output buffer → DRAM with layout transform     |
//!
//! Every instruction is 128 bits and carries a `WINO_FLAG` selecting the
//! CONV mode plus `BUFF_BASE`/`DRAM_BASE` fields that give the compiler
//! full control of data movement, enabling both Input-Stationary and
//! Weight-Stationary dataflows (§4.1).
//!
//! The paper specifies the field *names* but not their widths; this crate
//! freezes a concrete layout (documented per instruction type) chosen so
//! that VGG16-scale workloads encode losslessly. Two liberties are taken
//! and documented: `COMP` carries the kernel geometry (the paper's RSRV
//! space), and loads are expressed as `rows × row_len` strided block
//! copies, which subsumes both feature-map layouts of Figure 5.
//!
//! # Example
//!
//! ```
//! use hybriddnn_isa::{CompInst, Instruction};
//!
//! # fn main() -> Result<(), hybriddnn_isa::IsaError> {
//! let comp = CompInst {
//!     out_w: 224,
//!     out_rows: 4,
//!     ic_vecs: 16,
//!     oc_vecs: 16,
//!     kernel_h: 3,
//!     kernel_w: 3,
//!     wino: true,
//!     relu: true,
//!     acc_init: true,
//!     acc_final: true,
//!     bias_en: true,
//!     ..CompInst::default()
//! };
//! let word = Instruction::Comp(comp.clone()).encode()?;
//! assert_eq!(Instruction::decode(word)?, Instruction::Comp(comp));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod error;
mod inst;
mod program;

pub use error::IsaError;
pub use inst::{BufferHalf, CompInst, Instruction, LoadInst, LoadKind, Opcode, PadSpec, SaveInst};
pub use program::Program;
