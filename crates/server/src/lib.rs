//! # hybriddnn-server
//!
//! A TCP serving front-end for the HybridDNN runtime: a versioned
//! binary wire protocol ([`protocol`]), a hot-swappable multi-model
//! [`registry`], an event-driven pipelined [`server`] (a small pool of
//! reactor threads multiplexing all connections over `hybriddnn-net`'s
//! epoll poller), and a blocking [`client`].
//!
//! The subsystem is std-only — framing, concurrency, and I/O are all
//! built on `std::net`, `std::thread`, and the hand-rolled readiness
//! primitives in `hybriddnn-net`, matching the rest of the workspace.
//! The load-bearing invariants:
//!
//! - **Exactly one response per request id.** Every admitted frame is
//!   answered exactly once, even across drain, fault injection, worker
//!   restarts, and model unloads — inherited from the runtime's
//!   response-sink plumbing and enforced end-to-end by the e2e tests.
//! - **Bit-identical results.** An `INFER` response carries the same
//!   f32 bit patterns as a local [`hybriddnn_sim::Simulator::run`] on
//!   the same compiled model, because the wire codec round-trips raw
//!   bits and the registry serves from the same deterministic
//!   simulator replicas.
//! - **Typed failure.** Every [`hybriddnn_runtime::RuntimeError`] and
//!   [`hybriddnn_sim::SimError`] variant has a wire representation;
//!   malformed bytes decode to typed errors, never panics.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod registry;
pub mod server;

pub use client::{Client, ClientError};
pub use protocol::{Body, DecodeError, Frame, LoadRequest, WireError, PROTOCOL_VERSION};
pub use registry::{build_model, zoo_resolver, Registry, ResolvedModel, Resolver};
pub use server::{Server, ServerConfig};
