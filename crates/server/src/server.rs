//! The TCP connection layer: an event-driven reactor multiplexing all
//! sockets over a configurable pool of single-digit I/O threads.
//!
//! The previous incarnation spent three threads per connection (reader,
//! writer, completion pump) and therefore could not hold thousands of
//! mostly-idle clients. This one runs a fixed thread set regardless of
//! connection count:
//!
//! - one blocking **acceptor** admits connections against the budget
//!   and deals them round-robin to the reactors;
//! - `io_threads` **reactors**, each owning an [`hybriddnn_net::Poller`]
//!   (epoll on Linux), a timer wheel, and its share of the connections.
//!   Frames decode incrementally out of per-connection ring buffers
//!   ([`StreamDecoder`]) with zero intermediate copies; responses queue
//!   per connection and drain with `write_vectored`, coalescing
//!   pipelined responses into one syscall; idle timeouts and drain
//!   grace periods live on the timer wheel instead of per-socket
//!   `set_read_timeout` ticks;
//! - one **completion pump** receives the runtime's routed completions
//!   (tagged, in *completion* order), encodes them into pooled buffers
//!   (the steady-state write path allocates nothing once warm), and
//!   injects them into the owning reactor's command queue.
//!
//! The wire protocol, connection budget, and drain semantics are
//! unchanged: `DRAIN` flips the server *before* its ack is enqueued,
//! in-flight requests complete with exactly one response per request
//! id, idle-and-draining connections linger `drain_grace` answering
//! typed [`WireError::Draining`] rejects, and [`Server::shutdown`]
//! joins every thread — the e2e tests assert the process thread count
//! returns to its pre-server baseline.

use crate::protocol::{
    Body, DecodeError, Frame, OutputBody, StreamDecoder, TimingBody, WireError, MAX_PAYLOAD,
};
use crate::registry::{QuotaGuard, Registry};
use hybriddnn_net::{BufPool, Interest, Poller, TimerKey, TimerWheel, Token, Waker};
use hybriddnn_runtime::{InferenceResponse, RuntimeError};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, IoSlice, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of the connection layer.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent connection budget; connection number `max + 1` is
    /// answered with a typed [`WireError::ConnectionLimit`] and closed.
    pub max_connections: usize,
    /// A connection with no traffic and no in-flight work for this long
    /// is closed (enforced by the reactor's timer wheel).
    pub idle_timeout: Duration,
    /// Upper bound on a draining reactor's poll sleep, so the shutdown
    /// exit condition is re-evaluated at least this often. (Steady-state
    /// reactors sleep on the timer wheel alone; this knob predates the
    /// reactor, where it was the per-socket read timeout.)
    pub read_tick: Duration,
    /// Per-frame payload ceiling (bytes); larger frames are rejected
    /// with a typed error before allocation.
    pub max_frame: u32,
    /// Once draining and out of in-flight work, a connection lingers
    /// this long answering late frames with typed [`WireError::Draining`]
    /// rejects before it closes. Bounds how long shutdown can take.
    pub drain_grace: Duration,
    /// Reactor threads multiplexing the connections (clamped to ≥ 1).
    /// Total server threads are `io_threads` + 2 (acceptor + completion
    /// pump) regardless of connection count.
    pub io_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            idle_timeout: Duration::from_secs(60),
            read_tick: Duration::from_millis(20),
            max_frame: MAX_PAYLOAD,
            drain_grace: Duration::from_millis(250),
            io_threads: 2,
        }
    }
}

/// Work injected into a reactor from other threads.
enum Cmd {
    /// A freshly admitted connection to adopt.
    Conn(TcpStream),
    /// A pre-encoded frame to enqueue on `conn`'s output queue.
    /// `clear` names an in-flight request id this frame answers.
    Reply {
        conn: u64,
        clear: Option<u64>,
        buf: Vec<u8>,
    },
    /// The server is draining: arm grace timers on idle connections.
    Drain,
}

/// A reactor's cross-thread mailbox: commands plus the waker that
/// interrupts its poller.
struct ReactorHandle {
    queue: Mutex<Vec<Cmd>>,
    waker: Waker,
}

impl ReactorHandle {
    fn inject(&self, cmd: Cmd) {
        self.queue.lock().expect("reactor queue").push(cmd);
        self.waker.wake();
    }
}

/// Book-keeping for one in-flight inference, keyed by its routing tag.
struct PendingEntry {
    /// Index of the reactor owning the connection.
    reactor: usize,
    /// The connection the response must return to.
    conn: u64,
    /// The client's request id (echoed in the response frame).
    request_id: u64,
    /// `INFER_TIMING` → respond without the tensor.
    timing: bool,
    /// The model-quota unit, released when the response ships.
    guard: Option<QuotaGuard>,
}

struct Shared {
    registry: Arc<Registry>,
    config: ServerConfig,
    addr: SocketAddr,
    draining: AtomicBool,
    acceptor_done: AtomicBool,
    connections: AtomicUsize,
    peak_connections: AtomicUsize,
    next_conn_id: AtomicU64,
    next_tag: AtomicU64,
    reactors: Vec<Arc<ReactorHandle>>,
    pending: Mutex<HashMap<u64, PendingEntry>>,
    pool: Arc<BufPool>,
    drain_flag: Mutex<bool>,
    drain_cv: Condvar,
}

impl Shared {
    /// Flips the server into draining, wakes the blocked acceptor with a
    /// loopback connection, and tells every reactor to arm grace timers.
    /// Idempotent.
    fn signal_drain(&self) {
        if self.draining.swap(true, Ordering::AcqRel) {
            return;
        }
        self.registry.begin_drain();
        *self.drain_flag.lock().expect("drain lock") = true;
        self.drain_cv.notify_all();
        // The acceptor blocks in accept(); a throwaway loopback connect
        // unblocks it so it can observe the flag and exit.
        let _ = TcpStream::connect(self.addr);
        for reactor in &self.reactors {
            reactor.inject(Cmd::Drain);
        }
    }
}

/// A running TCP server over a model [`Registry`].
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    reactors: Vec<JoinHandle<()>>,
    pump: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the acceptor, reactor pool, and completion pump.
    ///
    /// # Errors
    /// Socket bind or poller creation failures.
    pub fn bind(
        registry: Arc<Registry>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let io_threads = config.io_threads.max(1);

        let mut pollers = Vec::with_capacity(io_threads);
        let mut handles = Vec::with_capacity(io_threads);
        for _ in 0..io_threads {
            let poller = Poller::new()?;
            handles.push(Arc::new(ReactorHandle {
                queue: Mutex::new(Vec::new()),
                waker: poller.waker(),
            }));
            pollers.push(poller);
        }

        let shared = Arc::new(Shared {
            registry,
            config,
            addr,
            draining: AtomicBool::new(false),
            acceptor_done: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            peak_connections: AtomicUsize::new(0),
            next_conn_id: AtomicU64::new(1),
            next_tag: AtomicU64::new(1),
            reactors: handles,
            pending: Mutex::new(HashMap::new()),
            pool: Arc::new(BufPool::new(256, 1 << 20)),
            drain_flag: Mutex::new(false),
            drain_cv: Condvar::new(),
        });

        // One server-wide completion channel: reactors tag submissions,
        // the pump routes completions back by tag. The local sender is
        // dropped below so the channel disconnects — and the pump exits —
        // once the reactors and all in-flight requests are done.
        let (completions_tx, completions_rx) =
            mpsc::channel::<(u64, Result<InferenceResponse, RuntimeError>)>();

        let mut reactor_joins = Vec::with_capacity(io_threads);
        for (idx, poller) in pollers.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let completions = completions_tx.clone();
            reactor_joins.push(std::thread::spawn(move || {
                reactor_loop(&shared, idx, poller, &completions);
            }));
        }
        drop(completions_tx);

        let pump_shared = Arc::clone(&shared);
        let pump = std::thread::spawn(move || pump_loop(&pump_shared, &completions_rx));

        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::spawn(move || accept_loop(&listener, &accept_shared));

        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            reactors: reactor_joins,
            pump: Some(pump),
        })
    }

    /// The bound address (the actual port when bound ephemeral).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Blocks until some client sends `DRAIN` (or [`Server::shutdown`]
    /// begins). The CLI parks its main thread here.
    pub fn wait_drained(&self) {
        let mut flag = self.shared.drain_flag.lock().expect("drain lock");
        while !*flag {
            flag = self.shared.drain_cv.wait(flag).expect("drain lock");
        }
    }

    /// Graceful shutdown: stop accepting, answer new work with typed
    /// [`WireError::Draining`] rejects, complete all in-flight
    /// requests, then join the acceptor, every reactor, the registry's
    /// threads, and the completion pump. Returns the final aggregate
    /// metrics, snapshotted after the last connection finished and
    /// before the model services are dropped; the server owns zero
    /// threads afterwards.
    pub fn shutdown(mut self) -> crate::protocol::StatsBody {
        self.shared.signal_drain();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for reactor in self.reactors.drain(..) {
            let _ = reactor.join();
        }
        let stats = self.shared.registry.stats();
        // Draining the registry joins every service thread, dropping the
        // runtime's remaining completion-sender clones; the pump's
        // channel then disconnects and it exits.
        self.shared.registry.drain();
        if let Some(pump) = self.pump.take() {
            let _ = pump.join();
        }
        stats
    }
}

// ---------------------------------------------------------------------
// Acceptor
// ---------------------------------------------------------------------

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut next_reactor = 0usize;
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let max = shared.config.max_connections;
        let admitted = shared
            .connections
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < max).then_some(n + 1)
            });
        let Ok(prev) = admitted else {
            // Over budget: answer with a typed reject, then close.
            let frame = Frame::new(
                0,
                Body::Error(WireError::ConnectionLimit { max: max as u64 }),
            );
            let mut stream = stream;
            let _ = stream.write_all(&frame.encode());
            continue;
        };
        shared
            .peak_connections
            .fetch_max(prev + 1, Ordering::AcqRel);
        shared.reactors[next_reactor].inject(Cmd::Conn(stream));
        next_reactor = (next_reactor + 1) % shared.reactors.len();
    }
    // Publish "no more connections will ever arrive" before waking the
    // reactors: any connection injected above is already in a queue, so
    // a reactor observing `acceptor_done` with an empty queue and no
    // connections can safely exit.
    shared.acceptor_done.store(true, Ordering::Release);
    for reactor in &shared.reactors {
        reactor.waker.wake();
    }
}

// ---------------------------------------------------------------------
// Completion pump
// ---------------------------------------------------------------------

fn pump_loop(
    shared: &Arc<Shared>,
    completions: &mpsc::Receiver<(u64, Result<InferenceResponse, RuntimeError>)>,
) {
    for (tag, result) in completions {
        let Some(entry) = shared.pending.lock().expect("pending lock").remove(&tag) else {
            continue;
        };
        let body = match result {
            Ok(resp) => response_body(resp, entry.timing),
            Err(e) => Body::Error(WireError::from(&e)),
        };
        let mut buf = shared.pool.get();
        Frame::new(entry.request_id, body).encode_into(&mut buf);
        shared.reactors[entry.reactor].inject(Cmd::Reply {
            conn: entry.conn,
            clear: Some(entry.request_id),
            buf,
        });
        // The quota unit releases only after the response is queued for
        // the wire — exactly-one-response pairs with exactly-one-release.
        drop(entry.guard);
    }
}

fn response_body(resp: InferenceResponse, timing: bool) -> Body {
    let latency_nanos = resp.latency.as_nanos().min(u128::from(u64::MAX)) as u64;
    if timing {
        Body::Timing(TimingBody {
            total_cycles: resp.total_cycles,
            latency_nanos,
            batch_size: resp.batch_size as u32,
            worker: resp.worker as u32,
            degraded: resp.degraded,
        })
    } else {
        Body::Output(OutputBody {
            tensor: resp.output,
            total_cycles: resp.total_cycles,
            latency_nanos,
            batch_size: resp.batch_size as u32,
            worker: resp.worker as u32,
            degraded: resp.degraded,
        })
    }
}

// ---------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------

/// A response (or reject) queued on a connection, partially written.
struct OutBuf {
    buf: Vec<u8>,
    pos: usize,
}

/// Timer payload encoding: `(conn_id << 1) | kind`.
const TIMER_IDLE: u64 = 0;
const TIMER_GRACE: u64 = 1;

struct Conn {
    stream: TcpStream,
    decoder: StreamDecoder,
    out: VecDeque<OutBuf>,
    /// Request ids submitted on this connection and not yet answered.
    inflight: HashSet<u64>,
    last_activity: Instant,
    idle_timer: Option<TimerKey>,
    grace_timer: Option<TimerKey>,
    /// EOF, fatal decode error, or hard read error: stop reading, but
    /// keep the connection until in-flight responses have shipped.
    read_closed: bool,
    /// The interest set currently registered with the poller.
    interest: (bool, bool),
}

impl Conn {
    fn desired_interest(&self) -> (bool, bool) {
        (!self.read_closed, !self.out.is_empty())
    }
}

/// Upper bound on `read()` rounds per readable event, so one firehose
/// connection cannot starve its reactor siblings (level-triggered
/// readiness re-reports leftover bytes on the next wakeup).
const MAX_READS_PER_WAKE: usize = 16;

/// Response buffers coalesced into one `write_vectored` syscall.
const MAX_IOV: usize = 64;

fn reactor_loop(
    shared: &Arc<Shared>,
    idx: usize,
    mut poller: Poller,
    completions: &mpsc::Sender<(u64, Result<InferenceResponse, RuntimeError>)>,
) {
    let handle = Arc::clone(&shared.reactors[idx]);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut wheel = TimerWheel::new();
    let mut events = Vec::new();
    let mut cmds: Vec<Cmd> = Vec::new();
    let mut expired: Vec<u64> = Vec::new();
    let mut touched: Vec<u64> = Vec::new();

    loop {
        let now = Instant::now();
        let mut timeout = wheel.timeout_from(now);
        if shared.draining.load(Ordering::Acquire) {
            // Bound the sleep while draining so the exit condition below
            // is re-evaluated even if a wakeup is lost.
            let cap = shared.config.read_tick;
            timeout = Some(timeout.map_or(cap, |t| t.min(cap)));
        }
        let _ = poller.wait(&mut events, timeout);

        // Cross-thread commands (new connections, responses, drain).
        {
            let mut queue = handle.queue.lock().expect("reactor queue");
            std::mem::swap(&mut *queue, &mut cmds);
        }
        for cmd in cmds.drain(..) {
            match cmd {
                Cmd::Conn(stream) => {
                    adopt_conn(shared, &poller, &mut conns, &mut wheel, stream);
                }
                Cmd::Reply { conn, clear, buf } => {
                    let Some(c) = conns.get_mut(&conn) else {
                        // The connection died while the request was in
                        // flight; recycle the buffer and move on.
                        shared.pool.put(buf);
                        continue;
                    };
                    if let Some(id) = clear {
                        c.inflight.remove(&id);
                    }
                    c.out.push_back(OutBuf { buf, pos: 0 });
                    touch(&mut touched, conn);
                }
                Cmd::Drain => {
                    // Grace timers for already-idle connections; busy
                    // ones arm theirs when their last response ships.
                    for (&id, c) in conns.iter_mut() {
                        if c.inflight.is_empty() && c.grace_timer.is_none() {
                            c.grace_timer = Some(wheel.insert(
                                Instant::now() + shared.config.drain_grace,
                                (id << 1) | TIMER_GRACE,
                            ));
                        }
                    }
                }
            }
        }

        // Socket readiness.
        for ev in &events {
            let conn_id = ev.token.0 as u64;
            let Some(conn) = conns.get_mut(&conn_id) else {
                continue;
            };
            if ev.readable || ev.closed {
                handle_readable(shared, idx, conn_id, completions, conn);
            }
            touch(&mut touched, conn_id);
        }

        // Expired timers.
        let now = Instant::now();
        expired.clear();
        wheel.pop_expired(now, &mut expired);
        for &data in &expired {
            let conn_id = data >> 1;
            let kind = data & 1;
            let Some(conn) = conns.get_mut(&conn_id) else {
                continue;
            };
            if kind == TIMER_GRACE {
                // Drain grace over: the lingering connection closes even
                // if the peer never hangs up.
                close_conn(shared, &poller, &mut conns, &mut wheel, conn_id);
                continue;
            }
            // Idle timer: re-arm lazily against actual last activity so
            // per-frame traffic never touches the wheel.
            let due = conn.last_activity + shared.config.idle_timeout;
            if now < due {
                conn.idle_timer = Some(wheel.insert(due, (conn_id << 1) | TIMER_IDLE));
            } else if conn.inflight.is_empty() {
                conn.idle_timer = None;
                close_conn(shared, &poller, &mut conns, &mut wheel, conn_id);
            } else {
                conn.idle_timer = Some(wheel.insert(
                    now + shared.config.idle_timeout,
                    (conn_id << 1) | TIMER_IDLE,
                ));
            }
        }

        // Flush, re-arm, and close touched connections exactly once per
        // wakeup — this is where pipelined responses coalesce into a
        // single vectored write.
        for &conn_id in &touched {
            finalize_conn(shared, &poller, &mut conns, &mut wheel, conn_id);
        }
        touched.clear();

        // Exit: draining, the acceptor can deal no more connections,
        // every owned connection is gone, and nothing is queued.
        if shared.draining.load(Ordering::Acquire)
            && shared.acceptor_done.load(Ordering::Acquire)
            && conns.is_empty()
            && handle.queue.lock().expect("reactor queue").is_empty()
        {
            break;
        }
    }
}

fn touch(touched: &mut Vec<u64>, conn_id: u64) {
    if touched.last() != Some(&conn_id) && !touched.contains(&conn_id) {
        touched.push(conn_id);
    }
}

fn adopt_conn(
    shared: &Arc<Shared>,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    wheel: &mut TimerWheel,
    stream: TcpStream,
) {
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::AcqRel);
    if stream.set_nonblocking(true).is_err() {
        shared.connections.fetch_sub(1, Ordering::AcqRel);
        return;
    }
    let _ = stream.set_nodelay(true);
    if poller
        .register(
            stream.as_raw_fd(),
            Token(conn_id as usize),
            Interest::READABLE,
        )
        .is_err()
    {
        shared.connections.fetch_sub(1, Ordering::AcqRel);
        return;
    }
    let now = Instant::now();
    let idle_timer = Some(wheel.insert(
        now + shared.config.idle_timeout,
        (conn_id << 1) | TIMER_IDLE,
    ));
    let grace_timer = shared.draining.load(Ordering::Acquire).then(|| {
        wheel.insert(
            now + shared.config.drain_grace,
            (conn_id << 1) | TIMER_GRACE,
        )
    });
    conns.insert(
        conn_id,
        Conn {
            stream,
            decoder: StreamDecoder::new(shared.config.max_frame),
            out: VecDeque::new(),
            inflight: HashSet::new(),
            last_activity: now,
            idle_timer,
            grace_timer,
            read_closed: false,
            interest: (true, false),
        },
    );
}

fn close_conn(
    shared: &Arc<Shared>,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    wheel: &mut TimerWheel,
    conn_id: u64,
) {
    let Some(conn) = conns.remove(&conn_id) else {
        return;
    };
    if let Some(key) = conn.idle_timer {
        wheel.cancel(key);
    }
    if let Some(key) = conn.grace_timer {
        wheel.cancel(key);
    }
    let _ = poller.deregister(conn.stream.as_raw_fd());
    for ob in conn.out {
        shared.pool.put(ob.buf);
    }
    shared.connections.fetch_sub(1, Ordering::AcqRel);
    // Pending entries for this connection's in-flight requests stay in
    // the table: the pump still routes their completions (the reactor
    // recycles the buffers) and releases their quota guards.
}

/// Post-processing for a connection something happened to this wakeup:
/// flush the output queue, arm the drain grace timer if the connection
/// just went idle while draining, close if finished, and reconcile the
/// poller interest set.
fn finalize_conn(
    shared: &Arc<Shared>,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    wheel: &mut TimerWheel,
    conn_id: u64,
) {
    let Some(conn) = conns.get_mut(&conn_id) else {
        return;
    };
    conn.decoder.shrink();
    if flush_out(conn, &shared.pool).is_err() {
        close_conn(shared, poller, conns, wheel, conn_id);
        return;
    }
    if conn.read_closed && conn.inflight.is_empty() && conn.out.is_empty() {
        close_conn(shared, poller, conns, wheel, conn_id);
        return;
    }
    if shared.draining.load(Ordering::Acquire)
        && conn.inflight.is_empty()
        && conn.grace_timer.is_none()
    {
        conn.grace_timer = Some(wheel.insert(
            Instant::now() + shared.config.drain_grace,
            (conn_id << 1) | TIMER_GRACE,
        ));
    }
    let desired = conn.desired_interest();
    if desired != conn.interest {
        let interest = Interest {
            readable: desired.0,
            writable: desired.1,
        };
        if poller
            .reregister(conn.stream.as_raw_fd(), Token(conn_id as usize), interest)
            .is_err()
        {
            close_conn(shared, poller, conns, wheel, conn_id);
            return;
        }
        conn.interest = desired;
    }
}

/// Drains the output queue with vectored writes until empty or the
/// socket pushes back.
///
/// # Errors
/// Hard socket errors; the caller closes the connection.
fn flush_out(conn: &mut Conn, pool: &BufPool) -> io::Result<()> {
    while !conn.out.is_empty() {
        let mut iov: [IoSlice<'_>; MAX_IOV] = std::array::from_fn(|_| IoSlice::new(&[]));
        let mut n_iov = 0;
        for ob in conn.out.iter().take(MAX_IOV) {
            iov[n_iov] = IoSlice::new(&ob.buf[ob.pos..]);
            n_iov += 1;
        }
        let written = match conn.stream.write_vectored(&iov[..n_iov]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        let mut left = written;
        while left > 0 {
            let front = conn.out.front_mut().expect("wrote past output queue");
            let remaining = front.buf.len() - front.pos;
            if left >= remaining {
                left -= remaining;
                let ob = conn.out.pop_front().expect("front exists");
                pool.put(ob.buf);
            } else {
                front.pos += left;
                left = 0;
            }
        }
    }
    Ok(())
}

/// Reads and decodes everything the socket has, dispatching each frame.
fn handle_readable(
    shared: &Arc<Shared>,
    idx: usize,
    conn_id: u64,
    completions: &mpsc::Sender<(u64, Result<InferenceResponse, RuntimeError>)>,
    conn: &mut Conn,
) {
    if conn.read_closed {
        return;
    }
    let mut rounds = 0;
    loop {
        match conn.decoder.read_from(&mut conn.stream) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(_) => loop {
                match conn.decoder.next_frame() {
                    Ok(Some(frame)) => {
                        conn.last_activity = Instant::now();
                        handle_frame(shared, idx, conn_id, completions, conn, frame);
                    }
                    Ok(None) => break,
                    Err(e) => {
                        // The byte stream cannot be re-synchronized after
                        // a framing error: answer typed, stop reading,
                        // and close once queued responses have shipped.
                        let wire = match e {
                            DecodeError::FrameTooLarge { len, max } => {
                                WireError::FrameTooLarge { len, max }
                            }
                            other => WireError::BadRequest {
                                detail: other.to_string(),
                            },
                        };
                        enqueue_reply(shared, conn, Frame::new(0, Body::Error(wire)));
                        conn.read_closed = true;
                        return;
                    }
                }
            },
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Hard read error: the write side will surface it too if
                // the socket is truly dead; ship what we still owe.
                conn.read_closed = true;
                break;
            }
        }
        rounds += 1;
        if rounds >= MAX_READS_PER_WAKE {
            break;
        }
    }
    // Release the ring before the next connection in this wakeup batch
    // allocates its own: N readable sockets then share one recycled read
    // chunk instead of holding N live at once.
    conn.decoder.shrink();
}

/// Encodes `frame` into a pooled buffer on `conn`'s output queue.
fn enqueue_reply(shared: &Arc<Shared>, conn: &mut Conn, frame: Frame) {
    let mut buf = shared.pool.get();
    frame.encode_into(&mut buf);
    conn.out.push_back(OutBuf { buf, pos: 0 });
}

fn handle_frame(
    shared: &Arc<Shared>,
    idx: usize,
    conn_id: u64,
    completions: &mpsc::Sender<(u64, Result<InferenceResponse, RuntimeError>)>,
    conn: &mut Conn,
    frame: Frame,
) {
    let request_id = frame.request_id;
    let model_id = frame.model_id;
    let deadline =
        (frame.deadline_micros > 0).then(|| Duration::from_micros(frame.deadline_micros));
    let reply = |conn: &mut Conn, body: Body| {
        let mut f = Frame::new(request_id, body);
        f.model_id = model_id;
        enqueue_reply(shared, conn, f);
    };
    let draining = shared.draining.load(Ordering::Acquire);
    match frame.body {
        Body::Infer { tensor } | Body::InferTiming { tensor } if draining => {
            let _ = tensor;
            reply(conn, Body::Error(WireError::Draining));
        }
        body @ (Body::Infer { .. } | Body::InferTiming { .. }) => {
            let (tensor, timing) = match body {
                Body::Infer { tensor } => (tensor, false),
                Body::InferTiming { tensor } => (tensor, true),
                _ => unreachable!("matched above"),
            };
            if conn.inflight.contains(&request_id) {
                reply(
                    conn,
                    Body::Error(WireError::BadRequest {
                        detail: format!("request id {request_id} is already in flight"),
                    }),
                );
                return;
            }
            // Register the pending entry *before* submitting: a worker
            // may complete the request (and the pump look it up) before
            // submit() even returns. Tags are server-unique, so request
            // ids only need to be unique per connection.
            let tag = shared.next_tag.fetch_add(1, Ordering::AcqRel);
            conn.inflight.insert(request_id);
            shared.pending.lock().expect("pending lock").insert(
                tag,
                PendingEntry {
                    reactor: idx,
                    conn: conn_id,
                    request_id,
                    timing,
                    guard: None,
                },
            );
            match shared
                .registry
                .submit(model_id, tensor, deadline, completions.clone(), tag)
            {
                Ok(guard) => {
                    // Park the quota unit with the pending entry; if the
                    // pump already shipped the response, the entry is
                    // gone and the guard releases right here.
                    if let Some(entry) = shared.pending.lock().expect("pending lock").get_mut(&tag)
                    {
                        entry.guard = Some(guard);
                    }
                }
                Err(e) => {
                    shared.pending.lock().expect("pending lock").remove(&tag);
                    conn.inflight.remove(&request_id);
                    reply(conn, Body::Error(e));
                }
            }
        }
        Body::LoadModel(req) => {
            if draining {
                reply(conn, Body::Error(WireError::Draining));
                return;
            }
            let handle = Arc::clone(&shared.reactors[idx]);
            let pool = Arc::clone(&shared.pool);
            shared.registry.load(
                req,
                Box::new(move |result| {
                    let body = match result {
                        Ok((id, name, version)) => Body::Loaded {
                            model_id: id,
                            name,
                            version,
                        },
                        Err(e) => Body::Error(e),
                    };
                    let mut buf = pool.get();
                    Frame::new(request_id, body).encode_into(&mut buf);
                    handle.inject(Cmd::Reply {
                        conn: conn_id,
                        clear: None,
                        buf,
                    });
                }),
            );
        }
        Body::UnloadModel => {
            let handle = Arc::clone(&shared.reactors[idx]);
            let pool = Arc::clone(&shared.pool);
            shared.registry.unload(
                model_id,
                Box::new(move |result| {
                    let body = match result {
                        Ok(()) => Body::Unloaded,
                        Err(e) => Body::Error(e),
                    };
                    let mut buf = pool.get();
                    Frame::new(request_id, body).encode_into(&mut buf);
                    handle.inject(Cmd::Reply {
                        conn: conn_id,
                        clear: None,
                        buf,
                    });
                }),
            );
        }
        Body::ListModels => reply(conn, Body::ModelList(shared.registry.list())),
        Body::Stats => {
            let mut stats = shared.registry.stats();
            stats.connections = shared.connections.load(Ordering::Acquire) as u32;
            stats.peak_connections = shared.peak_connections.load(Ordering::Acquire) as u32;
            reply(conn, Body::StatsReply(stats));
        }
        Body::Ping { payload } => reply(conn, Body::Pong { payload }),
        Body::Drain => {
            // Flip the server *before* the ack is enqueued: a client
            // that has received the ack is then guaranteed that all its
            // later work — on any connection — gets typed rejects.
            shared.signal_drain();
            reply(conn, Body::Draining);
        }
        // A client sending response opcodes is confused; tell it so.
        _ => reply(
            conn,
            Body::Error(WireError::BadRequest {
                detail: format!("opcode {:#04x} is not a request", frame.body.opcode() as u8),
            }),
        ),
    }
}
