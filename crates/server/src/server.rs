//! The TCP connection layer: a thread-per-connection acceptor with a
//! bounded connection budget, per-connection request pipelining, and
//! graceful drain.
//!
//! Each accepted connection runs three threads:
//!
//! - the **reader** (the connection thread itself) frames bytes off the
//!   socket with [`protocol::try_decode`] and dispatches requests;
//! - the **writer** serializes pre-encoded response frames onto the
//!   socket from a channel, so any thread may answer;
//! - the **pump** forwards the runtime's routed completions
//!   (`(request id, result)` pairs, arriving in *completion* order, not
//!   submission order) back through the writer.
//!
//! A client may therefore keep many requests in flight on one
//! connection and match responses by request id. Draining a server
//! (the `DRAIN` opcode or [`Server::shutdown`]) stops the acceptor,
//! answers new work with [`WireError::Draining`], lets every in-flight
//! request complete, then joins all threads — the e2e tests assert the
//! process thread count returns to its pre-server baseline.

use crate::protocol::{
    try_decode, Body, DecodeError, Frame, OutputBody, TimingBody, WireError, MAX_PAYLOAD,
};
use crate::registry::{QuotaGuard, Registry};
use hybriddnn_runtime::{InferenceResponse, RuntimeError};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of the connection layer.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent connection budget; connection number `max + 1` is
    /// answered with a typed [`WireError::ConnectionLimit`] and closed.
    pub max_connections: usize,
    /// A connection with no traffic and no in-flight work for this long
    /// is closed.
    pub idle_timeout: Duration,
    /// Socket read timeout — the reader's housekeeping tick (idle and
    /// drain checks run at this cadence).
    pub read_tick: Duration,
    /// Per-frame payload ceiling (bytes); larger frames are rejected
    /// with a typed error before allocation.
    pub max_frame: u32,
    /// Once draining and out of in-flight work, a connection lingers
    /// this long answering late frames with typed [`WireError::Draining`]
    /// rejects before it closes. Bounds how long shutdown can take.
    pub drain_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            idle_timeout: Duration::from_secs(60),
            read_tick: Duration::from_millis(20),
            max_frame: MAX_PAYLOAD,
            drain_grace: Duration::from_millis(250),
        }
    }
}

struct Shared {
    registry: Arc<Registry>,
    config: ServerConfig,
    addr: SocketAddr,
    draining: AtomicBool,
    connections: AtomicUsize,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
    drain_flag: Mutex<bool>,
    drain_cv: Condvar,
}

impl Shared {
    /// Flips the server into draining and wakes the blocked acceptor
    /// with a loopback connection. Idempotent.
    fn signal_drain(&self) {
        if self.draining.swap(true, Ordering::AcqRel) {
            return;
        }
        self.registry.begin_drain();
        *self.drain_flag.lock().expect("drain lock") = true;
        self.drain_cv.notify_all();
        // The acceptor blocks in accept(); a throwaway loopback connect
        // unblocks it so it can observe the flag and exit.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running TCP server over a model [`Registry`].
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the acceptor.
    ///
    /// # Errors
    /// Socket bind failures.
    pub fn bind(
        registry: Arc<Registry>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            registry,
            config,
            addr,
            draining: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            conn_handles: Mutex::new(Vec::new()),
            drain_flag: Mutex::new(false),
            drain_cv: Condvar::new(),
        });
        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (the actual port when bound ephemeral).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Blocks until some client sends `DRAIN` (or [`Server::shutdown`]
    /// begins). The CLI parks its main thread here.
    pub fn wait_drained(&self) {
        let mut flag = self.shared.drain_flag.lock().expect("drain lock");
        while !*flag {
            flag = self.shared.drain_cv.wait(flag).expect("drain lock");
        }
    }

    /// Graceful shutdown: stop accepting, answer new work with typed
    /// [`WireError::Draining`] rejects, complete all in-flight
    /// requests, then join every connection, registry, and acceptor
    /// thread. Returns the final aggregate metrics, snapshotted after
    /// the last connection finished and before the model services are
    /// dropped; the server owns zero threads afterwards.
    pub fn shutdown(mut self) -> crate::protocol::StatsBody {
        self.shared.signal_drain();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.shared.conn_handles.lock().expect("conns lock"));
        for handle in handles {
            let _ = handle.join();
        }
        let stats = self.shared.registry.stats();
        self.shared.registry.drain();
        stats
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let max = shared.config.max_connections;
        let admitted = shared
            .connections
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < max).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            // Over budget: answer with a typed reject, then close.
            let frame = Frame::new(
                0,
                Body::Error(WireError::ConnectionLimit { max: max as u64 }),
            );
            let mut stream = stream;
            let _ = stream.write_all(&frame.encode());
            continue;
        }
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            serve_connection(&conn_shared, stream);
            conn_shared.connections.fetch_sub(1, Ordering::AcqRel);
        });
        shared.conn_handles.lock().expect("conns lock").push(handle);
    }
}

/// Book-keeping for one in-flight inference on a connection.
struct Pending {
    /// `INFER_TIMING` → respond without the tensor.
    timing: bool,
    /// The model-quota unit, released when the response ships.
    guard: Option<QuotaGuard>,
}

type PendingMap = Arc<Mutex<HashMap<u64, Pending>>>;

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_tick));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };

    // Writer: the single socket-writing thread; everything that answers
    // (reader, pump, registry callbacks) sends pre-encoded frames here.
    let (writer_tx, writer_rx) = mpsc::channel::<Vec<u8>>();
    let writer = std::thread::spawn(move || {
        let mut write_half = write_half;
        let mut sink_only = false;
        for frame in writer_rx {
            // After a write error the peer is gone: keep draining the
            // channel so senders never block on a vanished socket;
            // frames fall on the floor.
            if !sink_only && write_half.write_all(&frame).is_err() {
                sink_only = true;
            }
        }
    });

    // Pump: forwards routed completions (in completion order) to the
    // writer, matching them to their request ids.
    let pending: PendingMap = Arc::new(Mutex::new(HashMap::new()));
    let (routed_tx, routed_rx) = mpsc::channel::<(u64, Result<InferenceResponse, RuntimeError>)>();
    let pump_pending = Arc::clone(&pending);
    let pump_writer = writer_tx.clone();
    let pump = std::thread::spawn(move || {
        for (request_id, result) in routed_rx {
            let Some(entry) = pump_pending
                .lock()
                .expect("pending lock")
                .remove(&request_id)
            else {
                continue;
            };
            let body = match result {
                Ok(resp) => response_body(resp, entry.timing),
                Err(e) => Body::Error(WireError::from(&e)),
            };
            let _ = pump_writer.send(Frame::new(request_id, body).encode());
            drop(entry.guard);
        }
    });

    read_loop(shared, stream, &writer_tx, &pending, &routed_tx);

    // Teardown. Dropping our routed sender lets the pump's channel
    // disconnect once every in-flight request has answered (the runtime
    // holds the remaining clones, one per admitted request).
    drop(routed_tx);
    let _ = pump.join();
    drop(writer_tx);
    let _ = writer.join();
}

fn response_body(resp: InferenceResponse, timing: bool) -> Body {
    let latency_nanos = resp.latency.as_nanos().min(u128::from(u64::MAX)) as u64;
    if timing {
        Body::Timing(TimingBody {
            total_cycles: resp.total_cycles,
            latency_nanos,
            batch_size: resp.batch_size as u32,
            worker: resp.worker as u32,
            degraded: resp.degraded,
        })
    } else {
        Body::Output(OutputBody {
            tensor: resp.output,
            total_cycles: resp.total_cycles,
            latency_nanos,
            batch_size: resp.batch_size as u32,
            worker: resp.worker as u32,
            degraded: resp.degraded,
        })
    }
}

fn read_loop(
    shared: &Arc<Shared>,
    mut stream: TcpStream,
    writer_tx: &mpsc::Sender<Vec<u8>>,
    pending: &PendingMap,
    routed_tx: &mpsc::Sender<(u64, Result<InferenceResponse, RuntimeError>)>,
) {
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 16 * 1024];
    let mut last_activity = Instant::now();
    let mut drain_deadline: Option<Instant> = None;
    loop {
        // Frame everything already buffered.
        loop {
            match try_decode(&buf, shared.config.max_frame) {
                Ok(Some((frame, consumed))) => {
                    buf.drain(..consumed);
                    last_activity = Instant::now();
                    handle_frame(shared, frame, writer_tx, pending, routed_tx);
                }
                Ok(None) => break,
                Err(e) => {
                    // The byte stream cannot be re-synchronized after a
                    // framing error: answer typed, then hang up.
                    let wire = match e {
                        DecodeError::FrameTooLarge { len, max } => {
                            WireError::FrameTooLarge { len, max }
                        }
                        other => WireError::BadRequest {
                            detail: other.to_string(),
                        },
                    };
                    let _ = writer_tx.send(Frame::new(0, Body::Error(wire)).encode());
                    return;
                }
            }
        }
        // Once draining and out of in-flight work, linger for a bounded
        // grace window: frames that race the drain ack still get typed
        // `Draining` rejects instead of a slammed socket, while a peer
        // that never hangs up cannot stall shutdown forever.
        if shared.draining.load(Ordering::Acquire)
            && pending.lock().expect("pending lock").is_empty()
        {
            let deadline =
                *drain_deadline.get_or_insert_with(|| Instant::now() + shared.config.drain_grace);
            if Instant::now() >= deadline {
                return;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // EOF
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Housekeeping tick.
                if last_activity.elapsed() > shared.config.idle_timeout
                    && pending.lock().expect("pending lock").is_empty()
                {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn handle_frame(
    shared: &Arc<Shared>,
    frame: Frame,
    writer_tx: &mpsc::Sender<Vec<u8>>,
    pending: &PendingMap,
    routed_tx: &mpsc::Sender<(u64, Result<InferenceResponse, RuntimeError>)>,
) {
    let request_id = frame.request_id;
    let model_id = frame.model_id;
    let deadline =
        (frame.deadline_micros > 0).then(|| Duration::from_micros(frame.deadline_micros));
    let reply = |body: Body| {
        let mut f = Frame::new(request_id, body);
        f.model_id = model_id;
        let _ = writer_tx.send(f.encode());
    };
    let draining = shared.draining.load(Ordering::Acquire);
    match frame.body {
        Body::Infer { tensor } | Body::InferTiming { tensor } if draining => {
            let _ = tensor;
            reply(Body::Error(WireError::Draining));
        }
        body @ (Body::Infer { .. } | Body::InferTiming { .. }) => {
            let (tensor, timing) = match body {
                Body::Infer { tensor } => (tensor, false),
                Body::InferTiming { tensor } => (tensor, true),
                _ => unreachable!("matched above"),
            };
            // Register the pending entry *before* submitting: a worker
            // may complete the request (and the pump look it up) before
            // submit() even returns.
            {
                let mut map = pending.lock().expect("pending lock");
                if map.contains_key(&request_id) {
                    drop(map);
                    reply(Body::Error(WireError::BadRequest {
                        detail: format!("request id {request_id} is already in flight"),
                    }));
                    return;
                }
                map.insert(
                    request_id,
                    Pending {
                        timing,
                        guard: None,
                    },
                );
            }
            match shared
                .registry
                .submit(model_id, tensor, deadline, routed_tx.clone(), request_id)
            {
                Ok(guard) => {
                    // Park the quota unit with the pending entry; if the
                    // pump already shipped the response, the entry is
                    // gone and the guard releases right here.
                    if let Some(entry) = pending.lock().expect("pending lock").get_mut(&request_id)
                    {
                        entry.guard = Some(guard);
                    }
                }
                Err(e) => {
                    pending.lock().expect("pending lock").remove(&request_id);
                    reply(Body::Error(e));
                }
            }
        }
        Body::LoadModel(req) => {
            if draining {
                reply(Body::Error(WireError::Draining));
                return;
            }
            let writer_tx = writer_tx.clone();
            shared.registry.load(
                req,
                Box::new(move |result| {
                    let body = match result {
                        Ok((id, name, version)) => Body::Loaded {
                            model_id: id,
                            name,
                            version,
                        },
                        Err(e) => Body::Error(e),
                    };
                    let _ = writer_tx.send(Frame::new(request_id, body).encode());
                }),
            );
        }
        Body::UnloadModel => {
            let writer_tx = writer_tx.clone();
            shared.registry.unload(
                model_id,
                Box::new(move |result| {
                    let body = match result {
                        Ok(()) => Body::Unloaded,
                        Err(e) => Body::Error(e),
                    };
                    let _ = writer_tx.send(Frame::new(request_id, body).encode());
                }),
            );
        }
        Body::ListModels => reply(Body::ModelList(shared.registry.list())),
        Body::Stats => {
            let mut stats = shared.registry.stats();
            stats.connections = shared.connections.load(Ordering::Acquire) as u32;
            reply(Body::StatsReply(stats));
        }
        Body::Ping { payload } => reply(Body::Pong { payload }),
        Body::Drain => {
            // Flip the server *before* the ack is enqueued: a client
            // that has received the ack is then guaranteed that all its
            // later work — on any connection — gets typed rejects.
            shared.signal_drain();
            reply(Body::Draining);
        }
        // A client sending response opcodes is confused; tell it so.
        _ => reply(Body::Error(WireError::BadRequest {
            detail: format!("opcode {:#04x} is not a request", frame.body.opcode() as u8),
        })),
    }
}
