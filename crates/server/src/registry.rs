//! The hot-swappable multi-model registry.
//!
//! A [`Registry`] maps `name@version` → a running
//! [`InferenceService`], and owns the full model lifecycle:
//!
//! ```text
//!              LOAD_MODEL
//!                  │ slot inserted atomically (duplicate name@version
//!                  ▼  is rejected before any work starts)
//!             ┌─────────┐   background DSE + compile + service start
//!             │ Loading  │──────────────────────────┐
//!             └─────────┘                           │
//!          build error │                            │ published
//!                      ▼                            ▼
//!             ┌─────────┐                      ┌─────────┐   UNLOAD_MODEL
//!             │ Failed   │                      │ Ready   │──────────────┐
//!             └─────────┘                      └─────────┘              │
//!                      │ UNLOAD_MODEL (immediate)         in-flight      ▼
//!                      ▼                                  drained   ┌──────────┐
//!                   removed ◄───────────────────────────────────────│ Draining │
//!                                                                   └──────────┘
//! ```
//!
//! Loads run on a background thread so the connection that asked stays
//! responsive; the slot is *atomically published* — `INFER` against a
//! loading model gets a typed [`WireError::ModelLoading`], never a
//! half-built service. Unloads drain: in-flight requests complete (each
//! still receives exactly one response) before the service is dropped.
//! Per-model admission quotas bound the in-flight requests any one
//! model may hold, protecting co-hosted models from a greedy client.

use crate::protocol::{LoadRequest, ModelInfo, ModelState, StatsBody, WireError};
use hybriddnn_compiler::{CompiledNetwork, Compiler, MappingStrategy};
use hybriddnn_dse::DseEngine;
use hybriddnn_estimator::Profile;
use hybriddnn_fpga::FpgaSpec;
use hybriddnn_model::{synth, zoo, Network, Tensor};
use hybriddnn_runtime::{FaultPlan, InferenceService, RoutedSender, ServiceConfig};
use hybriddnn_sim::SimMode;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// What a model/device spec pair resolved to: everything needed to run
/// the build pipeline.
#[derive(Debug, Clone)]
pub struct ResolvedModel {
    /// The network with parameters bound.
    pub net: Network,
    /// The target device.
    pub device: FpgaSpec,
    /// The estimator calibration profile for the device.
    pub profile: Profile,
}

/// Maps `(model_spec, device_spec, seed)` to a [`ResolvedModel`]. The
/// server takes this as a plug point so the CLI can wire in the `.hdnn`
/// file parser without this crate depending on it.
pub type Resolver = Arc<dyn Fn(&str, &str, u64) -> Result<ResolvedModel, String> + Send + Sync>;

/// What a finished [`Registry::load`] hands its callback: the published
/// model's `(id, name, version)`, or the typed reason the load failed.
pub type LoadOutcome = Result<(u32, String, u32), WireError>;

/// Completion callback for [`Registry::load`], invoked exactly once
/// from the background loader thread (or inline on synchronous
/// rejects).
pub type LoadCallback = Box<dyn FnOnce(LoadOutcome) + Send>;

/// The built-in resolver: zoo model names (`tiny-cnn`, `vgg-tiny`,
/// `stem-cnn`) and builtin devices (`vu9p`, `pynq-z1`), with synthetic
/// parameters bound from `seed`. No filesystem access.
pub fn zoo_resolver() -> Resolver {
    Arc::new(|model: &str, device: &str, seed: u64| {
        let mut net = match model {
            "tiny-cnn" => zoo::tiny_cnn(),
            "vgg-tiny" => zoo::vgg_tiny(),
            "stem-cnn" => zoo::stem_cnn(),
            other => return Err(format!("unknown zoo model `{other}`")),
        };
        synth::bind_random(&mut net, seed).map_err(|e| e.to_string())?;
        let (device, profile) = match device {
            "vu9p" => (FpgaSpec::vu9p(), Profile::vu9p()),
            "pynq-z1" | "pynq" => (FpgaSpec::pynq_z1(), Profile::pynq_z1()),
            other => return Err(format!("unknown device `{other}`")),
        };
        Ok(ResolvedModel {
            net,
            device,
            profile,
        })
    })
}

/// A resolved model pushed through DSE + compilation: the immutable
/// artifacts a service (or a bit-identical reference simulator) runs.
#[derive(Debug, Clone)]
pub struct BuiltModel {
    /// The compiled network.
    pub compiled: Arc<CompiledNetwork>,
    /// The per-instance DDR bandwidth share in words/cycle.
    pub bandwidth: f64,
    /// The estimator's predicted cycles per inference (the SJF cost
    /// hint).
    pub predicted_cycles: f64,
}

/// Runs the paper's build pipeline (DSE → mapping strategy → compile)
/// on a resolved model. Deterministic: the same input produces the same
/// compiled artifacts, which is what makes served outputs bit-identical
/// to a local reference simulation — the e2e tests build their oracle
/// through this same function.
///
/// # Errors
/// A rendered message for DSE or compilation failures.
pub fn build_model(resolved: &ResolvedModel) -> Result<BuiltModel, String> {
    let dse = DseEngine::new(resolved.device.clone(), resolved.profile)
        .explore(&resolved.net)
        .map_err(|e| e.to_string())?;
    let strategy = MappingStrategy::new(dse.strategy_choices());
    let compiled = Compiler::new(dse.design.accel)
        .compile(&resolved.net, &strategy)
        .map_err(|e| e.to_string())?;
    let bandwidth = resolved.device.instance_bandwidth(dse.design.ni);
    let predicted_cycles = hybriddnn_estimator::latency::strategy_network_cycles(
        &dse.design.accel,
        dse.per_layer
            .iter()
            .map(|c| (c.mode, c.dataflow, &c.workload)),
        bandwidth,
    );
    Ok(BuiltModel {
        compiled: Arc::new(compiled),
        bandwidth,
        predicted_cycles,
    })
}

/// Watchdog armed on fault-injected models: comfortably above any batch
/// wall time of the small zoo models, small enough that injected device
/// hangs resolve within a test run.
const FAULT_WATCHDOG: Duration = Duration::from_millis(250);

/// [`Duration`] → saturating nanoseconds for the wire.
fn nanos(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

enum SlotState {
    Loading,
    Ready(InferenceService),
    Failed(String),
    Draining,
}

/// One registered model.
pub struct ModelSlot {
    id: u32,
    name: String,
    version: u32,
    quota: u32,
    inflight: AtomicU64,
    completed: AtomicU64,
    state: RwLock<SlotState>,
}

impl ModelSlot {
    fn info(&self) -> ModelInfo {
        let state = match &*self.state.read().expect("slot lock") {
            SlotState::Loading => ModelState::Loading,
            SlotState::Ready(_) => ModelState::Ready,
            SlotState::Failed(_) => ModelState::Failed,
            SlotState::Draining => ModelState::Draining,
        };
        ModelInfo {
            model_id: self.id,
            name: self.name.clone(),
            version: self.version,
            state,
            inflight: self.inflight.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
        }
    }
}

/// Releases one unit of a model's admission quota when the request's
/// response has been delivered. Dropping the guard is the *only* way
/// the unit comes back, so a quota can never leak past a response.
pub struct QuotaGuard {
    slot: Arc<ModelSlot>,
}

impl Drop for QuotaGuard {
    fn drop(&mut self) {
        self.slot.inflight.fetch_sub(1, Ordering::AcqRel);
        self.slot.completed.fetch_add(1, Ordering::Relaxed);
    }
}

struct Inner {
    by_id: HashMap<u32, Arc<ModelSlot>>,
    by_name: HashMap<(String, u32), u32>,
}

/// The concurrent model registry. Shared across every connection via
/// `Arc`; all methods take `&self`.
pub struct Registry {
    resolver: Resolver,
    inner: RwLock<Inner>,
    next_id: AtomicU32,
    draining: AtomicBool,
    /// Loader/unloader threads, joined at drain so a drained server
    /// provably leaks no threads.
    tracked: Mutex<Vec<JoinHandle<()>>>,
}

impl Registry {
    /// An empty registry using `resolver` for `LOAD_MODEL` specs.
    pub fn new(resolver: Resolver) -> Self {
        Registry {
            resolver,
            inner: RwLock::new(Inner {
                by_id: HashMap::new(),
                by_name: HashMap::new(),
            }),
            next_id: AtomicU32::new(1),
            draining: AtomicBool::new(false),
            tracked: Mutex::new(Vec::new()),
        }
    }

    /// Whether [`Registry::begin_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    fn spawn_tracked<F: FnOnce() + Send + 'static>(&self, f: F) {
        let handle = std::thread::spawn(f);
        self.tracked.lock().expect("tracked lock").push(handle);
    }

    /// Starts loading a model in the background. The `Loading` slot is
    /// inserted (and its duplicate check done) synchronously, so two
    /// racing loads of the same `name@version` cannot both win;
    /// `on_done` fires from the loader thread once the model is
    /// published or failed.
    pub fn load(self: &Arc<Self>, req: LoadRequest, on_done: LoadCallback) {
        if self.is_draining() {
            on_done(Err(WireError::Draining));
            return;
        }
        let slot = {
            let mut inner = self.inner.write().expect("registry lock");
            let key = (req.name.clone(), req.version);
            if inner.by_name.contains_key(&key) {
                on_done(Err(WireError::ModelExists {
                    name: req.name.clone(),
                    version: u64::from(req.version),
                }));
                return;
            }
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let slot = Arc::new(ModelSlot {
                id,
                name: req.name.clone(),
                version: req.version,
                quota: req.quota,
                inflight: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                state: RwLock::new(SlotState::Loading),
            });
            inner.by_name.insert(key, id);
            inner.by_id.insert(id, Arc::clone(&slot));
            slot
        };
        let registry = Arc::clone(self);
        self.spawn_tracked(move || {
            let outcome = registry.build_and_start(&req);
            let mut state = slot.state.write().expect("slot lock");
            match outcome {
                Ok(service) => {
                    *state = SlotState::Ready(service);
                    drop(state);
                    on_done(Ok((slot.id, slot.name.clone(), slot.version)));
                }
                Err(e) => {
                    *state = SlotState::Failed(e.to_string());
                    drop(state);
                    on_done(Err(e));
                }
            }
        });
    }

    /// [`Registry::load`], blocking until the model is published. Used
    /// by the CLI's preload path and tests.
    ///
    /// # Errors
    /// The load's [`WireError`].
    pub fn load_blocking(self: &Arc<Self>, req: LoadRequest) -> Result<u32, WireError> {
        let (tx, rx) = std::sync::mpsc::channel();
        self.load(
            req,
            Box::new(move |r| {
                let _ = tx.send(r);
            }),
        );
        match rx.recv() {
            Ok(r) => r.map(|(id, _, _)| id),
            Err(_) => Err(WireError::ShuttingDown),
        }
    }

    fn build_and_start(&self, req: &LoadRequest) -> Result<InferenceService, WireError> {
        let resolved = (self.resolver)(&req.model, &req.device, req.seed)
            .map_err(|detail| WireError::LoadFailed { detail })?;
        let built = build_model(&resolved).map_err(|detail| WireError::LoadFailed { detail })?;
        let mode = if req.functional {
            SimMode::Functional
        } else {
            SimMode::TimingOnly
        };
        let mut config = ServiceConfig::new(mode, built.bandwidth)
            .with_workers(req.workers as usize)
            .with_cost_hint(built.predicted_cycles)
            .with_retries(req.retries);
        if req.fault_rate > 0.0 {
            config = config
                .with_fault_plan(FaultPlan::uniform(req.fault_seed, req.fault_rate))
                .with_watchdog(FAULT_WATCHDOG);
        }
        InferenceService::try_start(built.compiled, config).map_err(|e| WireError::from(&e))
    }

    /// Admits one inference against a model's quota and submits it to
    /// the model's service; the response arrives on `tx` as
    /// `(tag, result)`. The returned [`QuotaGuard`] must be held until
    /// that response is delivered.
    ///
    /// # Errors
    /// Typed rejections: unknown/loading/draining/failed model, quota
    /// exhaustion, or the service's own admission errors.
    pub fn submit(
        &self,
        model_id: u32,
        input: Tensor,
        deadline: Option<Duration>,
        tx: RoutedSender,
        tag: u64,
    ) -> Result<QuotaGuard, WireError> {
        let slot = {
            let inner = self.inner.read().expect("registry lock");
            inner
                .by_id
                .get(&model_id)
                .cloned()
                .ok_or(WireError::UnknownModel {
                    model_id: u64::from(model_id),
                })?
        };
        // Reserve quota before touching the service so a stampede on
        // one model cannot starve the others' admission queues.
        if slot.quota > 0 {
            let admitted = slot
                .inflight
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                    (n < u64::from(slot.quota)).then_some(n + 1)
                })
                .is_ok();
            if !admitted {
                return Err(WireError::QuotaExceeded {
                    limit: u64::from(slot.quota),
                });
            }
        } else {
            slot.inflight.fetch_add(1, Ordering::AcqRel);
        }
        let state = slot.state.read().expect("slot lock");
        let submitted = match &*state {
            SlotState::Ready(service) => service
                .submit_routed(input, deadline, tx, tag)
                .map(|_| ())
                .map_err(|e| WireError::from(&e)),
            SlotState::Loading => Err(WireError::ModelLoading {
                name: slot.name.clone(),
            }),
            SlotState::Draining => Err(WireError::ModelDraining {
                name: slot.name.clone(),
            }),
            SlotState::Failed(detail) => Err(WireError::LoadFailed {
                detail: detail.clone(),
            }),
        };
        drop(state);
        match submitted {
            Ok(()) => Ok(QuotaGuard {
                slot: Arc::clone(&slot),
            }),
            Err(e) => {
                // Rejected before admission: give the quota unit back
                // without counting a completion.
                slot.inflight.fetch_sub(1, Ordering::AcqRel);
                Err(e)
            }
        }
    }

    /// Starts a graceful unload in the background: the slot flips to
    /// `Draining` synchronously (new submissions get a typed reject),
    /// in-flight requests complete, then the service is dropped and the
    /// name freed. `on_done` fires when the model is fully gone.
    pub fn unload(
        self: &Arc<Self>,
        model_id: u32,
        on_done: Box<dyn FnOnce(Result<(), WireError>) + Send>,
    ) {
        let slot = {
            let inner = self.inner.read().expect("registry lock");
            match inner.by_id.get(&model_id) {
                Some(slot) => Arc::clone(slot),
                None => {
                    on_done(Err(WireError::UnknownModel {
                        model_id: u64::from(model_id),
                    }));
                    return;
                }
            }
        };
        let service = {
            let mut state = slot.state.write().expect("slot lock");
            match &*state {
                SlotState::Ready(_) => match std::mem::replace(&mut *state, SlotState::Draining) {
                    SlotState::Ready(service) => Some(service),
                    _ => unreachable!("state checked under the same lock"),
                },
                SlotState::Failed(_) => {
                    *state = SlotState::Draining;
                    None
                }
                SlotState::Loading => {
                    on_done(Err(WireError::ModelLoading {
                        name: slot.name.clone(),
                    }));
                    return;
                }
                SlotState::Draining => {
                    on_done(Err(WireError::ModelDraining {
                        name: slot.name.clone(),
                    }));
                    return;
                }
            }
        };
        let registry = Arc::clone(self);
        self.spawn_tracked(move || {
            if let Some(service) = service {
                // Drains the admission queue and joins the worker pool;
                // every in-flight request still gets its one response.
                service.shutdown();
            }
            let mut inner = registry.inner.write().expect("registry lock");
            inner.by_id.remove(&slot.id);
            inner.by_name.remove(&(slot.name.clone(), slot.version));
            drop(inner);
            on_done(Ok(()));
        });
    }

    /// Every registered model's state.
    pub fn list(&self) -> Vec<ModelInfo> {
        let inner = self.inner.read().expect("registry lock");
        let mut models: Vec<ModelInfo> = inner.by_id.values().map(|s| s.info()).collect();
        models.sort_by_key(|m| m.model_id);
        models
    }

    /// The server-wide aggregate metrics snapshot: counters summed over
    /// every `Ready` service, latency percentiles reported as the worst
    /// model's (a max, not an average — the honest tail).
    pub fn stats(&self) -> StatsBody {
        let slots: Vec<Arc<ModelSlot>> = {
            let inner = self.inner.read().expect("registry lock");
            inner.by_id.values().cloned().collect()
        };
        let mut out = StatsBody {
            models: slots.len() as u32,
            ..StatsBody::default()
        };
        for slot in &slots {
            let state = slot.state.read().expect("slot lock");
            if let SlotState::Ready(service) = &*state {
                let m = service.metrics();
                out.submitted += m.submitted;
                out.completed += m.completed;
                out.failed += m.failed;
                out.expired += m.expired;
                out.rejected += m.rejected_full + m.rejected_degraded;
                out.batches += m.batches;
                out.batched_dispatches += m.batched_dispatches;
                out.retries += m.retries;
                out.restarts += m.restarts;
                out.quarantines += m.quarantines;
                out.faults_injected += m.faults_injected;
                out.faults_observed += m.faults_observed;
                out.degraded_served += m.degraded_served;
                out.healthy_workers += m.healthy_workers as u64;
                out.latency_p50_nanos = out.latency_p50_nanos.max(nanos(m.latency_p50));
                out.latency_p95_nanos = out.latency_p95_nanos.max(nanos(m.latency_p95));
                out.latency_p99_nanos = out.latency_p99_nanos.max(nanos(m.latency_p99));
            }
        }
        out
    }

    /// Flips the registry into draining: subsequent loads are rejected
    /// with [`WireError::Draining`]. Existing models keep serving until
    /// [`Registry::drain`].
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Full drain: rejects new loads, joins every tracked loader and
    /// unloader thread, then shuts down every model service (in-flight
    /// requests complete first). After this returns the registry owns
    /// zero threads.
    pub fn drain(&self) {
        self.begin_drain();
        // Join loaders/unloaders first so no thread can re-publish a
        // service after the sweep below.
        loop {
            let handles: Vec<JoinHandle<()>> =
                std::mem::take(&mut *self.tracked.lock().expect("tracked lock"));
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
            }
            // An unloader that finished may have been tracked while we
            // were joining; sweep again until the list stays empty.
        }
        let slots: Vec<Arc<ModelSlot>> = {
            let mut inner = self.inner.write().expect("registry lock");
            inner.by_name.clear();
            inner.by_id.drain().map(|(_, slot)| slot).collect()
        };
        for slot in slots {
            let state = std::mem::replace(
                &mut *slot.state.write().expect("slot lock"),
                SlotState::Draining,
            );
            if let SlotState::Ready(service) = state {
                service.shutdown();
            }
        }
    }
}
