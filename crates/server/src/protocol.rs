//! The versioned, length-prefixed binary wire protocol of
//! `hybriddnn-server`.
//!
//! Every message is one *frame*: a fixed 32-byte little-endian header
//! followed by `payload_len` bytes of opcode-specific payload.
//!
//! ```text
//!  offset  size  field
//!  ──────  ────  ─────────────────────────────────────────────
//!   0       2    protocol version   (PROTOCOL_VERSION)
//!   2       1    opcode             (see `Opcode`)
//!   3       1    flags              (reserved, must be 0)
//!   4       4    model id           (registry id; 0 when unused)
//!   8       8    request id         (client-chosen; echoed verbatim)
//!  16       8    deadline in µs     (relative; 0 = no deadline)
//!  24       4    payload length     (bytes after the header)
//!  28       4    reserved           (must be 0)
//! ```
//!
//! Responses echo the request id, so a client may pipeline many
//! requests on one connection and match completions out of order.
//! Decoding is total: truncated, oversized, or garbage input produces a
//! typed [`DecodeError`], never a panic. Oversized frames are rejected
//! before any allocation with [`DecodeError::FrameTooLarge`].
//!
//! Tensor payloads are raw little-endian `f32` words in CHW order —
//! encode/decode round-trips every bit pattern, which is what lets the
//! server promise responses bit-identical to a local `Simulator::run`.

use hybriddnn_model::{Shape, Tensor};
use hybriddnn_net::RingBuf;
use hybriddnn_runtime::RuntimeError;
use hybriddnn_sim::SimError;
use std::fmt;

/// The protocol revision this build speaks. A peer announcing any other
/// version is rejected with [`DecodeError::BadVersion`].
pub const PROTOCOL_VERSION: u16 = 1;

/// Bytes in the fixed frame header.
pub const HEADER_LEN: usize = 32;

/// Hard ceiling on `payload_len` (16 MiB). Larger frames are rejected
/// with [`DecodeError::FrameTooLarge`] *before* the payload is read, so
/// a hostile length field cannot make the server allocate.
pub const MAX_PAYLOAD: u32 = 16 << 20;

/// Frame opcodes. Requests occupy `0x01..=0x7f`, responses `0x81..`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Run one inference; respond with the full output tensor.
    Infer = 0x01,
    /// Run one inference; respond with timing only (no tensor bytes —
    /// the bandwidth-saving variant for load probes and dashboards).
    InferTiming = 0x02,
    /// Load a model into the registry (background DSE + compile;
    /// response arrives when the model is published or failed).
    LoadModel = 0x03,
    /// Gracefully unload: drain in-flight work, then drop the model.
    UnloadModel = 0x04,
    /// List registered models and their states.
    ListModels = 0x05,
    /// Server-wide aggregate metrics snapshot.
    Stats = 0x06,
    /// Liveness echo.
    Ping = 0x07,
    /// Begin server drain: stop accepting, finish in-flight, exit.
    Drain = 0x08,
    /// Response: full inference result.
    RespOutput = 0x81,
    /// Response: timing-only inference result.
    RespTiming = 0x82,
    /// Response: typed error.
    RespError = 0x83,
    /// Response: model published and serving.
    RespLoaded = 0x84,
    /// Response: model drained and dropped.
    RespUnloaded = 0x85,
    /// Response: model listing.
    RespModelList = 0x86,
    /// Response: metrics snapshot.
    RespStats = 0x87,
    /// Response: ping echo.
    RespPong = 0x88,
    /// Response: drain acknowledged.
    RespDraining = 0x89,
}

impl Opcode {
    fn from_u8(raw: u8) -> Result<Self, DecodeError> {
        Ok(match raw {
            0x01 => Opcode::Infer,
            0x02 => Opcode::InferTiming,
            0x03 => Opcode::LoadModel,
            0x04 => Opcode::UnloadModel,
            0x05 => Opcode::ListModels,
            0x06 => Opcode::Stats,
            0x07 => Opcode::Ping,
            0x08 => Opcode::Drain,
            0x81 => Opcode::RespOutput,
            0x82 => Opcode::RespTiming,
            0x83 => Opcode::RespError,
            0x84 => Opcode::RespLoaded,
            0x85 => Opcode::RespUnloaded,
            0x86 => Opcode::RespModelList,
            0x87 => Opcode::RespStats,
            0x88 => Opcode::RespPong,
            0x89 => Opcode::RespDraining,
            other => return Err(DecodeError::BadOpcode { got: other }),
        })
    }
}

/// Why a byte stream failed to decode. Every malformed input maps here;
/// the codec never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The buffer ended before a field it promised.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were left.
        got: usize,
    },
    /// The header announced a protocol version this build cannot speak.
    BadVersion {
        /// The announced version.
        got: u16,
    },
    /// The header carried an unknown opcode byte.
    BadOpcode {
        /// The offending byte.
        got: u8,
    },
    /// `payload_len` exceeded the frame-size ceiling; the frame was
    /// rejected before reading (let alone allocating) the payload.
    FrameTooLarge {
        /// The announced payload length.
        len: u64,
        /// The enforced ceiling.
        max: u64,
    },
    /// A reserved header field held a non-zero value.
    BadReserved {
        /// The offending value.
        got: u64,
    },
    /// The payload contents did not match the opcode's schema.
    BadPayload {
        /// What was malformed.
        detail: String,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            DecodeError::BadVersion { got } => {
                write!(
                    f,
                    "unsupported protocol version {got} (speak {PROTOCOL_VERSION})"
                )
            }
            DecodeError::BadOpcode { got } => write!(f, "unknown opcode {got:#04x}"),
            DecodeError::FrameTooLarge { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte limit"
                )
            }
            DecodeError::BadReserved { got } => {
                write!(f, "reserved header field must be zero, got {got}")
            }
            DecodeError::BadPayload { detail } => write!(f, "malformed payload: {detail}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// The frame's opcode.
    pub opcode: Opcode,
    /// Registry model id (0 when the opcode does not address a model).
    pub model_id: u32,
    /// Client-chosen request id, echoed verbatim in the response.
    pub request_id: u64,
    /// Relative deadline in microseconds (0 = none).
    pub deadline_micros: u64,
    /// Payload bytes following the header.
    pub payload_len: u32,
}

/// Parses and validates a frame header from `buf[..HEADER_LEN]`.
///
/// # Errors
/// Typed [`DecodeError`]s for truncation, version or opcode mismatch,
/// oversized payload announcements, and non-zero reserved fields.
pub fn decode_header(buf: &[u8], max_payload: u32) -> Result<Header, DecodeError> {
    if buf.len() < HEADER_LEN {
        return Err(DecodeError::Truncated {
            needed: HEADER_LEN,
            got: buf.len(),
        });
    }
    let le16 = |o: usize| u16::from_le_bytes([buf[o], buf[o + 1]]);
    let le32 = |o: usize| u32::from_le_bytes([buf[o], buf[o + 1], buf[o + 2], buf[o + 3]]);
    let le64 = |o: usize| {
        u64::from_le_bytes([
            buf[o],
            buf[o + 1],
            buf[o + 2],
            buf[o + 3],
            buf[o + 4],
            buf[o + 5],
            buf[o + 6],
            buf[o + 7],
        ])
    };
    let version = le16(0);
    if version != PROTOCOL_VERSION {
        return Err(DecodeError::BadVersion { got: version });
    }
    let opcode = Opcode::from_u8(buf[2])?;
    if buf[3] != 0 {
        return Err(DecodeError::BadReserved {
            got: u64::from(buf[3]),
        });
    }
    let payload_len = le32(24);
    if payload_len > max_payload {
        return Err(DecodeError::FrameTooLarge {
            len: u64::from(payload_len),
            max: u64::from(max_payload),
        });
    }
    let reserved = le32(28);
    if reserved != 0 {
        return Err(DecodeError::BadReserved {
            got: u64::from(reserved),
        });
    }
    Ok(Header {
        opcode,
        model_id: le32(4),
        request_id: le64(8),
        deadline_micros: le64(16),
        payload_len,
    })
}

// ---------------------------------------------------------------------
// Payload cursor helpers
// ---------------------------------------------------------------------

struct Cur<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, off: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let rest = self.buf.len() - self.off;
        if rest < n {
            return Err(DecodeError::Truncated {
                needed: n,
                got: rest,
            });
        }
        let s = &self.buf[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadPayload {
            detail: "string field is not UTF-8".into(),
        })
    }

    fn tensor(&mut self) -> Result<Tensor, DecodeError> {
        let c = self.u32()? as usize;
        let h = self.u32()? as usize;
        let w = self.u32()? as usize;
        // Checked multiplies before Shape::len() or take() run: hostile
        // dimensions must become a typed error, not an overflow panic.
        let bytes = c
            .checked_mul(h)
            .and_then(|e| e.checked_mul(w))
            .and_then(|e| e.checked_mul(4))
            .ok_or_else(|| DecodeError::BadPayload {
                detail: format!("tensor shape {c}x{h}x{w} overflows the byte counter"),
            })?;
        let shape = Shape::new(c, h, w);
        let raw = self.take(bytes)?;
        let data = raw
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        Tensor::from_vec(shape, data).map_err(|e| DecodeError::BadPayload {
            detail: format!("tensor rejected: {e}"),
        })
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.off != self.buf.len() {
            return Err(DecodeError::BadPayload {
                detail: format!("{} trailing bytes after payload", self.buf.len() - self.off),
            });
        }
        Ok(())
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) {
    let shape = t.shape();
    put_u32(out, shape.c as u32);
    put_u32(out, shape.h as u32);
    put_u32(out, shape.w as u32);
    for v in t.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

// ---------------------------------------------------------------------
// Typed error frames
// ---------------------------------------------------------------------

/// The typed error vocabulary of `RespError` frames: every
/// [`RuntimeError`] and [`SimError`] variant maps to a code here, plus
/// the server-side conditions (unknown model, quota, drain, …).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The model's admission queue was full (backpressure; retry later).
    QueueFull {
        /// The configured queue bound.
        capacity: u64,
    },
    /// The request's deadline passed before a worker reached it.
    DeadlineExceeded {
        /// How late the worker was, in microseconds.
        missed_by_micros: u64,
    },
    /// The model's service is shutting down.
    ShuttingDown,
    /// The serving worker disappeared without responding.
    WorkerLost,
    /// The serving replica hung and is being replaced.
    WorkerHang {
        /// The hung worker replica.
        worker: u64,
    },
    /// The model's service is degraded and rejected this submission.
    Degraded {
        /// Healthy replicas at rejection time.
        healthy: u64,
        /// The configured floor.
        floor: u64,
    },
    /// A service configuration was rejected.
    InvalidConfig {
        /// The offending knob.
        detail: String,
    },
    /// A runtime error this protocol revision has no code for.
    RuntimeOther {
        /// Its rendered message.
        detail: String,
    },
    /// The program would deadlock the simulated hardware.
    Deadlock {
        /// The blocking instruction index.
        instruction: u64,
        /// The FIFO that ran dry.
        fifo: String,
    },
    /// A buffer access fell outside its on-chip capacity.
    BufferOverrun {
        /// The overrun buffer.
        buffer: String,
        /// The offending word index.
        index: u64,
        /// The buffer capacity in words.
        capacity: u64,
    },
    /// The input tensor does not match the compiled network.
    InputMismatch {
        /// What mismatched.
        detail: String,
    },
    /// A cached timing schedule diverged on re-simulation.
    ScheduleDivergence {
        /// The diverging stage.
        layer: String,
        /// What differed.
        detail: String,
    },
    /// An injected, detected transient fault aborted the run.
    TransientFault {
        /// The fault site.
        site: String,
        /// The corrupted burst word.
        word: u64,
    },
    /// The simulated device hung mid-stage.
    DeviceHang {
        /// The hung stage.
        stage: String,
    },
    /// The simulated device is wedged until its session resets.
    DeviceWedged,
    /// The run was cancelled by the host.
    Cancelled {
        /// The stage that observed the cancellation.
        stage: String,
    },
    /// A simulator error this protocol revision has no code for.
    SimOther {
        /// Its rendered message.
        detail: String,
    },
    /// No registered model has this id.
    UnknownModel {
        /// The unknown id.
        model_id: u64,
    },
    /// The model exists but is still compiling; retry once loaded.
    ModelLoading {
        /// The model's name.
        name: String,
    },
    /// The model is draining on its way out.
    ModelDraining {
        /// The model's name.
        name: String,
    },
    /// Background load failed; the slot records why.
    LoadFailed {
        /// The build error.
        detail: String,
    },
    /// A model with this name and version is already registered.
    ModelExists {
        /// The colliding name.
        name: String,
        /// The colliding version.
        version: u64,
    },
    /// The model's in-flight admission quota is exhausted.
    QuotaExceeded {
        /// The configured quota.
        limit: u64,
    },
    /// The server is draining and no longer accepts new work.
    Draining,
    /// The request was well-framed but semantically invalid.
    BadRequest {
        /// What was wrong.
        detail: String,
    },
    /// The server's connection budget is exhausted.
    ConnectionLimit {
        /// The configured budget.
        max: u64,
    },
    /// The peer sent a frame over the size limit; the connection is
    /// closed after this reject (framing cannot be trusted past it).
    FrameTooLarge {
        /// The announced payload length.
        len: u64,
        /// The enforced ceiling.
        max: u64,
    },
}

impl WireError {
    fn code(&self) -> u16 {
        match self {
            WireError::QueueFull { .. } => 1,
            WireError::DeadlineExceeded { .. } => 2,
            WireError::ShuttingDown => 3,
            WireError::WorkerLost => 4,
            WireError::WorkerHang { .. } => 5,
            WireError::Degraded { .. } => 6,
            WireError::InvalidConfig { .. } => 7,
            WireError::RuntimeOther { .. } => 15,
            WireError::Deadlock { .. } => 16,
            WireError::BufferOverrun { .. } => 17,
            WireError::InputMismatch { .. } => 18,
            WireError::ScheduleDivergence { .. } => 19,
            WireError::TransientFault { .. } => 20,
            WireError::DeviceHang { .. } => 21,
            WireError::DeviceWedged => 22,
            WireError::Cancelled { .. } => 23,
            WireError::SimOther { .. } => 31,
            WireError::UnknownModel { .. } => 32,
            WireError::ModelLoading { .. } => 33,
            WireError::ModelDraining { .. } => 34,
            WireError::LoadFailed { .. } => 35,
            WireError::ModelExists { .. } => 36,
            WireError::QuotaExceeded { .. } => 37,
            WireError::Draining => 38,
            WireError::BadRequest { .. } => 39,
            WireError::ConnectionLimit { .. } => 40,
            WireError::FrameTooLarge { .. } => 41,
        }
    }

    /// Whether the condition is backpressure the client may simply retry
    /// (queue/quota full, degraded rejection).
    pub fn is_backpressure(&self) -> bool {
        matches!(
            self,
            WireError::QueueFull { .. }
                | WireError::QuotaExceeded { .. }
                | WireError::Degraded { .. }
        )
    }

    fn encode(&self, out: &mut Vec<u8>) {
        put_u16(out, self.code());
        match self {
            WireError::QueueFull { capacity } => put_u64(out, *capacity),
            WireError::DeadlineExceeded { missed_by_micros } => put_u64(out, *missed_by_micros),
            WireError::ShuttingDown
            | WireError::WorkerLost
            | WireError::DeviceWedged
            | WireError::Draining => {}
            WireError::WorkerHang { worker } => put_u64(out, *worker),
            WireError::Degraded { healthy, floor } => {
                put_u64(out, *healthy);
                put_u64(out, *floor);
            }
            WireError::InvalidConfig { detail }
            | WireError::RuntimeOther { detail }
            | WireError::InputMismatch { detail }
            | WireError::SimOther { detail }
            | WireError::LoadFailed { detail }
            | WireError::BadRequest { detail } => put_str(out, detail),
            WireError::Deadlock { instruction, fifo } => {
                put_u64(out, *instruction);
                put_str(out, fifo);
            }
            WireError::BufferOverrun {
                buffer,
                index,
                capacity,
            } => {
                put_str(out, buffer);
                put_u64(out, *index);
                put_u64(out, *capacity);
            }
            WireError::ScheduleDivergence { layer, detail } => {
                put_str(out, layer);
                put_str(out, detail);
            }
            WireError::TransientFault { site, word } => {
                put_str(out, site);
                put_u64(out, *word);
            }
            WireError::DeviceHang { stage } | WireError::Cancelled { stage } => put_str(out, stage),
            WireError::UnknownModel { model_id } => put_u64(out, *model_id),
            WireError::ModelLoading { name } | WireError::ModelDraining { name } => {
                put_str(out, name)
            }
            WireError::ModelExists { name, version } => {
                put_str(out, name);
                put_u64(out, *version);
            }
            WireError::QuotaExceeded { limit } => put_u64(out, *limit),
            WireError::ConnectionLimit { max } => put_u64(out, *max),
            WireError::FrameTooLarge { len, max } => {
                put_u64(out, *len);
                put_u64(out, *max);
            }
        }
    }

    fn decode(cur: &mut Cur<'_>) -> Result<Self, DecodeError> {
        let code = u16::from(cur.u8()?) | (u16::from(cur.u8()?) << 8);
        Ok(match code {
            1 => WireError::QueueFull {
                capacity: cur.u64()?,
            },
            2 => WireError::DeadlineExceeded {
                missed_by_micros: cur.u64()?,
            },
            3 => WireError::ShuttingDown,
            4 => WireError::WorkerLost,
            5 => WireError::WorkerHang { worker: cur.u64()? },
            6 => WireError::Degraded {
                healthy: cur.u64()?,
                floor: cur.u64()?,
            },
            7 => WireError::InvalidConfig {
                detail: cur.string()?,
            },
            15 => WireError::RuntimeOther {
                detail: cur.string()?,
            },
            16 => WireError::Deadlock {
                instruction: cur.u64()?,
                fifo: cur.string()?,
            },
            17 => WireError::BufferOverrun {
                buffer: cur.string()?,
                index: cur.u64()?,
                capacity: cur.u64()?,
            },
            18 => WireError::InputMismatch {
                detail: cur.string()?,
            },
            19 => WireError::ScheduleDivergence {
                layer: cur.string()?,
                detail: cur.string()?,
            },
            20 => WireError::TransientFault {
                site: cur.string()?,
                word: cur.u64()?,
            },
            21 => WireError::DeviceHang {
                stage: cur.string()?,
            },
            22 => WireError::DeviceWedged,
            23 => WireError::Cancelled {
                stage: cur.string()?,
            },
            31 => WireError::SimOther {
                detail: cur.string()?,
            },
            32 => WireError::UnknownModel {
                model_id: cur.u64()?,
            },
            33 => WireError::ModelLoading {
                name: cur.string()?,
            },
            34 => WireError::ModelDraining {
                name: cur.string()?,
            },
            35 => WireError::LoadFailed {
                detail: cur.string()?,
            },
            36 => WireError::ModelExists {
                name: cur.string()?,
                version: cur.u64()?,
            },
            37 => WireError::QuotaExceeded { limit: cur.u64()? },
            38 => WireError::Draining,
            39 => WireError::BadRequest {
                detail: cur.string()?,
            },
            40 => WireError::ConnectionLimit { max: cur.u64()? },
            41 => WireError::FrameTooLarge {
                len: cur.u64()?,
                max: cur.u64()?,
            },
            other => {
                return Err(DecodeError::BadPayload {
                    detail: format!("unknown error code {other}"),
                })
            }
        })
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            WireError::DeadlineExceeded { missed_by_micros } => {
                write!(f, "deadline exceeded by {missed_by_micros} µs")
            }
            WireError::ShuttingDown => f.write_str("model service is shutting down"),
            WireError::WorkerLost => f.write_str("serving worker exited without responding"),
            WireError::WorkerHang { worker } => {
                write!(f, "worker {worker}'s replica hung and is being replaced")
            }
            WireError::Degraded { healthy, floor } => {
                write!(
                    f,
                    "service degraded: {healthy} healthy replicas (floor {floor})"
                )
            }
            WireError::InvalidConfig { detail } => write!(f, "invalid service config: {detail}"),
            WireError::RuntimeOther { detail } => write!(f, "runtime error: {detail}"),
            WireError::Deadlock { instruction, fifo } => {
                write!(
                    f,
                    "instruction {instruction} deadlocks on empty `{fifo}` fifo"
                )
            }
            WireError::BufferOverrun {
                buffer,
                index,
                capacity,
            } => write!(f, "{buffer} buffer overrun: word {index} of {capacity}"),
            WireError::InputMismatch { detail } => write!(f, "input mismatch: {detail}"),
            WireError::ScheduleDivergence { layer, detail } => {
                write!(f, "stage `{layer}` schedule diverged: {detail}")
            }
            WireError::TransientFault { site, word } => {
                write!(f, "detected transient fault at {site} (burst word {word})")
            }
            WireError::DeviceHang { stage } => write!(f, "device hang in stage `{stage}`"),
            WireError::DeviceWedged => f.write_str("device wedged; session reset required"),
            WireError::Cancelled { stage } => write!(f, "run cancelled in stage `{stage}`"),
            WireError::SimOther { detail } => write!(f, "simulator error: {detail}"),
            WireError::UnknownModel { model_id } => write!(f, "no model with id {model_id}"),
            WireError::ModelLoading { name } => write!(f, "model `{name}` is still loading"),
            WireError::ModelDraining { name } => write!(f, "model `{name}` is draining"),
            WireError::LoadFailed { detail } => write!(f, "model load failed: {detail}"),
            WireError::ModelExists { name, version } => {
                write!(f, "model `{name}` v{version} is already registered")
            }
            WireError::QuotaExceeded { limit } => {
                write!(f, "per-model admission quota exhausted (limit {limit})")
            }
            WireError::Draining => f.write_str("server is draining; no new work accepted"),
            WireError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            WireError::ConnectionLimit { max } => {
                write!(f, "connection budget exhausted (max {max})")
            }
            WireError::FrameTooLarge { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte limit"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<&RuntimeError> for WireError {
    fn from(e: &RuntimeError) -> Self {
        match e {
            RuntimeError::QueueFull { capacity } => WireError::QueueFull {
                capacity: *capacity as u64,
            },
            RuntimeError::DeadlineExceeded { missed_by } => WireError::DeadlineExceeded {
                missed_by_micros: missed_by.as_micros().min(u128::from(u64::MAX)) as u64,
            },
            RuntimeError::ShuttingDown => WireError::ShuttingDown,
            RuntimeError::Sim(e) => WireError::from(e),
            RuntimeError::WorkerLost => WireError::WorkerLost,
            RuntimeError::DeviceHang { worker } => WireError::WorkerHang {
                worker: *worker as u64,
            },
            RuntimeError::Degraded { healthy, floor } => WireError::Degraded {
                healthy: *healthy as u64,
                floor: *floor as u64,
            },
            RuntimeError::InvalidConfig { detail } => WireError::InvalidConfig {
                detail: detail.clone(),
            },
            // RuntimeError is #[non_exhaustive]: future variants degrade
            // to a rendered message instead of a decode failure.
            other => WireError::RuntimeOther {
                detail: other.to_string(),
            },
        }
    }
}

impl From<&SimError> for WireError {
    fn from(e: &SimError) -> Self {
        match e {
            SimError::Deadlock { instruction, fifo } => WireError::Deadlock {
                instruction: *instruction as u64,
                fifo: (*fifo).to_string(),
            },
            SimError::BufferOverrun {
                buffer,
                index,
                capacity,
            } => WireError::BufferOverrun {
                buffer: (*buffer).to_string(),
                index: *index as u64,
                capacity: *capacity as u64,
            },
            SimError::InputMismatch { detail } => WireError::InputMismatch {
                detail: detail.clone(),
            },
            SimError::ScheduleDivergence { layer, detail } => WireError::ScheduleDivergence {
                layer: layer.clone(),
                detail: detail.clone(),
            },
            SimError::TransientFault { site, word } => WireError::TransientFault {
                site: (*site).to_string(),
                word: *word as u64,
            },
            SimError::DeviceHang { stage, .. } => WireError::DeviceHang {
                stage: stage.clone(),
            },
            SimError::DeviceWedged => WireError::DeviceWedged,
            SimError::Cancelled { stage } => WireError::Cancelled {
                stage: stage.clone(),
            },
            other => WireError::SimOther {
                detail: other.to_string(),
            },
        }
    }
}

// ---------------------------------------------------------------------
// Frame bodies
// ---------------------------------------------------------------------

/// A `LOAD_MODEL` request: what to build and how to serve it.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadRequest {
    /// Registry name the model is published under.
    pub name: String,
    /// Registry version (name+version must be unique).
    pub version: u32,
    /// Model source: a builtin zoo name or inline `.hdnn` text —
    /// whatever the server's resolver accepts.
    pub model: String,
    /// Device source: a builtin device name or inline spec text.
    pub device: String,
    /// Seed for the synthetic parameter binding.
    pub seed: u64,
    /// Worker replicas for the model's service.
    pub workers: u32,
    /// `true` → functional simulation (real tensors); `false` →
    /// timing-only.
    pub functional: bool,
    /// Per-model in-flight admission quota (0 = unlimited).
    pub quota: u32,
    /// Per-draw fault-injection rate armed on the model's replicas
    /// (0.0 = fault-free).
    pub fault_rate: f64,
    /// Seed of the deterministic fault plan.
    pub fault_seed: u64,
    /// Transient-fault retry budget per request.
    pub retries: u32,
}

impl LoadRequest {
    /// A clean functional single-worker load of a builtin model.
    pub fn new(name: &str, model: &str, device: &str) -> Self {
        LoadRequest {
            name: name.to_string(),
            version: 1,
            model: model.to_string(),
            device: device.to_string(),
            seed: 42,
            workers: 1,
            functional: true,
            quota: 0,
            fault_rate: 0.0,
            fault_seed: 0,
            retries: 0,
        }
    }
}

/// A full inference response.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputBody {
    /// The output tensor, bit-identical to a local `Simulator::run`.
    pub tensor: Tensor,
    /// Simulated accelerator cycles.
    pub total_cycles: f64,
    /// Submit-to-response latency inside the service, in nanoseconds.
    pub latency_nanos: u64,
    /// Requests sharing the batch.
    pub batch_size: u32,
    /// Serving worker replica.
    pub worker: u32,
    /// Served in degraded (timing-only shed) mode: tensor is zeros.
    pub degraded: bool,
}

/// A timing-only inference response (`INFER_TIMING`): everything in
/// [`OutputBody`] except the tensor bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingBody {
    /// Simulated accelerator cycles.
    pub total_cycles: f64,
    /// Submit-to-response latency inside the service, in nanoseconds.
    pub latency_nanos: u64,
    /// Requests sharing the batch.
    pub batch_size: u32,
    /// Serving worker replica.
    pub worker: u32,
    /// Served in degraded mode.
    pub degraded: bool,
}

/// One model's registry state, as reported by `LIST_MODELS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ModelState {
    /// Background DSE + compile in progress.
    Loading = 0,
    /// Published and serving.
    Ready = 1,
    /// Draining in-flight work on its way out.
    Draining = 2,
    /// Build failed; the slot records the error.
    Failed = 3,
}

impl ModelState {
    fn from_u8(raw: u8) -> Result<Self, DecodeError> {
        Ok(match raw {
            0 => ModelState::Loading,
            1 => ModelState::Ready,
            2 => ModelState::Draining,
            3 => ModelState::Failed,
            other => {
                return Err(DecodeError::BadPayload {
                    detail: format!("unknown model state {other}"),
                })
            }
        })
    }
}

impl fmt::Display for ModelState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ModelState::Loading => "loading",
            ModelState::Ready => "ready",
            ModelState::Draining => "draining",
            ModelState::Failed => "failed",
        })
    }
}

/// One entry of a `LIST_MODELS` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// Registry id (the header `model_id` for `INFER`).
    pub model_id: u32,
    /// Registry name.
    pub name: String,
    /// Registry version.
    pub version: u32,
    /// Lifecycle state.
    pub state: ModelState,
    /// In-flight requests admitted against the model's quota.
    pub inflight: u64,
    /// Requests the model's service has completed.
    pub completed: u64,
}

/// The server-wide aggregate metrics snapshot (`STATS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsBody {
    /// Registered models (any state).
    pub models: u32,
    /// Open client connections.
    pub connections: u32,
    /// High-water mark of concurrently open connections.
    pub peak_connections: u32,
    /// Σ submitted over all model services.
    pub submitted: u64,
    /// Σ completed.
    pub completed: u64,
    /// Σ failed.
    pub failed: u64,
    /// Σ deadline expirations.
    pub expired: u64,
    /// Σ backpressure rejections (queue-full + degraded).
    pub rejected: u64,
    /// Σ dispatched batches.
    pub batches: u64,
    /// Σ dispatches that carried more than one request (batching
    /// efficiency seen from outside: `batched_dispatches / batches`).
    pub batched_dispatches: u64,
    /// Σ transient-fault retries.
    pub retries: u64,
    /// Σ replica restarts.
    pub restarts: u64,
    /// Σ quarantined workers.
    pub quarantines: u64,
    /// Σ injected faults.
    pub faults_injected: u64,
    /// Σ observed fault-class errors.
    pub faults_observed: u64,
    /// Σ requests served degraded.
    pub degraded_served: u64,
    /// Σ currently healthy workers.
    pub healthy_workers: u64,
    /// Worst per-model p50 latency, nanoseconds.
    pub latency_p50_nanos: u64,
    /// Worst per-model p95 latency, nanoseconds.
    pub latency_p95_nanos: u64,
    /// Worst per-model p99 latency, nanoseconds.
    pub latency_p99_nanos: u64,
}

/// A frame's opcode-specific contents.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Body {
    /// `INFER`: run the tensor through the addressed model.
    Infer {
        /// The input tensor.
        tensor: Tensor,
    },
    /// `INFER_TIMING`: like `INFER` but the response carries no tensor.
    InferTiming {
        /// The input tensor.
        tensor: Tensor,
    },
    /// `LOAD_MODEL`.
    LoadModel(LoadRequest),
    /// `UNLOAD_MODEL` (model addressed by the header id).
    UnloadModel,
    /// `LIST_MODELS`.
    ListModels,
    /// `STATS`.
    Stats,
    /// `PING` with an arbitrary echo payload.
    Ping {
        /// Bytes echoed back verbatim.
        payload: Vec<u8>,
    },
    /// `DRAIN`.
    Drain,
    /// Full inference response.
    Output(OutputBody),
    /// Timing-only inference response.
    Timing(TimingBody),
    /// Typed error response.
    Error(WireError),
    /// Model published (or the load request acknowledged as failed via
    /// `Error` instead).
    Loaded {
        /// The registry id to address `INFER` at.
        model_id: u32,
        /// Echoed registry name.
        name: String,
        /// Echoed registry version.
        version: u32,
    },
    /// Model drained and dropped.
    Unloaded,
    /// Model listing.
    ModelList(
        /// The registered models.
        Vec<ModelInfo>,
    ),
    /// Aggregate metrics.
    StatsReply(StatsBody),
    /// Ping echo.
    Pong {
        /// The echoed bytes.
        payload: Vec<u8>,
    },
    /// Drain acknowledged; in-flight work will still complete.
    Draining,
}

impl Body {
    /// The opcode this body travels under.
    pub fn opcode(&self) -> Opcode {
        match self {
            Body::Infer { .. } => Opcode::Infer,
            Body::InferTiming { .. } => Opcode::InferTiming,
            Body::LoadModel(_) => Opcode::LoadModel,
            Body::UnloadModel => Opcode::UnloadModel,
            Body::ListModels => Opcode::ListModels,
            Body::Stats => Opcode::Stats,
            Body::Ping { .. } => Opcode::Ping,
            Body::Drain => Opcode::Drain,
            Body::Output(_) => Opcode::RespOutput,
            Body::Timing(_) => Opcode::RespTiming,
            Body::Error(_) => Opcode::RespError,
            Body::Loaded { .. } => Opcode::RespLoaded,
            Body::Unloaded => Opcode::RespUnloaded,
            Body::ModelList(_) => Opcode::RespModelList,
            Body::StatsReply(_) => Opcode::RespStats,
            Body::Pong { .. } => Opcode::RespPong,
            Body::Draining => Opcode::RespDraining,
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Body::Infer { tensor } | Body::InferTiming { tensor } => put_tensor(out, tensor),
            Body::LoadModel(req) => {
                put_str(out, &req.name);
                put_u32(out, req.version);
                put_str(out, &req.model);
                put_str(out, &req.device);
                put_u64(out, req.seed);
                put_u32(out, req.workers);
                out.push(u8::from(req.functional));
                put_u32(out, req.quota);
                put_f64(out, req.fault_rate);
                put_u64(out, req.fault_seed);
                put_u32(out, req.retries);
            }
            Body::UnloadModel
            | Body::ListModels
            | Body::Stats
            | Body::Drain
            | Body::Unloaded
            | Body::Draining => {}
            Body::Ping { payload } | Body::Pong { payload } => out.extend_from_slice(payload),
            Body::Output(o) => {
                put_f64(out, o.total_cycles);
                put_u64(out, o.latency_nanos);
                put_u32(out, o.batch_size);
                put_u32(out, o.worker);
                out.push(u8::from(o.degraded));
                put_tensor(out, &o.tensor);
            }
            Body::Timing(t) => {
                put_f64(out, t.total_cycles);
                put_u64(out, t.latency_nanos);
                put_u32(out, t.batch_size);
                put_u32(out, t.worker);
                out.push(u8::from(t.degraded));
            }
            Body::Error(e) => e.encode(out),
            Body::Loaded {
                model_id,
                name,
                version,
            } => {
                put_u32(out, *model_id);
                put_str(out, name);
                put_u32(out, *version);
            }
            Body::ModelList(models) => {
                put_u32(out, models.len() as u32);
                for m in models {
                    put_u32(out, m.model_id);
                    put_str(out, &m.name);
                    put_u32(out, m.version);
                    out.push(m.state as u8);
                    put_u64(out, m.inflight);
                    put_u64(out, m.completed);
                }
            }
            Body::StatsReply(s) => {
                put_u32(out, s.models);
                put_u32(out, s.connections);
                put_u32(out, s.peak_connections);
                for v in [
                    s.submitted,
                    s.completed,
                    s.failed,
                    s.expired,
                    s.rejected,
                    s.batches,
                    s.batched_dispatches,
                    s.retries,
                    s.restarts,
                    s.quarantines,
                    s.faults_injected,
                    s.faults_observed,
                    s.degraded_served,
                    s.healthy_workers,
                    s.latency_p50_nanos,
                    s.latency_p95_nanos,
                    s.latency_p99_nanos,
                ] {
                    put_u64(out, v);
                }
            }
        }
    }
}

/// Decodes an opcode's payload bytes into its [`Body`].
///
/// # Errors
/// [`DecodeError`] for any schema violation; never panics.
pub fn decode_body(opcode: Opcode, payload: &[u8]) -> Result<Body, DecodeError> {
    let mut cur = Cur::new(payload);
    let body = match opcode {
        Opcode::Infer => Body::Infer {
            tensor: cur.tensor()?,
        },
        Opcode::InferTiming => Body::InferTiming {
            tensor: cur.tensor()?,
        },
        Opcode::LoadModel => Body::LoadModel(LoadRequest {
            name: cur.string()?,
            version: cur.u32()?,
            model: cur.string()?,
            device: cur.string()?,
            seed: cur.u64()?,
            workers: cur.u32()?,
            functional: cur.u8()? != 0,
            quota: cur.u32()?,
            fault_rate: cur.f64()?,
            fault_seed: cur.u64()?,
            retries: cur.u32()?,
        }),
        Opcode::UnloadModel => Body::UnloadModel,
        Opcode::ListModels => Body::ListModels,
        Opcode::Stats => Body::Stats,
        Opcode::Ping => {
            return Ok(Body::Ping {
                payload: payload.to_vec(),
            })
        }
        Opcode::Drain => Body::Drain,
        Opcode::RespOutput => {
            let total_cycles = cur.f64()?;
            let latency_nanos = cur.u64()?;
            let batch_size = cur.u32()?;
            let worker = cur.u32()?;
            let degraded = cur.u8()? != 0;
            Body::Output(OutputBody {
                total_cycles,
                latency_nanos,
                batch_size,
                worker,
                degraded,
                tensor: cur.tensor()?,
            })
        }
        Opcode::RespTiming => Body::Timing(TimingBody {
            total_cycles: cur.f64()?,
            latency_nanos: cur.u64()?,
            batch_size: cur.u32()?,
            worker: cur.u32()?,
            degraded: cur.u8()? != 0,
        }),
        Opcode::RespError => Body::Error(WireError::decode(&mut cur)?),
        Opcode::RespLoaded => Body::Loaded {
            model_id: cur.u32()?,
            name: cur.string()?,
            version: cur.u32()?,
        },
        Opcode::RespUnloaded => Body::Unloaded,
        Opcode::RespModelList => {
            let n = cur.u32()? as usize;
            // Each entry is ≥ 26 bytes; bound the pre-allocation by what
            // the payload could actually hold.
            let mut models = Vec::with_capacity(n.min(payload.len() / 26 + 1));
            for _ in 0..n {
                models.push(ModelInfo {
                    model_id: cur.u32()?,
                    name: cur.string()?,
                    version: cur.u32()?,
                    state: ModelState::from_u8(cur.u8()?)?,
                    inflight: cur.u64()?,
                    completed: cur.u64()?,
                });
            }
            Body::ModelList(models)
        }
        Opcode::RespStats => {
            let models = cur.u32()?;
            let connections = cur.u32()?;
            let peak_connections = cur.u32()?;
            let mut v = [0u64; 17];
            for slot in &mut v {
                *slot = cur.u64()?;
            }
            Body::StatsReply(StatsBody {
                models,
                connections,
                peak_connections,
                submitted: v[0],
                completed: v[1],
                failed: v[2],
                expired: v[3],
                rejected: v[4],
                batches: v[5],
                batched_dispatches: v[6],
                retries: v[7],
                restarts: v[8],
                quarantines: v[9],
                faults_injected: v[10],
                faults_observed: v[11],
                degraded_served: v[12],
                healthy_workers: v[13],
                latency_p50_nanos: v[14],
                latency_p95_nanos: v[15],
                latency_p99_nanos: v[16],
            })
        }
        Opcode::RespPong => {
            return Ok(Body::Pong {
                payload: payload.to_vec(),
            })
        }
        Opcode::RespDraining => Body::Draining,
    };
    cur.finish()?;
    Ok(body)
}

/// One complete protocol message: the addressable header fields plus the
/// decoded body.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Client-chosen id; responses echo it verbatim.
    pub request_id: u64,
    /// Registry model id (0 when unused).
    pub model_id: u32,
    /// Relative deadline in microseconds (0 = none).
    pub deadline_micros: u64,
    /// The payload.
    pub body: Body,
}

impl Frame {
    /// A frame with no model address or deadline.
    pub fn new(request_id: u64, body: Body) -> Self {
        Frame {
            request_id,
            model_id: 0,
            deadline_micros: 0,
            body,
        }
    }

    /// Serializes header + payload into one buffer ready for the wire.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Appends the serialized frame to `out` without any intermediate
    /// allocation — the payload is encoded in place after the header and
    /// the header's `payload_len` patched afterwards. This is the entry
    /// point for pooled response buffers: the same `Vec` cycles through
    /// pool → encode → socket → pool with no per-frame allocation once
    /// warm.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        put_u16(out, PROTOCOL_VERSION);
        out.push(self.body.opcode() as u8);
        out.push(0); // flags
        put_u32(out, self.model_id);
        put_u64(out, self.request_id);
        put_u64(out, self.deadline_micros);
        put_u32(out, 0); // payload_len, patched below
        put_u32(out, 0); // reserved
        self.body.encode_payload(out);
        let payload_len = (out.len() - start - HEADER_LEN) as u32;
        out[start + 24..start + 28].copy_from_slice(&payload_len.to_le_bytes());
    }
}

/// Tries to extract one complete frame from the front of `buf`.
///
/// Returns `Ok(None)` while the buffer holds less than a full frame
/// (read more and retry), or `Ok(Some((frame, consumed)))` — the caller
/// drains `consumed` bytes. Stream readers on both ends are built on
/// this.
///
/// # Errors
/// Typed [`DecodeError`]s; after one, the byte stream cannot be
/// re-synchronized and the connection should be closed.
pub fn try_decode(buf: &[u8], max_payload: u32) -> Result<Option<(Frame, usize)>, DecodeError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let header = decode_header(buf, max_payload)?;
    let total = HEADER_LEN + header.payload_len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let body = decode_body(header.opcode, &buf[HEADER_LEN..total])?;
    Ok(Some((
        Frame {
            request_id: header.request_id,
            model_id: header.model_id,
            deadline_micros: header.deadline_micros,
            body,
        },
        total,
    )))
}

/// Incremental frame decoder over a [`RingBuf`].
///
/// The reactor's read path: socket bytes land directly in the ring via
/// [`StreamDecoder::read_from`] (or [`StreamDecoder::extend`] for
/// in-memory feeds), and [`StreamDecoder::next_frame`] peels complete
/// frames off the front, decoding straight out of the ring's contiguous
/// window — no intermediate copy between the socket buffer and the
/// decoder. Frames may arrive split at any byte boundary across any
/// number of reads; decoding is byte-for-byte identical to running
/// [`try_decode`] on the concatenated stream (pinned by the
/// `protocol_props` suite).
#[derive(Debug)]
pub struct StreamDecoder {
    ring: RingBuf,
    max_payload: u32,
}

/// Socket bytes are pulled in chunks of at least this size.
const READ_CHUNK: usize = 16 * 1024;

impl StreamDecoder {
    /// A decoder enforcing `max_payload` as its frame-size ceiling.
    pub fn new(max_payload: u32) -> StreamDecoder {
        StreamDecoder {
            ring: RingBuf::new(),
            max_payload,
        }
    }

    /// Performs one `read` from `r` into the ring's write window.
    ///
    /// Returns the byte count (0 = EOF). `WouldBlock` and friends
    /// surface as `Err` exactly as `Read::read` reports them.
    pub fn read_from<R: std::io::Read>(&mut self, r: &mut R) -> std::io::Result<usize> {
        let space = self.ring.space(READ_CHUNK);
        let n = r.read(space)?;
        self.ring.advance(n);
        Ok(n)
    }

    /// Appends raw bytes (test feeds and in-memory transports).
    pub fn extend(&mut self, bytes: &[u8]) {
        self.ring.extend_from_slice(bytes);
    }

    /// Decodes the next complete frame, if the ring holds one.
    ///
    /// `Ok(None)` means "read more". After an `Err` the stream cannot be
    /// re-synchronized; callers must stop decoding and close.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, DecodeError> {
        match try_decode(self.ring.as_slice(), self.max_payload)? {
            Some((frame, consumed)) => {
                self.ring.consume(consumed);
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }

    /// Bytes buffered but not yet decoded (partial-frame tail).
    pub fn buffered(&self) -> usize {
        self.ring.len()
    }

    /// Releases the ring's allocation if no partial frame is buffered.
    ///
    /// The reactor calls this once per connection per wakeup after the
    /// decode loop drains: a mostly-idle fleet then costs bytes per
    /// connection, not a read-chunk-sized buffer each, while an active
    /// connection just regrows from the allocator's free bins.
    pub fn shrink(&mut self) {
        self.ring.shrink_if_empty(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = frame.encode();
        let (got, consumed) = try_decode(&bytes, MAX_PAYLOAD).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(got, frame);
    }

    #[test]
    fn basic_roundtrips() {
        let tensor = Tensor::from_vec(
            Shape::new(1, 2, 2),
            vec![1.5, -0.0, f32::MIN_POSITIVE / 2.0, 3.25],
        )
        .unwrap();
        roundtrip(Frame {
            request_id: 7,
            model_id: 3,
            deadline_micros: 1_000,
            body: Body::Infer {
                tensor: tensor.clone(),
            },
        });
        roundtrip(Frame::new(8, Body::InferTiming { tensor }));
        roundtrip(Frame::new(
            9,
            Body::LoadModel(LoadRequest::new("m", "tiny-cnn", "pynq-z1")),
        ));
        roundtrip(Frame::new(
            10,
            Body::Ping {
                payload: vec![0, 1, 2, 255],
            },
        ));
        roundtrip(Frame::new(
            11,
            Body::Error(WireError::QuotaExceeded { limit: 4 }),
        ));
        roundtrip(Frame::new(12, Body::StatsReply(StatsBody::default())));
        roundtrip(Frame::new(
            13,
            Body::ModelList(vec![ModelInfo {
                model_id: 1,
                name: "m".into(),
                version: 2,
                state: ModelState::Ready,
                inflight: 3,
                completed: 4,
            }]),
        ));
    }

    #[test]
    fn nan_tensor_bits_survive() {
        // PartialEq on Tensor would reject NaN == NaN, so compare bits.
        let tensor = Tensor::from_vec(
            Shape::new(1, 1, 2),
            vec![f32::NAN, f32::from_bits(0xff80_0001)],
        )
        .unwrap();
        let frame = Frame::new(
            1,
            Body::Infer {
                tensor: tensor.clone(),
            },
        );
        let bytes = frame.encode();
        let (got, _) = try_decode(&bytes, MAX_PAYLOAD).unwrap().unwrap();
        let Body::Infer { tensor: got } = got.body else {
            panic!("wrong body")
        };
        let want: Vec<u32> = tensor.as_slice().iter().map(|v| v.to_bits()).collect();
        let have: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(want, have);
    }

    #[test]
    fn oversized_frames_reject_before_allocation() {
        let mut bytes = Frame::new(
            1,
            Body::Ping {
                payload: vec![0; 64],
            },
        )
        .encode();
        // Forge a huge payload_len.
        bytes[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
        match try_decode(&bytes, MAX_PAYLOAD) {
            Err(DecodeError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u64::from(u32::MAX));
                assert_eq!(max, u64::from(MAX_PAYLOAD));
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn garbage_headers_are_typed_errors() {
        let good = Frame::new(1, Body::ListModels).encode();
        // Bad version.
        let mut bad = good.clone();
        bad[0] = 0xff;
        assert!(matches!(
            try_decode(&bad, MAX_PAYLOAD),
            Err(DecodeError::BadVersion { .. })
        ));
        // Bad opcode.
        let mut bad = good.clone();
        bad[2] = 0x70;
        assert!(matches!(
            try_decode(&bad, MAX_PAYLOAD),
            Err(DecodeError::BadOpcode { got: 0x70 })
        ));
        // Non-zero reserved word.
        let mut bad = good.clone();
        bad[30] = 1;
        assert!(matches!(
            try_decode(&bad, MAX_PAYLOAD),
            Err(DecodeError::BadReserved { .. })
        ));
        // Truncated: not enough bytes yet is not an error, it is "wait".
        assert_eq!(try_decode(&good[..10], MAX_PAYLOAD).unwrap(), None);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Frame::new(1, Body::ListModels).encode();
        // Claim 4 payload bytes the schema does not want.
        bytes[24..28].copy_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&[1, 2, 3, 4]);
        assert!(matches!(
            try_decode(&bytes, MAX_PAYLOAD),
            Err(DecodeError::BadPayload { .. })
        ));
    }

    #[test]
    fn every_runtime_and_sim_error_maps_to_a_typed_frame() {
        let runtime_errors = [
            RuntimeError::QueueFull { capacity: 8 },
            RuntimeError::DeadlineExceeded {
                missed_by: std::time::Duration::from_micros(5),
            },
            RuntimeError::ShuttingDown,
            RuntimeError::WorkerLost,
            RuntimeError::DeviceHang { worker: 2 },
            RuntimeError::Degraded {
                healthy: 1,
                floor: 2,
            },
            RuntimeError::InvalidConfig {
                detail: "workers".into(),
            },
            RuntimeError::Sim(SimError::DeviceWedged),
        ];
        for e in &runtime_errors {
            roundtrip(Frame::new(1, Body::Error(WireError::from(e))));
        }
        let sim_errors = [
            SimError::Deadlock {
                instruction: 3,
                fifo: "inp_ready",
            },
            SimError::BufferOverrun {
                buffer: "weight",
                index: 10,
                capacity: 4,
            },
            SimError::InputMismatch { detail: "x".into() },
            SimError::ScheduleDivergence {
                layer: "conv1".into(),
                detail: "cycles".into(),
            },
            SimError::TransientFault {
                site: "load_inp",
                word: 7,
            },
            SimError::DeviceHang {
                stage: "conv2".into(),
                after_cycles: 42.0,
            },
            SimError::DeviceWedged,
            SimError::Cancelled { stage: "fc".into() },
        ];
        for e in &sim_errors {
            roundtrip(Frame::new(1, Body::Error(WireError::from(e))));
        }
    }
}
