//! A blocking client for the wire protocol.
//!
//! [`Client`] owns one connection. Requests can be pipelined: issue
//! several ids with [`Client::send`], then collect completions with
//! [`Client::recv`] in whatever order the server finishes them — or
//! use [`Client::recv_for`], which stashes out-of-order frames until
//! the requested id arrives. The convenience calls (`infer`, `stats`,
//! …) are simple send-then-wait wrappers over the same machinery.

use crate::protocol::{
    Body, DecodeError, Frame, LoadRequest, ModelInfo, OutputBody, StatsBody, StreamDecoder,
    TimingBody, WireError, MAX_PAYLOAD,
};
use hybriddnn_model::Tensor;
use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// The socket failed.
    Io(std::io::Error),
    /// The server sent bytes this client cannot frame.
    Decode(DecodeError),
    /// The server answered with a typed error frame.
    Server(WireError),
    /// The server answered with a well-formed frame of the wrong kind.
    Unexpected {
        /// What arrived instead.
        detail: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Decode(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Unexpected { detail } => write!(f, "unexpected response: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        ClientError::Decode(e)
    }
}

/// A blocking connection to a `hybriddnn-server`.
pub struct Client {
    stream: TcpStream,
    decoder: StreamDecoder,
    stash: HashMap<u64, Frame>,
    next_id: u64,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    /// Socket connect failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            decoder: StreamDecoder::new(MAX_PAYLOAD),
            stash: HashMap::new(),
            next_id: 1,
        })
    }

    /// Sends one request frame without waiting, returning its request
    /// id (pipelining primitive).
    ///
    /// # Errors
    /// Socket write failures.
    pub fn send(
        &mut self,
        model_id: u32,
        deadline_micros: u64,
        body: Body,
    ) -> std::io::Result<u64> {
        let request_id = self.next_id;
        self.next_id += 1;
        let frame = Frame {
            request_id,
            model_id,
            deadline_micros,
            body,
        };
        self.stream.write_all(&frame.encode())?;
        Ok(request_id)
    }

    /// Receives the next response in *completion* order (stashed frames
    /// first).
    ///
    /// # Errors
    /// Socket or framing failures. Typed server error frames are
    /// returned as ordinary [`Body::Error`] frames, not as `Err`.
    pub fn recv(&mut self) -> Result<Frame, ClientError> {
        if let Some(&id) = self.stash.keys().next() {
            return Ok(self.stash.remove(&id).expect("key just seen"));
        }
        self.read_frame()
    }

    /// Receives the response for `request_id`, stashing any other
    /// completions that arrive first.
    ///
    /// # Errors
    /// Socket or framing failures.
    pub fn recv_for(&mut self, request_id: u64) -> Result<Frame, ClientError> {
        if let Some(frame) = self.stash.remove(&request_id) {
            return Ok(frame);
        }
        loop {
            let frame = self.read_frame()?;
            if frame.request_id == request_id {
                return Ok(frame);
            }
            self.stash.insert(frame.request_id, frame);
        }
    }

    fn read_frame(&mut self) -> Result<Frame, ClientError> {
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return Ok(frame);
            }
            let n = self.decoder.read_from(&mut self.stream)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
        }
    }

    /// Send-and-wait for one request.
    ///
    /// # Errors
    /// Socket/framing failures; a typed server error frame becomes
    /// [`ClientError::Server`].
    pub fn call(
        &mut self,
        model_id: u32,
        deadline_micros: u64,
        body: Body,
    ) -> Result<Frame, ClientError> {
        let id = self.send(model_id, deadline_micros, body)?;
        let frame = self.recv_for(id)?;
        if let Body::Error(e) = frame.body {
            return Err(ClientError::Server(e));
        }
        Ok(frame)
    }

    /// Round-trips a `PING`.
    ///
    /// # Errors
    /// Transport failures or a non-echoed payload.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let payload = vec![0xA5, 0x5A, 0x42];
        let frame = self.call(
            0,
            0,
            Body::Ping {
                payload: payload.clone(),
            },
        )?;
        match frame.body {
            Body::Pong { payload: echoed } if echoed == payload => Ok(()),
            other => Err(ClientError::Unexpected {
                detail: format!("ping answered with {:?}", other.opcode()),
            }),
        }
    }

    /// Loads a model, blocking until it is published, and returns its
    /// registry id.
    ///
    /// # Errors
    /// Transport failures or the load's typed [`WireError`].
    pub fn load_model(&mut self, req: LoadRequest) -> Result<u32, ClientError> {
        let frame = self.call(0, 0, Body::LoadModel(req))?;
        match frame.body {
            Body::Loaded { model_id, .. } => Ok(model_id),
            other => Err(ClientError::Unexpected {
                detail: format!("load answered with {:?}", other.opcode()),
            }),
        }
    }

    /// Runs one inference and waits for the full output.
    ///
    /// # Errors
    /// Transport failures or the server's typed rejection.
    pub fn infer(
        &mut self,
        model_id: u32,
        tensor: Tensor,
        deadline_micros: u64,
    ) -> Result<OutputBody, ClientError> {
        let frame = self.call(model_id, deadline_micros, Body::Infer { tensor })?;
        match frame.body {
            Body::Output(out) => Ok(out),
            other => Err(ClientError::Unexpected {
                detail: format!("infer answered with {:?}", other.opcode()),
            }),
        }
    }

    /// Runs one inference and waits for its timing (no tensor bytes on
    /// the wire).
    ///
    /// # Errors
    /// Transport failures or the server's typed rejection.
    pub fn infer_timing(
        &mut self,
        model_id: u32,
        tensor: Tensor,
        deadline_micros: u64,
    ) -> Result<TimingBody, ClientError> {
        let frame = self.call(model_id, deadline_micros, Body::InferTiming { tensor })?;
        match frame.body {
            Body::Timing(t) => Ok(t),
            other => Err(ClientError::Unexpected {
                detail: format!("infer-timing answered with {:?}", other.opcode()),
            }),
        }
    }

    /// Fetches the server-wide aggregate metrics.
    ///
    /// # Errors
    /// Transport failures.
    pub fn stats(&mut self) -> Result<StatsBody, ClientError> {
        let frame = self.call(0, 0, Body::Stats)?;
        match frame.body {
            Body::StatsReply(stats) => Ok(stats),
            other => Err(ClientError::Unexpected {
                detail: format!("stats answered with {:?}", other.opcode()),
            }),
        }
    }

    /// Lists registered models.
    ///
    /// # Errors
    /// Transport failures.
    pub fn list_models(&mut self) -> Result<Vec<ModelInfo>, ClientError> {
        let frame = self.call(0, 0, Body::ListModels)?;
        match frame.body {
            Body::ModelList(models) => Ok(models),
            other => Err(ClientError::Unexpected {
                detail: format!("list answered with {:?}", other.opcode()),
            }),
        }
    }

    /// Gracefully unloads a model, blocking until it is gone.
    ///
    /// # Errors
    /// Transport failures or the unload's typed [`WireError`].
    pub fn unload_model(&mut self, model_id: u32) -> Result<(), ClientError> {
        let frame = self.call(model_id, 0, Body::UnloadModel)?;
        match frame.body {
            Body::Unloaded => Ok(()),
            other => Err(ClientError::Unexpected {
                detail: format!("unload answered with {:?}", other.opcode()),
            }),
        }
    }

    /// Asks the server to drain and waits for the acknowledgement.
    ///
    /// # Errors
    /// Transport failures.
    pub fn drain(&mut self) -> Result<(), ClientError> {
        let frame = self.call(0, 0, Body::Drain)?;
        match frame.body {
            Body::Draining => Ok(()),
            other => Err(ClientError::Unexpected {
                detail: format!("drain answered with {:?}", other.opcode()),
            }),
        }
    }
}
