//! Property-based tests of the wire codec: arbitrary frames round-trip
//! bit-identically, and arbitrary bytes — truncated, oversized, or
//! garbage — decode to typed errors, never panics.
//!
//! Equality is asserted on the *re-encoded byte stream*, not on the
//! decoded structs: f32/f64 payload fields may hold NaN bit patterns,
//! which `PartialEq` would wrongly reject while the wire contract
//! (bit-identity) still holds.

use hybriddnn_model::{Shape, Tensor};
use hybriddnn_server::protocol::{
    try_decode, Body, DecodeError, Frame, LoadRequest, ModelInfo, ModelState, OutputBody,
    StatsBody, StreamDecoder, TimingBody, WireError, HEADER_LEN, MAX_PAYLOAD,
};
use proptest::prelude::*;

/// Deterministic f32 soup from one seed — includes NaNs, infinities,
/// and denormals, since every bit pattern must survive the wire.
fn bits_from(seed: u64, n: usize) -> Vec<f32> {
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            f32::from_bits((state >> 32) as u32)
        })
        .collect()
}

fn tensor_strategy() -> impl Strategy<Value = Tensor> {
    (1usize..4, 1usize..5, 1usize..5, any::<u64>()).prop_map(|(c, h, w, seed)| {
        let shape = Shape::new(c, h, w);
        let data = bits_from(seed, shape.len());
        Tensor::from_vec(shape, data).expect("shape matches data")
    })
}

fn text() -> impl Strategy<Value = String> {
    "[ -~]{0,24}"
}

fn wire_error_strategy() -> impl Strategy<Value = WireError> {
    prop_oneof![
        any::<u64>().prop_map(|capacity| WireError::QueueFull { capacity }),
        any::<u64>().prop_map(|m| WireError::DeadlineExceeded {
            missed_by_micros: m
        }),
        Just(WireError::ShuttingDown),
        Just(WireError::WorkerLost),
        any::<u64>().prop_map(|worker| WireError::WorkerHang { worker }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(healthy, floor)| WireError::Degraded { healthy, floor }),
        text().prop_map(|detail| WireError::InvalidConfig { detail }),
        text().prop_map(|detail| WireError::RuntimeOther { detail }),
        (any::<u64>(), text())
            .prop_map(|(instruction, fifo)| WireError::Deadlock { instruction, fifo }),
        (text(), any::<u64>(), any::<u64>()).prop_map(|(buffer, index, capacity)| {
            WireError::BufferOverrun {
                buffer,
                index,
                capacity,
            }
        }),
        text().prop_map(|detail| WireError::InputMismatch { detail }),
        (text(), text())
            .prop_map(|(layer, detail)| WireError::ScheduleDivergence { layer, detail }),
        (text(), any::<u64>()).prop_map(|(site, word)| WireError::TransientFault { site, word }),
        text().prop_map(|stage| WireError::DeviceHang { stage }),
        Just(WireError::DeviceWedged),
        text().prop_map(|stage| WireError::Cancelled { stage }),
        text().prop_map(|detail| WireError::SimOther { detail }),
        any::<u64>().prop_map(|model_id| WireError::UnknownModel { model_id }),
        text().prop_map(|name| WireError::ModelLoading { name }),
        text().prop_map(|name| WireError::ModelDraining { name }),
        text().prop_map(|detail| WireError::LoadFailed { detail }),
        (text(), any::<u64>()).prop_map(|(name, version)| WireError::ModelExists { name, version }),
        any::<u64>().prop_map(|limit| WireError::QuotaExceeded { limit }),
        Just(WireError::Draining),
        text().prop_map(|detail| WireError::BadRequest { detail }),
        any::<u64>().prop_map(|max| WireError::ConnectionLimit { max }),
        (any::<u64>(), any::<u64>()).prop_map(|(len, max)| WireError::FrameTooLarge { len, max }),
    ]
}

fn load_request_strategy() -> impl Strategy<Value = LoadRequest> {
    (
        (text(), any::<u32>(), text(), text()),
        (any::<u64>(), any::<u32>(), any::<bool>(), any::<u32>()),
        (any::<u64>(), any::<u64>(), any::<u32>()),
    )
        .prop_map(
            |(
                (name, version, model, device),
                (seed, workers, functional, quota),
                (rate_bits, fault_seed, retries),
            )| LoadRequest {
                name,
                version,
                model,
                device,
                seed,
                workers,
                functional,
                quota,
                fault_rate: f64::from_bits(rate_bits),
                fault_seed,
                retries,
            },
        )
}

fn model_info_strategy() -> impl Strategy<Value = ModelInfo> {
    (
        any::<u32>(),
        text(),
        any::<u32>(),
        prop_oneof![
            Just(ModelState::Loading),
            Just(ModelState::Ready),
            Just(ModelState::Draining),
            Just(ModelState::Failed),
        ],
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(model_id, name, version, state, inflight, completed)| ModelInfo {
                model_id,
                name,
                version,
                state,
                inflight,
                completed,
            },
        )
}

fn stats_strategy() -> impl Strategy<Value = StatsBody> {
    (
        (any::<u32>(), any::<u32>(), any::<u32>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        any::<u64>(),
    )
        .prop_map(
            |((models, connections, peak_connections), a, b, c, d, e)| StatsBody {
                models,
                connections,
                peak_connections,
                submitted: a.0,
                completed: a.1,
                failed: a.2,
                expired: a.3,
                rejected: b.0,
                batches: b.1,
                batched_dispatches: b.2,
                retries: b.3,
                restarts: c.0,
                quarantines: c.1,
                faults_injected: c.2,
                faults_observed: c.3,
                degraded_served: d.0,
                healthy_workers: d.1,
                latency_p50_nanos: d.2,
                latency_p95_nanos: d.3,
                latency_p99_nanos: e,
            },
        )
}

fn body_strategy() -> impl Strategy<Value = Body> {
    prop_oneof![
        tensor_strategy().prop_map(|tensor| Body::Infer { tensor }),
        tensor_strategy().prop_map(|tensor| Body::InferTiming { tensor }),
        load_request_strategy().prop_map(Body::LoadModel),
        Just(Body::UnloadModel),
        Just(Body::ListModels),
        Just(Body::Stats),
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(|payload| Body::Ping { payload }),
        Just(Body::Drain),
        (
            tensor_strategy(),
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<bool>()
        )
            .prop_map(|(tensor, cycles_bits, latency_nanos, bw, degraded)| {
                Body::Output(OutputBody {
                    tensor,
                    total_cycles: f64::from_bits(cycles_bits),
                    latency_nanos,
                    batch_size: bw & 0xffff,
                    worker: bw >> 16,
                    degraded,
                })
            }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            any::<bool>()
        )
            .prop_map(
                |(cycles_bits, latency_nanos, batch_size, worker, degraded)| {
                    Body::Timing(TimingBody {
                        total_cycles: f64::from_bits(cycles_bits),
                        latency_nanos,
                        batch_size,
                        worker,
                        degraded,
                    })
                }
            ),
        wire_error_strategy().prop_map(Body::Error),
        (any::<u32>(), text(), any::<u32>()).prop_map(|(model_id, name, version)| Body::Loaded {
            model_id,
            name,
            version
        }),
        Just(Body::Unloaded),
        proptest::collection::vec(model_info_strategy(), 0..5).prop_map(Body::ModelList),
        stats_strategy().prop_map(Body::StatsReply),
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(|payload| Body::Pong { payload }),
        Just(Body::Draining),
    ]
}

fn frame_strategy() -> impl Strategy<Value = Frame> {
    (any::<u64>(), any::<u32>(), any::<u64>(), body_strategy()).prop_map(
        |(request_id, model_id, deadline_micros, body)| Frame {
            request_id,
            model_id,
            deadline_micros,
            body,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode → re-encode is the identity on the byte stream:
    /// every field of every opcode survives the wire bit-for-bit.
    #[test]
    fn roundtrip_is_bit_identical(frame in frame_strategy()) {
        let bytes = frame.encode();
        let (decoded, consumed) = try_decode(&bytes, MAX_PAYLOAD)
            .expect("self-encoded frame must decode")
            .expect("self-encoded frame must be complete");
        prop_assert_eq!(consumed, bytes.len());
        let reencoded = decoded.encode();
        prop_assert_eq!(reencoded, bytes);
    }

    /// Every strict prefix of a valid frame is "incomplete", never an
    /// error: a stream reader can always just wait for more bytes.
    #[test]
    fn truncation_is_never_an_error(frame in frame_strategy(), cut in any::<u64>()) {
        let bytes = frame.encode();
        let cut = (cut as usize) % bytes.len();
        prop_assert!(matches!(try_decode(&bytes[..cut], MAX_PAYLOAD), Ok(None)));
    }

    /// Trailing bytes from the next pipelined frame are untouched:
    /// decode consumes exactly one frame.
    #[test]
    fn pipelined_frames_consume_exactly_one(
        first in frame_strategy(),
        second in frame_strategy(),
    ) {
        let mut bytes = first.encode();
        let first_len = bytes.len();
        bytes.extend_from_slice(&second.encode());
        let (_, consumed) = try_decode(&bytes, MAX_PAYLOAD)
            .expect("valid stream")
            .expect("complete first frame");
        prop_assert_eq!(consumed, first_len);
        let (_, consumed2) = try_decode(&bytes[consumed..], MAX_PAYLOAD)
            .expect("valid remainder")
            .expect("complete second frame");
        prop_assert_eq!(consumed + consumed2, bytes.len());
    }

    /// Arbitrary garbage decodes to `Ok` or a typed `DecodeError` —
    /// the codec never panics, whatever the bytes.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let _ = try_decode(&bytes, MAX_PAYLOAD);
    }

    /// Corrupting any single byte of a valid frame still yields `Ok` or
    /// a typed error, never a panic — and corrupting the length field
    /// can at worst stall the stream, not crash it.
    #[test]
    fn single_byte_corruption_never_panics(
        frame in frame_strategy(),
        pos in any::<u64>(),
        val in any::<u8>(),
    ) {
        let mut bytes = frame.encode();
        let pos = (pos as usize) % bytes.len();
        bytes[pos] = val;
        let _ = try_decode(&bytes, MAX_PAYLOAD);
    }

    /// A forged oversized length field is rejected with the typed
    /// `FrameTooLarge` *before* the payload would be read.
    #[test]
    fn oversized_length_is_typed(frame in frame_strategy(), extra in 1u32..1024) {
        let mut bytes = frame.encode();
        let max = MAX_PAYLOAD;
        let forged = max as u64 + u64::from(extra);
        // The header's payload_len field lives at bytes 24..28; forging
        // it past the ceiling must reject regardless of the body.
        bytes[24..28].copy_from_slice(&(forged.min(u64::from(u32::MAX)) as u32).to_le_bytes());
        match try_decode(&bytes, max) {
            Err(DecodeError::FrameTooLarge { len, max: m }) => {
                prop_assert!(len > u64::from(max));
                prop_assert_eq!(m, u64::from(max));
            }
            other => prop_assert!(false, "expected FrameTooLarge, got {:?}", other),
        }
    }

    /// A frame over the caller's (smaller) limit is also rejected, so a
    /// server can enforce stricter ceilings than the protocol maximum.
    #[test]
    fn caller_limit_is_enforced(tensor in tensor_strategy(), req in any::<u64>()) {
        let frame = Frame::new(req, Body::Infer { tensor });
        let bytes = frame.encode();
        let payload_len = (bytes.len() - HEADER_LEN) as u32;
        if payload_len == 0 {
            return Ok(());
        }
        match try_decode(&bytes, payload_len - 1) {
            Err(DecodeError::FrameTooLarge { len, .. }) => {
                prop_assert_eq!(len, u64::from(payload_len));
            }
            other => prop_assert!(false, "expected FrameTooLarge, got {:?}", other),
        }
    }

    /// Incremental decoding is split-invariant: feeding a frame to the
    /// `StreamDecoder` in two chunks cut at *every* byte boundary
    /// yields the same frame (as re-encoded bytes) as the one-shot
    /// decoder, with nothing half-framed at any step.
    #[test]
    fn stream_decoder_matches_oneshot_at_every_split(frame in frame_strategy()) {
        let bytes = frame.encode();
        let (oneshot, consumed) = try_decode(&bytes, MAX_PAYLOAD)
            .expect("valid frame")
            .expect("complete frame");
        prop_assert_eq!(consumed, bytes.len());
        let want = oneshot.encode();
        for cut in 0..=bytes.len() {
            let mut dec = StreamDecoder::new(MAX_PAYLOAD);
            dec.extend(&bytes[..cut]);
            if cut < bytes.len() {
                // The partial prefix must never produce a frame.
                prop_assert!(dec.next_frame().expect("prefix is not an error").is_none());
            }
            dec.extend(&bytes[cut..]);
            let got = dec.next_frame()
                .expect("whole frame decodes")
                .expect("whole frame is complete");
            prop_assert_eq!(&got.encode(), &want, "split at byte {}", cut);
            prop_assert_eq!(dec.buffered(), 0);
        }
    }

    /// A pipelined stream fed in arbitrary random chunkings decodes to
    /// the same frame sequence as one-shot decoding of the whole
    /// buffer, regardless of how the reads were fragmented.
    #[test]
    fn stream_decoder_reassembles_arbitrary_chunkings(
        frames in proptest::collection::vec(frame_strategy(), 1..4),
        cuts in proptest::collection::vec(1usize..64, 0..12),
    ) {
        let mut bytes = Vec::new();
        for f in &frames {
            f.encode_into(&mut bytes);
        }
        // One-shot reference sequence.
        let mut want = Vec::new();
        let mut off = 0;
        while let Some((f, n)) = try_decode(&bytes[off..], MAX_PAYLOAD).expect("valid stream") {
            want.push(f.encode());
            off += n;
        }
        prop_assert_eq!(want.len(), frames.len());
        // Incremental: cut the stream into the given chunk sizes (the
        // tail goes in one final push), decoding after every push.
        let mut dec = StreamDecoder::new(MAX_PAYLOAD);
        let mut got = Vec::new();
        let mut off = 0;
        for &cut in &cuts {
            let end = (off + cut).min(bytes.len());
            dec.extend(&bytes[off..end]);
            off = end;
            while let Some(f) = dec.next_frame().expect("valid chunked stream") {
                got.push(f.encode());
            }
        }
        dec.extend(&bytes[off..]);
        while let Some(f) = dec.next_frame().expect("valid chunked stream") {
            got.push(f.encode());
        }
        prop_assert_eq!(got, want);
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// Garbage mid-stream: a valid frame followed by corrupt bytes
    /// decodes the good frame, then yields a typed error — never a
    /// panic, and never a bogus extra frame — however the stream is
    /// chunked.
    #[test]
    fn stream_decoder_garbage_is_typed_mid_stream(
        frame in frame_strategy(),
        garbage in proptest::collection::vec(any::<u8>(), HEADER_LEN..96),
        chunk in 1usize..48,
    ) {
        // Force the garbage header to be invalid: a version no build
        // speaks (0xffff) can never decode as a frame start.
        let mut garbage = garbage;
        garbage[0] = 0xff;
        garbage[1] = 0xff;
        let mut bytes = frame.encode();
        let good = bytes.clone();
        bytes.extend_from_slice(&garbage);

        let mut dec = StreamDecoder::new(MAX_PAYLOAD);
        let mut decoded = Vec::new();
        let mut saw_error = false;
        let mut off = 0;
        while off < bytes.len() {
            let end = (off + chunk).min(bytes.len());
            dec.extend(&bytes[off..end]);
            off = end;
            loop {
                match dec.next_frame() {
                    Ok(Some(f)) => decoded.push(f.encode()),
                    Ok(None) => break,
                    Err(DecodeError::BadVersion { got }) => {
                        prop_assert_eq!(got, 0xffff);
                        saw_error = true;
                        break;
                    }
                    Err(other) => {
                        prop_assert!(false, "expected BadVersion, got {:?}", other);
                    }
                }
            }
            if saw_error {
                break;
            }
        }
        prop_assert!(saw_error, "garbage header must surface as a typed error");
        prop_assert_eq!(decoded, vec![good]);
    }
}
