//! End-to-end chaos test of the full network stack: pipelined
//! connections × a hot multi-model registry × fault injection × drain.
//!
//! One big test on purpose — it asserts a *process-wide* property
//! (zero leaked threads after shutdown), so it must be the only test
//! in this binary; the `cargo` test harness would otherwise run
//! sibling tests on concurrent threads and poison the baseline.
//!
//! What it proves, end to end over real sockets:
//!
//! 1. **Exactly one response per request id** across 8 pipelined
//!    connections and 2 registered models, one of which runs with
//!    deterministic fault injection + retries underneath.
//! 2. **Bit-identical payloads**: every successful `INFER` response
//!    equals a direct `Simulator::run` on the same compiled model,
//!    f32 bit for f32 bit — faults, retries, and batching included.
//! 3. **Out-of-order completion**: a fast model's response overtakes a
//!    backlog on a slow model within one connection, matched by id.
//! 4. **Hot unload**: a drained-out model disappears and new work gets
//!    a typed `UnknownModel`.
//! 5. **Graceful drain**: after `DRAIN` is acknowledged, new work is
//!    rejected with typed `Draining` errors while every already-sent
//!    request still receives its one response; the server then joins
//!    every thread it ever spawned.

use hybriddnn_model::{synth, Tensor};
use hybriddnn_server::protocol::{Body, WireError};
use hybriddnn_server::registry::build_model;
use hybriddnn_server::{
    zoo_resolver, Client, ClientError, LoadRequest, Registry, Server, ServerConfig,
};
use hybriddnn_sim::{SimMode, Simulator};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Live thread count of this process (Linux).
#[cfg(target_os = "linux")]
fn threads_now() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("proc status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

/// Golden outputs: direct sequential simulation of the same compiled
/// model the registry serves — the bit-identity oracle.
fn golden_bits(model: &str, seed: u64, inputs: &[Tensor]) -> Vec<Vec<u32>> {
    let resolved = (zoo_resolver())(model, "vu9p", seed).expect("resolve");
    let built = build_model(&resolved).expect("build");
    let mut sim = Simulator::new(&built.compiled, SimMode::Functional, built.bandwidth);
    inputs
        .iter()
        .map(|input| {
            let run = sim.run(&built.compiled, input).expect("golden run");
            run.output.as_slice().iter().map(|v| v.to_bits()).collect()
        })
        .collect()
}

fn load_request(name: &str, seed: u64, workers: u32) -> LoadRequest {
    let mut req = LoadRequest::new(name, "tiny-cnn", "vu9p");
    req.seed = seed;
    req.workers = workers;
    req.functional = true;
    req
}

const CONNS: usize = 8;
const PER_MODEL: usize = 12; // requests per model per connection
const WINDOW: usize = 8;

#[test]
#[cfg(target_os = "linux")]
fn chaos_pipelined_registry_survives_faults_and_drains_clean() {
    let baseline = threads_now();
    let input_shape = hybriddnn_model::zoo::tiny_cnn().input_shape();
    let inputs: Vec<Tensor> = (0..PER_MODEL as u64)
        .map(|i| synth::tensor(input_shape, 1000 + i))
        .collect();
    // Two distinct parameter bindings = two genuinely different models.
    let golden_a = golden_bits("tiny-cnn", 42, &inputs);
    let golden_b = golden_bits("tiny-cnn", 7, &inputs);

    let registry = Arc::new(Registry::new(zoo_resolver()));
    let id_a = registry
        .load_blocking(load_request("clean", 42, 2))
        .expect("load clean model");
    let mut faulted = load_request("faulted", 7, 2);
    faulted.fault_rate = 0.01;
    faulted.fault_seed = 99;
    faulted.retries = 32;
    let id_b = registry.load_blocking(faulted).expect("load faulted model");

    let server = Server::bind(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind");
    let addr = server.local_addr();

    // ── Phase 1: 8 pipelined connections × 2 models, faults underneath.
    let stats: Vec<(usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CONNS)
            .map(|conn| {
                let inputs = &inputs;
                let golden_a = &golden_a;
                let golden_b = &golden_b;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    // Interleave both models in one pipelined stream.
                    let mut expected: HashMap<u64, (bool, usize)> = HashMap::new();
                    let mut in_flight = 0usize;
                    let mut answered: HashMap<u64, ()> = HashMap::new();
                    let mut ok = 0usize;
                    let mut failed = 0usize;
                    let mut queue: Vec<(u32, bool, usize)> = (0..PER_MODEL)
                        .flat_map(|i| [(id_a, false, i), (id_b, true, i)])
                        .collect();
                    // Stagger start order per connection.
                    let rot = conn % queue.len();
                    queue.rotate_left(rot);
                    let drain_one =
                        |client: &mut Client,
                         answered: &mut HashMap<u64, ()>,
                         ok: &mut usize,
                         failed: &mut usize,
                         expected: &HashMap<u64, (bool, usize)>| {
                            let frame = client.recv().expect("recv");
                            assert!(
                                answered.insert(frame.request_id, ()).is_none(),
                                "request id {} answered twice",
                                frame.request_id
                            );
                            let (on_faulted, idx) =
                                *expected.get(&frame.request_id).expect("known id");
                            match frame.body {
                                Body::Output(out) => {
                                    let bits: Vec<u32> =
                                        out.tensor.as_slice().iter().map(|v| v.to_bits()).collect();
                                    let golden = if on_faulted {
                                        &golden_b[idx]
                                    } else {
                                        &golden_a[idx]
                                    };
                                    assert_eq!(
                                        &bits, golden,
                                        "response for request {} not bit-identical",
                                        frame.request_id
                                    );
                                    *ok += 1;
                                }
                                Body::Error(e) => {
                                    // Only the fault-injected model may fail,
                                    // and only with a typed error.
                                    assert!(
                                        on_faulted,
                                        "clean model failed request {}: {e}",
                                        frame.request_id
                                    );
                                    *failed += 1;
                                }
                                other => panic!("unexpected body {:?}", other.opcode()),
                            }
                        };
                    for (model_id, on_faulted, idx) in queue {
                        let id = client
                            .send(
                                model_id,
                                0,
                                Body::Infer {
                                    tensor: inputs[idx].clone(),
                                },
                            )
                            .expect("send");
                        expected.insert(id, (on_faulted, idx));
                        in_flight += 1;
                        if in_flight >= WINDOW {
                            drain_one(&mut client, &mut answered, &mut ok, &mut failed, &expected);
                            in_flight -= 1;
                        }
                    }
                    for _ in 0..in_flight {
                        drain_one(&mut client, &mut answered, &mut ok, &mut failed, &expected);
                    }
                    assert_eq!(
                        answered.len(),
                        2 * PER_MODEL,
                        "every request answered exactly once"
                    );
                    (ok, failed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("conn"))
            .collect()
    });
    let total_ok: usize = stats.iter().map(|(ok, _)| ok).sum();
    let total_failed: usize = stats.iter().map(|(_, f)| f).sum();
    assert_eq!(total_ok + total_failed, CONNS * 2 * PER_MODEL);
    // The clean model contributes half the traffic and never fails, so
    // at least half the responses carry verified bit-identical tensors.
    assert!(
        total_ok >= CONNS * PER_MODEL,
        "verified outputs: {total_ok}"
    );

    // ── Phase 2: out-of-order completion within one connection — a
    // single-worker model backlogged with 16 requests cannot answer its
    // last request before the idle 2-worker model answers its one.
    let id_serial = registry
        .load_blocking(load_request("serial", 13, 1))
        .expect("load serial model");
    {
        let mut client = Client::connect(addr).expect("connect");
        let mut serial_ids = Vec::new();
        for i in 0..16u64 {
            let id = client
                .send(
                    id_serial,
                    0,
                    Body::Infer {
                        tensor: synth::tensor(input_shape, 2000 + i),
                    },
                )
                .expect("send serial");
            serial_ids.push(id);
        }
        let fast_id = client
            .send(
                id_a,
                0,
                Body::Infer {
                    tensor: inputs[0].clone(),
                },
            )
            .expect("send fast");
        let mut order = Vec::new();
        for _ in 0..17 {
            let frame = client.recv().expect("recv");
            assert!(matches!(frame.body, Body::Output(_)), "all must succeed");
            order.push(frame.request_id);
        }
        let fast_pos = order.iter().position(|&id| id == fast_id).expect("fast");
        let last_serial_pos = order
            .iter()
            .position(|&id| id == *serial_ids.last().expect("ids"))
            .expect("serial");
        assert!(
            fast_pos < last_serial_pos,
            "fast model's response (sent last) must overtake the serial backlog: \
             fast at {fast_pos}, last serial at {last_serial_pos}"
        );
    }

    // ── Phase 3: hot unload frees the name; new work gets typed errors.
    {
        let mut client = Client::connect(addr).expect("connect");
        client.unload_model(id_serial).expect("unload");
        let err = client
            .infer(id_serial, inputs[0].clone(), 0)
            .expect_err("unloaded model must reject");
        assert!(
            matches!(err, ClientError::Server(WireError::UnknownModel { .. })),
            "expected UnknownModel, got {err}"
        );
        assert_eq!(client.list_models().expect("list").len(), 2);
    }

    // ── Phase 4: graceful drain. Pipeline a burst, then drain from a
    // second connection; every already-sent request still gets exactly
    // one response, and post-ack work gets typed Draining rejects.
    {
        let mut busy = Client::connect(addr).expect("connect busy");
        let mut ids = Vec::new();
        for i in 0..32u64 {
            ids.push(
                busy.send(
                    id_a,
                    0,
                    Body::Infer {
                        tensor: inputs[(i % PER_MODEL as u64) as usize].clone(),
                    },
                )
                .expect("send burst"),
            );
        }
        let mut controller = Client::connect(addr).expect("connect controller");
        controller.drain().expect("drain ack");
        // Post-ack: new inference and load are rejected, typed.
        let err = controller
            .infer(id_a, inputs[0].clone(), 0)
            .expect_err("draining server must reject");
        assert!(
            matches!(err, ClientError::Server(WireError::Draining)),
            "expected Draining, got {err}"
        );
        let err = controller
            .load_model(load_request("late", 1, 1))
            .expect_err("draining server must reject loads");
        assert!(
            matches!(err, ClientError::Server(WireError::Draining)),
            "expected Draining, got {err}"
        );
        // The burst still completes: one response per id, each either a
        // verified output or a typed Draining reject (for frames the
        // reader processed after the flag flipped).
        let mut seen = HashMap::new();
        for _ in 0..ids.len() {
            let frame = busy.recv().expect("recv burst");
            assert!(seen.insert(frame.request_id, ()).is_none());
            match frame.body {
                Body::Output(out) => {
                    let idx =
                        ids.iter().position(|&id| id == frame.request_id).unwrap() % PER_MODEL;
                    let bits: Vec<u32> =
                        out.tensor.as_slice().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(&bits, &golden_a[idx]);
                }
                Body::Error(WireError::Draining) => {}
                other => panic!("unexpected burst response {:?}", other.opcode()),
            }
        }
        assert_eq!(seen.len(), ids.len());
    }

    // ── Phase 5: shutdown joins everything; zero leaked threads.
    let stats = server.shutdown();
    assert!(stats.completed > 0);
    drop(registry);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let now = threads_now();
        if now <= baseline {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "leaked threads: {now} alive, baseline {baseline}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}
