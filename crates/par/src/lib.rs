//! Deterministic fork-join work pool built on `std::thread::scope`.
//!
//! The HybridDNN accelerator gets its speed from `PI×PO×PT²` MACs running
//! concurrently; the host-side model gets its speed from this crate. The
//! pool is intentionally minimal — the build is offline (no rayon) and the
//! call sites all have the same shape: a fixed number of independent work
//! groups (output-channel ranges, DSE candidates) that must produce
//! *bit-identical* results regardless of thread count.
//!
//! Determinism rules baked into the API:
//!
//! - Work is split into **contiguous index ranges** computed by
//!   [`chunk_ranges`] — the split depends only on `(n, parts)`, never on
//!   scheduling.
//! - Each range is processed by exactly one worker; results land in
//!   index-ordered slots, so reductions run in a fixed sequential order on
//!   the caller's thread.
//! - `threads == 1` executes inline on the caller with no scope set-up, so
//!   the single-threaded path is *exactly* the sequential code.
//!
//! The pool is fork-join per call (scoped threads), not a persistent
//! thread set: call sites here run for tens of microseconds to seconds,
//! where `thread::scope` spawn cost (~10 µs/thread) is either negligible
//! or avoided entirely by the `threads == 1` inline path.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default thread count, settable once from the CLI.
/// 0 means "not set": fall back to [`available_parallelism`].
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default used by [`WorkPool::new`] when callers
/// pass `0`. Clamped to at least 1. Typically wired to a `--threads` CLI
/// flag once at startup.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// The process-wide default thread count: the value from
/// [`set_default_threads`] if set, otherwise the host's available
/// parallelism (1 if unknown).
pub fn default_threads() -> usize {
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => available_parallelism(),
        n => n,
    }
}

/// Host logical CPU count as reported by the OS, 1 if unknown.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `0..n` into at most `parts` contiguous ranges whose lengths
/// differ by at most one, in index order. Empty ranges are omitted, so the
/// result has `min(n, parts)` entries (none when `n == 0`).
///
/// The split is a pure function of `(n, parts)` — this is what makes
/// chunked parallel reductions reproducible.
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(n);
    let mut out = Vec::with_capacity(parts);
    if n == 0 {
        return out;
    }
    let base = n / parts;
    let extra = n % parts;
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// A fork-join work pool with a fixed thread budget.
///
/// `WorkPool` is a plain value (`Copy`): it carries the thread count, and
/// each `run_*`/`map` call forks a `thread::scope` (caller participates as
/// worker 0) and joins before returning. With `threads() == 1` every
/// method runs inline on the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkPool {
    threads: usize,
}

impl WorkPool {
    /// Creates a pool with the given thread budget; `0` means "use
    /// [`default_threads`]".
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        WorkPool { threads }
    }

    /// The thread budget (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A copy of this pool limited to at most `max_parts` parallel parts
    /// (clamped to ≥ 1). Call sites use this to keep work items too small
    /// to amortize a thread spawn on the calling thread.
    pub fn capped(&self, max_parts: usize) -> WorkPool {
        WorkPool {
            threads: self.threads.min(max_parts.max(1)),
        }
    }

    /// Runs `f(worker, range)` for each chunk of `0..n`, splitting into at
    /// most `threads()` contiguous ranges. `worker` is the chunk index
    /// (0-based, also the per-worker scratch slot). Returns immediately
    /// when `n == 0`.
    pub fn run_ranges<F>(&self, n: usize, f: F)
    where
        F: Fn(usize, std::ops::Range<usize>) + Sync,
    {
        let ranges = chunk_ranges(n, self.threads);
        match ranges.len() {
            0 => {}
            1 => f(0, ranges.into_iter().next().unwrap()),
            _ => std::thread::scope(|scope| {
                let f = &f;
                let mut iter = ranges.into_iter().enumerate();
                let (w0, r0) = iter.next().unwrap();
                for (worker, range) in iter {
                    scope.spawn(move || f(worker, range));
                }
                f(w0, r0); // caller participates as worker 0
            }),
        }
    }

    /// Runs `f(worker, range, chunk, scratch)` over `data` split into
    /// contiguous chunks of whole items (`item_len` elements each, so
    /// `data.len() == n_items * item_len`), giving each worker exclusive
    /// mutable access to its chunk plus one scratch slot from `scratches`.
    ///
    /// `range` is the item-index range the chunk covers. Panics if
    /// `data.len()` is not a multiple of `item_len`, or if `scratches` has
    /// fewer slots than chunks (allocate `threads()` slots).
    pub fn for_each_chunk_mut<T, S, F>(
        &self,
        data: &mut [T],
        item_len: usize,
        scratches: &mut [S],
        f: F,
    ) where
        T: Send,
        S: Send,
        F: Fn(usize, std::ops::Range<usize>, &mut [T], &mut S) + Sync,
    {
        assert!(item_len > 0, "item_len must be positive");
        assert_eq!(
            data.len() % item_len,
            0,
            "data must hold whole items (len {} % item_len {} != 0)",
            data.len(),
            item_len
        );
        let n_items = data.len() / item_len;
        let ranges = chunk_ranges(n_items, self.threads);
        match ranges.len() {
            0 => {}
            1 => f(
                0,
                ranges.into_iter().next().unwrap(),
                data,
                &mut scratches[0],
            ),
            _ => {
                assert!(
                    scratches.len() >= ranges.len(),
                    "need {} scratch slots, have {}",
                    ranges.len(),
                    scratches.len()
                );
                std::thread::scope(|scope| {
                    let f = &f;
                    let mut rest = data;
                    let mut scratch_rest = &mut scratches[..];
                    let mut first = None;
                    for (worker, range) in ranges.into_iter().enumerate() {
                        let (chunk, tail) = rest.split_at_mut(range.len() * item_len);
                        rest = tail;
                        let (slot, scratch_tail) = scratch_rest.split_first_mut().unwrap();
                        scratch_rest = scratch_tail;
                        if worker == 0 {
                            first = Some((range, chunk, slot));
                        } else {
                            scope.spawn(move || f(worker, range, chunk, slot));
                        }
                    }
                    let (range, chunk, slot) = first.unwrap();
                    f(0, range, chunk, slot); // caller participates as worker 0
                });
            }
        }
    }

    /// Maps `f` over `items`, returning results in input order. Items are
    /// distributed as contiguous chunks (same split as [`chunk_ranges`]);
    /// the output order — and therefore any sequential reduction over it —
    /// is independent of the thread count.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(items.len(), || None);
        {
            let ranges = chunk_ranges(items.len(), self.threads);
            std::thread::scope(|scope| {
                let f = &f;
                let mut rest = &mut slots[..];
                let mut first = None;
                for (worker, range) in ranges.into_iter().enumerate() {
                    let (chunk, tail) = rest.split_at_mut(range.len());
                    rest = tail;
                    let work = items[range].iter().zip(chunk.iter_mut());
                    if worker == 0 {
                        first = Some(work);
                    } else {
                        scope.spawn(move || {
                            for (item, slot) in work {
                                *slot = Some(f(item));
                            }
                        });
                    }
                }
                for (item, slot) in first.unwrap() {
                    *slot = Some(f(item));
                }
            });
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every slot filled by its worker"))
            .collect()
    }
}

impl Default for WorkPool {
    /// A pool using [`default_threads`].
    fn default() -> Self {
        WorkPool::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for n in [0usize, 1, 2, 3, 7, 8, 64, 65] {
            for parts in [1usize, 2, 3, 4, 7, 16] {
                let ranges = chunk_ranges(n, parts);
                assert_eq!(ranges.len(), parts.min(n), "n={n} parts={parts}");
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous from 0");
                    assert!(!r.is_empty(), "no empty ranges");
                    next = r.end;
                }
                assert_eq!(next, n, "covers 0..n");
                if let (Some(first), Some(last)) = (ranges.first(), ranges.last()) {
                    assert!(first.len() - last.len() <= 1, "balanced within one item");
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_is_pure() {
        assert_eq!(chunk_ranges(10, 4), chunk_ranges(10, 4));
        assert_eq!(chunk_ranges(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
    }

    #[test]
    fn run_ranges_visits_every_index_once() {
        use std::sync::Mutex;
        for threads in [1usize, 2, 4, 7] {
            let pool = WorkPool::new(threads);
            let hits = Mutex::new(vec![0u32; 23]);
            pool.run_ranges(23, |_worker, range| {
                let mut hits = hits.lock().unwrap();
                for i in range {
                    hits[i] += 1;
                }
            });
            assert!(hits.into_inner().unwrap().iter().all(|&h| h == 1));
        }
    }

    #[test]
    fn for_each_chunk_mut_partitions_items_and_scratch() {
        for threads in [1usize, 2, 4] {
            let pool = WorkPool::new(threads);
            // 6 items of 3 elements each.
            let mut data = vec![0i64; 18];
            let mut scratches = vec![0usize; threads];
            pool.for_each_chunk_mut(&mut data, 3, &mut scratches, |worker, range, chunk, s| {
                assert_eq!(chunk.len(), range.len() * 3);
                for (off, item) in range.clone().enumerate() {
                    for e in 0..3 {
                        chunk[off * 3 + e] = (item * 3 + e) as i64;
                    }
                }
                *s += range.len();
                let _ = worker;
            });
            let expect: Vec<i64> = (0..18).collect();
            assert_eq!(data, expect, "threads={threads}");
            assert_eq!(scratches.iter().sum::<usize>(), 6);
        }
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..37).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * x).collect();
        for threads in [1usize, 2, 4, 16] {
            let pool = WorkPool::new(threads);
            assert_eq!(pool.map(&items, |&x| x * x), expect, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let pool = WorkPool::new(4);
        assert_eq!(pool.map(&[] as &[u8], |&x| x), Vec::<u8>::new());
        assert_eq!(pool.map(&[9u8], |&x| x + 1), vec![10]);
    }

    #[test]
    fn zero_means_default_threads() {
        assert!(WorkPool::new(0).threads() >= 1);
        assert!(default_threads() >= 1);
        assert!(available_parallelism() >= 1);
    }
}
