use hybriddnn_fpga::MemoryTraffic;

/// Busy cycles accumulated per functional module.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModuleBusy {
    /// LOAD_INP module.
    pub load_inp: f64,
    /// LOAD_WGT module (including LOAD_BIAS).
    pub load_wgt: f64,
    /// COMP module.
    pub comp: f64,
    /// SAVE module.
    pub save: f64,
}

impl ModuleBusy {
    /// The busiest module's cycle count — the `max(...)` of Eq. 12–15.
    pub fn max(&self) -> f64 {
        self.load_inp
            .max(self.load_wgt)
            .max(self.comp)
            .max(self.save)
    }
}

/// Measured results of simulating one stage (layer).
///
/// `name` is an interned, shared string (`Arc<str>`): cloning stats out
/// of a session's cached schedule on every steady-state run bumps a
/// reference count instead of reallocating the layer name.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stage name (interned; clones share one allocation).
    pub name: std::sync::Arc<str>,
    /// Wall-clock cycles from dispatch of the first instruction to
    /// retirement of the last.
    pub cycles: f64,
    /// Per-module busy time.
    pub busy: ModuleBusy,
    /// External memory traffic in words.
    pub traffic: MemoryTraffic,
    /// Instructions executed.
    pub instructions: usize,
    /// Arithmetic operations performed (2 per MAC), for GOPS.
    pub ops: u64,
}

impl Default for StageStats {
    fn default() -> Self {
        StageStats {
            name: std::sync::Arc::from(""),
            cycles: 0.0,
            busy: ModuleBusy::default(),
            traffic: MemoryTraffic::default(),
            instructions: 0,
            ops: 0,
        }
    }
}

impl std::fmt::Display for StageStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.0} cycles (li {:.0}, lw {:.0}, comp {:.0}, sv {:.0}; {} insts, {} words)",
            self.name,
            self.cycles,
            self.busy.load_inp,
            self.busy.load_wgt,
            self.busy.comp,
            self.busy.save,
            self.instructions,
            self.traffic.total(),
        )
    }
}

impl StageStats {
    /// Achieved GOPS at `freq_mhz`.
    pub fn gops(&self, freq_mhz: f64) -> f64 {
        if self.cycles == 0.0 {
            return 0.0;
        }
        self.ops as f64 / (self.cycles / (freq_mhz * 1e6)) / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_busy_max() {
        let b = ModuleBusy {
            load_inp: 1.0,
            load_wgt: 5.0,
            comp: 3.0,
            save: 2.0,
        };
        assert_eq!(b.max(), 5.0);
    }

    #[test]
    fn display_is_informative() {
        let s = StageStats {
            name: "conv1".into(),
            cycles: 100.0,
            instructions: 7,
            ..StageStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("conv1") && text.contains("100 cycles") && text.contains("7 insts"));
    }

    #[test]
    fn gops_computation() {
        let s = StageStats {
            cycles: 1000.0,
            ops: 2_000_000,
            ..StageStats::default()
        };
        // 2e6 ops in 1000 cycles @ 100 MHz = 2e6 / 10µs = 200 GOPS.
        assert!((s.gops(100.0) - 200.0).abs() < 1e-9);
        let zero = StageStats::default();
        assert_eq!(zero.gops(100.0), 0.0);
    }
}
