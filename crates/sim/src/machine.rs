//! The accelerator machine: CTRL dispatch, per-module timelines, handshake
//! tokens, and the cycle model.
//!
//! Timing follows the concurrency structure of §4.1: the four functional
//! modules run in parallel; an instruction starts when (1) its module is
//! free, (2) CTRL has dispatched it, and (3) every handshake token it
//! waits on has been posted. Each LOAD/SAVE owns a dedicated DDR channel
//! of `bw` words/cycle (the multi-channel boards the paper targets), so
//! Eq. 8–11's `min(BW, port)` rates emerge naturally.

use crate::fault::{self, FaultHook};
use crate::pe::{build_unit_pack, exec_comp, exec_load, exec_save, Buffers, CompCtx};
use crate::plan::{PackMode, UnitPack};
use crate::stats::{ModuleBusy, StageStats};
use crate::SimError;
use hybriddnn_estimator::AcceleratorConfig;
use hybriddnn_fpga::ExternalMemory;
use hybriddnn_isa::{Instruction, LoadKind, Program};
use hybriddnn_model::quant::QFormat;
use std::collections::VecDeque;

/// Words per bias-buffer half (see `hybriddnn-compiler`'s lowering).
pub const BIAS_HALF_WORDS: usize = 4096;

/// CTRL dispatch rate: one instruction per cycle (the 4-stage instruction
/// pipeline of §3 Step 4 keeps the decoder ahead of the modules).
const DISPATCH_CYCLES: f64 = 1.0;
/// Fixed per-transfer overhead of a DMA descriptor (address setup, burst
/// alignment).
const LOAD_OVERHEAD: f64 = 30.0;
/// PE pipeline fill/drain per COMP unit.
const COMP_OVERHEAD: f64 = 40.0;
/// SAVE path setup per store unit.
const SAVE_OVERHEAD: f64 = 30.0;

/// One accelerator instance: buffers, token FIFOs, module timelines.
#[derive(Debug)]
pub struct Accelerator {
    cfg: AcceleratorConfig,
    bw: f64,
    act_fmt: Option<QFormat>,
    functional: bool,
    bufs: Buffers,
    comp: CompCtx,
}

impl Accelerator {
    /// Creates an accelerator instance.
    ///
    /// `bw` is the per-channel DDR bandwidth in words/cycle; `act_fmt`
    /// enables fixed-point requantization at COMP flush; `functional`
    /// selects whether data actually moves.
    pub fn new(
        cfg: AcceleratorConfig,
        bw: f64,
        act_fmt: Option<QFormat>,
        functional: bool,
    ) -> Self {
        let bufs = Buffers::new(&cfg);
        Accelerator {
            cfg,
            bw,
            act_fmt,
            functional,
            bufs,
            comp: CompCtx::new(0),
        }
    }

    /// The configuration this instance models.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.cfg
    }

    /// Host threads used inside one COMP unit.
    pub fn threads(&self) -> usize {
        self.comp.threads()
    }

    /// Sets the host-thread budget for COMP execution (`0` = the
    /// process-wide default, `1` = strictly sequential). Results are
    /// bit-identical at any setting; only wall time changes.
    pub fn set_threads(&mut self, threads: usize) {
        let want = hybriddnn_par::WorkPool::new(threads).threads();
        if want != self.comp.threads() {
            self.comp = CompCtx::new(want);
        }
    }

    /// Executes one stage program to completion, returning its measured
    /// statistics. Token FIFOs and timelines reset per stage (the host
    /// runtime synchronizes between layers).
    ///
    /// # Errors
    /// Returns [`SimError::Deadlock`] if an instruction waits on a token
    /// that is never posted, or [`SimError::BufferOverrun`] on an
    /// out-of-range buffer access in functional mode.
    pub fn run_stage(
        &mut self,
        program: &Program,
        mem: &mut ExternalMemory,
    ) -> Result<StageStats, SimError> {
        self.run_stage_inner(program, mem, None, PackMode::Off, &mut FaultHook::none())
    }

    /// Like [`Accelerator::run_stage`], optionally recording each
    /// instruction's `(start, finish)` cycle pair for pipeline debugging.
    ///
    /// # Errors
    /// Same as [`Accelerator::run_stage`].
    pub fn run_stage_traced(
        &mut self,
        program: &Program,
        mem: &mut ExternalMemory,
        trace: Option<&mut Vec<(f64, f64)>>,
    ) -> Result<StageStats, SimError> {
        self.run_stage_inner(program, mem, trace, PackMode::Off, &mut FaultHook::none())
    }

    /// Full event simulation of one stage, optionally recording or
    /// consuming a session plan's per-COMP weight packs.
    ///
    /// In `PackMode::Record`, each COMP's pack is built from the weight
    /// and bias buffers as they stand when that COMP retires in program
    /// order — then immediately consumed by `exec_comp`, so the recording
    /// run exercises exactly the code path that replays will.
    /// Fault decisions (when `faults` carries armed state) are drawn at
    /// fixed per-instruction points of this sequential walk — one per
    /// LOAD, COMP, and SAVE — so the decision stream depends only on the
    /// program, never on mode or host threading.
    pub(crate) fn run_stage_inner(
        &mut self,
        program: &Program,
        mem: &mut ExternalMemory,
        mut trace: Option<&mut Vec<(f64, f64)>>,
        mut packs: PackMode<'_>,
        faults: &mut FaultHook<'_>,
    ) -> Result<StageStats, SimError> {
        let mut next_pack = 0usize;
        let mut t = Timing::new();
        mem.reset_traffic();
        for (i, inst) in program.instructions().iter().enumerate() {
            let dispatch = (i + 1) as f64 * DISPATCH_CYCLES;
            match inst {
                Instruction::Load(l) => {
                    let (module, port): (Module, f64) = match l.kind {
                        LoadKind::Input => (Module::LoadInp, (self.cfg.pi * self.cfg.pt()) as f64),
                        _ => (
                            Module::LoadWgt,
                            (self.cfg.pi * self.cfg.po * self.cfg.pt()) as f64,
                        ),
                    };
                    let mut start = t.module_free(module).max(dispatch);
                    if l.wait_free {
                        let fifo = match l.kind {
                            LoadKind::Input => Fifo::InpFree,
                            _ => Fifo::WgtFree,
                        };
                        start = start.max(t.pop(fifo, i)?);
                    }
                    let words = l.words() as f64;
                    let dur = LOAD_OVERHEAD + words / self.bw.min(port);
                    let finish = start + dur;
                    t.advance(module, start, finish);
                    if let Some(tr) = trace.as_deref_mut() {
                        tr.push((start, finish));
                    }
                    if l.signal_ready {
                        let fifo = match l.kind {
                            LoadKind::Input => Fifo::InpReady,
                            _ => Fifo::WgtReady,
                        };
                        t.push(fifo, finish);
                    }
                    if self.functional {
                        exec_load(&mut self.bufs, mem, l)?;
                    }
                    if let Some(state) = faults.state.as_deref_mut() {
                        if let Some((word, site)) = state.on_load(l.kind, l.words() as usize) {
                            self.corrupt_load_word(l, word);
                            return Err(SimError::TransientFault { site, word });
                        }
                    }
                }
                Instruction::Comp(c) => {
                    let mut start = t.module_free(Module::Comp).max(dispatch);
                    if c.wait_inp {
                        start = start.max(t.pop(Fifo::InpReady, i)?);
                    }
                    if c.wait_wgt {
                        start = start.max(t.pop(Fifo::WgtReady, i)?);
                    }
                    if c.acc_final {
                        // Need a free output slot before flushing.
                        start = start.max(t.pop(Fifo::OutFree, i)?);
                    }
                    faults.check_stop()?;
                    if let Some(state) = faults.state.as_deref_mut() {
                        if state.on_comp_hang() {
                            fault::stall(faults.stop, state.stall_escape());
                            return Err(SimError::DeviceHang {
                                stage: faults.stage.to_string(),
                                after_cycles: start,
                            });
                        }
                    }
                    let dur = COMP_OVERHEAD + self.comp_cycles(c);
                    let finish = start + dur;
                    t.advance(Module::Comp, start, finish);
                    if let Some(tr) = trace.as_deref_mut() {
                        tr.push((start, finish));
                    }
                    if c.free_inp {
                        t.push(Fifo::InpFree, finish);
                    }
                    if c.free_wgt {
                        t.push(Fifo::WgtFree, finish);
                    }
                    if c.acc_final {
                        t.push(Fifo::OutReady, finish);
                    }
                    if self.functional {
                        match &mut packs {
                            PackMode::Record(out) => {
                                out.push(build_unit_pack(&self.bufs, &self.cfg, c));
                                let pack = out.last().filter(|p| !p.weights.is_empty());
                                exec_comp(
                                    &mut self.bufs,
                                    &self.cfg,
                                    c,
                                    self.act_fmt,
                                    &mut self.comp,
                                    pack,
                                )?;
                            }
                            PackMode::Replay(ps) => {
                                let pack = ps.get(next_pack).filter(|p| !p.weights.is_empty());
                                next_pack += 1;
                                exec_comp(
                                    &mut self.bufs,
                                    &self.cfg,
                                    c,
                                    self.act_fmt,
                                    &mut self.comp,
                                    pack,
                                )?;
                            }
                            PackMode::Off => {
                                exec_comp(
                                    &mut self.bufs,
                                    &self.cfg,
                                    c,
                                    self.act_fmt,
                                    &mut self.comp,
                                    None,
                                )?;
                            }
                        }
                    }
                }
                Instruction::Save(s) => {
                    let mut start = t.module_free(Module::Save).max(dispatch);
                    if s.wait_data {
                        start = start.max(t.pop(Fifo::OutReady, i)?);
                    }
                    let pool = (s.pool as usize).max(1);
                    let words = (s.oc_vecs as usize * self.cfg.po)
                        * (s.rows as usize / pool)
                        * (s.out_w as usize / pool);
                    let port = (self.cfg.po * self.cfg.pt()) as f64;
                    let dur = SAVE_OVERHEAD + words as f64 / self.bw.min(port);
                    let finish = start + dur;
                    t.advance(Module::Save, start, finish);
                    if let Some(tr) = trace.as_deref_mut() {
                        tr.push((start, finish));
                    }
                    if s.signal_free {
                        t.push(Fifo::OutFree, finish);
                    }
                    if let Some(state) = faults.state.as_deref_mut() {
                        if let Some(word) = state.on_save(words.max(1)) {
                            if self.functional {
                                let idx = s.buff_base as usize + word;
                                if let Some(v) = self.bufs.output.get_mut(idx) {
                                    *v = flip_word(*v);
                                }
                            }
                            return Err(SimError::TransientFault { site: "save", word });
                        }
                    }
                    if self.functional {
                        exec_save(&self.bufs, mem, &self.cfg, s)?;
                    }
                }
            }
        }
        Ok(StageStats {
            name: Default::default(),
            cycles: t.makespan(),
            busy: t.busy,
            traffic: mem.traffic(),
            instructions: program.len(),
            ops: 0,
        })
    }

    /// Replays a stage functionally against a recorded session plan,
    /// skipping event simulation entirely.
    ///
    /// Weight and bias loads are elided — every COMP reads its cached
    /// pack instead of the weight/bias buffers, so only input loads,
    /// COMPs, and SAVEs execute. Timing comes from the plan's cached
    /// [`StageStats`], not from here.
    ///
    /// # Errors
    /// Same as [`Accelerator::run_stage`] (functional errors only).
    pub(crate) fn replay_stage(
        &mut self,
        program: &Program,
        mem: &mut ExternalMemory,
        packs: &[UnitPack],
        faults: &mut FaultHook<'_>,
    ) -> Result<(), SimError> {
        let mut next_pack = 0usize;
        for inst in program.instructions() {
            match inst {
                Instruction::Load(l) => {
                    if l.kind == LoadKind::Input {
                        exec_load(&mut self.bufs, mem, l)?;
                    }
                    // Draw for every LOAD — including the elided weight
                    // loads — so the decision stream matches the full
                    // event-simulation path exactly.
                    if let Some(state) = faults.state.as_deref_mut() {
                        if let Some((word, site)) = state.on_load(l.kind, l.words() as usize) {
                            self.corrupt_load_word(l, word);
                            return Err(SimError::TransientFault { site, word });
                        }
                    }
                }
                Instruction::Comp(c) => {
                    faults.check_stop()?;
                    if let Some(state) = faults.state.as_deref_mut() {
                        if state.on_comp_hang() {
                            fault::stall(faults.stop, state.stall_escape());
                            return Err(SimError::DeviceHang {
                                stage: faults.stage.to_string(),
                                after_cycles: 0.0,
                            });
                        }
                    }
                    let pack = packs.get(next_pack).filter(|p| !p.weights.is_empty());
                    next_pack += 1;
                    exec_comp(
                        &mut self.bufs,
                        &self.cfg,
                        c,
                        self.act_fmt,
                        &mut self.comp,
                        pack,
                    )?;
                }
                Instruction::Save(s) => {
                    if let Some(state) = faults.state.as_deref_mut() {
                        let pool = (s.pool as usize).max(1);
                        let words = (s.oc_vecs as usize * self.cfg.po)
                            * (s.rows as usize / pool)
                            * (s.out_w as usize / pool);
                        if let Some(word) = state.on_save(words.max(1)) {
                            let idx = s.buff_base as usize + word;
                            if let Some(v) = self.bufs.output.get_mut(idx) {
                                *v = flip_word(*v);
                            }
                            return Err(SimError::TransientFault { site: "save", word });
                        }
                    }
                    exec_save(&self.bufs, mem, &self.cfg, s)?;
                }
            }
        }
        Ok(())
    }

    /// Replays a stage across a whole batch of lanes at once — the
    /// batched counterpart of [`Accelerator::replay_stage`], sharing this
    /// accelerator's worker pool and scratch. See [`crate::batch`].
    pub(crate) fn replay_stage_batched(
        &mut self,
        program: &Program,
        packs: &[UnitPack],
        lanes: &mut [&mut crate::batch::BatchLane],
        stage: &str,
        stop: Option<&crate::StopToken>,
    ) -> Result<(), SimError> {
        crate::batch::replay_stage_batched(
            &self.cfg,
            self.act_fmt,
            &mut self.comp,
            program,
            packs,
            lanes,
            stage,
            stop,
        )
    }

    /// Flips one word of the buffer a LOAD just filled — the functional
    /// face of an injected DRAM burst error. The staged DRAM image is
    /// never touched, and every buffer span a COMP reads is re-loaded by
    /// its own run, so the corruption cannot outlive the erroring run.
    fn corrupt_load_word(&mut self, l: &hybriddnn_isa::LoadInst, word: usize) {
        if !self.functional {
            return;
        }
        let dest = match l.kind {
            LoadKind::Input => &mut self.bufs.input,
            LoadKind::Weight => &mut self.bufs.weight,
            LoadKind::Bias => &mut self.bufs.bias,
        };
        let idx = l.buff_base as usize + word;
        if let Some(v) = dest.get_mut(idx) {
            *v = flip_word(*v);
        }
    }

    /// PE cycles for one COMP unit.
    ///
    /// Spatial mode: the merged broadcast array computes `PT²` output
    /// positions × `PI` channels × `PO` outputs per cycle (Eq. 6).
    /// Winograd mode: each GEMM core computes one GEMV per cycle — one
    /// `(tile, ic-vector, oc-vector)` triple (Eq. 7).
    fn comp_cycles(&self, c: &hybriddnn_isa::CompInst) -> f64 {
        let positions = c.out_rows as usize * c.out_w as usize;
        if c.wino {
            let m = self.cfg.m();
            let tiles = (c.out_rows as usize).div_ceil(m) * (c.out_w as usize).div_ceil(m);
            (tiles * c.ic_vecs as usize * c.oc_vecs as usize) as f64
        } else {
            // The merged broadcast array flattens output positions ×
            // kernel positions × input-channel vectors across its PT²
            // lanes (the save manager's adder tree sums across GEMM-core
            // rows, §4.2.3), so narrow units — FC layers especially —
            // don't strand lanes.
            let pt2 = self.cfg.pt() * self.cfg.pt();
            let work = positions * c.kernel_h as usize * c.kernel_w as usize * c.ic_vecs as usize;
            (work.div_ceil(pt2) * c.oc_vecs as usize) as f64
        }
    }
}

/// One-bit mantissa upset — a detectable, value-visible corruption that
/// never produces NaN/Inf from a finite input.
fn flip_word(v: f32) -> f32 {
    f32::from_bits(v.to_bits() ^ 0x0040_0000)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Module {
    LoadInp,
    LoadWgt,
    Comp,
    Save,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fifo {
    InpReady,
    InpFree,
    WgtReady,
    WgtFree,
    OutReady,
    OutFree,
}

impl Fifo {
    fn name(self) -> &'static str {
        match self {
            Fifo::InpReady => "inp_ready",
            Fifo::InpFree => "inp_free",
            Fifo::WgtReady => "wgt_ready",
            Fifo::WgtFree => "wgt_free",
            Fifo::OutReady => "out_ready",
            Fifo::OutFree => "out_free",
        }
    }
}

#[derive(Debug)]
struct Timing {
    free: [f64; 4],
    busy: ModuleBusy,
    fifos: [VecDeque<f64>; 6],
    makespan: f64,
}

impl Timing {
    fn new() -> Self {
        let mut fifos: [VecDeque<f64>; 6] = Default::default();
        // Ping-pong: two free slots per buffer at reset.
        for f in [Fifo::InpFree, Fifo::WgtFree, Fifo::OutFree] {
            fifos[f as usize].push_back(0.0);
            fifos[f as usize].push_back(0.0);
        }
        Timing {
            free: [0.0; 4],
            busy: ModuleBusy::default(),
            fifos,
            makespan: 0.0,
        }
    }

    fn module_free(&self, m: Module) -> f64 {
        self.free[m as usize]
    }

    fn advance(&mut self, m: Module, start: f64, finish: f64) {
        let dur = finish - start;
        match m {
            Module::LoadInp => self.busy.load_inp += dur,
            Module::LoadWgt => self.busy.load_wgt += dur,
            Module::Comp => self.busy.comp += dur,
            Module::Save => self.busy.save += dur,
        }
        self.free[m as usize] = finish;
        self.makespan = self.makespan.max(finish);
    }

    fn pop(&mut self, f: Fifo, inst: usize) -> Result<f64, SimError> {
        self.fifos[f as usize]
            .pop_front()
            .ok_or(SimError::Deadlock {
                instruction: inst,
                fifo: f.name(),
            })
    }

    fn push(&mut self, f: Fifo, time: f64) {
        self.fifos[f as usize].push_back(time);
    }

    fn makespan(&self) -> f64 {
        self.makespan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybriddnn_isa::{CompInst, LoadInst, SaveInst};
    use hybriddnn_winograd::TileConfig;

    fn accel() -> Accelerator {
        Accelerator::new(
            AcceleratorConfig::new(4, 4, TileConfig::F2x2),
            16.0,
            None,
            false,
        )
    }

    fn load(kind: LoadKind, words: u32, wait: bool, signal: bool) -> Instruction {
        Instruction::Load(LoadInst {
            kind,
            rows: 1,
            row_len: words,
            wait_free: wait,
            signal_ready: signal,
            ..LoadInst::default()
        })
    }

    fn minimal_program() -> Program {
        let mut p = Program::new();
        p.push(load(LoadKind::Weight, 16, true, true));
        p.push(load(LoadKind::Input, 16, true, true));
        p.push(Instruction::Comp(CompInst {
            wait_inp: true,
            free_inp: true,
            wait_wgt: true,
            free_wgt: true,
            ..CompInst::default()
        }));
        p.push(Instruction::Save(SaveInst {
            wait_data: true,
            signal_free: true,
            dst_w: 1,
            dst_cv: 1,
            ..SaveInst::default()
        }));
        p
    }

    #[test]
    fn minimal_program_completes() {
        let mut a = accel();
        let mut mem = ExternalMemory::new();
        let stats = a.run_stage(&minimal_program(), &mut mem).unwrap();
        assert!(stats.cycles > 0.0);
        assert_eq!(stats.instructions, 4);
        // SAVE must finish last.
        assert!(stats.cycles >= stats.busy.save);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut a = accel();
        let mut mem = ExternalMemory::new();
        let mut p = Program::new();
        // COMP waits for input that nobody loads.
        p.push(Instruction::Comp(CompInst {
            wait_inp: true,
            ..CompInst::default()
        }));
        let err = a.run_stage(&p, &mut mem).unwrap_err();
        assert_eq!(
            err,
            SimError::Deadlock {
                instruction: 0,
                fifo: "inp_ready"
            }
        );
    }

    #[test]
    fn third_load_waits_for_free_token() {
        let mut a = accel();
        let mut mem = ExternalMemory::new();
        let mut p = Program::new();
        // Two loads fill both ping-pong slots; the third must block until
        // a COMP frees one.
        p.push(load(LoadKind::Input, 160, true, true));
        p.push(load(LoadKind::Input, 160, true, true));
        p.push(load(LoadKind::Input, 160, true, true));
        // Without any COMP freeing slots this deadlocks.
        let err = a.run_stage(&p, &mut mem).unwrap_err();
        assert_eq!(
            err,
            SimError::Deadlock {
                instruction: 2,
                fifo: "inp_free"
            }
        );
    }

    #[test]
    fn loads_and_compute_overlap() {
        // With ping-pong, two independent (load, comp) rounds should take
        // less than twice the serial time of one round.
        let mut a = accel();
        let mut mem = ExternalMemory::new();
        let big = 16_000u32;
        let mut serial = Program::new();
        serial.push(load(LoadKind::Input, big, true, true));
        serial.push(Instruction::Comp(CompInst {
            wait_inp: true,
            free_inp: true,
            ic_vecs: 64,
            oc_vecs: 64,
            out_w: 16,
            kernel_h: 3,
            kernel_w: 3,
            ..CompInst::default()
        }));
        let one = a.run_stage(&serial, &mut mem).unwrap().cycles;

        let mut pipelined = Program::new();
        for _ in 0..2 {
            pipelined.push(load(LoadKind::Input, big, true, true));
            pipelined.push(Instruction::Comp(CompInst {
                wait_inp: true,
                free_inp: true,
                ic_vecs: 64,
                oc_vecs: 64,
                out_w: 16,
                kernel_h: 3,
                kernel_w: 3,
                ..CompInst::default()
            }));
        }
        let two = a.run_stage(&pipelined, &mut mem).unwrap().cycles;
        assert!(two < 2.0 * one, "no overlap: {two} vs 2x{one}");
    }

    #[test]
    fn load_rate_is_bandwidth_capped() {
        let mut mem = ExternalMemory::new();
        let mut p = Program::new();
        p.push(load(LoadKind::Input, 1600, false, false));
        // PYNQ-like bandwidth 16 words/cycle, port PI*PT = 16 → 100 cycles.
        let mut a = accel();
        let stats = a.run_stage(&p, &mut mem).unwrap();
        assert!((stats.busy.load_inp - (30.0 + 100.0)).abs() < 1.0);
        // Slower memory doubles it.
        let mut slow = Accelerator::new(
            AcceleratorConfig::new(4, 4, TileConfig::F2x2),
            8.0,
            None,
            false,
        );
        let stats = slow.run_stage(&p, &mut mem).unwrap();
        assert!((stats.busy.load_inp - (30.0 + 200.0)).abs() < 1.0);
    }

    #[test]
    fn comp_cycles_match_eq6_and_eq7() {
        let a = accel();
        // Spatial: ceil(16 positions × 9 taps × 8 ic / PT²(16)) × oc.
        let c = CompInst {
            out_rows: 4,
            out_w: 4,
            ic_vecs: 8,
            oc_vecs: 2,
            kernel_h: 3,
            kernel_w: 3,
            ..CompInst::default()
        };
        assert_eq!(a.comp_cycles(&c), (72 * 2) as f64);
        // Winograd: 4 tiles (m=2) × ic × oc.
        let w = CompInst { wino: true, ..c };
        assert_eq!(a.comp_cycles(&w), (4 * 8 * 2) as f64);
    }
}
