//! Deterministic fault injection for simulator sessions.
//!
//! Real FPGA inference deployments see failure modes the paper's perfect
//! device never shows: DRAM bit errors on DMA bursts, handshake FIFOs
//! that stall and wedge the pipeline, transient compute upsets, and
//! devices that stay wedged until the host rebuilds the session. A
//! [`FaultPlan`] models all four as a *seeded, fully deterministic*
//! stream of injection decisions: the same plan armed on the same
//! session over the same run sequence produces the same faults, byte for
//! byte — which is what lets a chaos harness pin invariants like
//! "retried transient faults are bit-identical to a fault-free run".
//!
//! Fault decisions are drawn at sequential points of the (deterministic,
//! program-order) instruction walk — one draw per LOAD burst, COMP unit,
//! and SAVE burst, plus one wedge draw per run — so the decision stream
//! is independent of the execution mode: functional full simulation,
//! functional plan replay, and timing-only replay all draw the same
//! sequence for the same program.
//!
//! The fault model is *detected-fault* shaped: an injected DRAM or
//! compute corruption flips real buffer words (functional mode) but is
//! always detected — the run aborts with a typed [`SimError`] instead of
//! silently serving corrupt data, modeling an ECC/parity-protected
//! datapath. Hangs actually stall the host thread (bounded by
//! [`FaultPlan::with_stall_escape`]) until a [`StopToken`] cancels them,
//! which is what gives a serving-layer watchdog something real to catch.

use crate::SimError;
use hybriddnn_isa::{Instruction, LoadKind, Program};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often a stalled instruction polls its [`StopToken`].
const STALL_POLL: Duration = Duration::from_micros(200);

/// A cooperative cancellation handle for an in-flight run.
///
/// The host keeps one clone and hands the other to the session
/// ([`Simulator::set_stop_token`](crate::Simulator::set_stop_token)).
/// The simulator checks it between COMP work-groups and inside injected
/// stalls; once cancelled, the run returns [`SimError::Cancelled`] (or
/// [`SimError::DeviceHang`] if it was cancelled out of a stall).
#[derive(Debug, Clone, Default)]
pub struct StopToken {
    flag: Arc<AtomicBool>,
}

impl StopToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        StopToken::default()
    }

    /// Requests cancellation of the run holding the paired clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`StopToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A seeded, deterministic fault-injection plan.
///
/// All rates are per-site probabilities in `[0, 1]`: `dram` per LOAD
/// burst, `hang` per COMP unit, `save` per SAVE burst, `wedge` per run.
/// The default plan from [`FaultPlan::new`] injects nothing until a rate
/// is raised.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    dram_rate: f64,
    hang_rate: f64,
    save_rate: f64,
    wedge_rate: f64,
    stall_escape: Duration,
}

impl FaultPlan {
    /// A plan with every rate at zero (arm-able but inert).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            dram_rate: 0.0,
            hang_rate: 0.0,
            save_rate: 0.0,
            wedge_rate: 0.0,
            stall_escape: Duration::from_millis(100),
        }
    }

    /// A mixed plan from one knob (the `serve-bench --fault-rate` shape):
    /// DRAM and SAVE corruption at `rate`, hangs at `rate / 4`, wedges at
    /// `rate / 16` — transient-dominant, the empirical shape of deployed
    /// FPGA fleets.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan::new(seed)
            .with_dram_rate(rate)
            .with_save_rate(rate)
            .with_hang_rate(rate / 4.0)
            .with_wedge_rate(rate / 16.0)
    }

    /// Per-LOAD-burst probability of a detected DRAM word corruption.
    #[must_use]
    pub fn with_dram_rate(mut self, rate: f64) -> Self {
        self.dram_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Per-COMP-unit probability of a handshake-FIFO stall (a real
    /// wall-clock hang until cancelled or escaped).
    #[must_use]
    pub fn with_hang_rate(mut self, rate: f64) -> Self {
        self.hang_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Per-SAVE-burst probability of a detected transient compute
    /// bit-flip.
    #[must_use]
    pub fn with_save_rate(mut self, rate: f64) -> Self {
        self.save_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Per-run probability that the device wedges: the session answers
    /// [`SimError::DeviceWedged`] to everything until
    /// [`Simulator::reset_session`](crate::Simulator::reset_session).
    #[must_use]
    pub fn with_wedge_rate(mut self, rate: f64) -> Self {
        self.wedge_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Wall-clock cap on an injected stall when no cancellation arrives
    /// (a safety net so un-watched sessions cannot hang forever).
    #[must_use]
    pub fn with_stall_escape(mut self, escape: Duration) -> Self {
        self.stall_escape = escape;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether every rate is zero.
    pub fn is_noop(&self) -> bool {
        self.dram_rate == 0.0
            && self.hang_rate == 0.0
            && self.save_rate == 0.0
            && self.wedge_rate == 0.0
    }

    /// The same rates under a replica-specific seed, so a pool of
    /// replicas armed from one plan does not fault in lockstep. The
    /// derivation is deterministic in `(seed, replica)`.
    #[must_use]
    pub fn for_replica(&self, replica: u64) -> Self {
        let mut plan = self.clone();
        plan.seed = splitmix(self.seed ^ replica.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        plan
    }
}

/// Counters of faults a session has injected so far, by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Detected DRAM word corruptions on LOAD bursts.
    pub dram: u64,
    /// Handshake-FIFO stalls surfaced as [`SimError::DeviceHang`].
    pub hangs: u64,
    /// Detected compute bit-flips at SAVE.
    pub save_flips: u64,
    /// Runs on which the device wedged.
    pub wedges: u64,
}

impl FaultCounters {
    /// Total injected faults across all classes.
    pub fn total(&self) -> u64 {
        self.dram + self.hangs + self.save_flips + self.wedges
    }
}

fn splitmix(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The armed, mutable state of a plan on one session.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: u64,
    pub(crate) wedged: bool,
    pub(crate) counters: FaultCounters,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let rng = splitmix(plan.seed);
        FaultState {
            plan,
            rng,
            wedged: false,
            counters: FaultCounters::default(),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// One Bernoulli draw at `rate`. Always consumes exactly one RNG
    /// step, so the decision stream length is rate-independent.
    fn chance(&mut self, rate: f64) -> bool {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < rate
    }

    /// Run-entry check: sticky wedge state, then the per-run wedge draw.
    pub(crate) fn begin_run(&mut self) -> Result<(), SimError> {
        if self.wedged {
            return Err(SimError::DeviceWedged);
        }
        if self.chance(self.plan.wedge_rate) {
            self.wedged = true;
            self.counters.wedges += 1;
            return Err(SimError::DeviceWedged);
        }
        Ok(())
    }

    /// Per-LOAD-burst draw; `Some((word, site))` names the burst word to
    /// corrupt and the fault site.
    pub(crate) fn on_load(
        &mut self,
        kind: LoadKind,
        words: usize,
    ) -> Option<(usize, &'static str)> {
        if !self.chance(self.plan.dram_rate) {
            return None;
        }
        let word = self.next_u64() as usize % words.max(1);
        self.counters.dram += 1;
        let site = match kind {
            LoadKind::Input => "load_inp",
            // Bias rides the weight DMA channel.
            _ => "load_wgt",
        };
        Some((word, site))
    }

    /// Per-COMP-unit draw: does this unit's handshake stall?
    pub(crate) fn on_comp_hang(&mut self) -> bool {
        if self.chance(self.plan.hang_rate) {
            self.counters.hangs += 1;
            return true;
        }
        false
    }

    /// Per-SAVE-burst draw; `Some(word)` names the output word whose
    /// compute result flipped.
    pub(crate) fn on_save(&mut self, words: usize) -> Option<usize> {
        if !self.chance(self.plan.save_rate) {
            return None;
        }
        let word = self.next_u64() as usize % words.max(1);
        self.counters.save_flips += 1;
        Some(word)
    }

    pub(crate) fn clear_wedge(&mut self) {
        self.wedged = false;
    }

    pub(crate) fn stall_escape(&self) -> Duration {
        self.plan.stall_escape
    }
}

/// Per-stage fault context threaded through the execution paths. Both
/// fields are optional so the unarmed hot path pays one branch per
/// instruction at most.
pub(crate) struct FaultHook<'a> {
    pub(crate) state: Option<&'a mut FaultState>,
    pub(crate) stop: Option<&'a StopToken>,
    pub(crate) stage: &'a str,
}

impl<'a> FaultHook<'a> {
    /// A hook that injects nothing and cannot be cancelled.
    pub(crate) fn none() -> FaultHook<'static> {
        FaultHook {
            state: None,
            stop: None,
            stage: "",
        }
    }

    /// Cooperative cancellation point (between COMP work-groups).
    pub(crate) fn check_stop(&self) -> Result<(), SimError> {
        match self.stop {
            Some(s) if s.is_cancelled() => Err(SimError::Cancelled {
                stage: self.stage.to_string(),
            }),
            _ => Ok(()),
        }
    }
}

/// Blocks the calling thread like a wedged handshake FIFO would: polls
/// the stop token until cancelled or until `escape` elapses.
pub(crate) fn stall(stop: Option<&StopToken>, escape: Duration) {
    let start = Instant::now();
    while start.elapsed() < escape {
        if stop.is_some_and(StopToken::is_cancelled) {
            return;
        }
        std::thread::sleep(STALL_POLL);
    }
}

/// Walks a stage program drawing the same per-instruction fault
/// decisions as the event-simulation and replay paths, without executing
/// anything — the fault surface of the timing-only plan-replay path
/// (which otherwise executes nothing at all).
pub(crate) fn check_program(
    state: &mut FaultState,
    stop: Option<&StopToken>,
    program: &Program,
    stage: &str,
    po: usize,
) -> Result<(), SimError> {
    for inst in program.instructions() {
        match inst {
            Instruction::Load(l) => {
                if let Some((word, site)) = state.on_load(l.kind, l.words() as usize) {
                    return Err(SimError::TransientFault { site, word });
                }
            }
            Instruction::Comp(_) => {
                if stop.is_some_and(StopToken::is_cancelled) {
                    return Err(SimError::Cancelled {
                        stage: stage.to_string(),
                    });
                }
                if state.on_comp_hang() {
                    stall(stop, state.stall_escape());
                    return Err(SimError::DeviceHang {
                        stage: stage.to_string(),
                        after_cycles: 0.0,
                    });
                }
            }
            Instruction::Save(s) => {
                let pool = (s.pool as usize).max(1);
                let words = (s.oc_vecs as usize * po)
                    * (s.rows as usize / pool)
                    * (s.out_w as usize / pool);
                if let Some(word) = state.on_save(words.max(1)) {
                    return Err(SimError::TransientFault { site: "save", word });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_token_round_trip() {
        let t = StopToken::new();
        let clone = t.clone();
        assert!(!t.is_cancelled());
        clone.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn zero_rate_plans_inject_nothing() {
        let mut s = FaultState::new(FaultPlan::new(7));
        assert!(FaultPlan::new(7).is_noop());
        for _ in 0..1000 {
            assert!(s.begin_run().is_ok());
            assert!(s.on_load(LoadKind::Input, 64).is_none());
            assert!(!s.on_comp_hang());
            assert!(s.on_save(64).is_none());
        }
        assert_eq!(s.counters.total(), 0);
    }

    #[test]
    fn full_rate_plans_always_inject() {
        let plan = FaultPlan::new(3).with_dram_rate(1.0).with_save_rate(1.0);
        assert!(!plan.is_noop());
        let mut s = FaultState::new(plan);
        let (word, site) = s.on_load(LoadKind::Weight, 8).unwrap();
        assert!(word < 8);
        assert_eq!(site, "load_wgt");
        assert!(s.on_save(8).is_some());
        assert_eq!(s.counters.dram, 1);
        assert_eq!(s.counters.save_flips, 1);
    }

    #[test]
    fn same_seed_same_decision_stream() {
        let plan = FaultPlan::new(42).with_dram_rate(0.3).with_hang_rate(0.2);
        let mut a = FaultState::new(plan.clone());
        let mut b = FaultState::new(plan);
        for _ in 0..500 {
            assert_eq!(
                a.on_load(LoadKind::Input, 16),
                b.on_load(LoadKind::Input, 16)
            );
            assert_eq!(a.on_comp_hang(), b.on_comp_hang());
        }
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn replica_plans_diverge_but_are_deterministic() {
        let base = FaultPlan::uniform(9, 0.5);
        let r0 = base.for_replica(0);
        let r1 = base.for_replica(1);
        assert_ne!(r0.seed(), r1.seed());
        assert_eq!(r0, base.for_replica(0));
    }

    #[test]
    fn wedge_is_sticky_until_cleared() {
        let mut s = FaultState::new(FaultPlan::new(1).with_wedge_rate(1.0));
        assert!(matches!(s.begin_run(), Err(SimError::DeviceWedged)));
        assert_eq!(s.counters.wedges, 1);
        // Sticky: no new draw, still wedged.
        assert!(matches!(s.begin_run(), Err(SimError::DeviceWedged)));
        assert_eq!(s.counters.wedges, 1);
        s.clear_wedge();
        // Rate 1.0: wedges again on the next run, with a fresh draw.
        assert!(matches!(s.begin_run(), Err(SimError::DeviceWedged)));
        assert_eq!(s.counters.wedges, 2);
    }

    #[test]
    fn stall_escapes_without_cancellation() {
        let start = Instant::now();
        stall(None, Duration::from_millis(5));
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn stall_returns_on_cancellation() {
        let token = StopToken::new();
        token.cancel();
        let start = Instant::now();
        stall(Some(&token), Duration::from_secs(10));
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
