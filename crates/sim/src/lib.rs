//! Cycle-approximate, functionally-exact simulator of the HybridDNN
//! accelerator.
//!
//! This crate is the reproduction's substitute for the paper's HLS-generated
//! FPGA implementation (DESIGN.md §2). It executes the *actual instruction
//! streams* the compiler emits through the *actual module structure* of
//! Figure 3:
//!
//! * a CTRL dispatcher feeding per-module instruction queues,
//! * LOAD_INP / LOAD_WGT / COMP / SAVE modules running concurrently,
//! * handshake-FIFO tokens (§4.1) gating producer/consumer pairs,
//! * ping-pong on-chip buffers,
//! * a hybrid Spatial/Winograd PE executing the GEMM formulation of Eq. 2,
//! * the four SAVE-side layout transforms of Figure 5, and
//! * per-module DDR channels with finite bandwidth (Eq. 8–11's `BW`).
//!
//! Two execution modes:
//!
//! * [`SimMode::Functional`] — moves real data and produces real outputs,
//!   bit-comparable against the golden CPU reference on the quantized
//!   path; used by the validation suite.
//! * [`SimMode::TimingOnly`] — runs only the cycle model (no data, no
//!   DRAM allocation); used by the benchmark harness so VGG16-scale
//!   sweeps are cheap.
//!
//! # Example
//!
//! ```
//! use hybriddnn_compiler::{Compiler, MappingStrategy};
//! use hybriddnn_estimator::AcceleratorConfig;
//! use hybriddnn_model::{reference, synth, zoo};
//! use hybriddnn_sim::{SimMode, Simulator};
//! use hybriddnn_winograd::TileConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut net = zoo::tiny_cnn();
//! hybriddnn_model::synth::bind_random(&mut net, 1)?;
//! let cfg = AcceleratorConfig::new(4, 4, TileConfig::F2x2);
//! let compiled = Compiler::new(cfg).compile(&net, &MappingStrategy::all_winograd(&net))?;
//!
//! let mut sim = Simulator::new(&compiled, SimMode::Functional, 16.0);
//! let input = synth::tensor(net.input_shape(), 2);
//! let run = sim.run(&compiled, &input)?;
//!
//! let golden = reference::run_network(&net, &input)?;
//! assert!(run.output.max_abs_diff(&golden) < 1e-2);
//! assert!(run.total_cycles > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod error;
mod fault;
pub mod kernels;
mod machine;
mod pe;
mod plan;
mod runner;
mod stats;

pub use error::SimError;
pub use fault::{FaultCounters, FaultPlan, StopToken};
pub use machine::Accelerator;
pub use pe::CompCtx;
pub use runner::{RunResult, SimMode, Simulator, StageTraces};
pub use stats::{ModuleBusy, StageStats};
