//! Functional execution of instructions on the on-chip buffers — the
//! hybrid Spatial/Winograd PE (§4.2), the reconfigurable load/save
//! managers (§4.2.3), and the layout-transforming SAVE path (§4.3).

use crate::kernels::{self, SpatialGeom};
use crate::plan::UnitPack;
use crate::SimError;
use hybriddnn_estimator::AcceleratorConfig;
use hybriddnn_fpga::{ExternalMemory, MemoryClient};
use hybriddnn_isa::{CompInst, LoadInst, LoadKind, SaveInst};
use hybriddnn_model::quant::QFormat;
use hybriddnn_par::WorkPool;
use hybriddnn_winograd::transform;

/// Minimum MACs a COMP unit must carry per *extra* worker before the pool
/// forks: below this, thread-spawn cost exceeds the compute it would hide,
/// so small units run on the calling thread regardless of the configured
/// thread count. Purely a scheduling decision — results are bit-identical
/// either way.
const PAR_MIN_MACS: usize = 32 * 1024;

/// The accelerator's on-chip buffers (both ping-pong halves of each).
#[derive(Debug, Clone)]
pub struct Buffers {
    /// Input feature-map buffer.
    pub input: Vec<f32>,
    /// Weight buffer.
    pub weight: Vec<f32>,
    /// Bias buffer.
    pub bias: Vec<f32>,
    /// Output buffer (post-activation values).
    pub output: Vec<f32>,
    /// Accumulating buffer (`f64`, keeping quantized-grid arithmetic
    /// exact; see `hybriddnn-model`'s `quant` docs).
    pub accum: Vec<f64>,
}

impl Buffers {
    /// Allocates buffers for a configuration (two halves each).
    pub fn new(cfg: &AcceleratorConfig) -> Self {
        Buffers {
            input: vec![0.0; 2 * cfg.input_buffer_words()],
            weight: vec![0.0; 2 * cfg.weight_buffer_words()],
            bias: vec![0.0; 2 * crate::machine::BIAS_HALF_WORDS],
            output: vec![0.0; 2 * cfg.output_buffer_words()],
            accum: vec![0.0; 2 * cfg.output_buffer_words()],
        }
    }
}

/// Reusable tile-sized work buffers for the Winograd COMP path.
///
/// Kept separate from [`Buffers`] (whose contents are architectural state)
/// so COMP can hold shared borrows of the buffers while mutating scratch.
/// One `Scratch` lives in the accelerator and is reused across every COMP
/// unit of every inference, eliminating the per-tile allocations that
/// dominated the functional-mode serving profile.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// One `PT × PT` input tile `d`.
    d: Vec<f64>,
    /// Its transform `V = Bᵀ d B`.
    v: Vec<f64>,
    /// Transformed-domain accumulator tile `M[e]` for one output channel.
    m_tile: Vec<f64>,
    /// Inverse-transformed `m × m` output tile.
    y: Vec<f64>,
    /// Matrix-sandwich intermediate shared by both transforms.
    t: Vec<f64>,
    /// Per-output-channel `[r][s][c]` weight repack for the Spatial
    /// micro-kernel, widened to `f64` once per channel.
    pack: Vec<f64>,
}

/// Execution context for COMP units: the worker pool plus all reusable
/// buffers (shared read-only packs and one private [`Scratch`] per
/// worker). One `CompCtx` lives in the accelerator and is reused across
/// every COMP unit of every inference.
///
/// The work split is always by output channel `k` — the unit accumulator
/// is `k`-major, so each worker owns a contiguous range of whole output
/// planes and the per-`k` arithmetic is self-contained. That makes the
/// result bit-identical at any thread count: the same per-channel
/// operation sequence runs no matter which worker executes it.
#[derive(Debug)]
pub struct CompCtx {
    pool: WorkPool,
    /// Transposed Winograd weights `[k][c][e]` for the current unit
    /// (shared, read-only during the parallel phase).
    wt: Vec<f64>,
    /// Transformed input tiles `[tile][c][e]` for the current unit
    /// (shared, read-only during the parallel phase).
    v_all: Vec<f64>,
    /// The Spatial unit's input window widened to `f64` once (shared,
    /// read-only during the parallel phase) — the widening is exact and
    /// reused by every output channel.
    inp_wide: Vec<f64>,
    /// Worker-private scratch; slot 0 belongs to the calling thread.
    workers: Vec<Scratch>,
    /// Per-channel "all weight rows are +0.0" mask for the batched
    /// Winograd path (see `exec_comp_batched`), reused across units.
    skip_c: Vec<bool>,
}

impl CompCtx {
    /// Creates a context with the given thread budget (`0` = the
    /// process-wide [`hybriddnn_par::default_threads`]).
    pub fn new(threads: usize) -> Self {
        let pool = WorkPool::new(threads);
        CompCtx {
            pool,
            wt: Vec::new(),
            v_all: Vec::new(),
            inp_wide: Vec::new(),
            skip_c: Vec::new(),
            workers: (0..pool.threads()).map(|_| Scratch::default()).collect(),
        }
    }

    /// The thread budget.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }
}

impl Default for CompCtx {
    /// A single-threaded context — exactly the historical sequential path.
    fn default() -> Self {
        CompCtx::new(1)
    }
}

/// Executes a load: strided DRAM block → contiguous buffer span.
pub fn exec_load(
    bufs: &mut Buffers,
    mem: &mut ExternalMemory,
    inst: &LoadInst,
) -> Result<(), SimError> {
    let (dest, name, client): (&mut Vec<f32>, _, _) = match inst.kind {
        LoadKind::Input => (&mut bufs.input, "input", MemoryClient::LoadInput),
        LoadKind::Weight => (&mut bufs.weight, "weight", MemoryClient::LoadWeight),
        LoadKind::Bias => (&mut bufs.bias, "bias", MemoryClient::LoadWeight),
    };
    exec_load_into(dest, name, client, mem, inst)
}

/// [`exec_load`] with an explicit destination buffer — the batched replay
/// path loads into per-lane input buffers instead of the accelerator's
/// own. Behaviour (including the overrun error) is identical.
pub(crate) fn exec_load_into(
    dest: &mut [f32],
    name: &'static str,
    client: MemoryClient,
    mem: &mut ExternalMemory,
    inst: &LoadInst,
) -> Result<(), SimError> {
    let total = inst.rows as usize * inst.row_len as usize;
    let base = inst.buff_base as usize;
    if base + total > dest.len() {
        return Err(SimError::BufferOverrun {
            buffer: name,
            index: base + total - 1,
            capacity: dest.len(),
        });
    }
    for r in 0..inst.rows as usize {
        let off = base + r * inst.row_len as usize;
        mem.read_into(
            inst.dram_base + r as u64 * inst.row_stride as u64,
            &mut dest[off..off + inst.row_len as usize],
            client,
        );
    }
    Ok(())
}

/// Builds the input-invariant [`UnitPack`] for one COMP instruction from
/// the live buffer state: the widened weight pack in the layout the
/// unit's kernel consumes (`[k][taps][c]` Spatial, `[k][c][e]` Winograd)
/// plus the widened bias row for units that initialize with bias. Called
/// by the plan-recording run just before executing the unit, so the
/// captured contents are exactly what the unit would read.
///
/// A unit whose weight geometry falls outside the buffer gets an empty
/// `weights` — execution then falls back to the unpacked path, which
/// reports the malformed program exactly as before.
pub(crate) fn build_unit_pack(
    bufs: &Buffers,
    cfg: &AcceleratorConfig,
    inst: &CompInst,
) -> UnitPack {
    let k_lanes = inst.oc_vecs as usize * cfg.po;
    let c_lanes = inst.ic_vecs as usize * cfg.pi;
    let wgt_base = inst.wgt_base as usize;
    let mut weights = Vec::new();
    if inst.wino {
        let pt2 = cfg.tile.pt() * cfg.tile.pt();
        let need = k_lanes * c_lanes * pt2;
        if wgt_base + need <= bufs.weight.len() {
            hybriddnn_winograd::gemm::transpose_ekc_to_kce(
                &bufs.weight[wgt_base..wgt_base + need],
                k_lanes,
                c_lanes,
                pt2,
                &mut weights,
            );
        }
    } else {
        let (kh, kw) = (inst.kernel_h as usize, inst.kernel_w as usize);
        let need = k_lanes * c_lanes * kh * kw;
        if wgt_base + need <= bufs.weight.len() {
            kernels::pack_spatial_weights(
                kh,
                kw,
                c_lanes,
                k_lanes,
                &bufs.weight[wgt_base..wgt_base + need],
                &mut weights,
            );
        }
    }
    let mut bias = Vec::new();
    if inst.acc_init && inst.bias_en {
        let bias_half = (wgt_base >= cfg.weight_buffer_words()) as usize;
        let bias_base = bias_half * crate::machine::BIAS_HALF_WORDS;
        bias.extend(
            (0..k_lanes).map(|k| bufs.bias.get(bias_base + k).copied().unwrap_or(0.0) as f64),
        );
    }
    UnitPack { weights, bias }
}

/// Executes one COMP unit on the PE.
///
/// The input buffer holds the loaded window in the layout matching the
/// CONV mode (SPAT: `(y, x, cv, lane)`; WINO: `(y, cv, x, lane)`); the
/// weight buffer holds the group image; results accumulate in `f64` and
/// flush (activation + requantization) to the output buffer on
/// `acc_final`.
///
/// `pack`, when present, supplies the unit's cached weight/bias invariants
/// ([`build_unit_pack`]) so neither the weight nor the bias buffer is read
/// — results are bit-identical to the unpacked path because the pack holds
/// exact `f32 → f64` widenings consumed in the same operation order.
pub fn exec_comp(
    bufs: &mut Buffers,
    cfg: &AcceleratorConfig,
    inst: &CompInst,
    act_fmt: Option<QFormat>,
    ctx: &mut CompCtx,
    pack: Option<&UnitPack>,
) -> Result<(), SimError> {
    let pi = cfg.pi;
    let k_lanes = inst.oc_vecs as usize * cfg.po;
    let c_lanes = inst.ic_vecs as usize * pi;
    let out_rows = inst.out_rows as usize;
    let out_w = inst.out_w as usize;
    let stride = inst.stride as usize;
    let (kh, kw) = (inst.kernel_h as usize, inst.kernel_w as usize);
    let cv = inst.ic_vecs as usize;
    let inp_base = inst.inp_base as usize;
    let wgt_base = inst.wgt_base as usize;
    let acc_base = inst.out_base as usize;
    let acc_len = k_lanes * out_rows * out_w;
    if acc_base + acc_len > bufs.accum.len() {
        return Err(SimError::BufferOverrun {
            buffer: "accumulator",
            index: acc_base + acc_len - 1,
            capacity: bufs.accum.len(),
        });
    }

    // Initialize the accumulator (optionally with bias) once per unit.
    if inst.acc_init {
        let bias_half = (inst.wgt_base as usize >= cfg.weight_buffer_words()) as usize;
        let bias_base = bias_half * crate::machine::BIAS_HALF_WORDS;
        let cached_bias = pack
            .map(|p| p.bias.as_slice())
            .filter(|b| b.len() == k_lanes);
        for k in 0..k_lanes {
            let b = if inst.bias_en {
                match cached_bias {
                    Some(bias) => bias[k],
                    None => bufs.bias[bias_base + k] as f64,
                }
            } else {
                0.0
            };
            for i in 0..out_rows * out_w {
                bufs.accum[acc_base + k * out_rows * out_w + i] = b;
            }
        }
    }

    if inst.wino {
        exec_comp_wino(bufs, cfg, inst, k_lanes, c_lanes, ctx, pack)?;
    } else {
        // Spatial mode: the GEMM cores merge into one broadcast array;
        // direct MAC loops over the kernel window, partitioned across
        // workers by output channel (each owns whole accumulator planes).
        let cols_l = (out_w - 1) * stride + kw;
        let rows_l = (out_rows - 1) * stride + kh;
        let inp_len = rows_l * cols_l * cv * pi;
        if inp_base + inp_len > bufs.input.len() {
            return Err(SimError::BufferOverrun {
                buffer: "input",
                index: inp_base + inp_len - 1,
                capacity: bufs.input.len(),
            });
        }
        let wgt_len = k_lanes * c_lanes * kh * kw;
        if wgt_base + wgt_len > bufs.weight.len() {
            return Err(SimError::BufferOverrun {
                buffer: "weight",
                index: wgt_base + wgt_len - 1,
                capacity: bufs.weight.len(),
            });
        }
        let geom = SpatialGeom {
            out_rows,
            out_w,
            stride,
            kh,
            kw,
            cv,
            pi,
            cols_l,
        };
        let plane = out_rows * out_w;
        let macs = k_lanes * plane * kh * kw * c_lanes;
        ctx.inp_wide.resize(inp_len, 0.0);
        for (d, &s) in ctx
            .inp_wide
            .iter_mut()
            .zip(&bufs.input[inp_base..inp_base + inp_len])
        {
            *d = s as f64;
        }
        let input = &ctx.inp_wide;
        let weight = &bufs.weight[wgt_base..wgt_base + wgt_len];
        let prepack = pack
            .map(|p| p.weights.as_slice())
            .filter(|w| w.len() == wgt_len);
        let accum = &mut bufs.accum[acc_base..acc_base + acc_len];
        ctx.pool.capped(macs / PAR_MIN_MACS).for_each_chunk_mut(
            accum,
            plane,
            &mut ctx.workers,
            |_, ks, chunk, scratch| {
                kernels::spatial_blocked(
                    &geom,
                    ks,
                    input,
                    weight,
                    prepack,
                    chunk,
                    &mut scratch.pack,
                );
            },
        );
    }

    // Flush: requantization shift, activation, quantization grid.
    if inst.acc_final {
        let out_base = inst.out_base as usize;
        let scale = 2f64.powi(-(inst.quan_shift as i32));
        for i in 0..acc_len {
            let mut v = bufs.accum[acc_base + i] * scale;
            if inst.relu {
                v = v.max(0.0);
            }
            bufs.output[out_base + i] = match act_fmt {
                Some(fmt) => fmt.quantize(v),
                None => v as f32,
            };
        }
    }
    Ok(())
}

/// Winograd-mode COMP: one kernel-decomposition block through the
/// transform → PT² GEMMs → inverse-transform pipeline (Eq. 2).
///
/// Runs in three passes per unit. (1) The weight image is transposed once
/// into `[k][c][e]` so every GEMV reads contiguous rows. (2) Every tile's
/// input transform is computed once (sequentially — each `V` is shared by
/// all output channels) into `[tile][c][e]`. (3) The per-output-channel
/// GEMV + inverse-transform + accumulate pass fans out across the pool by
/// `k`; within a worker the `PT²` transformed positions form a bank of
/// independent accumulator chains (each still summed over `c` in order),
/// which is what lets one core overlap them.
///
/// Every accumulator cell is touched by exactly one `(k, tile)` pair, and
/// each `M[e]` is the same ordered sum over `c` as the naive loop — so the
/// result is bit-identical to the sequential version at any thread count.
fn exec_comp_wino(
    bufs: &mut Buffers,
    cfg: &AcceleratorConfig,
    inst: &CompInst,
    k_lanes: usize,
    c_lanes: usize,
    ctx: &mut CompCtx,
    pack: Option<&UnitPack>,
) -> Result<(), SimError> {
    let tile = cfg.tile;
    let pt = tile.pt();
    let m = tile.m();
    let pt2 = pt * pt;
    let pi = cfg.pi;
    let cv = inst.ic_vecs as usize;
    let out_rows = inst.out_rows as usize;
    let out_w = inst.out_w as usize;
    let (kh, kw) = (inst.kernel_h as usize, inst.kernel_w as usize);
    // Loaded window geometry (stride 1 in Winograd mode).
    let cols_l = out_w - 1 + kw;
    let rows_l = out_rows - 1 + kh;
    let (br, bs) = (inst.wino_offset.0 as usize, inst.wino_offset.1 as usize);
    let (y_off, x_off) = (br * 3, bs * 3);
    let inp_base = inst.inp_base as usize;
    let wgt_base = inst.wgt_base as usize;
    let acc_base = inst.out_base as usize;

    let tiles_y = out_rows.div_ceil(m);
    let tiles_x = out_w.div_ceil(m);
    let tiles = tiles_y * tiles_x;

    // Pass 1: transpose the weight image [e][k][c] → [k][c][e], widening
    // to f64 once instead of per MAC. A session plan caches this
    // transpose, so steady-state runs skip the pass entirely.
    let prepack = pack
        .map(|p| p.weights.as_slice())
        .filter(|w| w.len() == k_lanes * c_lanes * pt2);
    if prepack.is_none() {
        ctx.wt.resize(k_lanes * c_lanes * pt2, 0.0);
        for e in 0..pt2 {
            for k in 0..k_lanes {
                let wrow = wgt_base + (e * k_lanes + k) * c_lanes;
                for c in 0..c_lanes {
                    ctx.wt[(k * c_lanes + c) * pt2 + e] = bufs.weight[wrow + c] as f64;
                }
            }
        }
    }

    // Pass 2: transform every channel of every tile once into
    // `v_all[tile][c][e]`. Reads beyond the loaded window (possible on
    // clipped edge tiles) are zero — those transformed values only
    // influence discarded output positions.
    ctx.v_all.resize(tiles * c_lanes * pt2, 0.0);
    let s0 = &mut ctx.workers[0];
    s0.d.resize(pt2, 0.0);
    s0.v.resize(pt2, 0.0);
    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            for c in 0..c_lanes {
                let (cvi, lane) = (c / pi, c % pi);
                for dy in 0..pt {
                    let y = y_off + ty * m + dy;
                    let drow = &mut s0.d[dy * pt..(dy + 1) * pt];
                    if y >= rows_l {
                        drow.fill(0.0);
                        continue;
                    }
                    let row = inp_base + (y * cv + cvi) * cols_l * pi + lane;
                    for (dx, d) in drow.iter_mut().enumerate() {
                        let x = x_off + tx * m + dx;
                        *d = if x >= cols_l {
                            0.0
                        } else {
                            bufs.input.get(row + x * pi).copied().unwrap_or(0.0) as f64
                        };
                    }
                }
                transform::transform_input_tile_into(tile, &s0.d, &mut s0.v, &mut s0.t);
                let t_idx = ty * tiles_x + tx;
                ctx.v_all[(t_idx * c_lanes + c) * pt2..][..pt2].copy_from_slice(&s0.v);
            }
        }
    }

    // Pass 3: per output channel — banked GEMVs over the PT² positions,
    // inverse transform, accumulate. Partitioned across workers by k.
    let plane = out_rows * out_w;
    let macs = tiles * k_lanes * pt2 * c_lanes;
    let accum = &mut bufs.accum[acc_base..acc_base + k_lanes * plane];
    let wt: &[f64] = match prepack {
        Some(w) => w,
        None => &ctx.wt,
    };
    let v_all = &ctx.v_all;
    ctx.pool.capped(macs / PAR_MIN_MACS).for_each_chunk_mut(
        accum,
        plane,
        &mut ctx.workers,
        |_, ks, chunk, s| {
            s.m_tile.resize(pt2, 0.0);
            s.y.resize(m * m, 0.0);
            for (k_local, k) in ks.enumerate() {
                let out_k = &mut chunk[k_local * plane..(k_local + 1) * plane];
                for ty in 0..tiles_y {
                    for tx in 0..tiles_x {
                        let t_idx = ty * tiles_x + tx;
                        s.m_tile.fill(0.0);
                        for c in 0..c_lanes {
                            let wrow = &wt[(k * c_lanes + c) * pt2..][..pt2];
                            let vrow = &v_all[(t_idx * c_lanes + c) * pt2..][..pt2];
                            for ((mv, wv), vv) in s.m_tile.iter_mut().zip(wrow).zip(vrow) {
                                *mv += wv * vv;
                            }
                        }
                        transform::transform_output_tile_into(tile, &s.m_tile, &mut s.y, &mut s.t);
                        for dy in 0..m {
                            let oy = ty * m + dy;
                            if oy >= out_rows {
                                break;
                            }
                            for dx in 0..m {
                                let ox = tx * m + dx;
                                if ox < out_w {
                                    out_k[oy * out_w + ox] += s.y[dy * m + dx];
                                }
                            }
                        }
                    }
                }
            }
        },
    );
    Ok(())
}

/// Executes one COMP unit across a whole batch of lanes: the unit's
/// cached weight pack is traversed **once** per `k`-range while every
/// lane's activations stream through it — the `O(weights + B·activations)`
/// batched form of [`exec_comp`].
///
/// Only called on planned functional replays whose packs were verified
/// complete by the caller (`Simulator::plan_batchable`), so there is no
/// unpacked fallback here. Per lane, every accumulator chain is the same
/// operation sequence as the sequential pack-consuming path — the
/// standalone kernels it calls are pinned bit-for-bit against that path —
/// so batched outputs are bit-identical to `B` sequential runs.
pub(crate) fn exec_comp_batched(
    cfg: &AcceleratorConfig,
    inst: &CompInst,
    act_fmt: Option<QFormat>,
    ctx: &mut CompCtx,
    pack: &UnitPack,
    lanes: &mut [&mut crate::batch::BatchLane],
) -> Result<(), SimError> {
    let Some(first) = lanes.first() else {
        return Ok(());
    };
    let (accum_cap, input_cap) = (first.accum.len(), first.input.len());
    let pi = cfg.pi;
    let k_lanes = inst.oc_vecs as usize * cfg.po;
    let c_lanes = inst.ic_vecs as usize * pi;
    let out_rows = inst.out_rows as usize;
    let out_w = inst.out_w as usize;
    let stride = inst.stride as usize;
    let (kh, kw) = (inst.kernel_h as usize, inst.kernel_w as usize);
    let cv = inst.ic_vecs as usize;
    let inp_base = inst.inp_base as usize;
    let acc_base = inst.out_base as usize;
    let plane = out_rows * out_w;
    let acc_len = k_lanes * plane;
    // Lanes share their allocation sizes, so one capacity check covers all.
    if acc_base + acc_len > accum_cap {
        return Err(SimError::BufferOverrun {
            buffer: "accumulator",
            index: acc_base + acc_len - 1,
            capacity: accum_cap,
        });
    }

    if inst.acc_init {
        for lane in lanes.iter_mut() {
            if inst.bias_en {
                for k in 0..k_lanes {
                    // The gate verified `pack.bias` covers all k; the
                    // fallback mirrors `build_unit_pack`'s own
                    // out-of-range semantics.
                    let b = pack.bias.get(k).copied().unwrap_or(0.0);
                    lane.accum[acc_base + k * plane..acc_base + (k + 1) * plane].fill(b);
                }
            } else {
                lane.accum[acc_base..acc_base + acc_len].fill(0.0);
            }
        }
    }

    if inst.wino {
        let tile = cfg.tile;
        let m = cfg.m();
        let pt2 = cfg.pt() * cfg.pt();
        let (br, bs) = (inst.wino_offset.0 as usize, inst.wino_offset.1 as usize);
        let g = kernels::WinoGeom {
            out_rows,
            out_w,
            cv,
            pi,
            cols_l: out_w - 1 + kw,
            rows_l: out_rows - 1 + kh,
            tiles_y: out_rows.div_ceil(m),
            tiles_x: out_w.div_ceil(m),
            y_off: br * 3,
            x_off: bs * 3,
            inp_base,
        };
        let macs = g.tiles() * k_lanes * pt2 * c_lanes;
        let wt = pack.weights.as_slice();
        // Channels whose weight row is all +0.0 for *every* output
        // channel (lane-width zero padding) are never read by pass 3's
        // zero-row elision, so pass 2 skips transforming them entirely.
        // Computed once per unit and shared by every lane in the batch.
        ctx.skip_c.clear();
        ctx.skip_c.extend((0..c_lanes).map(|c| {
            (0..k_lanes).all(|k| {
                wt[(k * c_lanes + c) * pt2..][..pt2]
                    .iter()
                    .all(|w| w.to_bits() == 0)
            })
        }));
        let skip_c = Some(ctx.skip_c.as_slice());
        let pool = ctx.pool.capped(macs / PAR_MIN_MACS);
        for lane in lanes.iter_mut() {
            let lane = &mut **lane;
            kernels::wino_pass2(tile, &g, &lane.input, &mut lane.v_all, skip_c);
            let v_all = &lane.v_all;
            let accum = &mut lane.accum[acc_base..acc_base + acc_len];
            pool.for_each_chunk_mut(accum, plane, &mut ctx.workers, |_, ks, chunk, _s| {
                kernels::wino_pass3(tile, &g, wt, v_all, ks, chunk);
            });
        }
    } else if plane == 1 && kh == 1 && kw == 1 {
        // FC unit: widen every lane's input segment once, then stream all
        // lanes through one traversal of the `[k][c]` pack.
        let inp_len = cv * pi;
        if inp_base + inp_len > input_cap {
            return Err(SimError::BufferOverrun {
                buffer: "input",
                index: inp_base + inp_len - 1,
                capacity: input_cap,
            });
        }
        for lane in lanes.iter_mut() {
            let lane = &mut **lane;
            lane.inp_wide.resize(inp_len, 0.0);
            for (d, &s) in lane
                .inp_wide
                .iter_mut()
                .zip(&lane.input[inp_base..inp_base + inp_len])
            {
                *d = s as f64;
            }
        }
        let mut views: Vec<(&[f64], &mut [f64])> = lanes
            .iter_mut()
            .map(|lane| {
                let lane = &mut **lane;
                (
                    lane.inp_wide.as_slice(),
                    &mut lane.accum[acc_base..acc_base + k_lanes],
                )
            })
            .collect();
        kernels::spatial_fc_batched(k_lanes, c_lanes, &pack.weights, &mut views);
    } else {
        let cols_l = (out_w - 1) * stride + kw;
        let rows_l = (out_rows - 1) * stride + kh;
        let inp_len = rows_l * cols_l * cv * pi;
        if inp_base + inp_len > input_cap {
            return Err(SimError::BufferOverrun {
                buffer: "input",
                index: inp_base + inp_len - 1,
                capacity: input_cap,
            });
        }
        let geom = SpatialGeom {
            out_rows,
            out_w,
            stride,
            kh,
            kw,
            cv,
            pi,
            cols_l,
        };
        let macs = k_lanes * plane * kh * kw * c_lanes;
        let prepack = Some(pack.weights.as_slice());
        let pool = ctx.pool.capped(macs / PAR_MIN_MACS);
        for lane in lanes.iter_mut() {
            let lane = &mut **lane;
            lane.inp_wide.resize(inp_len, 0.0);
            for (d, &s) in lane
                .inp_wide
                .iter_mut()
                .zip(&lane.input[inp_base..inp_base + inp_len])
            {
                *d = s as f64;
            }
            let input = &lane.inp_wide;
            let accum = &mut lane.accum[acc_base..acc_base + acc_len];
            pool.for_each_chunk_mut(accum, plane, &mut ctx.workers, |_, ks, chunk, scratch| {
                kernels::spatial_blocked(&geom, ks, input, &[], prepack, chunk, &mut scratch.pack);
            });
        }
    }

    // Flush, with the format dispatch hoisted out of the per-element loop
    // (bitwise the same quantization per element).
    if inst.acc_final {
        let out_base = inst.out_base as usize;
        let scale = 2f64.powi(-(inst.quan_shift as i32));
        for lane in lanes.iter_mut() {
            let lane = &mut **lane;
            let acc = &lane.accum[acc_base..acc_base + acc_len];
            let out = &mut lane.output[out_base..out_base + acc_len];
            match act_fmt {
                Some(fmt) => {
                    for (o, &a) in out.iter_mut().zip(acc) {
                        let mut v = a * scale;
                        if inst.relu {
                            v = v.max(0.0);
                        }
                        *o = fmt.quantize(v);
                    }
                }
                // Multiplying by a unit scale is the bitwise identity,
                // so the common `quan_shift == 0` case skips it and
                // hoists the ReLU branch out of the loop.
                None if scale == 1.0 && inst.relu => {
                    for (o, &a) in out.iter_mut().zip(acc) {
                        *o = a.max(0.0) as f32;
                    }
                }
                None if scale == 1.0 => {
                    for (o, &a) in out.iter_mut().zip(acc) {
                        *o = a as f32;
                    }
                }
                None => {
                    for (o, &a) in out.iter_mut().zip(acc) {
                        let mut v = a * scale;
                        if inst.relu {
                            v = v.max(0.0);
                        }
                        *o = v as f32;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Executes a SAVE: output buffer → DRAM with max-pooling and one of the
/// four layout transforms (the destination layout is pure address
/// arithmetic over `DST_W`/`DST_CV`).
pub fn exec_save(
    bufs: &Buffers,
    mem: &mut ExternalMemory,
    cfg: &AcceleratorConfig,
    inst: &SaveInst,
) -> Result<(), SimError> {
    exec_save_from(&bufs.output, mem, cfg, inst)
}

/// [`exec_save`] reading from an explicit output buffer — the batched
/// replay path saves from per-lane buffers. Behaviour is identical.
pub(crate) fn exec_save_from(
    output: &[f32],
    mem: &mut ExternalMemory,
    cfg: &AcceleratorConfig,
    inst: &SaveInst,
) -> Result<(), SimError> {
    let pi = cfg.pi;
    let k_lanes = inst.oc_vecs as usize * cfg.po;
    let rows = inst.rows as usize;
    let out_w = inst.out_w as usize;
    let pool = (inst.pool as usize).max(1);
    let base = inst.buff_base as usize;
    let need = k_lanes * rows * out_w;
    if base + need > output.len() {
        return Err(SimError::BufferOverrun {
            buffer: "output",
            index: base + need - 1,
            capacity: output.len(),
        });
    }
    let dst_w = inst.dst_w as u64;
    let dst_cv = inst.dst_cv as u64;
    // One destination row is pooled into a staging buffer, then stored as
    // a single strided burst: the destination address stride across `xd`
    // is constant in both layouts (WINO: adjacent vectors; SPAT: `DST_CV`
    // vectors apart).
    let cols = out_w / pool;
    let mut row_array = [0.0f32; 64];
    let mut row_vec = Vec::new();
    let row: &mut [f32] = if cols <= row_array.len() {
        &mut row_array[..cols]
    } else {
        row_vec.resize(cols, 0.0);
        &mut row_vec
    };
    for k in 0..k_lanes {
        let kg = inst.k_base as u64 + k as u64;
        let (cvk, lane) = (kg / pi as u64, kg % pi as u64);
        if cvk >= dst_cv {
            // Padded channels beyond the destination's vector count are
            // dropped (they carry zero data anyway).
            continue;
        }
        let out_k = &output[base + k * rows * out_w..][..rows * out_w];
        for yd in 0..rows / pool {
            if pool == 1 {
                row.copy_from_slice(&out_k[yd * out_w..][..cols]);
            } else if pool == 2 {
                // 2×2 max-pool fast path: the generic window walk below
                // visits r0[0], r0[1], r1[0], r1[1] — the same `f32::max`
                // chain, hoisted out of the per-window slicing.
                let r0 = &out_k[(yd * 2) * out_w..][..out_w];
                let r1 = &out_k[(yd * 2 + 1) * out_w..][..out_w];
                for ((v, p0), p1) in row
                    .iter_mut()
                    .zip(r0.chunks_exact(2))
                    .zip(r1.chunks_exact(2))
                {
                    *v = f32::NEG_INFINITY
                        .max(p0[0])
                        .max(p0[1])
                        .max(p1[0])
                        .max(p1[1]);
                }
            } else {
                for (xd, v) in row.iter_mut().enumerate() {
                    let mut best = f32::NEG_INFINITY;
                    for py in 0..pool {
                        let win = &out_k[(yd * pool + py) * out_w + xd * pool..][..pool];
                        for &x in win {
                            best = best.max(x);
                        }
                    }
                    *v = best;
                }
            }
            let (vec0, vec_stride) = if inst.dst_wino {
                ((yd as u64 * dst_cv + cvk) * dst_w, 1)
            } else {
                (yd as u64 * dst_w * dst_cv + cvk, dst_cv)
            };
            mem.write_strided(
                inst.dram_base + vec0 * pi as u64 + lane,
                vec_stride * pi as u64,
                row,
                MemoryClient::Save,
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybriddnn_isa::{CompInst, LoadInst, SaveInst};
    use hybriddnn_winograd::TileConfig;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::new(4, 4, TileConfig::F2x2)
    }

    #[test]
    fn load_copies_strided_block() {
        let cfg = cfg();
        let mut bufs = Buffers::new(&cfg);
        let mut mem = ExternalMemory::new();
        mem.host_write(100, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let inst = LoadInst {
            kind: LoadKind::Input,
            buff_base: 10,
            dram_base: 100,
            rows: 2,
            row_len: 3,
            row_stride: 4,
            ..LoadInst::default()
        };
        exec_load(&mut bufs, &mut mem, &inst).unwrap();
        assert_eq!(&bufs.input[10..16], &[1.0, 2.0, 3.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn load_overrun_is_detected() {
        let cfg = cfg();
        let mut bufs = Buffers::new(&cfg);
        let mut mem = ExternalMemory::new();
        let inst = LoadInst {
            kind: LoadKind::Bias,
            buff_base: (bufs.bias.len() - 1) as u32,
            rows: 1,
            row_len: 2,
            ..LoadInst::default()
        };
        assert!(matches!(
            exec_load(&mut bufs, &mut mem, &inst),
            Err(SimError::BufferOverrun { buffer: "bias", .. })
        ));
    }

    /// A minimal 1-vector COMP: 4 input lanes, 4 output lanes, 1x1 kernel,
    /// 1x1 output. Output k = Σ_c in[c]·w[k][c] + bias[k].
    #[test]
    fn spatial_comp_computes_gemv() {
        let cfg = cfg();
        let mut bufs = Buffers::new(&cfg);
        // input lanes: [1, 2, 3, 4]
        bufs.input[..4].copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        // weights [k][c]: k-th row = one-hot at c=k scaled by k+1.
        for k in 0..4 {
            bufs.weight[k * 4 + k] = (k + 1) as f32;
        }
        bufs.bias[..4].copy_from_slice(&[0.5; 4]);
        let inst = CompInst {
            out_w: 1,
            out_rows: 1,
            ic_vecs: 1,
            oc_vecs: 1,
            kernel_h: 1,
            kernel_w: 1,
            bias_en: true,
            acc_init: true,
            acc_final: true,
            ..CompInst::default()
        };
        exec_comp(&mut bufs, &cfg, &inst, None, &mut CompCtx::default(), None).unwrap();
        assert_eq!(&bufs.output[..4], &[1.5, 4.5, 9.5, 16.5]);
    }

    #[test]
    fn comp_relu_and_quantization_apply_at_final() {
        let cfg = cfg();
        let mut bufs = Buffers::new(&cfg);
        bufs.input[..4].copy_from_slice(&[1.0, 0.0, 0.0, 0.0]);
        bufs.weight[0] = -2.3; // k=0 sees -2.3
        bufs.weight[4] = 2.3; // k=1 sees +2.3
        let inst = CompInst {
            out_w: 1,
            out_rows: 1,
            ic_vecs: 1,
            oc_vecs: 1,
            kernel_h: 1,
            kernel_w: 1,
            relu: true,
            ..CompInst::default()
        };
        let fmt = QFormat::new(8, 1); // step 0.5
        exec_comp(
            &mut bufs,
            &cfg,
            &inst,
            Some(fmt),
            &mut CompCtx::default(),
            None,
        )
        .unwrap();
        assert_eq!(bufs.output[0], 0.0); // relu clamps
        assert_eq!(bufs.output[1], 2.5); // 2.3 → nearest 0.5 grid (ties-even)
    }

    #[test]
    fn comp_accumulates_across_units_without_init() {
        let cfg = cfg();
        let mut bufs = Buffers::new(&cfg);
        bufs.input[..4].copy_from_slice(&[1.0, 0.0, 0.0, 0.0]);
        bufs.weight[0] = 3.0;
        let mut inst = CompInst {
            out_w: 1,
            out_rows: 1,
            ic_vecs: 1,
            oc_vecs: 1,
            kernel_h: 1,
            kernel_w: 1,
            acc_init: true,
            acc_final: false,
            ..CompInst::default()
        };
        exec_comp(&mut bufs, &cfg, &inst, None, &mut CompCtx::default(), None).unwrap();
        inst.acc_init = false;
        inst.acc_final = true;
        exec_comp(&mut bufs, &cfg, &inst, None, &mut CompCtx::default(), None).unwrap();
        assert_eq!(bufs.output[0], 6.0);
    }

    #[test]
    fn save_applies_pooling_and_layouts() {
        let cfg = cfg();
        let mut bufs = Buffers::new(&cfg);
        let mut mem = ExternalMemory::new();
        // 4 output lanes (oc_vecs=1), 2x2 rows, values k*10 + position.
        for k in 0..4 {
            for i in 0..4 {
                bufs.output[(k * 2 + i / 2) * 2 + i % 2] = (k * 10 + i) as f32;
            }
        }
        let inst = SaveInst {
            rows: 2,
            out_w: 2,
            oc_vecs: 1,
            k_base: 0,
            dst_w: 1,
            dst_cv: 1,
            pool: 2,
            dram_base: 0,
            ..SaveInst::default()
        };
        exec_save(&bufs, &mut mem, &cfg, &inst).unwrap();
        // Pool max of {0..3}+10k = 10k+3, stored SPAT at lane k.
        for k in 0..4 {
            assert_eq!(mem.host_load(k), (k * 10 + 3) as f32);
        }
    }

    #[test]
    fn save_skips_channels_beyond_destination() {
        let cfg = cfg();
        let bufs = Buffers::new(&cfg);
        let mut mem = ExternalMemory::new();
        let inst = SaveInst {
            rows: 1,
            out_w: 1,
            oc_vecs: 2, // 8 lanes but dst_cv=1 (4 lanes)
            k_base: 0,
            dst_w: 1,
            dst_cv: 1,
            ..SaveInst::default()
        };
        exec_save(&bufs, &mut mem, &cfg, &inst).unwrap();
        assert!(mem.len() <= 4);
    }

    #[test]
    fn wino_comp_matches_spatial_comp() {
        // Same 3x3 conv through both PE modes must agree.
        let cfg = cfg();
        let out_rows = 4usize;
        let out_w = 4usize;
        let c_lanes = 4usize;
        let k_lanes = 4usize;
        let cols_l = out_w + 2;
        let rows_l = out_rows + 2;

        // Deterministic input window and kernels.
        let mut spat = Buffers::new(&cfg);
        let mut wino = Buffers::new(&cfg);
        let mut kernels = vec![0.0f32; k_lanes * c_lanes * 9];
        let mut x = 0.37f32;
        for w in kernels.iter_mut() {
            x = (x * 1.7 + 0.31) % 1.0;
            *w = x - 0.5;
        }
        // Input: SPAT layout for spatial PE, WINO layout for wino PE.
        for y in 0..rows_l {
            for xx in 0..cols_l {
                for c in 0..c_lanes {
                    x = (x * 1.3 + 0.17) % 1.0;
                    let v = x - 0.5;
                    spat.input[((y * cols_l + xx) + c / 4) * 4 + c % 4] = v;
                    wino.input[((y + c / 4) * cols_l + xx) * 4 + c % 4] = v;
                }
            }
        }
        // Weights: spatial image [k][c][r][s].
        spat.weight[..kernels.len()].copy_from_slice(&kernels);
        // Winograd image [e][k][c] from the same kernels.
        use hybriddnn_model::WeightShape;
        use hybriddnn_winograd::gemm::TransformedWeights;
        let u = TransformedWeights::new(
            TileConfig::F2x2,
            WeightShape::new(k_lanes, c_lanes, 3, 3),
            &kernels,
        );
        for (i, &v) in u.as_slice().iter().enumerate() {
            wino.weight[i] = v as f32;
        }

        let base = CompInst {
            out_w: out_w as u32,
            out_rows: out_rows as u8,
            ic_vecs: 1,
            oc_vecs: 1,
            kernel_h: 3,
            kernel_w: 3,
            ..CompInst::default()
        };
        exec_comp(&mut spat, &cfg, &base, None, &mut CompCtx::default(), None).unwrap();
        let winst = CompInst { wino: true, ..base };
        exec_comp(&mut wino, &cfg, &winst, None, &mut CompCtx::default(), None).unwrap();
        for i in 0..k_lanes * out_rows * out_w {
            let a = spat.output[i];
            let b = wino.output[i];
            assert!((a - b).abs() < 1e-4, "i={i}: {a} vs {b}");
        }
    }
}
