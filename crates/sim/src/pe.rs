//! Functional execution of instructions on the on-chip buffers — the
//! hybrid Spatial/Winograd PE (§4.2), the reconfigurable load/save
//! managers (§4.2.3), and the layout-transforming SAVE path (§4.3).

use crate::SimError;
use hybriddnn_estimator::AcceleratorConfig;
use hybriddnn_fpga::{ExternalMemory, MemoryClient};
use hybriddnn_isa::{CompInst, LoadInst, LoadKind, SaveInst};
use hybriddnn_model::quant::QFormat;
use hybriddnn_winograd::transform;

/// The accelerator's on-chip buffers (both ping-pong halves of each).
#[derive(Debug, Clone)]
pub struct Buffers {
    /// Input feature-map buffer.
    pub input: Vec<f32>,
    /// Weight buffer.
    pub weight: Vec<f32>,
    /// Bias buffer.
    pub bias: Vec<f32>,
    /// Output buffer (post-activation values).
    pub output: Vec<f32>,
    /// Accumulating buffer (`f64`, keeping quantized-grid arithmetic
    /// exact; see `hybriddnn-model`'s `quant` docs).
    pub accum: Vec<f64>,
}

impl Buffers {
    /// Allocates buffers for a configuration (two halves each).
    pub fn new(cfg: &AcceleratorConfig) -> Self {
        Buffers {
            input: vec![0.0; 2 * cfg.input_buffer_words()],
            weight: vec![0.0; 2 * cfg.weight_buffer_words()],
            bias: vec![0.0; 2 * crate::machine::BIAS_HALF_WORDS],
            output: vec![0.0; 2 * cfg.output_buffer_words()],
            accum: vec![0.0; 2 * cfg.output_buffer_words()],
        }
    }
}

/// Reusable tile-sized work buffers for the Winograd COMP path.
///
/// Kept separate from [`Buffers`] (whose contents are architectural state)
/// so COMP can hold shared borrows of the buffers while mutating scratch.
/// One `Scratch` lives in the accelerator and is reused across every COMP
/// unit of every inference, eliminating the per-tile allocations that
/// dominated the functional-mode serving profile.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// One `PT × PT` input tile `d`.
    d: Vec<f64>,
    /// Its transform `V = Bᵀ d B`.
    v: Vec<f64>,
    /// `V[e][c]` for all channels of one tile.
    v_tile: Vec<f64>,
    /// Transformed-domain accumulator tile `M[e]` for one output channel.
    m_tile: Vec<f64>,
    /// Inverse-transformed `m × m` output tile.
    y: Vec<f64>,
    /// Matrix-sandwich intermediate shared by both transforms.
    t: Vec<f64>,
}

/// Executes a load: strided DRAM block → contiguous buffer span.
pub fn exec_load(
    bufs: &mut Buffers,
    mem: &mut ExternalMemory,
    inst: &LoadInst,
) -> Result<(), SimError> {
    let (dest, name, client): (&mut Vec<f32>, _, _) = match inst.kind {
        LoadKind::Input => (&mut bufs.input, "input", MemoryClient::LoadInput),
        LoadKind::Weight => (&mut bufs.weight, "weight", MemoryClient::LoadWeight),
        LoadKind::Bias => (&mut bufs.bias, "bias", MemoryClient::LoadWeight),
    };
    let total = inst.rows as usize * inst.row_len as usize;
    let base = inst.buff_base as usize;
    if base + total > dest.len() {
        return Err(SimError::BufferOverrun {
            buffer: name,
            index: base + total - 1,
            capacity: dest.len(),
        });
    }
    for r in 0..inst.rows as usize {
        let off = base + r * inst.row_len as usize;
        mem.read_into(
            inst.dram_base + r as u64 * inst.row_stride as u64,
            &mut dest[off..off + inst.row_len as usize],
            client,
        );
    }
    Ok(())
}

/// Executes one COMP unit on the PE.
///
/// The input buffer holds the loaded window in the layout matching the
/// CONV mode (SPAT: `(y, x, cv, lane)`; WINO: `(y, cv, x, lane)`); the
/// weight buffer holds the group image; results accumulate in `f64` and
/// flush (activation + requantization) to the output buffer on
/// `acc_final`.
pub fn exec_comp(
    bufs: &mut Buffers,
    cfg: &AcceleratorConfig,
    inst: &CompInst,
    act_fmt: Option<QFormat>,
    scratch: &mut Scratch,
) -> Result<(), SimError> {
    let pi = cfg.pi;
    let k_lanes = inst.oc_vecs as usize * cfg.po;
    let c_lanes = inst.ic_vecs as usize * pi;
    let out_rows = inst.out_rows as usize;
    let out_w = inst.out_w as usize;
    let stride = inst.stride as usize;
    let (kh, kw) = (inst.kernel_h as usize, inst.kernel_w as usize);
    let cv = inst.ic_vecs as usize;
    let inp_base = inst.inp_base as usize;
    let wgt_base = inst.wgt_base as usize;
    let acc_base = inst.out_base as usize;
    let acc_len = k_lanes * out_rows * out_w;
    if acc_base + acc_len > bufs.accum.len() {
        return Err(SimError::BufferOverrun {
            buffer: "accumulator",
            index: acc_base + acc_len - 1,
            capacity: bufs.accum.len(),
        });
    }

    // Initialize the accumulator (optionally with bias) once per unit.
    if inst.acc_init {
        let bias_half = (inst.wgt_base as usize >= cfg.weight_buffer_words()) as usize;
        let bias_base = bias_half * crate::machine::BIAS_HALF_WORDS;
        for k in 0..k_lanes {
            let b = if inst.bias_en {
                bufs.bias[bias_base + k] as f64
            } else {
                0.0
            };
            for i in 0..out_rows * out_w {
                bufs.accum[acc_base + k * out_rows * out_w + i] = b;
            }
        }
    }

    if inst.wino {
        exec_comp_wino(bufs, cfg, inst, k_lanes, c_lanes, scratch)?;
    } else {
        // Spatial mode: the GEMM cores merge into one broadcast array;
        // direct MAC loops over the kernel window.
        let cols_l = (out_w - 1) * stride + kw;
        let rows_l = (out_rows - 1) * stride + kh;
        let inp_len = rows_l * cols_l * cv * pi;
        if inp_base + inp_len > bufs.input.len() {
            return Err(SimError::BufferOverrun {
                buffer: "input",
                index: inp_base + inp_len - 1,
                capacity: bufs.input.len(),
            });
        }
        let wgt_len = k_lanes * c_lanes * kh * kw;
        if wgt_base + wgt_len > bufs.weight.len() {
            return Err(SimError::BufferOverrun {
                buffer: "weight",
                index: wgt_base + wgt_len - 1,
                capacity: bufs.weight.len(),
            });
        }
        for k in 0..k_lanes {
            for oy in 0..out_rows {
                for ox in 0..out_w {
                    let mut acc = 0.0f64;
                    for r in 0..kh {
                        let iy = oy * stride + r;
                        for s in 0..kw {
                            let ix = ox * stride + s;
                            for c in 0..c_lanes {
                                let in_idx =
                                    inp_base + ((iy * cols_l + ix) * cv + c / pi) * pi + c % pi;
                                let w_idx = wgt_base + ((k * c_lanes + c) * kh + r) * kw + s;
                                acc += bufs.input[in_idx] as f64 * bufs.weight[w_idx] as f64;
                            }
                        }
                    }
                    bufs.accum[acc_base + (k * out_rows + oy) * out_w + ox] += acc;
                }
            }
        }
    }

    // Flush: requantization shift, activation, quantization grid.
    if inst.acc_final {
        let out_base = inst.out_base as usize;
        for i in 0..acc_len {
            let mut v = bufs.accum[acc_base + i] * 2f64.powi(-(inst.quan_shift as i32));
            if inst.relu {
                v = v.max(0.0);
            }
            bufs.output[out_base + i] = match act_fmt {
                Some(fmt) => fmt.quantize(v),
                None => v as f32,
            };
        }
    }
    Ok(())
}

/// Winograd-mode COMP: one kernel-decomposition block through the
/// transform → PT² GEMMs → inverse-transform pipeline (Eq. 2).
fn exec_comp_wino(
    bufs: &mut Buffers,
    cfg: &AcceleratorConfig,
    inst: &CompInst,
    k_lanes: usize,
    c_lanes: usize,
    scratch: &mut Scratch,
) -> Result<(), SimError> {
    let tile = cfg.tile;
    let pt = tile.pt();
    let m = tile.m();
    let pt2 = pt * pt;
    let pi = cfg.pi;
    let cv = inst.ic_vecs as usize;
    let out_rows = inst.out_rows as usize;
    let out_w = inst.out_w as usize;
    let (kh, kw) = (inst.kernel_h as usize, inst.kernel_w as usize);
    // Loaded window geometry (stride 1 in Winograd mode).
    let cols_l = out_w - 1 + kw;
    let rows_l = out_rows - 1 + kh;
    let (br, bs) = (inst.wino_offset.0 as usize, inst.wino_offset.1 as usize);
    let (y_off, x_off) = (br * 3, bs * 3);
    let inp_base = inst.inp_base as usize;
    let wgt_base = inst.wgt_base as usize;
    let acc_base = inst.out_base as usize;

    let tiles_y = out_rows.div_ceil(m);
    let tiles_x = out_w.div_ceil(m);

    // Bounds: reads beyond the loaded window (possible on clipped edge
    // tiles) return zero — those transformed values only influence
    // discarded output positions.
    let read = |bufs: &Buffers, y: usize, x: usize, c: usize| -> f64 {
        if y >= rows_l || x >= cols_l {
            return 0.0;
        }
        let idx = inp_base + ((y * cv + c / pi) * cols_l + x) * pi + c % pi;
        bufs.input.get(idx).copied().unwrap_or(0.0) as f64
    };

    // All scratch lives in `scratch` — its allocations persist across COMP
    // units, tiles, and inferences; every cell is overwritten before use.
    scratch.d.resize(pt2, 0.0);
    scratch.v.resize(pt2, 0.0);
    scratch.v_tile.resize(pt2 * c_lanes, 0.0); // V[e][c] for one tile
    scratch.m_tile.resize(pt2, 0.0);
    scratch.y.resize(m * m, 0.0);

    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            // Transform every channel's input tile.
            for c in 0..c_lanes {
                for dy in 0..pt {
                    for dx in 0..pt {
                        scratch.d[dy * pt + dx] =
                            read(bufs, y_off + ty * m + dy, x_off + tx * m + dx, c);
                    }
                }
                transform::transform_input_tile_into(
                    tile,
                    &scratch.d,
                    &mut scratch.v,
                    &mut scratch.t,
                );
                for e in 0..pt2 {
                    scratch.v_tile[e * c_lanes + c] = scratch.v[e];
                }
            }
            // PT² independent GEMVs per output channel, then the inverse
            // transform, accumulated into the unit accumulator.
            for k in 0..k_lanes {
                for e in 0..pt2 {
                    let mut acc = 0.0f64;
                    let wrow = wgt_base + (e * k_lanes + k) * c_lanes;
                    for c in 0..c_lanes {
                        acc += bufs.weight[wrow + c] as f64 * scratch.v_tile[e * c_lanes + c];
                    }
                    scratch.m_tile[e] = acc;
                }
                transform::transform_output_tile_into(
                    tile,
                    &scratch.m_tile,
                    &mut scratch.y,
                    &mut scratch.t,
                );
                for dy in 0..m {
                    for dx in 0..m {
                        let oy = ty * m + dy;
                        let ox = tx * m + dx;
                        if oy < out_rows && ox < out_w {
                            bufs.accum[acc_base + (k * out_rows + oy) * out_w + ox] +=
                                scratch.y[dy * m + dx];
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Executes a SAVE: output buffer → DRAM with max-pooling and one of the
/// four layout transforms (the destination layout is pure address
/// arithmetic over `DST_W`/`DST_CV`).
pub fn exec_save(
    bufs: &Buffers,
    mem: &mut ExternalMemory,
    cfg: &AcceleratorConfig,
    inst: &SaveInst,
) -> Result<(), SimError> {
    let pi = cfg.pi;
    let k_lanes = inst.oc_vecs as usize * cfg.po;
    let rows = inst.rows as usize;
    let out_w = inst.out_w as usize;
    let pool = (inst.pool as usize).max(1);
    let base = inst.buff_base as usize;
    let need = k_lanes * rows * out_w;
    if base + need > bufs.output.len() {
        return Err(SimError::BufferOverrun {
            buffer: "output",
            index: base + need - 1,
            capacity: bufs.output.len(),
        });
    }
    let dst_w = inst.dst_w as u64;
    let dst_cv = inst.dst_cv as u64;
    for k in 0..k_lanes {
        let kg = inst.k_base as u64 + k as u64;
        let (cvk, lane) = (kg / pi as u64, kg % pi as u64);
        if cvk >= dst_cv {
            // Padded channels beyond the destination's vector count are
            // dropped (they carry zero data anyway).
            continue;
        }
        for yd in 0..rows / pool {
            for xd in 0..out_w / pool {
                let mut v = f32::NEG_INFINITY;
                for py in 0..pool {
                    for px in 0..pool {
                        let y = yd * pool + py;
                        let x = xd * pool + px;
                        v = v.max(bufs.output[base + (k * rows + y) * out_w + x]);
                    }
                }
                let vec_index = if inst.dst_wino {
                    (yd as u64 * dst_cv + cvk) * dst_w + xd as u64
                } else {
                    (yd as u64 * dst_w + xd as u64) * dst_cv + cvk
                };
                mem.write(
                    inst.dram_base + vec_index * pi as u64 + lane,
                    v,
                    MemoryClient::Save,
                );
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybriddnn_isa::{CompInst, LoadInst, SaveInst};
    use hybriddnn_winograd::TileConfig;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::new(4, 4, TileConfig::F2x2)
    }

    #[test]
    fn load_copies_strided_block() {
        let cfg = cfg();
        let mut bufs = Buffers::new(&cfg);
        let mut mem = ExternalMemory::new();
        mem.host_write(100, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let inst = LoadInst {
            kind: LoadKind::Input,
            buff_base: 10,
            dram_base: 100,
            rows: 2,
            row_len: 3,
            row_stride: 4,
            ..LoadInst::default()
        };
        exec_load(&mut bufs, &mut mem, &inst).unwrap();
        assert_eq!(&bufs.input[10..16], &[1.0, 2.0, 3.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn load_overrun_is_detected() {
        let cfg = cfg();
        let mut bufs = Buffers::new(&cfg);
        let mut mem = ExternalMemory::new();
        let inst = LoadInst {
            kind: LoadKind::Bias,
            buff_base: (bufs.bias.len() - 1) as u32,
            rows: 1,
            row_len: 2,
            ..LoadInst::default()
        };
        assert!(matches!(
            exec_load(&mut bufs, &mut mem, &inst),
            Err(SimError::BufferOverrun { buffer: "bias", .. })
        ));
    }

    /// A minimal 1-vector COMP: 4 input lanes, 4 output lanes, 1x1 kernel,
    /// 1x1 output. Output k = Σ_c in[c]·w[k][c] + bias[k].
    #[test]
    fn spatial_comp_computes_gemv() {
        let cfg = cfg();
        let mut bufs = Buffers::new(&cfg);
        // input lanes: [1, 2, 3, 4]
        bufs.input[..4].copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        // weights [k][c]: k-th row = one-hot at c=k scaled by k+1.
        for k in 0..4 {
            bufs.weight[k * 4 + k] = (k + 1) as f32;
        }
        bufs.bias[..4].copy_from_slice(&[0.5; 4]);
        let inst = CompInst {
            out_w: 1,
            out_rows: 1,
            ic_vecs: 1,
            oc_vecs: 1,
            kernel_h: 1,
            kernel_w: 1,
            bias_en: true,
            acc_init: true,
            acc_final: true,
            ..CompInst::default()
        };
        exec_comp(&mut bufs, &cfg, &inst, None, &mut Scratch::default()).unwrap();
        assert_eq!(&bufs.output[..4], &[1.5, 4.5, 9.5, 16.5]);
    }

    #[test]
    fn comp_relu_and_quantization_apply_at_final() {
        let cfg = cfg();
        let mut bufs = Buffers::new(&cfg);
        bufs.input[..4].copy_from_slice(&[1.0, 0.0, 0.0, 0.0]);
        bufs.weight[0] = -2.3; // k=0 sees -2.3
        bufs.weight[4] = 2.3; // k=1 sees +2.3
        let inst = CompInst {
            out_w: 1,
            out_rows: 1,
            ic_vecs: 1,
            oc_vecs: 1,
            kernel_h: 1,
            kernel_w: 1,
            relu: true,
            ..CompInst::default()
        };
        let fmt = QFormat::new(8, 1); // step 0.5
        exec_comp(&mut bufs, &cfg, &inst, Some(fmt), &mut Scratch::default()).unwrap();
        assert_eq!(bufs.output[0], 0.0); // relu clamps
        assert_eq!(bufs.output[1], 2.5); // 2.3 → nearest 0.5 grid (ties-even)
    }

    #[test]
    fn comp_accumulates_across_units_without_init() {
        let cfg = cfg();
        let mut bufs = Buffers::new(&cfg);
        bufs.input[..4].copy_from_slice(&[1.0, 0.0, 0.0, 0.0]);
        bufs.weight[0] = 3.0;
        let mut inst = CompInst {
            out_w: 1,
            out_rows: 1,
            ic_vecs: 1,
            oc_vecs: 1,
            kernel_h: 1,
            kernel_w: 1,
            acc_init: true,
            acc_final: false,
            ..CompInst::default()
        };
        exec_comp(&mut bufs, &cfg, &inst, None, &mut Scratch::default()).unwrap();
        inst.acc_init = false;
        inst.acc_final = true;
        exec_comp(&mut bufs, &cfg, &inst, None, &mut Scratch::default()).unwrap();
        assert_eq!(bufs.output[0], 6.0);
    }

    #[test]
    fn save_applies_pooling_and_layouts() {
        let cfg = cfg();
        let mut bufs = Buffers::new(&cfg);
        let mut mem = ExternalMemory::new();
        // 4 output lanes (oc_vecs=1), 2x2 rows, values k*10 + position.
        for k in 0..4 {
            for i in 0..4 {
                bufs.output[(k * 2 + i / 2) * 2 + i % 2] = (k * 10 + i) as f32;
            }
        }
        let inst = SaveInst {
            rows: 2,
            out_w: 2,
            oc_vecs: 1,
            k_base: 0,
            dst_w: 1,
            dst_cv: 1,
            pool: 2,
            dram_base: 0,
            ..SaveInst::default()
        };
        exec_save(&bufs, &mut mem, &cfg, &inst).unwrap();
        // Pool max of {0..3}+10k = 10k+3, stored SPAT at lane k.
        for k in 0..4 {
            assert_eq!(mem.host_load(k), (k * 10 + 3) as f32);
        }
    }

    #[test]
    fn save_skips_channels_beyond_destination() {
        let cfg = cfg();
        let bufs = Buffers::new(&cfg);
        let mut mem = ExternalMemory::new();
        let inst = SaveInst {
            rows: 1,
            out_w: 1,
            oc_vecs: 2, // 8 lanes but dst_cv=1 (4 lanes)
            k_base: 0,
            dst_w: 1,
            dst_cv: 1,
            ..SaveInst::default()
        };
        exec_save(&bufs, &mut mem, &cfg, &inst).unwrap();
        assert!(mem.len() <= 4);
    }

    #[test]
    fn wino_comp_matches_spatial_comp() {
        // Same 3x3 conv through both PE modes must agree.
        let cfg = cfg();
        let out_rows = 4usize;
        let out_w = 4usize;
        let c_lanes = 4usize;
        let k_lanes = 4usize;
        let cols_l = out_w + 2;
        let rows_l = out_rows + 2;

        // Deterministic input window and kernels.
        let mut spat = Buffers::new(&cfg);
        let mut wino = Buffers::new(&cfg);
        let mut kernels = vec![0.0f32; k_lanes * c_lanes * 9];
        let mut x = 0.37f32;
        for w in kernels.iter_mut() {
            x = (x * 1.7 + 0.31) % 1.0;
            *w = x - 0.5;
        }
        // Input: SPAT layout for spatial PE, WINO layout for wino PE.
        for y in 0..rows_l {
            for xx in 0..cols_l {
                for c in 0..c_lanes {
                    x = (x * 1.3 + 0.17) % 1.0;
                    let v = x - 0.5;
                    spat.input[((y * cols_l + xx) + c / 4) * 4 + c % 4] = v;
                    wino.input[((y + c / 4) * cols_l + xx) * 4 + c % 4] = v;
                }
            }
        }
        // Weights: spatial image [k][c][r][s].
        spat.weight[..kernels.len()].copy_from_slice(&kernels);
        // Winograd image [e][k][c] from the same kernels.
        use hybriddnn_model::WeightShape;
        use hybriddnn_winograd::gemm::TransformedWeights;
        let u = TransformedWeights::new(
            TileConfig::F2x2,
            WeightShape::new(k_lanes, c_lanes, 3, 3),
            &kernels,
        );
        for (i, &v) in u.as_slice().iter().enumerate() {
            wino.weight[i] = v as f32;
        }

        let base = CompInst {
            out_w: out_w as u32,
            out_rows: out_rows as u8,
            ic_vecs: 1,
            oc_vecs: 1,
            kernel_h: 3,
            kernel_w: 3,
            ..CompInst::default()
        };
        exec_comp(&mut spat, &cfg, &base, None, &mut Scratch::default()).unwrap();
        let winst = CompInst { wino: true, ..base };
        exec_comp(&mut wino, &cfg, &winst, None, &mut Scratch::default()).unwrap();
        for i in 0..k_lanes * out_rows * out_w {
            let a = spat.output[i];
            let b = wino.output[i];
            assert!((a - b).abs() < 1e-4, "i={i}: {a} vs {b}");
        }
    }
}
