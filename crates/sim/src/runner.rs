//! The host-side runtime driving the simulated accelerator through a
//! compiled network (Figure 1 Step 4: "a light-weight runtime ... to
//! manage the execution of the generated accelerator").

use crate::machine::Accelerator;
use crate::stats::StageStats;
use crate::SimError;
use hybriddnn_compiler::CompiledNetwork;
use hybriddnn_fpga::ExternalMemory;
use hybriddnn_model::Tensor;

/// Simulation fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// Move real data: outputs are valid and comparable against the
    /// golden reference.
    Functional,
    /// Cycle model only: no DRAM traffic or buffer contents; `output` is
    /// zeros. Orders of magnitude faster for performance sweeps.
    TimingOnly,
}

/// Per-stage instruction traces: one `(start, finish)` cycle pair per
/// instruction, one vector per stage.
pub type StageTraces = Vec<Vec<(f64, f64)>>;

/// The result of one simulated inference.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The network output (zeros in [`SimMode::TimingOnly`]).
    pub output: Tensor,
    /// Per-stage statistics, in execution order.
    pub stage_stats: Vec<StageStats>,
    /// Total cycles across stages (stages synchronize at layer
    /// boundaries, matching the runtime's per-layer management).
    pub total_cycles: f64,
}

impl RunResult {
    /// Whole-network throughput in GOPS at `freq_mhz`.
    pub fn gops(&self, freq_mhz: f64) -> f64 {
        let ops: u64 = self.stage_stats.iter().map(|s| s.ops).sum();
        if self.total_cycles == 0.0 {
            return 0.0;
        }
        ops as f64 / (self.total_cycles / (freq_mhz * 1e6)) / 1e9
    }

    /// End-to-end latency in milliseconds at `freq_mhz`.
    pub fn latency_ms(&self, freq_mhz: f64) -> f64 {
        self.total_cycles / (freq_mhz * 1e6) * 1e3
    }
}

/// A simulator session: one accelerator instance plus its external
/// memory, initialized from a compiled network's data images.
///
/// A session is built for reuse: creating one stages the weight images
/// into DRAM and allocates every on-chip buffer, so repeated
/// [`Simulator::run`] calls on the same network perform no allocation
/// beyond the returned [`RunResult`]. Serving paths (`hybriddnn-runtime`
/// workers) hold one session per replica instead of rebuilding per
/// inference. Sessions own all their state, so they are `Send` and may be
/// moved to worker threads; the compiled network itself is only read.
#[derive(Debug)]
pub struct Simulator {
    accel: Accelerator,
    mem: ExternalMemory,
    mode: SimMode,
}

impl Simulator {
    /// Creates a simulator for a compiled network.
    ///
    /// `bw` is the per-channel DDR bandwidth in words per cycle (use
    /// [`hybriddnn_fpga::FpgaSpec::ddr_words_per_cycle`]). In functional
    /// mode the weight/bias images are staged into external memory here,
    /// with the full DRAM image pre-sized up front so later runs never
    /// grow it.
    pub fn new(compiled: &CompiledNetwork, mode: SimMode, bw: f64) -> Self {
        let functional = mode == SimMode::Functional;
        let accel = Accelerator::new(
            *compiled.config(),
            bw,
            compiled.quant().activations,
            functional,
        );
        let mem = if functional {
            let mut mem =
                ExternalMemory::with_capacity_words(compiled.memory_map().total_words() as usize);
            compiled.stage_data(&mut mem);
            mem
        } else {
            // Timing-only moves no data; keep the store empty.
            ExternalMemory::new()
        };
        Simulator { accel, mem, mode }
    }

    /// Like [`Simulator::new`] with an explicit host-thread budget for
    /// COMP execution (`0` = the process-wide default, `1` = strictly
    /// sequential). Outputs are bit-identical at any thread count.
    pub fn with_threads(
        compiled: &CompiledNetwork,
        mode: SimMode,
        bw: f64,
        threads: usize,
    ) -> Self {
        let mut sim = Simulator::new(compiled, mode, bw);
        sim.accel.set_threads(threads);
        sim
    }

    /// Host threads used inside one COMP unit.
    pub fn threads(&self) -> usize {
        self.accel.threads()
    }

    /// Sets the host-thread budget for COMP execution; see
    /// [`Simulator::with_threads`].
    pub fn set_threads(&mut self, threads: usize) {
        self.accel.set_threads(threads);
    }

    /// Runs one inference.
    ///
    /// # Errors
    /// * [`SimError::InputMismatch`] if the input shape is wrong.
    /// * [`SimError::Deadlock`] / [`SimError::BufferOverrun`] for
    ///   malformed programs (never produced by the compiler).
    pub fn run(
        &mut self,
        compiled: &CompiledNetwork,
        input: &Tensor,
    ) -> Result<RunResult, SimError> {
        Ok(self.run_impl(compiled, input, None)?.0)
    }

    /// Like [`Simulator::run`], additionally returning each stage's
    /// per-instruction `(start, finish)` cycle trace — the debugging aid
    /// behind the pipeline studies in EXPERIMENTS.md.
    ///
    /// # Errors
    /// Same as [`Simulator::run`].
    pub fn run_traced(
        &mut self,
        compiled: &CompiledNetwork,
        input: &Tensor,
    ) -> Result<(RunResult, StageTraces), SimError> {
        let mut traces = Vec::with_capacity(compiled.layers().len());
        let (result, _) = self.run_impl(compiled, input, Some(&mut traces))?;
        Ok((result, traces))
    }

    fn run_impl(
        &mut self,
        compiled: &CompiledNetwork,
        input: &Tensor,
        mut traces: Option<&mut StageTraces>,
    ) -> Result<(RunResult, ()), SimError> {
        if input.shape() != compiled.input_shape() {
            return Err(SimError::InputMismatch {
                detail: format!("expected {}, got {}", compiled.input_shape(), input.shape()),
            });
        }
        if self.mode == SimMode::Functional {
            compiled
                .write_input(&mut self.mem, input)
                .map_err(|e| SimError::InputMismatch {
                    detail: e.to_string(),
                })?;
        }
        let mut stage_stats = Vec::with_capacity(compiled.layers().len());
        let mut total = 0.0;
        for layer in compiled.layers() {
            let mut stats = match traces.as_deref_mut() {
                Some(ts) => {
                    let mut trace = Vec::with_capacity(layer.program().len());
                    let s = self.accel.run_stage_traced(
                        layer.program(),
                        &mut self.mem,
                        Some(&mut trace),
                    )?;
                    ts.push(trace);
                    s
                }
                None => self.accel.run_stage(layer.program(), &mut self.mem)?,
            };
            stats.name = layer.name().to_string();
            stats.ops = layer.plan().wl.ops();
            total += stats.cycles;
            stage_stats.push(stats);
        }
        let output = if self.mode == SimMode::Functional {
            compiled.read_output(&self.mem)
        } else {
            Tensor::zeros(compiled.output_shape())
        };
        Ok((
            RunResult {
                output,
                stage_stats,
                total_cycles: total,
            },
            (),
        ))
    }

    /// Access the external memory (e.g. to inspect intermediate
    /// activations with [`CompiledNetwork::read_stage_output`]).
    pub fn memory(&self) -> &ExternalMemory {
        &self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybriddnn_compiler::{Compiler, MappingStrategy, QuantSpec};
    use hybriddnn_estimator::{AcceleratorConfig, ConvMode, Dataflow};
    use hybriddnn_model::{reference, synth, zoo, Network, Shape};
    use hybriddnn_winograd::TileConfig;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::new(4, 4, TileConfig::F2x2)
    }

    fn run_and_compare(net: &Network, strategy: &MappingStrategy, tol: f32) {
        let compiled = Compiler::new(cfg()).compile(net, strategy).unwrap();
        let mut sim = Simulator::new(&compiled, SimMode::Functional, 16.0);
        let input = synth::tensor(net.input_shape(), 9);
        let run = sim.run(&compiled, &input).unwrap();
        let golden = reference::run_network(net, &input).unwrap();
        let diff = run.output.max_abs_diff(&golden);
        assert!(diff < tol, "sim vs golden diff {diff}");
        assert!(run.total_cycles > 0.0);
    }

    #[test]
    fn tiny_cnn_spatial_matches_golden() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 1).unwrap();
        run_and_compare(&net, &MappingStrategy::all_spatial(&net), 1e-3);
    }

    #[test]
    fn tiny_cnn_winograd_matches_golden() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 2).unwrap();
        run_and_compare(&net, &MappingStrategy::all_winograd(&net), 1e-2);
    }

    #[test]
    fn tiny_cnn_is_dataflow_matches_golden() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 3).unwrap();
        run_and_compare(
            &net,
            &MappingStrategy::uniform(&net, ConvMode::Spatial, Dataflow::InputStationary),
            1e-3,
        );
    }

    #[test]
    fn single_conv_5x5_winograd_decomposition() {
        let mut net = zoo::single_conv(12, 4, 8, 5);
        synth::bind_random(&mut net, 4).unwrap();
        run_and_compare(&net, &MappingStrategy::all_winograd(&net), 1e-2);
    }

    #[test]
    fn timing_only_runs_without_data() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 5).unwrap();
        let compiled = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_winograd(&net))
            .unwrap();
        let mut sim = Simulator::new(&compiled, SimMode::TimingOnly, 16.0);
        let input = synth::tensor(net.input_shape(), 1);
        let run = sim.run(&compiled, &input).unwrap();
        assert!(run.total_cycles > 0.0);
        assert!(run.output.as_slice().iter().all(|&v| v == 0.0));
        // No functional memory was ever allocated.
        assert_eq!(sim.memory().len(), 0);
    }

    #[test]
    fn timing_matches_functional_timing() {
        // The cycle model must not depend on the mode.
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 6).unwrap();
        let compiled = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_winograd(&net))
            .unwrap();
        let input = synth::tensor(net.input_shape(), 1);
        let f = Simulator::new(&compiled, SimMode::Functional, 16.0)
            .run(&compiled, &input)
            .unwrap();
        let t = Simulator::new(&compiled, SimMode::TimingOnly, 16.0)
            .run(&compiled, &input)
            .unwrap();
        assert_eq!(f.total_cycles, t.total_cycles);
    }

    #[test]
    fn wrong_input_shape_is_rejected() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 7).unwrap();
        let compiled = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_spatial(&net))
            .unwrap();
        let mut sim = Simulator::new(&compiled, SimMode::TimingOnly, 16.0);
        let err = sim
            .run(
                &compiled,
                &hybriddnn_model::Tensor::zeros(Shape::new(1, 1, 1)),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::InputMismatch { .. }));
    }

    #[test]
    fn quantized_run_lands_on_activation_grid() {
        let fmt = hybriddnn_model::quant::QFormat::FEATURE12;
        let mut net = zoo::tiny_cnn();
        synth::bind_random_quantized(&mut net, 8, hybriddnn_model::quant::QFormat::WEIGHT8)
            .unwrap();
        let compiled = Compiler::new(cfg())
            .with_quant(QuantSpec::paper_12bit())
            .compile(&net, &MappingStrategy::all_spatial(&net))
            .unwrap();
        let mut sim = Simulator::new(&compiled, SimMode::Functional, 16.0);
        let input = synth::quantized_tensor(net.input_shape(), 3, fmt);
        let run = sim.run(&compiled, &input).unwrap();
        for &v in run.output.as_slice() {
            assert!(fmt.contains(v as f64), "{v} off grid");
        }
    }

    #[test]
    fn traced_run_matches_untraced() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 10).unwrap();
        let compiled = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_winograd(&net))
            .unwrap();
        let input = synth::tensor(net.input_shape(), 2);
        let plain = Simulator::new(&compiled, SimMode::TimingOnly, 16.0)
            .run(&compiled, &input)
            .unwrap();
        let (traced, traces) = Simulator::new(&compiled, SimMode::TimingOnly, 16.0)
            .run_traced(&compiled, &input)
            .unwrap();
        assert_eq!(plain.total_cycles, traced.total_cycles);
        assert_eq!(traces.len(), compiled.layers().len());
        for (trace, layer) in traces.iter().zip(compiled.layers()) {
            assert_eq!(trace.len(), layer.program().len());
            // Every instruction finishes after it starts, within the stage.
            for &(s, f) in trace {
                assert!(f > s && s >= 0.0);
            }
        }
    }

    #[test]
    fn reused_session_is_deterministic_and_does_not_grow_memory() {
        // The serving path reuses one session across inferences: repeated
        // runs must be bit-identical to fresh-session runs, and the DRAM
        // image (pre-sized at construction) must not grow.
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 11).unwrap();
        let compiled = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_winograd(&net))
            .unwrap();
        let inputs: Vec<_> = (0..4)
            .map(|i| synth::tensor(net.input_shape(), i))
            .collect();
        let mut session = Simulator::new(&compiled, SimMode::Functional, 16.0);
        let words_before = session.memory().len();
        for input in &inputs {
            let reused = session.run(&compiled, input).unwrap();
            let fresh = Simulator::new(&compiled, SimMode::Functional, 16.0)
                .run(&compiled, input)
                .unwrap();
            assert_eq!(reused.output.as_slice(), fresh.output.as_slice());
            assert_eq!(reused.total_cycles, fresh.total_cycles);
        }
        // Run the batch a second time: still identical to the first pass.
        let again = session.run(&compiled, &inputs[0]).unwrap();
        let first = Simulator::new(&compiled, SimMode::Functional, 16.0)
            .run(&compiled, &inputs[0])
            .unwrap();
        assert_eq!(again.output.as_slice(), first.output.as_slice());
        assert_eq!(session.memory().len(), words_before);
    }

    #[test]
    fn simulator_is_send() {
        // Worker threads own replica sessions; this must stay `Send`.
        fn assert_send<T: Send>() {}
        assert_send::<Simulator>();
    }

    #[test]
    fn gops_and_latency_helpers() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 9).unwrap();
        let compiled = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_winograd(&net))
            .unwrap();
        let mut sim = Simulator::new(&compiled, SimMode::TimingOnly, 16.0);
        let run = sim
            .run(&compiled, &synth::tensor(net.input_shape(), 1))
            .unwrap();
        let gops = run.gops(100.0);
        assert!(gops > 0.0 && gops < 205.0, "gops {gops}"); // under wino peak
        assert!(run.latency_ms(100.0) > 0.0);
    }
}
