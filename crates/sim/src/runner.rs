//! The host-side runtime driving the simulated accelerator through a
//! compiled network (Figure 1 Step 4: "a light-weight runtime ... to
//! manage the execution of the generated accelerator").

use crate::batch::{BatchLane, BatchState, MAX_LANES};
use crate::fault::{self, FaultCounters, FaultHook, FaultPlan, FaultState, StopToken};
use crate::machine::Accelerator;
use crate::plan::{LayerPlan, PackMode, SessionPlan, UnitPack};
use crate::stats::StageStats;
use crate::SimError;
use hybriddnn_compiler::CompiledNetwork;
use hybriddnn_fpga::ExternalMemory;
use hybriddnn_isa::Instruction;
use hybriddnn_model::{Shape, Tensor};

/// Simulation fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// Move real data: outputs are valid and comparable against the
    /// golden reference.
    Functional,
    /// Cycle model only: no DRAM traffic or buffer contents; `output` is
    /// zeros. Orders of magnitude faster for performance sweeps.
    TimingOnly,
}

/// Per-stage instruction traces: one `(start, finish)` cycle pair per
/// instruction, one vector per stage.
pub type StageTraces = Vec<Vec<(f64, f64)>>;

/// The result of one simulated inference.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The network output (zeros in [`SimMode::TimingOnly`]).
    pub output: Tensor,
    /// Per-stage statistics, in execution order.
    pub stage_stats: Vec<StageStats>,
    /// Total cycles across stages (stages synchronize at layer
    /// boundaries, matching the runtime's per-layer management).
    pub total_cycles: f64,
}

impl RunResult {
    /// An empty result suitable as the reusable target of
    /// [`Simulator::run_into`]: the first run sizes the output tensor and
    /// stage vector, later runs overwrite them in place.
    pub fn empty() -> Self {
        RunResult {
            output: Tensor::zeros(Shape::new(0, 0, 0)),
            stage_stats: Vec::new(),
            total_cycles: 0.0,
        }
    }

    /// Whole-network throughput in GOPS at `freq_mhz`.
    pub fn gops(&self, freq_mhz: f64) -> f64 {
        let ops: u64 = self.stage_stats.iter().map(|s| s.ops).sum();
        if self.total_cycles == 0.0 {
            return 0.0;
        }
        ops as f64 / (self.total_cycles / (freq_mhz * 1e6)) / 1e9
    }

    /// End-to-end latency in milliseconds at `freq_mhz`.
    pub fn latency_ms(&self, freq_mhz: f64) -> f64 {
        self.total_cycles / (freq_mhz * 1e6) * 1e3
    }
}

/// A simulator session: one accelerator instance plus its external
/// memory, initialized from a compiled network's data images.
///
/// A session is built for reuse: creating one stages the weight images
/// into DRAM and allocates every on-chip buffer, so repeated
/// [`Simulator::run`] calls on the same network perform no allocation
/// beyond the returned [`RunResult`]. Serving paths (`hybriddnn-runtime`
/// workers) hold one session per replica instead of rebuilding per
/// inference. Sessions own all their state, so they are `Send` and may be
/// moved to worker threads; the compiled network itself is only read.
#[derive(Debug)]
pub struct Simulator {
    accel: Accelerator,
    mem: ExternalMemory,
    mode: SimMode,
    /// Per-channel DDR bandwidth, kept so [`Simulator::reset_session`]
    /// can rebuild the accelerator identically.
    bw: f64,
    /// Cached input-invariant work (weight packs, timing schedules),
    /// recorded lazily on the session's first run. See [`crate::plan`].
    plan: Option<SessionPlan>,
    /// When false, never record or consume a plan — every run takes the
    /// original full-simulation path.
    planning: bool,
    /// When true, planned runs re-simulate the timing schedule and return
    /// [`SimError::ScheduleDivergence`] if it differs from the recording.
    validate: bool,
    /// Armed fault-injection state; `None` (the default) costs the hot
    /// path nothing but an untaken branch per instruction.
    faults: Option<Box<FaultState>>,
    /// Cooperative cancellation checked between COMP work-groups.
    stop: Option<StopToken>,
    /// Per-element lanes for batched execution, grown on first batched
    /// run and reused across batches. See [`crate::batch`].
    batch: BatchState,
}

impl Simulator {
    /// Creates a simulator for a compiled network.
    ///
    /// `bw` is the per-channel DDR bandwidth in words per cycle (use
    /// [`hybriddnn_fpga::FpgaSpec::ddr_words_per_cycle`]). In functional
    /// mode the weight/bias images are staged into external memory here,
    /// with the full DRAM image pre-sized up front so later runs never
    /// grow it.
    pub fn new(compiled: &CompiledNetwork, mode: SimMode, bw: f64) -> Self {
        let functional = mode == SimMode::Functional;
        let accel = Accelerator::new(
            *compiled.config(),
            bw,
            compiled.quant().activations,
            functional,
        );
        let mem = if functional {
            let mut mem =
                ExternalMemory::with_capacity_words(compiled.memory_map().total_words() as usize);
            compiled.stage_data(&mut mem);
            mem
        } else {
            // Timing-only moves no data; keep the store empty.
            ExternalMemory::new()
        };
        Simulator {
            accel,
            mem,
            mode,
            bw,
            plan: None,
            planning: true,
            validate: false,
            faults: None,
            stop: None,
            batch: BatchState::default(),
        }
    }

    /// Like [`Simulator::new`] with an explicit host-thread budget for
    /// COMP execution (`0` = the process-wide default, `1` = strictly
    /// sequential). Outputs are bit-identical at any thread count.
    pub fn with_threads(
        compiled: &CompiledNetwork,
        mode: SimMode,
        bw: f64,
        threads: usize,
    ) -> Self {
        let mut sim = Simulator::new(compiled, mode, bw);
        sim.accel.set_threads(threads);
        sim
    }

    /// Host threads used inside one COMP unit.
    pub fn threads(&self) -> usize {
        self.accel.threads()
    }

    /// Sets the host-thread budget for COMP execution; see
    /// [`Simulator::with_threads`].
    pub fn set_threads(&mut self, threads: usize) {
        self.accel.set_threads(threads);
    }

    /// Runs one inference.
    ///
    /// The session's first run additionally records its execution plan
    /// (see [`crate::plan`]); subsequent runs replay it — skipping
    /// weight/bias loads, weight repacking, and event simulation — with
    /// bit-identical results. Disable with [`Simulator::set_planning`].
    ///
    /// # Errors
    /// * [`SimError::InputMismatch`] if the input shape is wrong.
    /// * [`SimError::Deadlock`] / [`SimError::BufferOverrun`] for
    ///   malformed programs (never produced by the compiler).
    /// * [`SimError::ScheduleDivergence`] in validation mode only.
    pub fn run(
        &mut self,
        compiled: &CompiledNetwork,
        input: &Tensor,
    ) -> Result<RunResult, SimError> {
        let mut out = RunResult::empty();
        self.run_impl(compiled, input, None, &mut out)?;
        Ok(out)
    }

    /// Like [`Simulator::run`], writing the result into a caller-provided
    /// [`RunResult`] so steady-state serving loops reuse the output
    /// tensor and stats vector instead of allocating per inference.
    ///
    /// # Errors
    /// Same as [`Simulator::run`].
    pub fn run_into(
        &mut self,
        compiled: &CompiledNetwork,
        input: &Tensor,
        out: &mut RunResult,
    ) -> Result<(), SimError> {
        self.run_impl(compiled, input, None, out)
    }

    /// Runs a batch of inferences on this session through the batched
    /// execution path (see [`crate::batch`]): one plan replay traverses
    /// each layer's cached weight packs once while all elements'
    /// activations stream through — `O(weights + B·activations)` instead
    /// of `B` sequential runs' `O(B·(weights + activations))`. Outputs
    /// are bit-identical to `B` sequential [`Simulator::run`] calls.
    ///
    /// Every input is attempted; per-element failures (including injected
    /// faults) land in that element's slot instead of aborting the rest
    /// of the batch. Elements fault *as if run sequentially*: the fault
    /// decision stream is drawn per element in batch order before any
    /// batched work starts, so the same faults hit the same elements as
    /// `B` individual runs would see.
    ///
    /// # Errors
    /// Per element, the same errors as [`Simulator::run`].
    pub fn run_batch_results(
        &mut self,
        compiled: &CompiledNetwork,
        inputs: &[Tensor],
    ) -> Vec<Result<RunResult, SimError>> {
        let mut outs = Vec::new();
        let statuses = self.run_batch_into(compiled, inputs, &mut outs);
        statuses
            .into_iter()
            .zip(outs)
            .map(|(st, out)| st.map(|()| out))
            .collect()
    }

    /// [`Simulator::run_batch_results`] writing into caller-provided
    /// [`RunResult`]s (resized to `inputs.len()`), so steady-state serving
    /// loops reuse output tensors and stats vectors across batches — the
    /// batched counterpart of [`Simulator::run_into`]. The contents of
    /// `outs` slots whose status is `Err` are unspecified.
    pub fn run_batch_into(
        &mut self,
        compiled: &CompiledNetwork,
        inputs: &[Tensor],
        outs: &mut Vec<RunResult>,
    ) -> Vec<Result<(), SimError>> {
        outs.resize_with(inputs.len(), RunResult::empty);
        outs.truncate(inputs.len());
        let mut statuses = Vec::with_capacity(inputs.len());
        // Whether the recorded plan supports batched replay; memoized
        // because the plan, once recorded, is fixed for the session.
        let mut batchable: Option<bool> = None;
        let mut i = 0;
        while i < inputs.len() {
            // A single (or final) element takes the sequential path — it
            // is also how the session's first run records the plan.
            let can_batch = inputs.len() - i > 1
                && self.plan.is_some()
                && *batchable.get_or_insert_with(|| {
                    plan_batchable(
                        self.mode,
                        self.planning,
                        self.validate,
                        &self.plan,
                        &self.accel,
                        compiled,
                    )
                });
            if can_batch {
                let n = (inputs.len() - i).min(MAX_LANES);
                self.run_chunk_batched(
                    compiled,
                    &inputs[i..i + n],
                    &mut outs[i..i + n],
                    &mut statuses,
                );
                i += n;
            } else {
                let st = self.run_impl(compiled, &inputs[i], None, &mut outs[i]);
                statuses.push(st);
                i += 1;
            }
        }
        statuses
    }

    /// Runs a batch of inferences, failing on the first per-element
    /// error — the historical signature, now a thin wrapper over
    /// [`Simulator::run_batch_results`]. Unlike the historical behaviour,
    /// every input is attempted before the first error (if any) is
    /// reported.
    ///
    /// # Errors
    /// Same as [`Simulator::run`].
    pub fn run_batch(
        &mut self,
        compiled: &CompiledNetwork,
        inputs: &[Tensor],
    ) -> Result<Vec<RunResult>, SimError> {
        let mut outs = Vec::new();
        let statuses = self.run_batch_into(compiled, inputs, &mut outs);
        for st in statuses {
            st?;
        }
        Ok(outs)
    }

    /// Executes one batched chunk: per-element admission and fault
    /// pre-walk in batch order, then one batched plan replay over the
    /// elements that passed, then per-element result assembly. Pushes one
    /// status per element onto `statuses`.
    fn run_chunk_batched(
        &mut self,
        compiled: &CompiledNetwork,
        inputs: &[Tensor],
        outs: &mut [RunResult],
        statuses: &mut Vec<Result<(), SimError>>,
    ) {
        let n = inputs.len();
        let cfg = *self.accel.config();
        let po = cfg.po;
        self.batch.ensure(&cfg, n);
        let start = statuses.len();

        // Element-order pre-walk: shape check, input staging, and the
        // element's complete fault/cancellation decision stream — drawn
        // exactly as `B` sequential runs would draw it (the decisions are
        // data-independent, so pre-walking them preserves the stream).
        for (lane, input) in self.batch.lanes[..n].iter_mut().zip(inputs) {
            let faults = &mut self.faults;
            let stop = self.stop.as_ref();
            let st = (|| -> Result<(), SimError> {
                if input.shape() != compiled.input_shape() {
                    return Err(SimError::InputMismatch {
                        detail: format!(
                            "expected {}, got {}",
                            compiled.input_shape(),
                            input.shape()
                        ),
                    });
                }
                compiled.write_input(&mut lane.mem, input).map_err(|e| {
                    SimError::InputMismatch {
                        detail: e.to_string(),
                    }
                })?;
                match faults.as_deref_mut() {
                    Some(f) => {
                        f.begin_run()?;
                        for layer in compiled.layers() {
                            fault::check_program(f, stop, layer.program(), layer.name(), po)?;
                        }
                    }
                    None => {
                        if stop.is_some_and(StopToken::is_cancelled) {
                            let stage = compiled
                                .layers()
                                .first()
                                .map(|l| l.name().to_string())
                                .unwrap_or_default();
                            return Err(SimError::Cancelled { stage });
                        }
                    }
                }
                Ok(())
            })();
            statuses.push(st);
        }

        // One batched replay over the lanes whose element passed. A
        // faulted element's lane is excluded entirely — its outputs are
        // unobservable, exactly as after a sequential faulted run.
        let status = &mut statuses[start..];
        let mut live: Vec<&mut BatchLane> = self.batch.lanes[..n]
            .iter_mut()
            .zip(status.iter())
            .filter_map(|(lane, st)| st.is_ok().then_some(lane))
            .collect();
        let plan = self
            .plan
            .as_ref()
            .expect("batched chunks only run on planned sessions");
        if !live.is_empty() {
            let mut exec = Ok(());
            for (layer, lp) in compiled.layers().iter().zip(&plan.layers) {
                exec = self.accel.replay_stage_batched(
                    layer.program(),
                    &lp.packs,
                    &mut live,
                    layer.name(),
                    self.stop.as_ref(),
                );
                if exec.is_err() {
                    break;
                }
            }
            if let Err(e) = exec {
                // Mid-execution failure (cancellation or a malformed
                // program) has no single owning element; every live
                // element reports it.
                for st in status.iter_mut().filter(|s| s.is_ok()) {
                    *st = Err(e.clone());
                }
            }
        }
        drop(live);

        // Assemble per-element results: the plan's cached per-stage stats
        // (identical to what a sequential replay reports) plus the lane's
        // output tensor.
        for ((lane, st), out) in self.batch.lanes[..n]
            .iter_mut()
            .zip(status.iter())
            .zip(outs.iter_mut())
        {
            if st.is_ok() {
                out.stage_stats.clear();
                out.total_cycles = 0.0;
                for lp in &plan.layers {
                    out.total_cycles += lp.stats.cycles;
                    out.stage_stats.push(lp.stats.clone());
                }
                compiled.read_output_into(&lane.mem, &mut out.output);
            }
        }
    }

    /// Like [`Simulator::run`], additionally returning each stage's
    /// per-instruction `(start, finish)` cycle trace — the debugging aid
    /// behind the pipeline studies in EXPERIMENTS.md. Traced runs always
    /// execute the full event simulation (a replayed schedule has no
    /// per-instruction events to trace).
    ///
    /// # Errors
    /// Same as [`Simulator::run`].
    pub fn run_traced(
        &mut self,
        compiled: &CompiledNetwork,
        input: &Tensor,
    ) -> Result<(RunResult, StageTraces), SimError> {
        let mut traces = Vec::with_capacity(compiled.layers().len());
        let mut out = RunResult::empty();
        self.run_impl(compiled, input, Some(&mut traces), &mut out)?;
        Ok((out, traces))
    }

    /// Whether this session records and replays execution plans
    /// (default: `true`).
    pub fn planning(&self) -> bool {
        self.planning
    }

    /// Enables or disables session planning. Disabling drops any recorded
    /// plan, so every subsequent run takes the original
    /// full-simulation path — the A/B lever for equivalence tests and
    /// benchmarks.
    pub fn set_planning(&mut self, on: bool) {
        self.planning = on;
        if !on {
            self.plan = None;
        }
    }

    /// Whether a plan has been recorded for this session.
    pub fn has_plan(&self) -> bool {
        self.plan.is_some()
    }

    /// `f64` words held by the recorded plan's weight/bias packs
    /// (0 before the first run or with planning off).
    pub fn plan_pack_words(&self) -> usize {
        self.plan.as_ref().map_or(0, SessionPlan::pack_words)
    }

    /// Enables schedule validation: planned runs re-run the full event
    /// simulation and return [`SimError::ScheduleDivergence`] if any
    /// stage's re-simulated statistics differ from the recording. Costs
    /// the full simulation time — a debugging/CI assertion, not a
    /// serving-path setting.
    pub fn set_schedule_validation(&mut self, on: bool) {
        self.validate = on;
    }

    /// Builder form of [`Simulator::set_schedule_validation`].
    #[must_use]
    pub fn with_schedule_validation(mut self, on: bool) -> Self {
        self.set_schedule_validation(on);
        self
    }

    /// Arms deterministic fault injection on this session. Replaces any
    /// previously armed plan (restarting its decision stream from the
    /// seed) and clears a pending wedge.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(Box::new(FaultState::new(plan)));
    }

    /// Disarms fault injection; subsequent runs are fault-free.
    pub fn disarm_faults(&mut self) {
        self.faults = None;
    }

    /// Counters of faults injected so far (zeros when never armed).
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults
            .as_deref()
            .map_or_else(FaultCounters::default, |f| f.counters)
    }

    /// Whether the device is wedged: every run fails with
    /// [`SimError::DeviceWedged`] until [`Simulator::reset_session`].
    pub fn wedged(&self) -> bool {
        self.faults.as_deref().is_some_and(|f| f.wedged)
    }

    /// Installs the session half of a cooperative cancellation pair. The
    /// simulator checks the token between COMP work-groups and inside
    /// injected stalls; once the host cancels it, the in-flight run
    /// returns [`SimError::Cancelled`] (or [`SimError::DeviceHang`] if it
    /// was stalled). A cancelled token keeps failing runs until replaced
    /// or cleared.
    pub fn set_stop_token(&mut self, token: StopToken) {
        self.stop = Some(token);
    }

    /// Removes any installed stop token.
    pub fn clear_stop_token(&mut self) {
        self.stop = None;
    }

    /// Rebuilds the device side of the session after a fatal fault: a
    /// fresh accelerator (on-chip buffers cleared), re-staged external
    /// memory, and a dropped session plan — the simulated equivalent of
    /// reprogramming a wedged board. Releases the wedge latch but keeps
    /// the armed fault plan's decision stream where it left off, so a
    /// session's fault history stays deterministic across resets.
    pub fn reset_session(&mut self, compiled: &CompiledNetwork) {
        let threads = self.accel.threads();
        let functional = self.mode == SimMode::Functional;
        let mut accel = Accelerator::new(
            *compiled.config(),
            self.bw,
            compiled.quant().activations,
            functional,
        );
        accel.set_threads(threads);
        self.accel = accel;
        self.mem = if functional {
            let mut mem =
                ExternalMemory::with_capacity_words(compiled.memory_map().total_words() as usize);
            compiled.stage_data(&mut mem);
            mem
        } else {
            ExternalMemory::new()
        };
        self.plan = None;
        self.batch = BatchState::default();
        if let Some(f) = self.faults.as_deref_mut() {
            f.clear_wedge();
        }
    }

    fn run_impl(
        &mut self,
        compiled: &CompiledNetwork,
        input: &Tensor,
        mut traces: Option<&mut StageTraces>,
        out: &mut RunResult,
    ) -> Result<(), SimError> {
        if input.shape() != compiled.input_shape() {
            return Err(SimError::InputMismatch {
                detail: format!("expected {}, got {}", compiled.input_shape(), input.shape()),
            });
        }
        if self.mode == SimMode::Functional {
            compiled
                .write_input(&mut self.mem, input)
                .map_err(|e| SimError::InputMismatch {
                    detail: e.to_string(),
                })?;
        }
        out.stage_stats.clear();
        out.total_cycles = 0.0;

        // Sticky wedge check plus the per-run wedge draw, before any
        // stage executes.
        if let Some(f) = self.faults.as_deref_mut() {
            f.begin_run()?;
        }

        let replay = self.planning && !self.validate && traces.is_none() && self.plan.is_some();
        if replay {
            let plan = self.plan.as_ref().expect("replay requires a plan");
            if self.mode == SimMode::Functional {
                for (layer, lp) in compiled.layers().iter().zip(&plan.layers) {
                    let mut hook = FaultHook {
                        state: self.faults.as_deref_mut(),
                        stop: self.stop.as_ref(),
                        stage: layer.name(),
                    };
                    self.accel.replay_stage(
                        layer.program(),
                        &mut self.mem,
                        &lp.packs,
                        &mut hook,
                    )?;
                    out.total_cycles += lp.stats.cycles;
                    out.stage_stats.push(lp.stats.clone());
                }
            } else {
                // Timing-only replay executes nothing at all — but the
                // fault/cancellation surface must not vanish with it, so
                // walk each stage program drawing the same decisions the
                // executing paths would.
                let po = self.accel.config().po;
                for (layer, lp) in compiled.layers().iter().zip(&plan.layers) {
                    match self.faults.as_deref_mut() {
                        Some(f) => fault::check_program(
                            f,
                            self.stop.as_ref(),
                            layer.program(),
                            layer.name(),
                            po,
                        )?,
                        None => {
                            if self.stop.as_ref().is_some_and(StopToken::is_cancelled) {
                                return Err(SimError::Cancelled {
                                    stage: layer.name().to_string(),
                                });
                            }
                        }
                    }
                    out.total_cycles += lp.stats.cycles;
                    out.stage_stats.push(lp.stats.clone());
                }
            }
        } else {
            let recording = self.planning && self.plan.is_none();
            let mut recorded: Vec<LayerPlan> = Vec::with_capacity(compiled.layers().len());
            for (i, layer) in compiled.layers().iter().enumerate() {
                let mut packs: Vec<UnitPack> = Vec::new();
                let pack_mode = if recording {
                    PackMode::Record(&mut packs)
                } else if let Some(plan) = &self.plan {
                    PackMode::Replay(&plan.layers[i].packs)
                } else {
                    PackMode::Off
                };
                let mut hook = FaultHook {
                    state: self.faults.as_deref_mut(),
                    stop: self.stop.as_ref(),
                    stage: layer.name(),
                };
                let mut stats = match traces.as_deref_mut() {
                    Some(ts) => {
                        let mut trace = Vec::with_capacity(layer.program().len());
                        let s = self.accel.run_stage_inner(
                            layer.program(),
                            &mut self.mem,
                            Some(&mut trace),
                            pack_mode,
                            &mut hook,
                        )?;
                        ts.push(trace);
                        s
                    }
                    None => self.accel.run_stage_inner(
                        layer.program(),
                        &mut self.mem,
                        None,
                        pack_mode,
                        &mut hook,
                    )?,
                };
                stats.name = match &self.plan {
                    Some(plan) => plan.layers[i].stats.name.clone(),
                    None => layer.name().into(),
                };
                stats.ops = layer.plan().wl.ops();
                if self.validate {
                    if let Some(plan) = &self.plan {
                        let cached = &plan.layers[i].stats;
                        if *cached != stats {
                            return Err(SimError::ScheduleDivergence {
                                layer: stats.name.to_string(),
                                detail: format!("cached [{cached}] vs re-simulated [{stats}]"),
                            });
                        }
                    }
                }
                if recording {
                    recorded.push(LayerPlan {
                        stats: stats.clone(),
                        packs,
                    });
                }
                out.total_cycles += stats.cycles;
                out.stage_stats.push(stats);
            }
            if recording {
                self.plan = Some(SessionPlan { layers: recorded });
            }
        }

        if self.mode == SimMode::Functional {
            compiled.read_output_into(&self.mem, &mut out.output);
        } else if out.output.shape() != compiled.output_shape() {
            out.output = Tensor::zeros(compiled.output_shape());
        } else {
            out.output.as_mut_slice().fill(0.0);
        }
        Ok(())
    }

    /// Access the external memory (e.g. to inspect intermediate
    /// activations with [`CompiledNetwork::read_stage_output`]).
    pub fn memory(&self) -> &ExternalMemory {
        &self.mem
    }
}

/// Whether a session's recorded plan supports whole-batch replay: a
/// functional, planning, non-validating session whose plan carries one
/// complete weight pack (and, where the unit initializes with bias, a
/// complete bias row) for **every** COMP of every layer. The batched
/// executor has no unpacked fallback, so any gap routes the batch down
/// the sequential path instead.
fn plan_batchable(
    mode: SimMode,
    planning: bool,
    validate: bool,
    plan: &Option<SessionPlan>,
    accel: &Accelerator,
    compiled: &CompiledNetwork,
) -> bool {
    if mode != SimMode::Functional || !planning || validate {
        return false;
    }
    let Some(plan) = plan.as_ref() else {
        return false;
    };
    let cfg = accel.config();
    let pt2 = cfg.tile.pt() * cfg.tile.pt();
    if plan.layers.len() != compiled.layers().len() {
        return false;
    }
    compiled
        .layers()
        .iter()
        .zip(&plan.layers)
        .all(|(layer, lp)| {
            let mut packs = lp.packs.iter();
            let complete = layer.program().instructions().iter().all(|inst| {
                let Instruction::Comp(c) = inst else {
                    return true;
                };
                let Some(pack) = packs.next() else {
                    return false;
                };
                let k_lanes = c.oc_vecs as usize * cfg.po;
                let c_lanes = c.ic_vecs as usize * cfg.pi;
                let want = if c.wino {
                    k_lanes * c_lanes * pt2
                } else {
                    k_lanes * c_lanes * c.kernel_h as usize * c.kernel_w as usize
                };
                pack.weights.len() == want
                    && (!(c.acc_init && c.bias_en) || pack.bias.len() == k_lanes)
            });
            complete && packs.next().is_none()
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybriddnn_compiler::{Compiler, MappingStrategy, QuantSpec};
    use hybriddnn_estimator::{AcceleratorConfig, ConvMode, Dataflow};
    use hybriddnn_model::{reference, synth, zoo, Network, Shape};
    use hybriddnn_winograd::TileConfig;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::new(4, 4, TileConfig::F2x2)
    }

    fn run_and_compare(net: &Network, strategy: &MappingStrategy, tol: f32) {
        let compiled = Compiler::new(cfg()).compile(net, strategy).unwrap();
        let mut sim = Simulator::new(&compiled, SimMode::Functional, 16.0);
        let input = synth::tensor(net.input_shape(), 9);
        let run = sim.run(&compiled, &input).unwrap();
        let golden = reference::run_network(net, &input).unwrap();
        let diff = run.output.max_abs_diff(&golden);
        assert!(diff < tol, "sim vs golden diff {diff}");
        assert!(run.total_cycles > 0.0);
    }

    #[test]
    fn tiny_cnn_spatial_matches_golden() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 1).unwrap();
        run_and_compare(&net, &MappingStrategy::all_spatial(&net), 1e-3);
    }

    #[test]
    fn tiny_cnn_winograd_matches_golden() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 2).unwrap();
        run_and_compare(&net, &MappingStrategy::all_winograd(&net), 1e-2);
    }

    #[test]
    fn tiny_cnn_is_dataflow_matches_golden() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 3).unwrap();
        run_and_compare(
            &net,
            &MappingStrategy::uniform(&net, ConvMode::Spatial, Dataflow::InputStationary),
            1e-3,
        );
    }

    #[test]
    fn single_conv_5x5_winograd_decomposition() {
        let mut net = zoo::single_conv(12, 4, 8, 5);
        synth::bind_random(&mut net, 4).unwrap();
        run_and_compare(&net, &MappingStrategy::all_winograd(&net), 1e-2);
    }

    #[test]
    fn timing_only_runs_without_data() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 5).unwrap();
        let compiled = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_winograd(&net))
            .unwrap();
        let mut sim = Simulator::new(&compiled, SimMode::TimingOnly, 16.0);
        let input = synth::tensor(net.input_shape(), 1);
        let run = sim.run(&compiled, &input).unwrap();
        assert!(run.total_cycles > 0.0);
        assert!(run.output.as_slice().iter().all(|&v| v == 0.0));
        // No functional memory was ever allocated.
        assert_eq!(sim.memory().len(), 0);
    }

    #[test]
    fn timing_matches_functional_timing() {
        // The cycle model must not depend on the mode.
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 6).unwrap();
        let compiled = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_winograd(&net))
            .unwrap();
        let input = synth::tensor(net.input_shape(), 1);
        let f = Simulator::new(&compiled, SimMode::Functional, 16.0)
            .run(&compiled, &input)
            .unwrap();
        let t = Simulator::new(&compiled, SimMode::TimingOnly, 16.0)
            .run(&compiled, &input)
            .unwrap();
        assert_eq!(f.total_cycles, t.total_cycles);
    }

    #[test]
    fn wrong_input_shape_is_rejected() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 7).unwrap();
        let compiled = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_spatial(&net))
            .unwrap();
        let mut sim = Simulator::new(&compiled, SimMode::TimingOnly, 16.0);
        let err = sim
            .run(
                &compiled,
                &hybriddnn_model::Tensor::zeros(Shape::new(1, 1, 1)),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::InputMismatch { .. }));
    }

    #[test]
    fn quantized_run_lands_on_activation_grid() {
        let fmt = hybriddnn_model::quant::QFormat::FEATURE12;
        let mut net = zoo::tiny_cnn();
        synth::bind_random_quantized(&mut net, 8, hybriddnn_model::quant::QFormat::WEIGHT8)
            .unwrap();
        let compiled = Compiler::new(cfg())
            .with_quant(QuantSpec::paper_12bit())
            .compile(&net, &MappingStrategy::all_spatial(&net))
            .unwrap();
        let mut sim = Simulator::new(&compiled, SimMode::Functional, 16.0);
        let input = synth::quantized_tensor(net.input_shape(), 3, fmt);
        let run = sim.run(&compiled, &input).unwrap();
        for &v in run.output.as_slice() {
            assert!(fmt.contains(v as f64), "{v} off grid");
        }
    }

    #[test]
    fn traced_run_matches_untraced() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 10).unwrap();
        let compiled = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_winograd(&net))
            .unwrap();
        let input = synth::tensor(net.input_shape(), 2);
        let plain = Simulator::new(&compiled, SimMode::TimingOnly, 16.0)
            .run(&compiled, &input)
            .unwrap();
        let (traced, traces) = Simulator::new(&compiled, SimMode::TimingOnly, 16.0)
            .run_traced(&compiled, &input)
            .unwrap();
        assert_eq!(plain.total_cycles, traced.total_cycles);
        assert_eq!(traces.len(), compiled.layers().len());
        for (trace, layer) in traces.iter().zip(compiled.layers()) {
            assert_eq!(trace.len(), layer.program().len());
            // Every instruction finishes after it starts, within the stage.
            for &(s, f) in trace {
                assert!(f > s && s >= 0.0);
            }
        }
    }

    #[test]
    fn reused_session_is_deterministic_and_does_not_grow_memory() {
        // The serving path reuses one session across inferences: repeated
        // runs must be bit-identical to fresh-session runs, and the DRAM
        // image (pre-sized at construction) must not grow.
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 11).unwrap();
        let compiled = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_winograd(&net))
            .unwrap();
        let inputs: Vec<_> = (0..4)
            .map(|i| synth::tensor(net.input_shape(), i))
            .collect();
        let mut session = Simulator::new(&compiled, SimMode::Functional, 16.0);
        let words_before = session.memory().len();
        for input in &inputs {
            let reused = session.run(&compiled, input).unwrap();
            let fresh = Simulator::new(&compiled, SimMode::Functional, 16.0)
                .run(&compiled, input)
                .unwrap();
            assert_eq!(reused.output.as_slice(), fresh.output.as_slice());
            assert_eq!(reused.total_cycles, fresh.total_cycles);
        }
        // Run the batch a second time: still identical to the first pass.
        let again = session.run(&compiled, &inputs[0]).unwrap();
        let first = Simulator::new(&compiled, SimMode::Functional, 16.0)
            .run(&compiled, &inputs[0])
            .unwrap();
        assert_eq!(again.output.as_slice(), first.output.as_slice());
        assert_eq!(session.memory().len(), words_before);
    }

    #[test]
    fn planned_runs_match_planning_off_exactly() {
        // The A/B lever: a session with planning disabled takes the
        // original full-simulation path on every run. Outputs, cycle
        // totals, and per-stage stats must be bit-identical either way.
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 21).unwrap();
        for strategy in [
            MappingStrategy::all_spatial(&net),
            MappingStrategy::all_winograd(&net),
        ] {
            let compiled = Compiler::new(cfg()).compile(&net, &strategy).unwrap();
            let mut planned = Simulator::new(&compiled, SimMode::Functional, 16.0);
            let mut unplanned = Simulator::new(&compiled, SimMode::Functional, 16.0);
            unplanned.set_planning(false);
            for i in 0..3 {
                let input = synth::tensor(net.input_shape(), 30 + i);
                let p = planned.run(&compiled, &input).unwrap();
                let u = unplanned.run(&compiled, &input).unwrap();
                let pb: Vec<u32> = p.output.as_slice().iter().map(|v| v.to_bits()).collect();
                let ub: Vec<u32> = u.output.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(pb, ub);
                assert_eq!(p.total_cycles, u.total_cycles);
                assert_eq!(p.stage_stats, u.stage_stats);
            }
            assert!(planned.has_plan() && !unplanned.has_plan());
            assert!(planned.plan_pack_words() > 0);
        }
    }

    #[test]
    fn plan_is_recorded_once_and_packs_stay_stable() {
        // The cached packs must be built exactly once: across steady-state
        // runs both the allocation (pointer) and contents of every pack
        // stay fixed.
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 22).unwrap();
        let compiled = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_winograd(&net))
            .unwrap();
        let mut sim = Simulator::new(&compiled, SimMode::Functional, 16.0);
        assert!(!sim.has_plan(), "plans record lazily, on the first run");
        sim.run(&compiled, &synth::tensor(net.input_shape(), 1))
            .unwrap();
        let fingerprint = |s: &Simulator| -> Vec<(*const f64, usize, *const f64, usize)> {
            s.plan
                .as_ref()
                .unwrap()
                .layers
                .iter()
                .flat_map(|l| &l.packs)
                .map(|p| {
                    (
                        p.weights.as_ptr(),
                        p.weights.len(),
                        p.bias.as_ptr(),
                        p.bias.len(),
                    )
                })
                .collect()
        };
        let before = fingerprint(&sim);
        let words = sim.plan_pack_words();
        assert!(!before.is_empty() && words > 0);
        for i in 0..3 {
            sim.run(&compiled, &synth::tensor(net.input_shape(), 40 + i))
                .unwrap();
        }
        assert_eq!(fingerprint(&sim), before, "packs were rebuilt or moved");
        assert_eq!(sim.plan_pack_words(), words);
    }

    #[test]
    fn schedule_validation_passes_and_is_silent() {
        // Validation re-simulates the cached schedule; on a sound cycle
        // model it must agree and still produce correct outputs.
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 23).unwrap();
        let compiled = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_spatial(&net))
            .unwrap();
        let mut sim =
            Simulator::new(&compiled, SimMode::Functional, 16.0).with_schedule_validation(true);
        let input = synth::tensor(net.input_shape(), 5);
        let first = sim.run(&compiled, &input).unwrap();
        let second = sim.run(&compiled, &input).unwrap();
        assert_eq!(first.output.as_slice(), second.output.as_slice());
        assert_eq!(first.total_cycles, second.total_cycles);
    }

    #[test]
    fn schedule_validation_detects_divergence() {
        // Corrupt a cached schedule: validation must report it rather
        // than silently serving stale numbers.
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 24).unwrap();
        let compiled = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_spatial(&net))
            .unwrap();
        let mut sim = Simulator::new(&compiled, SimMode::Functional, 16.0);
        let input = synth::tensor(net.input_shape(), 5);
        sim.run(&compiled, &input).unwrap();
        sim.plan.as_mut().unwrap().layers[0].stats.cycles += 1.0;
        sim.set_schedule_validation(true);
        let err = sim.run(&compiled, &input).unwrap_err();
        assert!(matches!(err, SimError::ScheduleDivergence { .. }), "{err}");
    }

    #[test]
    fn run_into_reuses_the_output_allocation() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 25).unwrap();
        let compiled = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_winograd(&net))
            .unwrap();
        let mut sim = Simulator::new(&compiled, SimMode::Functional, 16.0);
        let mut out = RunResult::empty();
        sim.run_into(&compiled, &synth::tensor(net.input_shape(), 1), &mut out)
            .unwrap();
        let ptr = out.output.as_slice().as_ptr();
        for i in 0..3 {
            let input = synth::tensor(net.input_shape(), 50 + i);
            sim.run_into(&compiled, &input, &mut out).unwrap();
            assert_eq!(out.output.as_slice().as_ptr(), ptr, "output reallocated");
            let fresh = Simulator::new(&compiled, SimMode::Functional, 16.0)
                .run(&compiled, &input)
                .unwrap();
            assert_eq!(out.output.as_slice(), fresh.output.as_slice());
            assert_eq!(out.total_cycles, fresh.total_cycles);
        }
    }

    #[test]
    fn run_batch_matches_individual_runs() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 26).unwrap();
        let compiled = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_winograd(&net))
            .unwrap();
        let inputs: Vec<_> = (0..3)
            .map(|i| synth::tensor(net.input_shape(), 60 + i))
            .collect();
        let mut sim = Simulator::new(&compiled, SimMode::Functional, 16.0);
        let batch = sim.run_batch(&compiled, &inputs).unwrap();
        assert_eq!(batch.len(), inputs.len());
        for (input, got) in inputs.iter().zip(&batch) {
            let fresh = Simulator::new(&compiled, SimMode::Functional, 16.0)
                .run(&compiled, input)
                .unwrap();
            assert_eq!(got.output.as_slice(), fresh.output.as_slice());
            assert_eq!(got.total_cycles, fresh.total_cycles);
            assert_eq!(got.stage_stats, fresh.stage_stats);
        }
    }

    #[test]
    fn timing_only_replay_keeps_cycles_and_empty_memory() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 27).unwrap();
        let compiled = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_winograd(&net))
            .unwrap();
        let mut sim = Simulator::new(&compiled, SimMode::TimingOnly, 16.0);
        let input = synth::tensor(net.input_shape(), 1);
        let first = sim.run(&compiled, &input).unwrap();
        let replayed = sim.run(&compiled, &input).unwrap();
        assert_eq!(first.total_cycles, replayed.total_cycles);
        assert_eq!(first.stage_stats, replayed.stage_stats);
        assert_eq!(sim.memory().len(), 0);
    }

    #[test]
    fn simulator_is_send() {
        // Worker threads own replica sessions; this must stay `Send`.
        fn assert_send<T: Send>() {}
        assert_send::<Simulator>();
    }

    #[test]
    fn gops_and_latency_helpers() {
        let mut net = zoo::tiny_cnn();
        synth::bind_random(&mut net, 9).unwrap();
        let compiled = Compiler::new(cfg())
            .compile(&net, &MappingStrategy::all_winograd(&net))
            .unwrap();
        let mut sim = Simulator::new(&compiled, SimMode::TimingOnly, 16.0);
        let run = sim
            .run(&compiled, &synth::tensor(net.input_shape(), 1))
            .unwrap();
        let gops = run.gops(100.0);
        assert!(gops > 0.0 && gops < 205.0, "gops {gops}"); // under wino peak
        assert!(run.latency_ms(100.0) > 0.0);
    }
}
