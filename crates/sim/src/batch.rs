//! True batched execution of planned functional replays.
//!
//! A planned session already amortizes weight repacking and event
//! simulation across runs; this module amortizes the *per-run* work
//! across a batch. Each batch element owns one [`BatchLane`] — a private
//! external memory plus input/output/accumulator buffers — and one
//! program walk drives all lanes: every COMP traverses its cached weight
//! pack once while the lanes' activations stream through it, making a
//! `B`-element batch `O(weights + B·activations)` instead of
//! `O(B·(weights + activations))`.
//!
//! Weight and bias regions are never read through a lane (every COMP
//! consumes its cached pack), and every activation region a replay reads
//! is written earlier in the same run — so lane memories start *empty*
//! (reads beyond an [`ExternalMemory`]'s written length are zero by
//! construction) and are safely reused across batches, by the same
//! argument that lets a session's own memory be reused across runs.
//!
//! Fault injection and cancellation are handled entirely by the caller
//! (`Simulator::run_chunk_batched`): it pre-walks each element's decision
//! stream in batch order before execution, so the RNG draws are identical
//! to `B` sequential runs, and lanes whose element faulted are excluded
//! from execution (their outputs are unobservable — exactly as after a
//! sequential faulted run).

use crate::pe::{self, CompCtx};
use crate::plan::UnitPack;
use crate::{SimError, StopToken};
use hybriddnn_estimator::AcceleratorConfig;
use hybriddnn_fpga::{ExternalMemory, MemoryClient};
use hybriddnn_isa::{Instruction, LoadKind, Program};
use hybriddnn_model::quant::QFormat;

/// Maximum lanes executed per batched chunk. Bounds the per-session
/// buffer footprint so the lanes' activation planes stay cache-resident
/// alongside the weight packs; larger batches run as successive chunks
/// with the weight traversal still amortized `MAX_LANES`-wide, which
/// already captures nearly all of the `O(weights + B·activations)`
/// payoff.
pub(crate) const MAX_LANES: usize = 8;

/// One batch element's private execution state.
#[derive(Debug)]
pub(crate) struct BatchLane {
    /// The element's private DRAM image: holds its input, intermediate
    /// activations, and output. Starts empty — weight regions are never
    /// read (COMPs consume cached packs) and unwritten reads are zero.
    pub(crate) mem: ExternalMemory,
    /// Input feature-map buffer (both ping-pong halves).
    pub(crate) input: Vec<f32>,
    /// Output buffer.
    pub(crate) output: Vec<f32>,
    /// `f64` accumulator buffer.
    pub(crate) accum: Vec<f64>,
    /// Per-lane widened input window (Spatial/FC units).
    pub(crate) inp_wide: Vec<f64>,
    /// Per-lane transformed input tiles (Winograd units).
    pub(crate) v_all: Vec<f64>,
}

impl BatchLane {
    fn new(cfg: &AcceleratorConfig) -> Self {
        BatchLane {
            mem: ExternalMemory::new(),
            input: vec![0.0; 2 * cfg.input_buffer_words()],
            output: vec![0.0; 2 * cfg.output_buffer_words()],
            accum: vec![0.0; 2 * cfg.output_buffer_words()],
            inp_wide: Vec::new(),
            v_all: Vec::new(),
        }
    }
}

/// The session's pool of batch lanes, grown on demand and reused across
/// batches (no steady-state allocation).
#[derive(Debug, Default)]
pub(crate) struct BatchState {
    pub(crate) lanes: Vec<BatchLane>,
}

impl BatchState {
    pub(crate) fn ensure(&mut self, cfg: &AcceleratorConfig, n: usize) {
        while self.lanes.len() < n {
            self.lanes.push(BatchLane::new(cfg));
        }
    }
}

/// Replays one stage program across all `lanes` at once.
///
/// Input LOADs and SAVEs burst per lane against that lane's memory;
/// weight/bias LOADs are elided exactly as in the sequential replay; each
/// COMP checks cancellation once, then executes batched. The caller
/// guarantees (via `Simulator::plan_batchable`) that every COMP has a
/// complete cached pack.
#[allow(clippy::too_many_arguments)]
pub(crate) fn replay_stage_batched(
    cfg: &AcceleratorConfig,
    act_fmt: Option<QFormat>,
    ctx: &mut CompCtx,
    program: &Program,
    packs: &[UnitPack],
    lanes: &mut [&mut BatchLane],
    stage: &str,
    stop: Option<&StopToken>,
) -> Result<(), SimError> {
    let mut next_pack = 0usize;
    for inst in program.instructions() {
        match inst {
            Instruction::Load(l) => {
                if l.kind == LoadKind::Input {
                    for lane in lanes.iter_mut() {
                        pe::exec_load_into(
                            &mut lane.input,
                            "input",
                            MemoryClient::LoadInput,
                            &mut lane.mem,
                            l,
                        )?;
                    }
                }
            }
            Instruction::Comp(c) => {
                if stop.is_some_and(StopToken::is_cancelled) {
                    return Err(SimError::Cancelled {
                        stage: stage.to_string(),
                    });
                }
                let pack = packs.get(next_pack);
                next_pack += 1;
                let Some(pack) = pack.filter(|p| !p.weights.is_empty()) else {
                    // Unreachable behind the `plan_batchable` gate; report
                    // rather than executing with a missing pack.
                    return Err(SimError::ScheduleDivergence {
                        layer: stage.to_string(),
                        detail: "batched replay found no cached pack for a COMP unit".into(),
                    });
                };
                pe::exec_comp_batched(cfg, c, act_fmt, ctx, pack, lanes)?;
            }
            Instruction::Save(s) => {
                for lane in lanes.iter_mut() {
                    pe::exec_save_from(&lane.output, &mut lane.mem, cfg, s)?;
                }
            }
        }
    }
    Ok(())
}
