use std::fmt;

/// Errors produced while simulating the accelerator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// An instruction waited on a handshake token that no earlier
    /// instruction posted — the program would deadlock the hardware.
    Deadlock {
        /// Index of the blocking instruction within its stage program.
        instruction: usize,
        /// Which FIFO ran dry.
        fifo: &'static str,
    },
    /// A buffer access fell outside the configured on-chip capacity.
    BufferOverrun {
        /// Which buffer was overrun.
        buffer: &'static str,
        /// The offending word index.
        index: usize,
        /// The buffer's capacity in words.
        capacity: usize,
    },
    /// The input tensor does not match the compiled network.
    InputMismatch {
        /// Human-readable description.
        detail: String,
    },
    /// Schedule validation re-simulated a cached timing schedule and got
    /// a different answer — the cycle model depended on something that
    /// changed between runs (a model bug; timing must be
    /// input-independent).
    ScheduleDivergence {
        /// The diverging stage.
        layer: String,
        /// What differed.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { instruction, fifo } => {
                write!(
                    f,
                    "instruction {instruction} deadlocks on empty `{fifo}` fifo"
                )
            }
            SimError::BufferOverrun {
                buffer,
                index,
                capacity,
            } => {
                write!(f, "{buffer} buffer overrun: word {index} of {capacity}")
            }
            SimError::InputMismatch { detail } => write!(f, "input mismatch: {detail}"),
            SimError::ScheduleDivergence { layer, detail } => {
                write!(f, "stage `{layer}` schedule diverged from plan: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::Deadlock {
            instruction: 3,
            fifo: "inp_ready",
        };
        assert!(e.to_string().contains("inp_ready"));
        let e = SimError::BufferOverrun {
            buffer: "weight",
            index: 10,
            capacity: 4,
        };
        assert!(e.to_string().contains("weight"));
    }
}
