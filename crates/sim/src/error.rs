use std::fmt;

/// Errors produced while simulating the accelerator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// An instruction waited on a handshake token that no earlier
    /// instruction posted — the program would deadlock the hardware.
    Deadlock {
        /// Index of the blocking instruction within its stage program.
        instruction: usize,
        /// Which FIFO ran dry.
        fifo: &'static str,
    },
    /// A buffer access fell outside the configured on-chip capacity.
    BufferOverrun {
        /// Which buffer was overrun.
        buffer: &'static str,
        /// The offending word index.
        index: usize,
        /// The buffer's capacity in words.
        capacity: usize,
    },
    /// The input tensor does not match the compiled network.
    InputMismatch {
        /// Human-readable description.
        detail: String,
    },
    /// Schedule validation re-simulated a cached timing schedule and got
    /// a different answer — the cycle model depended on something that
    /// changed between runs (a model bug; timing must be
    /// input-independent).
    ScheduleDivergence {
        /// The diverging stage.
        layer: String,
        /// What differed.
        detail: String,
    },
    /// An injected, ECC-detected transient fault (DRAM word corruption on
    /// a LOAD burst, or a compute bit-flip caught at SAVE). The run
    /// aborted before serving corrupt data; a retry on a healthy session
    /// reproduces the fault-free result bit for bit.
    TransientFault {
        /// Where the fault hit: `load_inp`, `load_wgt`, or `save`.
        site: &'static str,
        /// The corrupted word's index within its burst.
        word: usize,
    },
    /// A handshake FIFO stalled mid-stage and the device stopped making
    /// progress; the run was abandoned (by cancellation or the stall
    /// escape timer).
    DeviceHang {
        /// The stage that hung.
        stage: String,
        /// Device cycle at which the stalled unit would have started
        /// (`0.0` when the replay path cannot attribute a cycle).
        after_cycles: f64,
    },
    /// The device is wedged: a previous fault left the session
    /// unusable. Every run fails with this error until
    /// `Simulator::reset_session` rebuilds the device state.
    DeviceWedged,
    /// The host cancelled the run via its `StopToken`.
    Cancelled {
        /// The stage that observed the cancellation.
        stage: String,
    },
}

impl SimError {
    /// Whether a retry on the same (healthy) session can succeed: true
    /// only for injected transient faults, never for program bugs
    /// (deadlock, overrun, mismatch) or device-level failures (hang,
    /// wedge, cancellation).
    pub fn is_transient(&self) -> bool {
        matches!(self, SimError::TransientFault { .. })
    }

    /// Whether the error means the replica itself is unusable and must
    /// be replaced (hang, wedge, or host cancellation of a stuck run) —
    /// as opposed to a per-request or per-program failure.
    pub fn is_replica_fault(&self) -> bool {
        matches!(
            self,
            SimError::DeviceHang { .. } | SimError::DeviceWedged | SimError::Cancelled { .. }
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { instruction, fifo } => {
                write!(
                    f,
                    "instruction {instruction} deadlocks on empty `{fifo}` fifo"
                )
            }
            SimError::BufferOverrun {
                buffer,
                index,
                capacity,
            } => {
                write!(f, "{buffer} buffer overrun: word {index} of {capacity}")
            }
            SimError::InputMismatch { detail } => write!(f, "input mismatch: {detail}"),
            SimError::ScheduleDivergence { layer, detail } => {
                write!(f, "stage `{layer}` schedule diverged from plan: {detail}")
            }
            SimError::TransientFault { site, word } => {
                write!(f, "detected transient fault at {site} (burst word {word})")
            }
            SimError::DeviceHang {
                stage,
                after_cycles,
            } => {
                write!(
                    f,
                    "device hang in stage `{stage}` after {after_cycles} cycles"
                )
            }
            SimError::DeviceWedged => {
                write!(
                    f,
                    "device wedged; session must be reset before further runs"
                )
            }
            SimError::Cancelled { stage } => write!(f, "run cancelled in stage `{stage}`"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::Deadlock {
            instruction: 3,
            fifo: "inp_ready",
        };
        assert!(e.to_string().contains("inp_ready"));
        let e = SimError::BufferOverrun {
            buffer: "weight",
            index: 10,
            capacity: 4,
        };
        assert!(e.to_string().contains("weight"));
        let e = SimError::TransientFault {
            site: "load_inp",
            word: 7,
        };
        assert!(e.to_string().contains("load_inp"));
        let e = SimError::DeviceHang {
            stage: "conv1".into(),
            after_cycles: 42.0,
        };
        assert!(e.to_string().contains("conv1"));
        assert!(SimError::DeviceWedged.to_string().contains("wedged"));
        let e = SimError::Cancelled {
            stage: "conv2".into(),
        };
        assert!(e.to_string().contains("cancelled"));
    }

    #[test]
    fn fault_classification() {
        assert!(SimError::TransientFault {
            site: "save",
            word: 0
        }
        .is_transient());
        assert!(!SimError::DeviceWedged.is_transient());
        assert!(SimError::DeviceWedged.is_replica_fault());
        assert!(SimError::DeviceHang {
            stage: "s".into(),
            after_cycles: 0.0
        }
        .is_replica_fault());
        assert!(!SimError::Deadlock {
            instruction: 0,
            fifo: "inp_ready"
        }
        .is_replica_fault());
    }
}
