//! Per-session execution plans: input-invariant work hoisted out of the
//! steady-state run loop.
//!
//! A [`Simulator`](crate::Simulator) session serves one compiled network
//! for its whole lifetime, so everything that depends only on the program
//! and the staged weight image — not on the input tensor — can be paid
//! once and replayed. Two facts make that sound:
//!
//! * **Functional execution is program-order.** Instructions execute in
//!   the order the compiler emitted them, so the weight/bias buffer
//!   contents *at each COMP instruction* are a pure function of the
//!   program and the (immutable) DRAM weight image. The f64-widened
//!   weight packs built from those contents are therefore identical on
//!   every run, and widening `f32 → f64` is exact — a cached pack is
//!   bit-identical to one rebuilt on the fly.
//! * **The cycle model is input-independent.** Every LOAD/COMP/SAVE
//!   duration is determined by instruction fields and the configuration
//!   (Eq. 6–11), never by data values — pinned by the
//!   `timing_matches_functional_timing` test. A stage's
//!   [`StageStats`] (makespan, per-module busy time, traffic,
//!   instruction count) can be recorded once and replayed verbatim.
//!
//! The plan is recorded lazily during the session's *first* run (which
//! executes the full event simulation exactly as before) and consumed by
//! every subsequent run: weight/bias LOADs and the event simulation are
//! skipped entirely, COMP units read the cached packs, and the cached
//! per-stage statistics are cloned into the result. An opt-in validation
//! mode (`Simulator::set_schedule_validation`) re-simulates the schedule
//! and asserts it matches the recording.

use crate::stats::StageStats;

/// Cached input-invariant data for one COMP instruction.
///
/// `weights` holds the unit's weight image widened to `f64` in the layout
/// its kernel consumes directly: `[k][r][s][c]` for Spatial/FC units
/// (what [`crate::kernels::spatial_blocked`] reads via its `prepack`
/// argument), `[k][c][e]` for Winograd units (replacing the per-unit
/// transpose pass). An empty `weights` marks a unit whose geometry fell
/// outside the weight buffer at record time — execution falls back to
/// the unpacked path, which reports the error exactly as before.
///
/// `bias` is the widened bias row `[k]` for units that initialize their
/// accumulator with bias, captured so replayed runs need not re-execute
/// bias LOADs.
#[derive(Debug, Clone, Default)]
pub(crate) struct UnitPack {
    pub weights: Vec<f64>,
    pub bias: Vec<f64>,
}

/// One layer's cached invariants: its replayable timing schedule (with
/// the interned stage name and op count already filled in) and one
/// [`UnitPack`] per COMP instruction, in program order.
#[derive(Debug, Clone)]
pub(crate) struct LayerPlan {
    pub stats: StageStats,
    pub packs: Vec<UnitPack>,
}

/// A session's execution plan — everything invariant across inferences.
#[derive(Debug, Clone)]
pub(crate) struct SessionPlan {
    pub layers: Vec<LayerPlan>,
}

impl SessionPlan {
    /// Total `f64` words held in cached packs (introspection/tests).
    pub fn pack_words(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| &l.packs)
            .map(|p| p.weights.len() + p.bias.len())
            .sum()
    }
}

/// How a stage execution interacts with cached unit packs.
pub(crate) enum PackMode<'a> {
    /// Build a pack from the live weight/bias buffers at each COMP
    /// instruction, appending it to the vector (the plan-recording run).
    Record(&'a mut Vec<UnitPack>),
    /// Consume prebuilt packs by COMP ordinal (validation/traced runs on
    /// a planned session).
    Replay(&'a [UnitPack]),
    /// No caching — the pre-plan behaviour.
    Off,
}
