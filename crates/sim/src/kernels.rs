//! Cache-blocked Spatial-mode MAC micro-kernels.
//!
//! The Spatial PE models a `GK = PI×PO` MAC broadcast array; functionally
//! it is a direct convolution over the loaded window. The naive loop nest
//! ([`spatial_scalar`], kept as the property-test oracle) carries one
//! `f64` accumulator per output pixel through a strict dependency chain —
//! on a modern core that bounds throughput at one MAC per FP-add latency.
//!
//! [`spatial_blocked`] computes *bit-identical* results faster by
//! exploiting two facts that change no arithmetic:
//!
//! - **Index simplification.** The SPAT input layout stores lanes of a
//!   vector contiguously, so `((iy·colsₗ+ix)·CV + c/PI)·PI + c%PI` is just
//!   `(iy·colsₗ+ix)·C + c` — the per-MAC div/mod disappears and the
//!   channel dot product runs over a contiguous slice.
//! - **Independent accumulator banks.** Different output pixels have
//!   *independent* chains. Processing a block of `OX_BANK` adjacent pixels
//!   with a bank of accumulators keeps every per-pixel chain in the
//!   original `(r, s, c)` order (so each `f64` sum is the exact same
//!   sequence of operations) while giving the core `OX_BANK` chains to
//!   overlap.
//!
//! Two further transformations move work out of the MAC loop without
//! touching any accumulation: weights are repacked per output channel
//! from `[k][c][r][s]` into `[r][s][c]` so the inner dot is contiguous,
//! and both operands are widened `f32 → f64` *once* (exact) instead of
//! once per MAC, so the hot loop is pure `f64` multiply-add.

use hybriddnn_winograd::{transform, TileConfig};

/// Geometry of one Spatial-mode COMP unit (all sizes in elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpatialGeom {
    /// Output rows computed by the unit.
    pub out_rows: usize,
    /// Output width.
    pub out_w: usize,
    /// Convolution stride.
    pub stride: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Input-channel vectors (`IC_VECS`).
    pub cv: usize,
    /// Lanes per input vector (`PI`).
    pub pi: usize,
    /// Width of the loaded input window in pixels.
    pub cols_l: usize,
}

impl SpatialGeom {
    /// Flattened input-channel count (`CV × PI`).
    pub fn c_lanes(&self) -> usize {
        self.cv * self.pi
    }

    /// Output elements per output channel.
    pub fn plane(&self) -> usize {
        self.out_rows * self.out_w
    }
}

/// Adjacent output pixels whose accumulator chains are interleaved for
/// instruction-level parallelism. 8 × `f64` chains cover the FP-add
/// latency of current cores without spilling the register file.
const OX_BANK: usize = 8;

/// The original naive loop nest, kept verbatim as the oracle the blocked
/// kernel is property-tested against: for every output pixel, one `f64`
/// accumulator summed in `(r, s, c)` order, with the layout's div/mod
/// index arithmetic left intact.
///
/// `accum[(k·out_rows+oy)·out_w+ox] += Σ input·weight` for `k` in
/// `0..k_lanes`.
pub fn spatial_scalar(
    g: &SpatialGeom,
    k_lanes: usize,
    input: &[f32],
    weight: &[f32],
    accum: &mut [f64],
) {
    let c_lanes = g.c_lanes();
    for k in 0..k_lanes {
        for oy in 0..g.out_rows {
            for ox in 0..g.out_w {
                let mut acc = 0.0f64;
                for r in 0..g.kh {
                    let iy = oy * g.stride + r;
                    for s in 0..g.kw {
                        let ix = ox * g.stride + s;
                        for c in 0..c_lanes {
                            let in_idx = ((iy * g.cols_l + ix) * g.cv + c / g.pi) * g.pi + c % g.pi;
                            let w_idx = ((k * c_lanes + c) * g.kh + r) * g.kw + s;
                            acc += input[in_idx] as f64 * weight[w_idx] as f64;
                        }
                    }
                }
                accum[(k * g.out_rows + oy) * g.out_w + ox] += acc;
            }
        }
    }
}

/// Builds the `[k][r][s][c]` (per-`k` `[taps][c]`) f64-widened weight
/// pack for `k_lanes` output channels of one Spatial/FC unit — the
/// input-invariant repack a session plan caches so steady-state runs
/// skip it. The per-`k` layout is exactly what [`spatial_blocked`]
/// consumes via its `prepack` argument; the widening is exact, so a
/// cached pack is bit-identical to one rebuilt per call.
pub fn pack_spatial_weights(
    kh: usize,
    kw: usize,
    c_lanes: usize,
    k_lanes: usize,
    weight: &[f32],
    out: &mut Vec<f64>,
) {
    let taps = kh * kw;
    out.clear();
    out.reserve(k_lanes * taps * c_lanes);
    for k in 0..k_lanes {
        if taps == 1 {
            out.extend(
                weight[k * c_lanes..(k + 1) * c_lanes]
                    .iter()
                    .map(|&w| w as f64),
            );
        } else {
            for r in 0..kh {
                for s in 0..kw {
                    for c in 0..c_lanes {
                        out.push(weight[((k * c_lanes + c) * kh + r) * kw + s] as f64);
                    }
                }
            }
        }
    }
}

/// Cache-blocked, bank-accumulated Spatial kernel for output channels
/// `ks` (absolute indices into the unit's weight image).
///
/// `input` is the unit's window pre-widened to `f64` by the caller — the
/// widening is exact and shared by every output channel, replacing one
/// `f32 → f64` convert per MAC with one per window element. `accum_chunk`
/// holds only the planes for `ks` — the caller partitions the unit
/// accumulator by output channel, which is what makes the parallel split
/// race-free. `prepack`, when present, is the unit's full
/// [`pack_spatial_weights`] image (covering *all* `k`, not just `ks`) and
/// replaces the per-call repack; otherwise `pack` is caller-provided
/// scratch for the `[r][s][c]` weight repack (per-worker, reused across
/// calls), likewise widened once.
///
/// Bit-identical to [`spatial_scalar`] restricted to `ks` — with or
/// without `prepack`: every output pixel's `f64` chain is the same
/// operation sequence either way.
pub fn spatial_blocked(
    g: &SpatialGeom,
    ks: std::ops::Range<usize>,
    input: &[f64],
    weight: &[f32],
    prepack: Option<&[f64]>,
    accum_chunk: &mut [f64],
    pack: &mut Vec<f64>,
) {
    let c_lanes = g.c_lanes();
    let plane = g.plane();
    let taps = g.kh * g.kw;
    let step = g.stride * c_lanes;
    debug_assert_eq!(accum_chunk.len(), ks.len() * plane);

    if plane == 1 && taps == 1 {
        // FC layers compile to 1×1 kernels over a 1×1 image: one chain
        // per output channel, banked across channels instead of pixels.
        spatial_fc(ks, c_lanes, input, weight, prepack, accum_chunk);
        return;
    }

    for (k_local, k) in ks.enumerate() {
        // Per-k weight view with contiguous channel runs per (r, s) tap.
        let wk: &[f64] = match prepack {
            Some(p) => &p[k * taps * c_lanes..][..taps * c_lanes],
            None => {
                pack.resize(taps * c_lanes, 0.0);
                if taps == 1 {
                    for (d, &s) in pack.iter_mut().zip(&weight[k * c_lanes..(k + 1) * c_lanes]) {
                        *d = s as f64;
                    }
                } else {
                    for c in 0..c_lanes {
                        for r in 0..g.kh {
                            for s in 0..g.kw {
                                pack[(r * g.kw + s) * c_lanes + c] =
                                    weight[((k * c_lanes + c) * g.kh + r) * g.kw + s] as f64;
                            }
                        }
                    }
                }
                pack
            }
        };

        let out_k = &mut accum_chunk[k_local * plane..(k_local + 1) * plane];
        for oy in 0..g.out_rows {
            let out_row = &mut out_k[oy * g.out_w..(oy + 1) * g.out_w];
            let iy0 = oy * g.stride;

            let mut ox0 = 0;
            while ox0 + OX_BANK <= g.out_w {
                let mut acc = [0.0f64; OX_BANK];
                if g.stride == 1 {
                    // Stride 1: for a fixed r the (s, c) taps are one
                    // contiguous run of kw·C in both the window row and
                    // the [r][s][c] pack — one long dot per kernel row.
                    // Each acc[j] still sums its taps in (r, s, c) order;
                    // the 8 chains are independent and overlap.
                    let run = g.kw * c_lanes;
                    for r in 0..g.kh {
                        let w_r = &wk[r * run..(r + 1) * run];
                        let base = ((iy0 + r) * g.cols_l + ox0) * c_lanes;
                        for (j, a) in acc.iter_mut().enumerate() {
                            let seg = &input[base + j * c_lanes..][..run];
                            let mut aj = *a;
                            for (x, w) in seg.iter().zip(w_r) {
                                aj += *x * *w;
                            }
                            *a = aj;
                        }
                    }
                } else {
                    for r in 0..g.kh {
                        let row = (iy0 + r) * g.cols_l;
                        for s in 0..g.kw {
                            let w_rs = &wk[(r * g.kw + s) * c_lanes..][..c_lanes];
                            let base = (row + ox0 * g.stride + s) * c_lanes;
                            for (j, a) in acc.iter_mut().enumerate() {
                                let seg = &input[base + j * step..][..c_lanes];
                                let mut aj = *a;
                                for (x, w) in seg.iter().zip(w_rs) {
                                    aj += *x * *w;
                                }
                                *a = aj;
                            }
                        }
                    }
                }
                for (o, a) in out_row[ox0..ox0 + OX_BANK].iter_mut().zip(acc) {
                    *o += a;
                }
                ox0 += OX_BANK;
            }

            // Tail pixels: one chain each, same (r, s, c) order.
            for ox in ox0..g.out_w {
                let mut acc = 0.0f64;
                if g.stride == 1 {
                    let run = g.kw * c_lanes;
                    for r in 0..g.kh {
                        let w_r = &wk[r * run..(r + 1) * run];
                        let seg = &input[((iy0 + r) * g.cols_l + ox) * c_lanes..][..run];
                        for (x, w) in seg.iter().zip(w_r) {
                            acc += *x * *w;
                        }
                    }
                } else {
                    for r in 0..g.kh {
                        let row = (iy0 + r) * g.cols_l;
                        for s in 0..g.kw {
                            let w_rs = &wk[(r * g.kw + s) * c_lanes..][..c_lanes];
                            let seg = &input[(row + ox * g.stride + s) * c_lanes..][..c_lanes];
                            for (x, w) in seg.iter().zip(w_rs) {
                                acc += *x * *w;
                            }
                        }
                    }
                }
                out_row[ox] += acc;
            }
        }
    }
}

/// `1×1`-kernel, single-pixel units — the compiled form of FC layers.
///
/// Pixel banking degenerates here (there is one pixel), so the bank runs
/// across *output channels* instead: four channels' chains advance
/// together, each still summing its contiguous `[k][c]` weight row against
/// the input in ascending-`c` order — the exact [`spatial_scalar`]
/// sequence per channel. With `prepack` the rows come pre-widened from the
/// cached `[k][c]` pack; each MAC multiplies the same `f64` values in the
/// same order, so the result is bit-identical either way.
fn spatial_fc(
    ks: std::ops::Range<usize>,
    c_lanes: usize,
    input: &[f64],
    weight: &[f32],
    prepack: Option<&[f64]>,
    accum_chunk: &mut [f64],
) {
    const K_BANK: usize = 4;
    let seg = &input[..c_lanes];
    let mut k = ks.start;
    let mut k_local = 0;
    if let Some(p) = prepack {
        while k + K_BANK <= ks.end {
            let (w0, rest) = p[k * c_lanes..(k + K_BANK) * c_lanes].split_at(c_lanes);
            let (w1, rest) = rest.split_at(c_lanes);
            let (w2, w3) = rest.split_at(c_lanes);
            let mut a = [0.0f64; K_BANK];
            for ((((x, b0), b1), b2), b3) in seg.iter().zip(w0).zip(w1).zip(w2).zip(w3) {
                let xv = *x;
                a[0] += xv * *b0;
                a[1] += xv * *b1;
                a[2] += xv * *b2;
                a[3] += xv * *b3;
            }
            for (o, a) in accum_chunk[k_local..k_local + K_BANK].iter_mut().zip(a) {
                *o += a;
            }
            k += K_BANK;
            k_local += K_BANK;
        }
        while k < ks.end {
            let wk = &p[k * c_lanes..][..c_lanes];
            let mut acc = 0.0f64;
            for (x, w) in seg.iter().zip(wk) {
                acc += *x * *w;
            }
            accum_chunk[k_local] += acc;
            k += 1;
            k_local += 1;
        }
        return;
    }
    while k + K_BANK <= ks.end {
        let (w0, rest) = weight[k * c_lanes..(k + K_BANK) * c_lanes].split_at(c_lanes);
        let (w1, rest) = rest.split_at(c_lanes);
        let (w2, w3) = rest.split_at(c_lanes);
        let mut a = [0.0f64; K_BANK];
        for ((((x, b0), b1), b2), b3) in seg.iter().zip(w0).zip(w1).zip(w2).zip(w3) {
            let xv = *x;
            a[0] += xv * *b0 as f64;
            a[1] += xv * *b1 as f64;
            a[2] += xv * *b2 as f64;
            a[3] += xv * *b3 as f64;
        }
        for (o, a) in accum_chunk[k_local..k_local + K_BANK].iter_mut().zip(a) {
            *o += a;
        }
        k += K_BANK;
        k_local += K_BANK;
    }
    while k < ks.end {
        let wk = &weight[k * c_lanes..][..c_lanes];
        let mut acc = 0.0f64;
        for (x, w) in seg.iter().zip(wk) {
            acc += *x * *w as f64;
        }
        accum_chunk[k_local] += acc;
        k += 1;
        k_local += 1;
    }
}

/// Geometry of one Winograd-mode COMP unit (all sizes in elements) — the
/// values [`wino_pass2`] and [`wino_pass3`] share, hoisted out of the
/// per-tile loops. Constructed once per unit by the batched COMP path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WinoGeom {
    /// Output rows computed by the unit.
    pub out_rows: usize,
    /// Output width.
    pub out_w: usize,
    /// Input-channel vectors (`IC_VECS`).
    pub cv: usize,
    /// Lanes per input vector (`PI`).
    pub pi: usize,
    /// Width of the loaded input window in pixels (stride 1 in Winograd
    /// mode: `out_w - 1 + kw`).
    pub cols_l: usize,
    /// Height of the loaded input window.
    pub rows_l: usize,
    /// Tile grid height (`ceil(out_rows / m)`).
    pub tiles_y: usize,
    /// Tile grid width (`ceil(out_w / m)`).
    pub tiles_x: usize,
    /// Vertical window offset of this kernel-decomposition block.
    pub y_off: usize,
    /// Horizontal window offset of this kernel-decomposition block.
    pub x_off: usize,
    /// Base of the unit's window in the input buffer.
    pub inp_base: usize,
}

impl WinoGeom {
    /// Flattened input-channel count (`CV × PI`).
    pub fn c_lanes(&self) -> usize {
        self.cv * self.pi
    }

    /// Tiles per channel plane.
    pub fn tiles(&self) -> usize {
        self.tiles_y * self.tiles_x
    }
}

/// Winograd pass 2 as a standalone kernel: transforms every channel of
/// every tile of one unit's loaded window into `v_all[tile][c][e]`,
/// resizing `v_all` to fit.
///
/// Reads replicate the in-place COMP path exactly — window rows at
/// `inp_base + (y·CV + cvi)·colsₗ·PI + lane`, with positions beyond the
/// loaded window (clipped edge tiles) reading zero — and each tile's
/// transform is the same operation sequence, so the produced values are
/// bit-identical to the sequential path's. Monomorphized per tile size so
/// the `F(2×2)` add/sub transform inlines into the gather loop.
///
/// `skip_c[c]`, when given, marks channels whose transformed tiles are
/// provably never read — every `(k, c)` weight row is all `+0.0`, so
/// [`wino_pass3`]'s zero-row elision drops the channel for every output
/// channel. Those rows of `v_all` are left untouched (stale), which is
/// only sound under exactly that contract.
pub fn wino_pass2(
    tile: TileConfig,
    g: &WinoGeom,
    input: &[f32],
    v_all: &mut Vec<f64>,
    skip_c: Option<&[bool]>,
) {
    match tile {
        TileConfig::F2x2 => wino_pass2_mono::<4, 2>(g, input, v_all, skip_c),
        TileConfig::F4x4 => wino_pass2_mono::<6, 4>(g, input, v_all, skip_c),
        TileConfig::F6x6 => wino_pass2_mono::<8, 6>(g, input, v_all, skip_c),
    }
}

fn wino_pass2_mono<const PT: usize, const M: usize>(
    g: &WinoGeom,
    input: &[f32],
    v_all: &mut Vec<f64>,
    skip_c: Option<&[bool]>,
) {
    let tile = tile_of::<PT>();
    let pt2 = PT * PT;
    let c_lanes = g.c_lanes();
    v_all.resize(g.tiles() * c_lanes * pt2, 0.0);
    let mut d = [0.0f64; 64];
    let d = &mut d[..pt2];
    let mut t = [0.0f64; 64];
    let t = &mut t[..pt2];
    for ty in 0..g.tiles_y {
        for tx in 0..g.tiles_x {
            let t_idx = ty * g.tiles_x + tx;
            // Interior tiles (the vast majority) read a fully in-window,
            // in-bounds PT×PT patch; hoisting that check out of the
            // gather lets the hot loop run without per-pixel branches.
            // Clipped or short-loaded tiles take the checked path, whose
            // zero fills match the in-place COMP reads exactly.
            let y0 = g.y_off + ty * M;
            let x0 = g.x_off + tx * M;
            let interior = y0 + PT <= g.rows_l
                && x0 + PT <= g.cols_l
                && g.inp_base
                    + ((y0 + PT - 1) * g.cv + g.cv - 1) * g.cols_l * g.pi
                    + (x0 + PT - 1) * g.pi
                    + g.pi
                    <= input.len();
            for c in 0..c_lanes {
                if skip_c.is_some_and(|s| s[c]) {
                    continue;
                }
                let (cvi, lane) = (c / g.pi, c % g.pi);
                let out = &mut v_all[(t_idx * c_lanes + c) * pt2..][..pt2];
                if PT == 4 && interior {
                    // F(2×2) interior tile: gather each column straight
                    // into `input_tile_f2`'s column pass, skipping the
                    // `d` round-trip. Same loads, same add/sub order, so
                    // the result is bit-identical to the buffered path.
                    let row0 = g.inp_base + (y0 * g.cv + cvi) * g.cols_l * g.pi + lane;
                    let rstep = g.cv * g.cols_l * g.pi;
                    for j in 0..4 {
                        let col = row0 + (x0 + j) * g.pi;
                        let x0v = input[col] as f64;
                        let x1v = input[col + rstep] as f64;
                        let x2v = input[col + 2 * rstep] as f64;
                        let x3v = input[col + 3 * rstep] as f64;
                        t[j] = x0v - x2v;
                        t[4 + j] = x1v + x2v;
                        t[8 + j] = x2v - x1v;
                        t[12 + j] = x1v - x3v;
                    }
                    for i in 0..4 {
                        let (r0, r1, r2, r3) = (t[i * 4], t[i * 4 + 1], t[i * 4 + 2], t[i * 4 + 3]);
                        out[i * 4] = r0 - r2;
                        out[i * 4 + 1] = r1 + r2;
                        out[i * 4 + 2] = r2 - r1;
                        out[i * 4 + 3] = r1 - r3;
                    }
                    continue;
                }
                if interior {
                    for dy in 0..PT {
                        let row = g.inp_base + ((y0 + dy) * g.cv + cvi) * g.cols_l * g.pi + lane;
                        let drow = &mut d[dy * PT..(dy + 1) * PT];
                        for (dx, dv) in drow.iter_mut().enumerate() {
                            *dv = input[row + (x0 + dx) * g.pi] as f64;
                        }
                    }
                } else {
                    for dy in 0..PT {
                        let y = y0 + dy;
                        let drow = &mut d[dy * PT..(dy + 1) * PT];
                        if y >= g.rows_l {
                            drow.fill(0.0);
                            continue;
                        }
                        let row = g.inp_base + (y * g.cv + cvi) * g.cols_l * g.pi + lane;
                        for (dx, dv) in drow.iter_mut().enumerate() {
                            let x = x0 + dx;
                            *dv = if x >= g.cols_l {
                                0.0
                            } else {
                                input.get(row + x * g.pi).copied().unwrap_or(0.0) as f64
                            };
                        }
                    }
                }
                transform::transform_input_tile_buf(tile, d, out, t);
            }
        }
    }
}

/// Winograd pass 3 as a standalone kernel for output channels `ks`:
/// per-`(k, tile)` banked GEMV over the `PT²` transformed positions,
/// inverse transform, clipped accumulate into `accum_chunk` (which holds
/// only the planes for `ks`, as in [`spatial_blocked`]).
///
/// `wt` is the unit's cached `[k][c][e]` weight pack; `v_all` is
/// [`wino_pass2`]'s output. Each `M[e]` is the same ordered sum over `c`
/// as the in-place COMP path and each output cell accumulates the same
/// inverse-transform value, so results are bit-identical. Monomorphized
/// per tile size: the fixed-size accumulator tiles live in registers and
/// the `F(2×2)` transforms inline, which is where the batched path's
/// per-element speedup over the generic loop comes from.
pub fn wino_pass3(
    tile: TileConfig,
    g: &WinoGeom,
    wt: &[f64],
    v_all: &[f64],
    ks: std::ops::Range<usize>,
    accum_chunk: &mut [f64],
) {
    match tile {
        TileConfig::F2x2 => wino_pass3_mono::<4, 2>(g, wt, v_all, ks, accum_chunk),
        TileConfig::F4x4 => wino_pass3_mono::<6, 4>(g, wt, v_all, ks, accum_chunk),
        TileConfig::F6x6 => wino_pass3_mono::<8, 6>(g, wt, v_all, ks, accum_chunk),
    }
}

fn wino_pass3_mono<const PT: usize, const M: usize>(
    g: &WinoGeom,
    wt: &[f64],
    v_all: &[f64],
    ks: std::ops::Range<usize>,
    accum_chunk: &mut [f64],
) {
    let tile = tile_of::<PT>();
    let pt2 = PT * PT;
    let c_lanes = g.c_lanes();
    let plane = g.out_rows * g.out_w;
    debug_assert_eq!(accum_chunk.len(), ks.len() * plane);
    // Tiles are processed in blocks of T_BLK so each `(k, c)` weight row
    // is loaded once and swept across the block — T_BLK independent
    // accumulation chains keep the FMA units busy where a single tile's
    // chain would stall on latency. Each `m` slot still sums its `(w, v)`
    // products in ascending `c`, so per-cell values are bit-identical to
    // the tile-at-a-time order (tiles write disjoint output cells).
    const T_BLK: usize = 8;
    let mut m_blk = [0.0f64; 64 * T_BLK];
    let mut y = [0.0f64; 36];
    let y = &mut y[..M * M];
    let mut t = [0.0f64; 64];
    let t = &mut t[..M * PT];
    let tiles = g.tiles();
    for (k_local, k) in ks.enumerate() {
        let out_k = &mut accum_chunk[k_local * plane..(k_local + 1) * plane];
        let wk = &wt[k * c_lanes * pt2..][..c_lanes * pt2];
        let mut tb = 0;
        while tb < tiles {
            let nb = T_BLK.min(tiles - tb);
            let m_blk = &mut m_blk[..nb * pt2];
            m_blk.fill(0.0);
            for c in 0..c_lanes {
                let wrow = &wk[c * pt2..][..pt2];
                // Channels padded up to the PI lane width carry an
                // all-(+0.0) weight row; each `m` slot starts at +0.0 and
                // an IEEE sum is −0.0 only when both addends are −0.0, so
                // the slots are never −0.0 and adding `+0.0·v` (±0.0 for
                // the finite `v` a zero-padded channel produces) leaves
                // every slot bitwise unchanged — the row is a provable
                // no-op and is skipped.
                if wrow.iter().all(|w| w.to_bits() == 0) {
                    continue;
                }
                let vb = &v_all[(tb * c_lanes + c) * pt2..];
                for ti in 0..nb {
                    let vrow = &vb[ti * c_lanes * pt2..][..pt2];
                    let m = &mut m_blk[ti * pt2..][..pt2];
                    for ((mv, wv), vv) in m.iter_mut().zip(wrow).zip(vrow) {
                        *mv += wv * vv;
                    }
                }
            }
            for ti in 0..nb {
                let t_idx = tb + ti;
                let (tyy, tx) = (t_idx / g.tiles_x, t_idx % g.tiles_x);
                transform::transform_output_tile_buf(tile, &m_blk[ti * pt2..][..pt2], y, t);
                let (oy0, ox0) = (tyy * M, tx * M);
                if oy0 + M <= g.out_rows && ox0 + M <= g.out_w {
                    // Interior tile: unclipped M×M accumulate.
                    for dy in 0..M {
                        let orow = &mut out_k[(oy0 + dy) * g.out_w + ox0..][..M];
                        for (o, yv) in orow.iter_mut().zip(&y[dy * M..(dy + 1) * M]) {
                            *o += yv;
                        }
                    }
                } else {
                    for dy in 0..M {
                        let oy = oy0 + dy;
                        if oy >= g.out_rows {
                            break;
                        }
                        for dx in 0..M {
                            let ox = ox0 + dx;
                            if ox < g.out_w {
                                out_k[oy * g.out_w + ox] += y[dy * M + dx];
                            }
                        }
                    }
                }
            }
            tb += nb;
        }
    }
}

/// Recovers the [`TileConfig`] from a monomorphization constant so the
/// branch folds away inside the generic kernels.
fn tile_of<const PT: usize>() -> TileConfig {
    match PT {
        4 => TileConfig::F2x2,
        6 => TileConfig::F4x4,
        _ => TileConfig::F6x6,
    }
}

/// Batched FC kernel: every lane's `(input, accum)` pair advances through
/// the *same* prepacked `[k][c]` weight image, traversed once per
/// `K_BANK` output channels instead of once per batch element — the
/// `O(weights + B·activations)` form of [`spatial_blocked`]'s FC path.
///
/// Per `(k, lane)` the accumulator chain is the identical ascending-`c`
/// banked dot product [`spatial_blocked`] computes with `prepack` over the
/// full `0..k_lanes` range, so each lane's result is bit-identical to a
/// sequential `B = 1` run.
pub fn spatial_fc_batched(
    k_lanes: usize,
    c_lanes: usize,
    prepack: &[f64],
    lanes: &mut [(&[f64], &mut [f64])],
) {
    const K_BANK: usize = 4;
    let mut k = 0;
    while k + K_BANK <= k_lanes {
        let (w0, rest) = prepack[k * c_lanes..(k + K_BANK) * c_lanes].split_at(c_lanes);
        let (w1, rest) = rest.split_at(c_lanes);
        let (w2, w3) = rest.split_at(c_lanes);
        for (input, accum) in lanes.iter_mut() {
            let seg = &input[..c_lanes];
            let mut a = [0.0f64; K_BANK];
            for ((((x, b0), b1), b2), b3) in seg.iter().zip(w0).zip(w1).zip(w2).zip(w3) {
                let xv = *x;
                a[0] += xv * *b0;
                a[1] += xv * *b1;
                a[2] += xv * *b2;
                a[3] += xv * *b3;
            }
            for (o, a) in accum[k..k + K_BANK].iter_mut().zip(a) {
                *o += a;
            }
        }
        k += K_BANK;
    }
    while k < k_lanes {
        let wk = &prepack[k * c_lanes..][..c_lanes];
        for (input, accum) in lanes.iter_mut() {
            let seg = &input[..c_lanes];
            let mut acc = 0.0f64;
            for (x, w) in seg.iter().zip(wk) {
                acc += *x * *w;
            }
            accum[k] += acc;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_both(g: &SpatialGeom, k_lanes: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let c_lanes = g.c_lanes();
        let rows_l = (g.out_rows - 1) * g.stride + g.kh;
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as i32 - (1 << 23)) as f32 / 256.0
        };
        let input: Vec<f32> = (0..rows_l * g.cols_l * c_lanes).map(|_| next()).collect();
        let weight: Vec<f32> = (0..k_lanes * c_lanes * g.kh * g.kw)
            .map(|_| next())
            .collect();
        let init: Vec<f64> = (0..k_lanes * g.plane()).map(|_| next() as f64).collect();

        let mut a = init.clone();
        spatial_scalar(g, k_lanes, &input, &weight, &mut a);
        let mut b = init.clone();
        let mut pack = Vec::new();
        let wide: Vec<f64> = input.iter().map(|&x| x as f64).collect();
        spatial_blocked(g, 0..k_lanes, &wide, &weight, None, &mut b, &mut pack);
        // The prepacked path must agree bit for bit as well.
        let mut prepacked = Vec::new();
        pack_spatial_weights(g.kh, g.kw, c_lanes, k_lanes, &weight, &mut prepacked);
        let mut c = init;
        spatial_blocked(
            g,
            0..k_lanes,
            &wide,
            &weight,
            Some(&prepacked),
            &mut c,
            &mut pack,
        );
        assert!(
            b.iter().zip(&c).all(|(x, y)| x.to_bits() == y.to_bits()),
            "prepacked kernel diverged for geom {g:?}"
        );
        (a, b)
    }

    #[test]
    fn blocked_matches_scalar_exactly() {
        // out_w both below and beyond OX_BANK, strides 1 and 2, 1x1 and
        // 3x3 kernels, multi-vector channels.
        for (out_rows, out_w, stride, kh, kw, cv, pi, k_lanes) in [
            (4, 4, 1, 3, 3, 1, 4, 4),
            (3, 11, 1, 3, 3, 2, 4, 8),
            (2, 9, 2, 3, 3, 1, 2, 3),
            (1, 1, 1, 1, 1, 1, 4, 4),
            (1, 1, 1, 1, 1, 4, 4, 7),
            (5, 16, 1, 1, 1, 2, 2, 2),
            (2, 8, 2, 5, 5, 1, 1, 1),
        ] {
            let g = SpatialGeom {
                out_rows,
                out_w,
                stride,
                kh,
                kw,
                cv,
                pi,
                cols_l: (out_w - 1) * stride + kw,
            };
            let (a, b) = run_both(&g, k_lanes, 7 + out_w as u64);
            assert!(
                a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
                "mismatch for geom {g:?}"
            );
        }
    }

    #[test]
    fn blocked_k_ranges_partition_the_full_result() {
        let g = SpatialGeom {
            out_rows: 3,
            out_w: 10,
            stride: 1,
            kh: 3,
            kw: 3,
            cv: 1,
            pi: 4,
            cols_l: 12,
        };
        let k_lanes = 8;
        let (full, _) = run_both(&g, k_lanes, 99);
        // Recompute with the k range split in two and compare planes.
        let c_lanes = g.c_lanes();
        let rows_l = (g.out_rows - 1) * g.stride + g.kh;
        let mut state = 99u64.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as i32 - (1 << 23)) as f32 / 256.0
        };
        let input: Vec<f32> = (0..rows_l * g.cols_l * c_lanes).map(|_| next()).collect();
        let weight: Vec<f32> = (0..k_lanes * c_lanes * g.kh * g.kw)
            .map(|_| next())
            .collect();
        let init: Vec<f64> = (0..k_lanes * g.plane()).map(|_| next() as f64).collect();
        let mut split = init;
        let mut pack = Vec::new();
        let wide: Vec<f64> = input.iter().map(|&x| x as f64).collect();
        let mid = 3 * g.plane();
        let (lo, hi) = split.split_at_mut(mid);
        spatial_blocked(&g, 0..3, &wide, &weight, None, lo, &mut pack);
        spatial_blocked(&g, 3..k_lanes, &wide, &weight, None, hi, &mut pack);
        assert!(full
            .iter()
            .zip(&split)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    fn rng(seed: u64) -> impl FnMut() -> f32 {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as i32 - (1 << 23)) as f32 / 256.0
        }
    }

    #[test]
    fn fc_batched_matches_sequential_fc_bit_for_bit() {
        // The batched FC kernel walks weights k-outer/lane-inner; each
        // lane must land on exactly the bits the sequential prepacked FC
        // path produces for the same input.
        for (k_lanes, c_lanes, batch) in [(10, 16, 1), (8, 32, 3), (7, 5, 16)] {
            let mut next = rng(31 + k_lanes as u64);
            let prepack: Vec<f64> = (0..k_lanes * c_lanes).map(|_| next() as f64).collect();
            let inputs: Vec<Vec<f64>> = (0..batch)
                .map(|_| (0..c_lanes).map(|_| next() as f64).collect())
                .collect();
            let init: Vec<f64> = (0..k_lanes).map(|_| next() as f64).collect();

            let g = SpatialGeom {
                out_rows: 1,
                out_w: 1,
                stride: 1,
                kh: 1,
                kw: 1,
                cv: 1,
                pi: c_lanes,
                cols_l: 1,
            };
            let mut pack = Vec::new();
            let sequential: Vec<Vec<f64>> = inputs
                .iter()
                .map(|input| {
                    let mut acc = init.clone();
                    spatial_blocked(
                        &g,
                        0..k_lanes,
                        input,
                        &[],
                        Some(&prepack),
                        &mut acc,
                        &mut pack,
                    );
                    acc
                })
                .collect();

            let mut accums: Vec<Vec<f64>> = vec![init.clone(); batch];
            let mut lanes: Vec<(&[f64], &mut [f64])> = inputs
                .iter()
                .zip(accums.iter_mut())
                .map(|(i, a)| (i.as_slice(), a.as_mut_slice()))
                .collect();
            spatial_fc_batched(k_lanes, c_lanes, &prepack, &mut lanes);
            for (b, (got, want)) in accums.iter().zip(&sequential).enumerate() {
                assert!(
                    got.iter()
                        .zip(want)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "lane {b} diverged for k={k_lanes} c={c_lanes}"
                );
            }
        }
    }

    /// The in-place Winograd passes of the COMP path, replicated verbatim
    /// (Vec-based transforms, same loop order) as the oracle the
    /// standalone monomorphized kernels are pinned against.
    fn wino_reference(
        tile: TileConfig,
        g: &WinoGeom,
        wt: &[f64],
        input: &[f32],
        accum: &mut [f64],
    ) -> Vec<f64> {
        let pt = tile.pt();
        let pt2 = pt * pt;
        let m = tile.m();
        let c_lanes = g.c_lanes();
        let mut v_all = vec![0.0f64; g.tiles() * c_lanes * pt2];
        let mut d = vec![0.0f64; pt2];
        let mut v = vec![0.0f64; pt2];
        let mut t = Vec::new();
        for ty in 0..g.tiles_y {
            for tx in 0..g.tiles_x {
                for c in 0..c_lanes {
                    let (cvi, lane) = (c / g.pi, c % g.pi);
                    for dy in 0..pt {
                        let y = g.y_off + ty * m + dy;
                        let drow = &mut d[dy * pt..(dy + 1) * pt];
                        if y >= g.rows_l {
                            drow.fill(0.0);
                            continue;
                        }
                        let row = g.inp_base + (y * g.cv + cvi) * g.cols_l * g.pi + lane;
                        for (dx, dv) in drow.iter_mut().enumerate() {
                            let x = g.x_off + tx * m + dx;
                            *dv = if x >= g.cols_l {
                                0.0
                            } else {
                                input.get(row + x * g.pi).copied().unwrap_or(0.0) as f64
                            };
                        }
                    }
                    transform::transform_input_tile_into(tile, &d, &mut v, &mut t);
                    let t_idx = ty * g.tiles_x + tx;
                    v_all[(t_idx * c_lanes + c) * pt2..][..pt2].copy_from_slice(&v);
                }
            }
        }
        let plane = g.out_rows * g.out_w;
        let k_lanes = accum.len() / plane;
        let mut m_tile = vec![0.0f64; pt2];
        let mut y = vec![0.0f64; m * m];
        for k in 0..k_lanes {
            let out_k = &mut accum[k * plane..(k + 1) * plane];
            for ty in 0..g.tiles_y {
                for tx in 0..g.tiles_x {
                    let t_idx = ty * g.tiles_x + tx;
                    m_tile.fill(0.0);
                    for c in 0..c_lanes {
                        let wrow = &wt[(k * c_lanes + c) * pt2..][..pt2];
                        let vrow = &v_all[(t_idx * c_lanes + c) * pt2..][..pt2];
                        for ((mv, wv), vv) in m_tile.iter_mut().zip(wrow).zip(vrow) {
                            *mv += wv * vv;
                        }
                    }
                    transform::transform_output_tile_into(tile, &m_tile, &mut y, &mut t);
                    for dy in 0..m {
                        let oy = ty * m + dy;
                        if oy >= g.out_rows {
                            break;
                        }
                        for dx in 0..m {
                            let ox = tx * m + dx;
                            if ox < g.out_w {
                                out_k[oy * g.out_w + ox] += y[dy * m + dx];
                            }
                        }
                    }
                }
            }
        }
        v_all
    }

    #[test]
    fn wino_passes_match_inplace_algorithm_bit_for_bit() {
        for tile in TileConfig::EXTENDED {
            let m = tile.m();
            let pt2 = tile.pt() * tile.pt();
            for (out_rows, out_w, cv, pi, k_lanes, off) in
                [(5, 7, 1, 4, 6, 0), (4, 4, 2, 2, 4, 3), (3, 9, 1, 2, 5, 0)]
            {
                let g = WinoGeom {
                    out_rows,
                    out_w,
                    cv,
                    pi,
                    cols_l: out_w - 1 + 3,
                    rows_l: out_rows - 1 + 3,
                    tiles_y: out_rows.div_ceil(m),
                    tiles_x: out_w.div_ceil(m),
                    y_off: off,
                    x_off: off,
                    inp_base: 0,
                };
                let c_lanes = g.c_lanes();
                let mut next = rng(17 + out_w as u64 + m as u64);
                let input: Vec<f32> = (0..g.rows_l * g.cols_l * c_lanes).map(|_| next()).collect();
                let wt: Vec<f64> = (0..k_lanes * c_lanes * pt2)
                    .map(|_| next() as f64)
                    .collect();
                let init: Vec<f64> = (0..k_lanes * out_rows * out_w)
                    .map(|_| next() as f64)
                    .collect();

                let mut want = init.clone();
                let v_want = wino_reference(tile, &g, &wt, &input, &mut want);

                let mut v_got = Vec::new();
                wino_pass2(tile, &g, &input, &mut v_got, None);
                assert!(
                    v_got
                        .iter()
                        .zip(&v_want)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "pass2 diverged for {tile:?} out {out_rows}x{out_w}"
                );
                // Full range and a split range must both match the oracle.
                let mut got = init.clone();
                wino_pass3(tile, &g, &wt, &v_got, 0..k_lanes, &mut got);
                assert!(
                    got.iter()
                        .zip(&want)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "pass3 diverged for {tile:?} out {out_rows}x{out_w}"
                );
                let mut split = init.clone();
                let plane = out_rows * out_w;
                let (lo, hi) = split.split_at_mut(2 * plane);
                wino_pass3(tile, &g, &wt, &v_got, 0..2, lo);
                wino_pass3(tile, &g, &wt, &v_got, 2..k_lanes, hi);
                assert!(
                    split
                        .iter()
                        .zip(&want)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "split pass3 diverged for {tile:?}"
                );
            }
        }
    }
}
