//! Cache-blocked Spatial-mode MAC micro-kernels.
//!
//! The Spatial PE models a `GK = PI×PO` MAC broadcast array; functionally
//! it is a direct convolution over the loaded window. The naive loop nest
//! ([`spatial_scalar`], kept as the property-test oracle) carries one
//! `f64` accumulator per output pixel through a strict dependency chain —
//! on a modern core that bounds throughput at one MAC per FP-add latency.
//!
//! [`spatial_blocked`] computes *bit-identical* results faster by
//! exploiting two facts that change no arithmetic:
//!
//! - **Index simplification.** The SPAT input layout stores lanes of a
//!   vector contiguously, so `((iy·colsₗ+ix)·CV + c/PI)·PI + c%PI` is just
//!   `(iy·colsₗ+ix)·C + c` — the per-MAC div/mod disappears and the
//!   channel dot product runs over a contiguous slice.
//! - **Independent accumulator banks.** Different output pixels have
//!   *independent* chains. Processing a block of `OX_BANK` adjacent pixels
//!   with a bank of accumulators keeps every per-pixel chain in the
//!   original `(r, s, c)` order (so each `f64` sum is the exact same
//!   sequence of operations) while giving the core `OX_BANK` chains to
//!   overlap.
//!
//! Two further transformations move work out of the MAC loop without
//! touching any accumulation: weights are repacked per output channel
//! from `[k][c][r][s]` into `[r][s][c]` so the inner dot is contiguous,
//! and both operands are widened `f32 → f64` *once* (exact) instead of
//! once per MAC, so the hot loop is pure `f64` multiply-add.

/// Geometry of one Spatial-mode COMP unit (all sizes in elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpatialGeom {
    /// Output rows computed by the unit.
    pub out_rows: usize,
    /// Output width.
    pub out_w: usize,
    /// Convolution stride.
    pub stride: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Input-channel vectors (`IC_VECS`).
    pub cv: usize,
    /// Lanes per input vector (`PI`).
    pub pi: usize,
    /// Width of the loaded input window in pixels.
    pub cols_l: usize,
}

impl SpatialGeom {
    /// Flattened input-channel count (`CV × PI`).
    pub fn c_lanes(&self) -> usize {
        self.cv * self.pi
    }

    /// Output elements per output channel.
    pub fn plane(&self) -> usize {
        self.out_rows * self.out_w
    }
}

/// Adjacent output pixels whose accumulator chains are interleaved for
/// instruction-level parallelism. 8 × `f64` chains cover the FP-add
/// latency of current cores without spilling the register file.
const OX_BANK: usize = 8;

/// The original naive loop nest, kept verbatim as the oracle the blocked
/// kernel is property-tested against: for every output pixel, one `f64`
/// accumulator summed in `(r, s, c)` order, with the layout's div/mod
/// index arithmetic left intact.
///
/// `accum[(k·out_rows+oy)·out_w+ox] += Σ input·weight` for `k` in
/// `0..k_lanes`.
pub fn spatial_scalar(
    g: &SpatialGeom,
    k_lanes: usize,
    input: &[f32],
    weight: &[f32],
    accum: &mut [f64],
) {
    let c_lanes = g.c_lanes();
    for k in 0..k_lanes {
        for oy in 0..g.out_rows {
            for ox in 0..g.out_w {
                let mut acc = 0.0f64;
                for r in 0..g.kh {
                    let iy = oy * g.stride + r;
                    for s in 0..g.kw {
                        let ix = ox * g.stride + s;
                        for c in 0..c_lanes {
                            let in_idx = ((iy * g.cols_l + ix) * g.cv + c / g.pi) * g.pi + c % g.pi;
                            let w_idx = ((k * c_lanes + c) * g.kh + r) * g.kw + s;
                            acc += input[in_idx] as f64 * weight[w_idx] as f64;
                        }
                    }
                }
                accum[(k * g.out_rows + oy) * g.out_w + ox] += acc;
            }
        }
    }
}

/// Builds the `[k][r][s][c]` (per-`k` `[taps][c]`) f64-widened weight
/// pack for `k_lanes` output channels of one Spatial/FC unit — the
/// input-invariant repack a session plan caches so steady-state runs
/// skip it. The per-`k` layout is exactly what [`spatial_blocked`]
/// consumes via its `prepack` argument; the widening is exact, so a
/// cached pack is bit-identical to one rebuilt per call.
pub fn pack_spatial_weights(
    kh: usize,
    kw: usize,
    c_lanes: usize,
    k_lanes: usize,
    weight: &[f32],
    out: &mut Vec<f64>,
) {
    let taps = kh * kw;
    out.clear();
    out.reserve(k_lanes * taps * c_lanes);
    for k in 0..k_lanes {
        if taps == 1 {
            out.extend(
                weight[k * c_lanes..(k + 1) * c_lanes]
                    .iter()
                    .map(|&w| w as f64),
            );
        } else {
            for r in 0..kh {
                for s in 0..kw {
                    for c in 0..c_lanes {
                        out.push(weight[((k * c_lanes + c) * kh + r) * kw + s] as f64);
                    }
                }
            }
        }
    }
}

/// Cache-blocked, bank-accumulated Spatial kernel for output channels
/// `ks` (absolute indices into the unit's weight image).
///
/// `input` is the unit's window pre-widened to `f64` by the caller — the
/// widening is exact and shared by every output channel, replacing one
/// `f32 → f64` convert per MAC with one per window element. `accum_chunk`
/// holds only the planes for `ks` — the caller partitions the unit
/// accumulator by output channel, which is what makes the parallel split
/// race-free. `prepack`, when present, is the unit's full
/// [`pack_spatial_weights`] image (covering *all* `k`, not just `ks`) and
/// replaces the per-call repack; otherwise `pack` is caller-provided
/// scratch for the `[r][s][c]` weight repack (per-worker, reused across
/// calls), likewise widened once.
///
/// Bit-identical to [`spatial_scalar`] restricted to `ks` — with or
/// without `prepack`: every output pixel's `f64` chain is the same
/// operation sequence either way.
pub fn spatial_blocked(
    g: &SpatialGeom,
    ks: std::ops::Range<usize>,
    input: &[f64],
    weight: &[f32],
    prepack: Option<&[f64]>,
    accum_chunk: &mut [f64],
    pack: &mut Vec<f64>,
) {
    let c_lanes = g.c_lanes();
    let plane = g.plane();
    let taps = g.kh * g.kw;
    let step = g.stride * c_lanes;
    debug_assert_eq!(accum_chunk.len(), ks.len() * plane);

    if plane == 1 && taps == 1 {
        // FC layers compile to 1×1 kernels over a 1×1 image: one chain
        // per output channel, banked across channels instead of pixels.
        spatial_fc(ks, c_lanes, input, weight, prepack, accum_chunk);
        return;
    }

    for (k_local, k) in ks.enumerate() {
        // Per-k weight view with contiguous channel runs per (r, s) tap.
        let wk: &[f64] = match prepack {
            Some(p) => &p[k * taps * c_lanes..][..taps * c_lanes],
            None => {
                pack.resize(taps * c_lanes, 0.0);
                if taps == 1 {
                    for (d, &s) in pack.iter_mut().zip(&weight[k * c_lanes..(k + 1) * c_lanes]) {
                        *d = s as f64;
                    }
                } else {
                    for c in 0..c_lanes {
                        for r in 0..g.kh {
                            for s in 0..g.kw {
                                pack[(r * g.kw + s) * c_lanes + c] =
                                    weight[((k * c_lanes + c) * g.kh + r) * g.kw + s] as f64;
                            }
                        }
                    }
                }
                pack
            }
        };

        let out_k = &mut accum_chunk[k_local * plane..(k_local + 1) * plane];
        for oy in 0..g.out_rows {
            let out_row = &mut out_k[oy * g.out_w..(oy + 1) * g.out_w];
            let iy0 = oy * g.stride;

            let mut ox0 = 0;
            while ox0 + OX_BANK <= g.out_w {
                let mut acc = [0.0f64; OX_BANK];
                if g.stride == 1 {
                    // Stride 1: for a fixed r the (s, c) taps are one
                    // contiguous run of kw·C in both the window row and
                    // the [r][s][c] pack — one long dot per kernel row.
                    // Each acc[j] still sums its taps in (r, s, c) order;
                    // the 8 chains are independent and overlap.
                    let run = g.kw * c_lanes;
                    for r in 0..g.kh {
                        let w_r = &wk[r * run..(r + 1) * run];
                        let base = ((iy0 + r) * g.cols_l + ox0) * c_lanes;
                        for (j, a) in acc.iter_mut().enumerate() {
                            let seg = &input[base + j * c_lanes..][..run];
                            let mut aj = *a;
                            for (x, w) in seg.iter().zip(w_r) {
                                aj += *x * *w;
                            }
                            *a = aj;
                        }
                    }
                } else {
                    for r in 0..g.kh {
                        let row = (iy0 + r) * g.cols_l;
                        for s in 0..g.kw {
                            let w_rs = &wk[(r * g.kw + s) * c_lanes..][..c_lanes];
                            let base = (row + ox0 * g.stride + s) * c_lanes;
                            for (j, a) in acc.iter_mut().enumerate() {
                                let seg = &input[base + j * step..][..c_lanes];
                                let mut aj = *a;
                                for (x, w) in seg.iter().zip(w_rs) {
                                    aj += *x * *w;
                                }
                                *a = aj;
                            }
                        }
                    }
                }
                for (o, a) in out_row[ox0..ox0 + OX_BANK].iter_mut().zip(acc) {
                    *o += a;
                }
                ox0 += OX_BANK;
            }

            // Tail pixels: one chain each, same (r, s, c) order.
            for ox in ox0..g.out_w {
                let mut acc = 0.0f64;
                if g.stride == 1 {
                    let run = g.kw * c_lanes;
                    for r in 0..g.kh {
                        let w_r = &wk[r * run..(r + 1) * run];
                        let seg = &input[((iy0 + r) * g.cols_l + ox) * c_lanes..][..run];
                        for (x, w) in seg.iter().zip(w_r) {
                            acc += *x * *w;
                        }
                    }
                } else {
                    for r in 0..g.kh {
                        let row = (iy0 + r) * g.cols_l;
                        for s in 0..g.kw {
                            let w_rs = &wk[(r * g.kw + s) * c_lanes..][..c_lanes];
                            let seg = &input[(row + ox * g.stride + s) * c_lanes..][..c_lanes];
                            for (x, w) in seg.iter().zip(w_rs) {
                                acc += *x * *w;
                            }
                        }
                    }
                }
                out_row[ox] += acc;
            }
        }
    }
}

/// `1×1`-kernel, single-pixel units — the compiled form of FC layers.
///
/// Pixel banking degenerates here (there is one pixel), so the bank runs
/// across *output channels* instead: four channels' chains advance
/// together, each still summing its contiguous `[k][c]` weight row against
/// the input in ascending-`c` order — the exact [`spatial_scalar`]
/// sequence per channel. With `prepack` the rows come pre-widened from the
/// cached `[k][c]` pack; each MAC multiplies the same `f64` values in the
/// same order, so the result is bit-identical either way.
fn spatial_fc(
    ks: std::ops::Range<usize>,
    c_lanes: usize,
    input: &[f64],
    weight: &[f32],
    prepack: Option<&[f64]>,
    accum_chunk: &mut [f64],
) {
    const K_BANK: usize = 4;
    let seg = &input[..c_lanes];
    let mut k = ks.start;
    let mut k_local = 0;
    if let Some(p) = prepack {
        while k + K_BANK <= ks.end {
            let (w0, rest) = p[k * c_lanes..(k + K_BANK) * c_lanes].split_at(c_lanes);
            let (w1, rest) = rest.split_at(c_lanes);
            let (w2, w3) = rest.split_at(c_lanes);
            let mut a = [0.0f64; K_BANK];
            for ((((x, b0), b1), b2), b3) in seg.iter().zip(w0).zip(w1).zip(w2).zip(w3) {
                let xv = *x;
                a[0] += xv * *b0;
                a[1] += xv * *b1;
                a[2] += xv * *b2;
                a[3] += xv * *b3;
            }
            for (o, a) in accum_chunk[k_local..k_local + K_BANK].iter_mut().zip(a) {
                *o += a;
            }
            k += K_BANK;
            k_local += K_BANK;
        }
        while k < ks.end {
            let wk = &p[k * c_lanes..][..c_lanes];
            let mut acc = 0.0f64;
            for (x, w) in seg.iter().zip(wk) {
                acc += *x * *w;
            }
            accum_chunk[k_local] += acc;
            k += 1;
            k_local += 1;
        }
        return;
    }
    while k + K_BANK <= ks.end {
        let (w0, rest) = weight[k * c_lanes..(k + K_BANK) * c_lanes].split_at(c_lanes);
        let (w1, rest) = rest.split_at(c_lanes);
        let (w2, w3) = rest.split_at(c_lanes);
        let mut a = [0.0f64; K_BANK];
        for ((((x, b0), b1), b2), b3) in seg.iter().zip(w0).zip(w1).zip(w2).zip(w3) {
            let xv = *x;
            a[0] += xv * *b0 as f64;
            a[1] += xv * *b1 as f64;
            a[2] += xv * *b2 as f64;
            a[3] += xv * *b3 as f64;
        }
        for (o, a) in accum_chunk[k_local..k_local + K_BANK].iter_mut().zip(a) {
            *o += a;
        }
        k += K_BANK;
        k_local += K_BANK;
    }
    while k < ks.end {
        let wk = &weight[k * c_lanes..][..c_lanes];
        let mut acc = 0.0f64;
        for (x, w) in seg.iter().zip(wk) {
            acc += *x * *w as f64;
        }
        accum_chunk[k_local] += acc;
        k += 1;
        k_local += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_both(g: &SpatialGeom, k_lanes: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let c_lanes = g.c_lanes();
        let rows_l = (g.out_rows - 1) * g.stride + g.kh;
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as i32 - (1 << 23)) as f32 / 256.0
        };
        let input: Vec<f32> = (0..rows_l * g.cols_l * c_lanes).map(|_| next()).collect();
        let weight: Vec<f32> = (0..k_lanes * c_lanes * g.kh * g.kw)
            .map(|_| next())
            .collect();
        let init: Vec<f64> = (0..k_lanes * g.plane()).map(|_| next() as f64).collect();

        let mut a = init.clone();
        spatial_scalar(g, k_lanes, &input, &weight, &mut a);
        let mut b = init.clone();
        let mut pack = Vec::new();
        let wide: Vec<f64> = input.iter().map(|&x| x as f64).collect();
        spatial_blocked(g, 0..k_lanes, &wide, &weight, None, &mut b, &mut pack);
        // The prepacked path must agree bit for bit as well.
        let mut prepacked = Vec::new();
        pack_spatial_weights(g.kh, g.kw, c_lanes, k_lanes, &weight, &mut prepacked);
        let mut c = init;
        spatial_blocked(
            g,
            0..k_lanes,
            &wide,
            &weight,
            Some(&prepacked),
            &mut c,
            &mut pack,
        );
        assert!(
            b.iter().zip(&c).all(|(x, y)| x.to_bits() == y.to_bits()),
            "prepacked kernel diverged for geom {g:?}"
        );
        (a, b)
    }

    #[test]
    fn blocked_matches_scalar_exactly() {
        // out_w both below and beyond OX_BANK, strides 1 and 2, 1x1 and
        // 3x3 kernels, multi-vector channels.
        for (out_rows, out_w, stride, kh, kw, cv, pi, k_lanes) in [
            (4, 4, 1, 3, 3, 1, 4, 4),
            (3, 11, 1, 3, 3, 2, 4, 8),
            (2, 9, 2, 3, 3, 1, 2, 3),
            (1, 1, 1, 1, 1, 1, 4, 4),
            (1, 1, 1, 1, 1, 4, 4, 7),
            (5, 16, 1, 1, 1, 2, 2, 2),
            (2, 8, 2, 5, 5, 1, 1, 1),
        ] {
            let g = SpatialGeom {
                out_rows,
                out_w,
                stride,
                kh,
                kw,
                cv,
                pi,
                cols_l: (out_w - 1) * stride + kw,
            };
            let (a, b) = run_both(&g, k_lanes, 7 + out_w as u64);
            assert!(
                a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
                "mismatch for geom {g:?}"
            );
        }
    }

    #[test]
    fn blocked_k_ranges_partition_the_full_result() {
        let g = SpatialGeom {
            out_rows: 3,
            out_w: 10,
            stride: 1,
            kh: 3,
            kw: 3,
            cv: 1,
            pi: 4,
            cols_l: 12,
        };
        let k_lanes = 8;
        let (full, _) = run_both(&g, k_lanes, 99);
        // Recompute with the k range split in two and compare planes.
        let c_lanes = g.c_lanes();
        let rows_l = (g.out_rows - 1) * g.stride + g.kh;
        let mut state = 99u64.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as i32 - (1 << 23)) as f32 / 256.0
        };
        let input: Vec<f32> = (0..rows_l * g.cols_l * c_lanes).map(|_| next()).collect();
        let weight: Vec<f32> = (0..k_lanes * c_lanes * g.kh * g.kw)
            .map(|_| next())
            .collect();
        let init: Vec<f64> = (0..k_lanes * g.plane()).map(|_| next() as f64).collect();
        let mut split = init;
        let mut pack = Vec::new();
        let wide: Vec<f64> = input.iter().map(|&x| x as f64).collect();
        let mid = 3 * g.plane();
        let (lo, hi) = split.split_at_mut(mid);
        spatial_blocked(&g, 0..3, &wide, &weight, None, lo, &mut pack);
        spatial_blocked(&g, 3..k_lanes, &wide, &weight, None, hi, &mut pack);
        assert!(full
            .iter()
            .zip(&split)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}
