//! Directed tests of the Figure 5 layout transforms (all four SAVE
//! modes through real two-layer pipelines) and failure injection on the
//! instruction stream (the simulator must detect, not corrupt).

use hybriddnn_compiler::{Compiler, MappingStrategy};
use hybriddnn_estimator::{AcceleratorConfig, ConvMode, Dataflow};
use hybriddnn_isa::{Instruction, Program};
use hybriddnn_model::{reference, synth, NetworkBuilder, Shape};
use hybriddnn_sim::{Accelerator, SimError, SimMode, Simulator};
use hybriddnn_winograd::TileConfig;

fn cfg() -> AcceleratorConfig {
    AcceleratorConfig::new(4, 4, TileConfig::F2x2)
}

/// Two stacked convolutions; the first layer's SAVE must perform the
/// (first-mode → second-mode) layout transform for the pipeline to
/// produce correct data.
fn two_layer_pipeline(first: ConvMode, second: ConvMode) {
    let mut net = NetworkBuilder::new(Shape::new(4, 10, 10))
        .conv("a", 4, 8, 3)
        .conv("b", 8, 4, 3)
        .build()
        .expect("consistent");
    synth::bind_random(&mut net, 77).expect("binds");
    let strategy = MappingStrategy::new(vec![
        (first, Dataflow::WeightStationary),
        (second, Dataflow::WeightStationary),
    ]);
    let compiled = Compiler::new(cfg()).compile(&net, &strategy).expect("fits");
    // The compiled first stage must really carry the transform we think.
    let save = compiled.layers()[0]
        .program()
        .instructions()
        .iter()
        .find_map(|i| match i {
            Instruction::Save(s) => Some(s.clone()),
            _ => None,
        })
        .expect("stage has SAVE");
    assert_eq!(save.src_wino, first == ConvMode::Winograd);
    assert_eq!(save.dst_wino, second == ConvMode::Winograd);

    let mut sim = Simulator::new(&compiled, SimMode::Functional, 16.0);
    let input = synth::tensor(net.input_shape(), 31);
    let run = sim.run(&compiled, &input).expect("executes");
    let golden = reference::run_network(&net, &input).expect("reference");
    let diff = run.output.max_abs_diff(&golden);
    assert!(diff < 1e-2, "{first}->{second}: diff {diff}");
}

#[test]
fn save_transform_spat_to_spat() {
    two_layer_pipeline(ConvMode::Spatial, ConvMode::Spatial);
}

#[test]
fn save_transform_spat_to_wino() {
    two_layer_pipeline(ConvMode::Spatial, ConvMode::Winograd);
}

#[test]
fn save_transform_wino_to_spat() {
    two_layer_pipeline(ConvMode::Winograd, ConvMode::Spatial);
}

#[test]
fn save_transform_wino_to_wino() {
    two_layer_pipeline(ConvMode::Winograd, ConvMode::Winograd);
}

fn compiled_single_layer() -> (hybriddnn_compiler::CompiledNetwork, Shape) {
    let mut net = NetworkBuilder::new(Shape::new(4, 8, 8))
        .conv("a", 4, 8, 3)
        .build()
        .expect("consistent");
    synth::bind_random(&mut net, 3).expect("binds");
    let strategy = MappingStrategy::new(vec![(ConvMode::Winograd, Dataflow::WeightStationary)]);
    let compiled = Compiler::new(cfg()).compile(&net, &strategy).expect("fits");
    (compiled, net.input_shape())
}

/// Dropping the weight load must deadlock the first COMP that waits for
/// the weight-ready token — detected, not silently mis-executed.
#[test]
fn dropped_weight_load_deadlocks() {
    let (compiled, _) = compiled_single_layer();
    let program = compiled.layers()[0].program();
    let without_wgt: Program = program
        .instructions()
        .iter()
        .filter(|i| {
            !matches!(
                i,
                Instruction::Load(l) if l.kind == hybriddnn_isa::LoadKind::Weight
            )
        })
        .cloned()
        .collect();
    let mut accel = Accelerator::new(cfg(), 16.0, None, false);
    let mut mem = hybriddnn_fpga::ExternalMemory::new();
    let err = accel.run_stage(&without_wgt, &mut mem).unwrap_err();
    assert!(
        matches!(
            err,
            SimError::Deadlock {
                fifo: "wgt_ready",
                ..
            }
        ),
        "{err}"
    );
}

/// Dropping every SAVE starves the output-free tokens after the two
/// ping-pong slots fill.
#[test]
fn dropped_saves_deadlock_on_out_slots() {
    let (compiled, _) = compiled_single_layer();
    let program = compiled.layers()[0].program();
    let without_saves: Program = program
        .instructions()
        .iter()
        .filter(|i| !matches!(i, Instruction::Save(_)))
        .cloned()
        .collect();
    let mut accel = Accelerator::new(cfg(), 16.0, None, false);
    let mut mem = hybriddnn_fpga::ExternalMemory::new();
    let err = accel.run_stage(&without_saves, &mut mem).unwrap_err();
    assert!(
        matches!(
            err,
            SimError::Deadlock {
                fifo: "out_free",
                ..
            }
        ),
        "{err}"
    );
}

/// Corrupting a COMP's buffer base beyond capacity is caught as an
/// overrun in functional mode.
#[test]
fn corrupted_base_is_caught() {
    let (compiled, shape) = compiled_single_layer();
    let mutated: Program = compiled.layers()[0]
        .program()
        .instructions()
        .iter()
        .map(|i| match i {
            Instruction::Comp(c) => {
                let mut c = c.clone();
                c.out_base = (2 * cfg().output_buffer_words() - 1) as u32;
                Instruction::Comp(c)
            }
            other => other.clone(),
        })
        .collect();
    let mut accel = Accelerator::new(cfg(), 16.0, None, true);
    let mut mem = hybriddnn_fpga::ExternalMemory::new();
    compiled.stage_data(&mut mem);
    compiled
        .write_input(&mut mem, &synth::tensor(shape, 1))
        .expect("stages input");
    let err = accel.run_stage(&mutated, &mut mem).unwrap_err();
    assert!(
        matches!(
            err,
            SimError::BufferOverrun {
                buffer: "accumulator",
                ..
            }
        ),
        "{err}"
    );
}

/// A malformed program that never frees the input slots deadlocks on
/// the third load rather than overwriting live data.
#[test]
fn leaked_input_tokens_deadlock() {
    let (compiled, _) = compiled_single_layer();
    let mutated: Program = compiled.layers()[0]
        .program()
        .instructions()
        .iter()
        .map(|i| match i {
            Instruction::Comp(c) => {
                let mut c = c.clone();
                c.free_inp = false;
                Instruction::Comp(c)
            }
            other => other.clone(),
        })
        .collect();
    let mut accel = Accelerator::new(cfg(), 16.0, None, false);
    let mut mem = hybriddnn_fpga::ExternalMemory::new();
    let err = accel.run_stage(&mutated, &mut mem).unwrap_err();
    assert!(
        matches!(
            err,
            SimError::Deadlock {
                fifo: "inp_free",
                ..
            }
        ),
        "{err}"
    );
}

/// The experimental F(6x6,3x3) tile (PT=8) runs end to end through the
/// whole compiler + simulator stack and still matches the reference —
/// the §5.1 trade-off is about cost, not correctness.
#[test]
fn f6x6_extension_runs_end_to_end() {
    let cfg = AcceleratorConfig::new(4, 4, TileConfig::F6x6);
    let mut net = NetworkBuilder::new(Shape::new(3, 12, 12))
        .conv("a", 3, 8, 3)
        .conv("b", 8, 4, 3)
        .build()
        .expect("consistent");
    synth::bind_random(&mut net, 13).expect("binds");
    let strategy = MappingStrategy::new(vec![
        (ConvMode::Winograd, Dataflow::WeightStationary),
        (ConvMode::Winograd, Dataflow::InputStationary),
    ]);
    let compiled = Compiler::new(cfg).compile(&net, &strategy).expect("fits");
    let mut sim = Simulator::new(&compiled, SimMode::Functional, 32.0);
    let input = synth::tensor(net.input_shape(), 21);
    let run = sim.run(&compiled, &input).expect("executes");
    let golden = reference::run_network(&net, &input).expect("reference");
    let diff = run.output.max_abs_diff(&golden);
    assert!(diff < 1e-2, "F6x6 diff {diff}");
}
