//! Property-based end-to-end tests: randomly shaped small networks,
//! random mode/dataflow strategies, random parallel factors — the
//! simulated accelerator must always agree with the golden CPU
//! reference, and its timing must respect basic physical bounds.

use hybriddnn_compiler::{Compiler, MappingStrategy};
use hybriddnn_estimator::{AcceleratorConfig, ConvMode, Dataflow};
use hybriddnn_model::{reference, synth, NetworkBuilder, Shape};
use hybriddnn_sim::{SimMode, Simulator};
use hybriddnn_winograd::TileConfig;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Case {
    cfg: AcceleratorConfig,
    channels: Vec<usize>,
    kernel: usize,
    hw: usize,
    pool: bool,
    fc_out: usize,
    modes: Vec<(ConvMode, Dataflow)>,
    seed: u64,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        prop_oneof![Just(TileConfig::F2x2), Just(TileConfig::F4x4)],
        prop_oneof![
            Just((4usize, 4usize)),
            Just((4, 2)),
            Just((8, 4)),
            Just((2, 2))
        ],
        prop::collection::vec(1usize..6, 1..3),
        prop_oneof![Just(1usize), Just(3), Just(5)],
        prop_oneof![Just(8usize), Just(10), Just(12)],
        any::<bool>(),
        1usize..8,
        prop::collection::vec(
            (any::<bool>(), any::<bool>()).prop_map(|(w, i)| {
                (
                    if w {
                        ConvMode::Winograd
                    } else {
                        ConvMode::Spatial
                    },
                    if i {
                        Dataflow::InputStationary
                    } else {
                        Dataflow::WeightStationary
                    },
                )
            }),
            4,
        ),
        0u64..10_000,
    )
        .prop_map(
            |(tile, (pi, po), channels, kernel, hw, pool, fc_out, modes, seed)| Case {
                cfg: AcceleratorConfig::new(pi, po, tile),
                channels: channels.iter().map(|&c| c * 2).collect(),
                kernel,
                hw,
                pool,
                fc_out,
                modes,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random small network × strategy × configuration: simulated
    /// output matches the golden reference, and timing is sane.
    #[test]
    fn random_network_matches_reference(case in case_strategy()) {
        let mut b = NetworkBuilder::new(Shape::new(3, case.hw, case.hw));
        let mut c_in = 3usize;
        for (i, &c_out) in case.channels.iter().enumerate() {
            b = b.conv(&format!("c{i}"), c_in, c_out, case.kernel);
            c_in = c_out;
        }
        if case.pool {
            b = b.max_pool("p", 2);
        }
        let net = b.fc("f", case.fc_out).build().expect("consistent chain");
        let mut net = net;
        synth::bind_random(&mut net, case.seed).expect("binds");

        let n_compute = net.layers().iter().filter(|l| l.is_compute()).count();
        let strategy = MappingStrategy::new(case.modes[..n_compute].to_vec());
        let compiled = Compiler::new(case.cfg)
            .compile(&net, &strategy)
            .expect("small networks always fit");
        let mut sim = Simulator::new(&compiled, SimMode::Functional, 16.0);
        let input = synth::tensor(net.input_shape(), case.seed ^ 0x55);
        let run = sim.run(&compiled, &input).expect("executes");
        let golden = reference::run_network(&net, &input).expect("reference runs");
        let diff = run.output.max_abs_diff(&golden);
        prop_assert!(diff < 2e-2, "sim vs reference diff {diff} for {case:?}");

        // Timing sanity: makespan at least the theoretical compute floor
        // (total MACs / PE width) and at least every module's busy time.
        let floor: f64 = compiled
            .layers()
            .iter()
            .map(|l| l.plan().wl.macs() as f64)
            .sum::<f64>()
            / case.cfg.macs_per_cycle() as f64
            / case.cfg.tile.reduction_factor();
        prop_assert!(run.total_cycles >= floor * 0.5);
        for s in &run.stage_stats {
            prop_assert!(s.cycles + 1e-9 >= s.busy.max(), "{}", s.name);
        }
    }

    /// The instruction stream's token protocol never deadlocks and
    /// never leaves tokens dangling, whatever the strategy.
    #[test]
    fn token_protocol_always_completes(case in case_strategy()) {
        let mut b = NetworkBuilder::new(Shape::new(2, case.hw, case.hw));
        let mut c_in = 2usize;
        for (i, &c_out) in case.channels.iter().enumerate() {
            b = b.conv(&format!("c{i}"), c_in, c_out, 3);
            c_in = c_out;
        }
        let mut net = b.build().expect("consistent");
        synth::bind_random(&mut net, case.seed).expect("binds");
        let n_compute = net.layers().iter().filter(|l| l.is_compute()).count();
        let strategy = MappingStrategy::new(case.modes[..n_compute].to_vec());
        let compiled = Compiler::new(case.cfg).compile(&net, &strategy).expect("fits");
        // Timing-only run must complete (a deadlock would be an Err).
        let mut sim = Simulator::new(&compiled, SimMode::TimingOnly, 8.0);
        let input = hybriddnn_model::Tensor::zeros(net.input_shape());
        prop_assert!(sim.run(&compiled, &input).is_ok());
    }
}
