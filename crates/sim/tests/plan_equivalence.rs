//! Session-plan equivalence: a planned session (record on the first run,
//! replay on every later run) must be *bit-identical* to the original
//! full-simulation path — outputs, total cycles, and per-stage stats —
//! for every zoo network, both PE modes, both dataflows, and any host
//! thread count. This is the contract that lets the serving path replay
//! cached weight packs and timing schedules without a correctness tax.

use hybriddnn_compiler::{Compiler, MappingStrategy};
use hybriddnn_estimator::{AcceleratorConfig, ConvMode, Dataflow};
use hybriddnn_model::{synth, zoo, Network};
use hybriddnn_sim::{SimMode, Simulator};
use hybriddnn_winograd::TileConfig;

fn cfg() -> AcceleratorConfig {
    AcceleratorConfig::new(4, 4, TileConfig::F2x2)
}

/// Runs `net` under `strategy` on planned and planning-off sessions and
/// asserts every observable of every run matches bit for bit.
fn assert_planned_matches_unplanned(net: &Network, strategy: &MappingStrategy, threads: usize) {
    let compiled = Compiler::new(cfg()).compile(net, strategy).unwrap();
    let mut planned = Simulator::with_threads(&compiled, SimMode::Functional, 16.0, threads);
    let mut unplanned = Simulator::with_threads(&compiled, SimMode::Functional, 16.0, threads);
    unplanned.set_planning(false);
    // Run 0 records the plan; runs 1..n replay it. Distinct inputs per
    // run so replay correctness is not an artifact of repeated data.
    for i in 0..3 {
        let input = synth::tensor(net.input_shape(), 7 + i);
        let p = planned.run(&compiled, &input).unwrap();
        let u = unplanned.run(&compiled, &input).unwrap();
        let pb: Vec<u32> = p.output.as_slice().iter().map(|v| v.to_bits()).collect();
        let ub: Vec<u32> = u.output.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(pb, ub, "outputs diverged on run {i} (threads {threads})");
        assert_eq!(p.total_cycles, u.total_cycles, "cycles diverged on run {i}");
        assert_eq!(p.stage_stats, u.stage_stats, "stats diverged on run {i}");
    }
    assert!(planned.has_plan());
}

fn strategies(net: &Network) -> Vec<MappingStrategy> {
    let mut out = Vec::new();
    for mode in [ConvMode::Spatial, ConvMode::Winograd] {
        for df in [Dataflow::InputStationary, Dataflow::WeightStationary] {
            out.push(MappingStrategy::uniform(net, mode, df));
        }
    }
    out
}

fn check_network(mut net: Network, seed: u64) {
    synth::bind_random(&mut net, seed).unwrap();
    for strategy in strategies(&net) {
        for threads in [1, 4] {
            assert_planned_matches_unplanned(&net, &strategy, threads);
        }
    }
}

#[test]
fn tiny_cnn_planned_is_bit_identical() {
    check_network(zoo::tiny_cnn(), 101);
}

#[test]
fn stem_cnn_planned_is_bit_identical() {
    check_network(zoo::stem_cnn(), 102);
}

#[test]
fn single_conv_5x5_planned_is_bit_identical() {
    check_network(zoo::single_conv(12, 4, 8, 5), 103);
}

#[test]
fn vgg_tiny_planned_is_bit_identical() {
    check_network(zoo::vgg_tiny(), 104);
}

#[test]
fn timing_only_replay_is_exact_on_a_large_config() {
    // Timing-only schedule replay on a bigger accelerator (different
    // tile, different buffer geometry) — the sweep-harness shape.
    let mut net = zoo::vgg_tiny();
    synth::bind_random(&mut net, 105).unwrap();
    let big = AcceleratorConfig::new(4, 4, TileConfig::F4x4);
    for strategy in strategies(&net) {
        let compiled = Compiler::new(big).compile(&net, &strategy).unwrap();
        let input = synth::tensor(net.input_shape(), 1);
        let mut planned = Simulator::new(&compiled, SimMode::TimingOnly, 16.0);
        let mut unplanned = Simulator::new(&compiled, SimMode::TimingOnly, 16.0);
        unplanned.set_planning(false);
        for _ in 0..2 {
            let p = planned.run(&compiled, &input).unwrap();
            let u = unplanned.run(&compiled, &input).unwrap();
            assert_eq!(p.total_cycles, u.total_cycles);
            assert_eq!(p.stage_stats, u.stage_stats);
        }
    }
}
