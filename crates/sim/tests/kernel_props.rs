//! Property test of the COMP micro-kernels: the cache-blocked,
//! bank-accumulated Spatial kernel must equal the naive scalar loop nest
//! *bit for bit* on random geometries — including the FC special case
//! and any output-channel partition of the work. Exact equality is the
//! whole contract: it is what lets the simulator split a unit across
//! worker threads without changing a single output bit.

use hybriddnn_sim::kernels::{pack_spatial_weights, spatial_blocked, spatial_scalar, SpatialGeom};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Case {
    g: SpatialGeom,
    k_lanes: usize,
    parts: usize,
    seed: u64,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    let conv = (
        1usize..5,                                   // out_rows
        1usize..8,                                   // out_w
        1usize..3,                                   // stride
        1usize..4,                                   // kh
        1usize..4,                                   // kw
        1usize..3,                                   // cv
        prop_oneof![Just(1usize), Just(2), Just(4)], // pi
        0usize..3,                                   // extra window columns
        1usize..10,                                  // k_lanes
        1usize..4,                                   // partition count
    );
    (conv, any::<u64>()).prop_map(
        |((out_rows, out_w, stride, kh, kw, cv, pi, extra, k_lanes, parts), seed)| Case {
            g: SpatialGeom {
                out_rows,
                out_w,
                stride,
                kh,
                kw,
                cv,
                pi,
                cols_l: (out_w - 1) * stride + kw + extra,
            },
            k_lanes,
            parts,
            seed,
        },
    )
}

/// FC-shaped units (1×1 image, 1×1 kernel) exercise the channel-banked
/// fast path; force a share of cases onto it.
fn fc_case_strategy() -> impl Strategy<Value = Case> {
    (
        1usize..3,
        prop_oneof![Just(1usize), Just(2), Just(4)],
        1usize..14,
        1usize..4,
        any::<u64>(),
    )
        .prop_map(|(cv, pi, k_lanes, parts, seed)| Case {
            g: SpatialGeom {
                out_rows: 1,
                out_w: 1,
                stride: 1,
                kh: 1,
                kw: 1,
                cv,
                pi,
                cols_l: 1,
            },
            k_lanes,
            parts,
            seed,
        })
}

/// Deterministic pseudo-random f32 in roughly [-4, 4) (xorshift64*).
fn fill(seed: &mut u64, out: &mut [f32]) {
    for v in out {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *v = (seed.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 21) as f32 - 4.0;
    }
}

fn check(case: &Case) {
    let g = &case.g;
    let c_lanes = g.c_lanes();
    let plane = g.plane();
    let rows_l = (g.out_rows - 1) * g.stride + g.kh;

    let mut seed = case.seed | 1;
    let mut input = vec![0.0f32; rows_l * g.cols_l * c_lanes];
    let mut weight = vec![0.0f32; case.k_lanes * c_lanes * g.kh * g.kw];
    let mut accum0 = vec![0.0f64; case.k_lanes * plane];
    fill(&mut seed, &mut input);
    fill(&mut seed, &mut weight);
    for a in &mut accum0 {
        // The kernels accumulate into live partials; start from nonzero.
        *a = (seed % 17) as f64 - 8.0;
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    }

    let mut want = accum0.clone();
    spatial_scalar(g, case.k_lanes, &input, &weight, &mut want);

    // The blocked kernel sees the window pre-widened (exactly) and the
    // accumulator partitioned by output channel, as the simulator does.
    let wide: Vec<f64> = input.iter().map(|&x| x as f64).collect();
    let mut got = accum0.clone();
    let mut pack = Vec::new();
    let mut rest = got.as_mut_slice();
    for ks in hybriddnn_par::chunk_ranges(case.k_lanes, case.parts) {
        let (chunk, tail) = rest.split_at_mut(ks.len() * plane);
        spatial_blocked(g, ks, &wide, &weight, None, chunk, &mut pack);
        rest = tail;
    }

    // Same partition driven off a session-plan prepack: still bit-equal.
    let mut prepack = Vec::new();
    pack_spatial_weights(g.kh, g.kw, c_lanes, case.k_lanes, &weight, &mut prepack);
    let mut pre = accum0.clone();
    let mut rest = pre.as_mut_slice();
    for ks in hybriddnn_par::chunk_ranges(case.k_lanes, case.parts) {
        let (chunk, tail) = rest.split_at_mut(ks.len() * plane);
        spatial_blocked(g, ks, &wide, &weight, Some(&prepack), chunk, &mut pack);
        rest = tail;
    }

    for (i, ((w, g_), p)) in want.iter().zip(&got).zip(&pre).enumerate() {
        assert_eq!(
            w.to_bits(),
            g_.to_bits(),
            "accum[{i}] diverged: scalar {w} vs blocked {g_} ({case:?})"
        );
        assert_eq!(
            w.to_bits(),
            p.to_bits(),
            "accum[{i}] diverged: scalar {w} vs prepacked {p} ({case:?})"
        );
    }
}

proptest! {
    #[test]
    fn blocked_spatial_kernel_is_bit_identical_to_scalar(case in case_strategy()) {
        check(&case);
    }

    #[test]
    fn blocked_fc_kernel_is_bit_identical_to_scalar(case in fc_case_strategy()) {
        check(&case);
    }
}
