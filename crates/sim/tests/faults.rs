//! Integration tests for deterministic fault injection: decision-stream
//! determinism across sessions and modes, transient-fault recovery with
//! bit-identical retries, sticky wedges + `reset_session`, and
//! cooperative cancellation via `StopToken`.

use hybriddnn_compiler::{Compiler, MappingStrategy};
use hybriddnn_estimator::AcceleratorConfig;
use hybriddnn_model::{synth, zoo, Network};
use hybriddnn_sim::{FaultPlan, SimError, SimMode, Simulator, StopToken};
use hybriddnn_winograd::TileConfig;
use std::time::{Duration, Instant};

fn compiled_tiny(seed: u64) -> (Network, hybriddnn_compiler::CompiledNetwork) {
    let mut net = zoo::tiny_cnn();
    synth::bind_random(&mut net, seed).unwrap();
    let cfg = AcceleratorConfig::new(4, 4, TileConfig::F2x2);
    let compiled = Compiler::new(cfg)
        .compile(&net, &MappingStrategy::all_winograd(&net))
        .unwrap();
    (net, compiled)
}

/// A coarse fingerprint of a run outcome, comparable across modes.
fn outcome(r: &Result<hybriddnn_sim::RunResult, SimError>) -> String {
    match r {
        Ok(_) => "ok".to_string(),
        Err(e) => format!("{e}"),
    }
}

#[test]
fn fault_sequence_is_deterministic_across_sessions() {
    let (net, compiled) = compiled_tiny(1);
    let plan = FaultPlan::new(77)
        .with_dram_rate(0.02)
        .with_save_rate(0.02)
        .with_wedge_rate(0.0);
    let runs = 40;
    let mut histories = Vec::new();
    for _ in 0..2 {
        let mut sim = Simulator::new(&compiled, SimMode::Functional, 16.0);
        sim.arm_faults(plan.clone());
        let mut hist = Vec::new();
        for i in 0..runs {
            let input = synth::tensor(net.input_shape(), 100 + i);
            hist.push(outcome(&sim.run(&compiled, &input)));
        }
        hist.push(format!("{:?}", sim.fault_counters()));
        histories.push(hist);
    }
    assert_eq!(histories[0], histories[1]);
    // The rates above make at least one injected fault overwhelmingly
    // likely over 40 runs; if this fires the plan is not drawing at all.
    assert!(
        histories[0].iter().any(|o| o.contains("transient")),
        "no fault injected across {runs} runs: {:?}",
        histories[0]
    );
}

#[test]
fn fault_decisions_are_mode_independent() {
    // Functional full-sim/replay and timing-only replay walk the same
    // per-instruction decision stream: the sequence of run outcomes
    // (fault or clean) must match exactly between modes.
    let (net, compiled) = compiled_tiny(2);
    let plan = FaultPlan::new(91).with_dram_rate(0.03).with_save_rate(0.03);
    let mut outcomes = Vec::new();
    for mode in [SimMode::Functional, SimMode::TimingOnly] {
        let mut sim = Simulator::new(&compiled, mode, 16.0);
        sim.arm_faults(plan.clone());
        let mut hist = Vec::new();
        for i in 0..30 {
            let input = synth::tensor(net.input_shape(), 200 + i);
            hist.push(outcome(&sim.run(&compiled, &input)));
        }
        outcomes.push(hist);
    }
    assert_eq!(outcomes[0], outcomes[1]);
}

#[test]
fn transient_fault_then_clean_run_is_bit_identical_to_fault_free() {
    // The ECC-detected fault model's core contract: an injected fault
    // aborts the run, and the *next* clean run on the same session is
    // bit-identical to a session that never faulted. DRAM corruption on
    // every load site must not leak across runs.
    let (net, compiled) = compiled_tiny(3);
    let input = synth::tensor(net.input_shape(), 5);
    let clean = Simulator::new(&compiled, SimMode::Functional, 16.0)
        .run(&compiled, &input)
        .unwrap();

    let mut sim = Simulator::new(&compiled, SimMode::Functional, 16.0);
    sim.arm_faults(FaultPlan::new(11).with_dram_rate(1.0));
    let err = sim.run(&compiled, &input).unwrap_err();
    assert!(err.is_transient(), "{err}");
    assert!(sim.fault_counters().dram >= 1);
    sim.disarm_faults();
    let recovered = sim.run(&compiled, &input).unwrap();
    let a: Vec<u32> = clean
        .output
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let b: Vec<u32> = recovered
        .output
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(a, b);
    assert_eq!(clean.total_cycles, recovered.total_cycles);
}

#[test]
fn save_fault_then_clean_run_is_bit_identical_to_fault_free() {
    let (net, compiled) = compiled_tiny(4);
    let input = synth::tensor(net.input_shape(), 6);
    let clean = Simulator::new(&compiled, SimMode::Functional, 16.0)
        .run(&compiled, &input)
        .unwrap();
    let mut sim = Simulator::new(&compiled, SimMode::Functional, 16.0);
    sim.arm_faults(FaultPlan::new(12).with_save_rate(1.0));
    let err = sim.run(&compiled, &input).unwrap_err();
    assert_eq!(
        err,
        SimError::TransientFault {
            site: "save",
            word: match err {
                SimError::TransientFault { word, .. } => word,
                _ => unreachable!(),
            }
        }
    );
    sim.disarm_faults();
    let recovered = sim.run(&compiled, &input).unwrap();
    assert_eq!(clean.output.as_slice(), recovered.output.as_slice());
}

#[test]
fn wedge_is_sticky_until_reset_session() {
    let (net, compiled) = compiled_tiny(5);
    let input = synth::tensor(net.input_shape(), 7);
    let clean = Simulator::new(&compiled, SimMode::Functional, 16.0)
        .run(&compiled, &input)
        .unwrap();

    let mut sim = Simulator::new(&compiled, SimMode::Functional, 16.0);
    sim.arm_faults(FaultPlan::new(13).with_wedge_rate(1.0));
    assert_eq!(
        sim.run(&compiled, &input).unwrap_err(),
        SimError::DeviceWedged
    );
    assert!(sim.wedged());
    // Sticky: the session stays poisoned run after run.
    assert_eq!(
        sim.run(&compiled, &input).unwrap_err(),
        SimError::DeviceWedged
    );
    assert_eq!(sim.fault_counters().wedges, 1);

    sim.reset_session(&compiled);
    assert!(!sim.wedged());
    sim.disarm_faults();
    let recovered = sim.run(&compiled, &input).unwrap();
    assert_eq!(clean.output.as_slice(), recovered.output.as_slice());
    assert_eq!(clean.total_cycles, recovered.total_cycles);
}

#[test]
fn reset_session_works_in_timing_only_mode() {
    let (net, compiled) = compiled_tiny(6);
    let input = synth::tensor(net.input_shape(), 8);
    let mut sim = Simulator::new(&compiled, SimMode::TimingOnly, 16.0);
    let first = sim.run(&compiled, &input).unwrap();
    sim.reset_session(&compiled);
    let again = sim.run(&compiled, &input).unwrap();
    assert_eq!(first.total_cycles, again.total_cycles);
    assert_eq!(sim.memory().len(), 0);
}

#[test]
fn stop_token_cancels_runs_until_replaced() {
    let (net, compiled) = compiled_tiny(7);
    let input = synth::tensor(net.input_shape(), 9);
    for mode in [SimMode::Functional, SimMode::TimingOnly] {
        let mut sim = Simulator::new(&compiled, mode, 16.0);
        // Warm the session so both the full and replay paths are covered.
        sim.run(&compiled, &input).unwrap();
        let token = StopToken::new();
        sim.set_stop_token(token.clone());
        sim.run(&compiled, &input).unwrap();
        token.cancel();
        let err = sim.run(&compiled, &input).unwrap_err();
        assert!(matches!(err, SimError::Cancelled { .. }), "{mode:?}: {err}");
        // A fresh token un-sticks the session.
        sim.set_stop_token(StopToken::new());
        sim.run(&compiled, &input).unwrap();
        sim.clear_stop_token();
        sim.run(&compiled, &input).unwrap();
    }
}

#[test]
fn hang_stalls_until_cancelled() {
    let (net, compiled) = compiled_tiny(8);
    let input = synth::tensor(net.input_shape(), 10);
    let mut sim = Simulator::new(&compiled, SimMode::Functional, 16.0);
    sim.arm_faults(
        FaultPlan::new(14)
            .with_hang_rate(1.0)
            .with_stall_escape(Duration::from_millis(50)),
    );
    // No cancellation: the stall escapes after the cap.
    let start = Instant::now();
    let err = sim.run(&compiled, &input).unwrap_err();
    assert!(matches!(err, SimError::DeviceHang { .. }), "{err}");
    assert!(start.elapsed() >= Duration::from_millis(50));
    assert!(sim.fault_counters().hangs >= 1);

    // Pre-cancelled token: the run exits at the first COMP check, as
    // Cancelled (never reaching the stall).
    let token = StopToken::new();
    token.cancel();
    sim.set_stop_token(token);
    let start = Instant::now();
    let err = sim.run(&compiled, &input).unwrap_err();
    assert!(
        matches!(
            err,
            SimError::Cancelled { .. } | SimError::DeviceHang { .. }
        ),
        "{err}"
    );
    assert!(start.elapsed() < Duration::from_millis(50));
}

#[test]
fn armed_noop_plan_changes_nothing() {
    // Arming an all-zero plan must not perturb outputs, cycles, or plans.
    let (net, compiled) = compiled_tiny(9);
    let input = synth::tensor(net.input_shape(), 11);
    let clean = Simulator::new(&compiled, SimMode::Functional, 16.0)
        .run(&compiled, &input)
        .unwrap();
    let mut sim = Simulator::new(&compiled, SimMode::Functional, 16.0);
    sim.arm_faults(FaultPlan::new(99));
    for _ in 0..3 {
        let run = sim.run(&compiled, &input).unwrap();
        assert_eq!(run.output.as_slice(), clean.output.as_slice());
        assert_eq!(run.total_cycles, clean.total_cycles);
    }
    assert_eq!(sim.fault_counters().total(), 0);
}

#[test]
fn faulted_recording_run_does_not_poison_the_plan() {
    // If a fault aborts the session's first (plan-recording) run, no
    // partial plan may be stored: the next clean run re-records and
    // serves bit-identical results.
    let (net, compiled) = compiled_tiny(10);
    let input = synth::tensor(net.input_shape(), 12);
    let clean = Simulator::new(&compiled, SimMode::Functional, 16.0)
        .run(&compiled, &input)
        .unwrap();
    let mut sim = Simulator::new(&compiled, SimMode::Functional, 16.0);
    sim.arm_faults(FaultPlan::new(15).with_dram_rate(1.0));
    assert!(sim.run(&compiled, &input).is_err());
    assert!(!sim.has_plan(), "aborted recording must not store a plan");
    sim.disarm_faults();
    let recovered = sim.run(&compiled, &input).unwrap();
    assert!(sim.has_plan());
    assert_eq!(clean.output.as_slice(), recovered.output.as_slice());
    // And the replayed run after that still matches.
    let replayed = sim.run(&compiled, &input).unwrap();
    assert_eq!(clean.output.as_slice(), replayed.output.as_slice());
}
