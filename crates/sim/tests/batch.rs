//! Batched-execution equivalence: `run_batch` / `run_batch_results` over
//! `B` inputs must be **bit-identical**, element by element, to `B`
//! sequential [`Simulator::run`] calls on an identically prepared session
//! — outputs, cycles, per-stage stats, *and* error outcomes, including
//! under deterministic fault injection (the batched pre-walk draws each
//! element's fault stream in batch order, so the same faults must hit the
//! same elements). This is the contract that lets the serving stack route
//! admitted batches through one `O(weights + B·activations)` replay.

use hybriddnn_compiler::{CompiledNetwork, Compiler, MappingStrategy};
use hybriddnn_estimator::{AcceleratorConfig, ConvMode, Dataflow};
use hybriddnn_model::{synth, zoo, Network, NetworkBuilder, Shape, Tensor};
use hybriddnn_sim::{FaultPlan, SimError, SimMode, Simulator};
use hybriddnn_winograd::TileConfig;
use proptest::prelude::*;

fn cfg() -> AcceleratorConfig {
    AcceleratorConfig::new(4, 4, TileConfig::F2x2)
}

/// Asserts `batch.run_batch_results(inputs)` matches running the same
/// inputs one by one on `seq` — outcome kind and, for successes, every
/// observable bit for bit.
fn assert_batch_matches_sequential(
    batch: &mut Simulator,
    seq: &mut Simulator,
    compiled: &CompiledNetwork,
    inputs: &[Tensor],
    what: &str,
) {
    let got = batch.run_batch_results(compiled, inputs);
    assert_eq!(got.len(), inputs.len());
    for (i, (g, input)) in got.iter().zip(inputs).enumerate() {
        let want = seq.run(compiled, input);
        match (g, &want) {
            (Ok(g), Ok(w)) => {
                let gb: Vec<u32> = g.output.as_slice().iter().map(|v| v.to_bits()).collect();
                let wb: Vec<u32> = w.output.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(gb, wb, "{what}: outputs diverged at element {i}");
                assert_eq!(
                    g.total_cycles, w.total_cycles,
                    "{what}: cycles diverged at element {i}"
                );
                assert_eq!(
                    g.stage_stats, w.stage_stats,
                    "{what}: stats diverged at element {i}"
                );
            }
            (Err(g), Err(w)) => {
                assert_eq!(
                    format!("{g:?}"),
                    format!("{w:?}"),
                    "{what}: error diverged at element {i}"
                );
            }
            _ => panic!(
                "{what}: outcome diverged at element {i}: batched {:?} vs sequential {:?}",
                g.as_ref().map(|_| ()),
                want.as_ref().map(|_| ())
            ),
        }
    }
}

fn strategies(net: &Network) -> Vec<MappingStrategy> {
    let mut out = Vec::new();
    for mode in [ConvMode::Spatial, ConvMode::Winograd] {
        for df in [Dataflow::InputStationary, Dataflow::WeightStationary] {
            out.push(MappingStrategy::uniform(net, mode, df));
        }
    }
    out
}

fn check_network(mut net: Network, seed: u64) {
    synth::bind_random(&mut net, seed).unwrap();
    for (si, strategy) in strategies(&net).iter().enumerate() {
        let compiled = Compiler::new(cfg()).compile(&net, strategy).unwrap();
        for threads in [1usize, 4] {
            let mut batch = Simulator::with_threads(&compiled, SimMode::Functional, 16.0, threads);
            let mut seq = Simulator::with_threads(&compiled, SimMode::Functional, 16.0, threads);
            // Fresh sessions: element 0 of the first batch records the
            // plan on both sides, later elements replay it batched vs
            // sequentially.
            let mut next = 0u64;
            for b in [1usize, 3, 16] {
                let inputs: Vec<_> = (0..b)
                    .map(|_| {
                        next += 1;
                        synth::tensor(net.input_shape(), seed ^ next)
                    })
                    .collect();
                assert_batch_matches_sequential(
                    &mut batch,
                    &mut seq,
                    &compiled,
                    &inputs,
                    &format!("strategy {si}, threads {threads}, B={b}"),
                );
            }
            assert!(batch.has_plan());
        }
    }
}

#[test]
fn tiny_cnn_batched_is_bit_identical() {
    check_network(zoo::tiny_cnn(), 201);
}

#[test]
fn stem_cnn_batched_is_bit_identical() {
    check_network(zoo::stem_cnn(), 202);
}

#[test]
fn single_conv_5x5_batched_is_bit_identical() {
    check_network(zoo::single_conv(12, 4, 8, 5), 203);
}

#[test]
fn batched_faults_hit_the_same_elements_as_sequential() {
    let mut net = zoo::tiny_cnn();
    synth::bind_random(&mut net, 204).unwrap();
    let strategy = MappingStrategy::all_winograd(&net);
    let compiled = Compiler::new(cfg()).compile(&net, &strategy).unwrap();
    for (dram, save, wedge) in [(0.02, 0.0, 0.0), (0.0, 0.05, 0.0), (0.01, 0.01, 0.002)] {
        let mut batch = Simulator::new(&compiled, SimMode::Functional, 16.0);
        let mut seq = Simulator::new(&compiled, SimMode::Functional, 16.0);
        // Warm both sessions so every element replays the plan, then arm
        // the *same* deterministic fault plan on both.
        let warm = synth::tensor(net.input_shape(), 1);
        batch.run(&compiled, &warm).unwrap();
        seq.run(&compiled, &warm).unwrap();
        let plan = FaultPlan::new(42)
            .with_dram_rate(dram)
            .with_save_rate(save)
            .with_wedge_rate(wedge);
        batch.arm_faults(plan.clone());
        seq.arm_faults(plan);
        let inputs: Vec<_> = (0..16)
            .map(|i| synth::tensor(net.input_shape(), 300 + i))
            .collect();
        assert_batch_matches_sequential(
            &mut batch,
            &mut seq,
            &compiled,
            &inputs,
            &format!("faults dram={dram} save={save} wedge={wedge}"),
        );
    }
}

#[test]
fn a_bad_input_faults_only_its_own_slot() {
    let mut net = zoo::tiny_cnn();
    synth::bind_random(&mut net, 205).unwrap();
    let strategy = MappingStrategy::all_winograd(&net);
    let compiled = Compiler::new(cfg()).compile(&net, &strategy).unwrap();
    let mut batch = Simulator::new(&compiled, SimMode::Functional, 16.0);
    let mut seq = Simulator::new(&compiled, SimMode::Functional, 16.0);
    let mut inputs: Vec<_> = (0..6)
        .map(|i| synth::tensor(net.input_shape(), 400 + i))
        .collect();
    inputs[2] = Tensor::zeros(Shape::new(1, 2, 2));
    let got = batch.run_batch_results(&compiled, &inputs);
    for (i, (g, input)) in got.iter().zip(&inputs).enumerate() {
        let want = seq.run(&compiled, input);
        assert_eq!(g.is_ok(), want.is_ok(), "outcome diverged at element {i}");
        if i == 2 {
            assert!(matches!(g, Err(SimError::InputMismatch { .. })));
        } else {
            let (g, w) = (g.as_ref().unwrap(), want.as_ref().unwrap());
            assert_eq!(
                g.output.as_slice(),
                w.output.as_slice(),
                "good element {i} was perturbed by the bad one"
            );
        }
    }
    // The legacy all-or-nothing wrapper reports the first error.
    assert!(matches!(
        batch.run_batch(&compiled, &inputs),
        Err(SimError::InputMismatch { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random small network × mode/dataflow mix × batch size: batched
    /// execution is bit-identical to sequential runs.
    #[test]
    fn random_network_batched_matches_sequential(
        tile in prop_oneof![Just(TileConfig::F2x2), Just(TileConfig::F4x4)],
        channels in prop::collection::vec(1usize..5, 1..3),
        kernel in prop_oneof![Just(1usize), Just(3)],
        hw in prop_oneof![Just(8usize), Just(12)],
        wino in any::<bool>(),
        b in 2usize..8,
        seed in 0u64..10_000,
    ) {
        let mut nb = NetworkBuilder::new(Shape::new(3, hw, hw));
        let mut c_in = 3usize;
        for (i, &c_out) in channels.iter().enumerate() {
            nb = nb.conv(&format!("c{i}"), c_in, c_out * 2, kernel);
            c_in = c_out * 2;
        }
        let mut net = nb.fc("f", 10).build().expect("consistent chain");
        synth::bind_random(&mut net, seed).expect("binds");
        let mode = if wino { ConvMode::Winograd } else { ConvMode::Spatial };
        let strategy = MappingStrategy::uniform(&net, mode, Dataflow::InputStationary);
        let acc = AcceleratorConfig::new(4, 4, tile);
        let compiled = Compiler::new(acc).compile(&net, &strategy).expect("fits");
        let mut batch = Simulator::new(&compiled, SimMode::Functional, 16.0);
        let mut seq = Simulator::new(&compiled, SimMode::Functional, 16.0);
        let inputs: Vec<_> = (0..b)
            .map(|i| synth::tensor(net.input_shape(), seed ^ (0x9e37 + i as u64)))
            .collect();
        let got = batch.run_batch(&compiled, &inputs).expect("runs");
        for (i, (g, input)) in got.iter().zip(&inputs).enumerate() {
            let w = seq.run(&compiled, input).expect("runs");
            let gb: Vec<u32> = g.output.as_slice().iter().map(|v| v.to_bits()).collect();
            let wb: Vec<u32> = w.output.as_slice().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(gb, wb, "outputs diverged at element {}", i);
        }
    }
}
