//! Property-based tests on the analytical models: partition coverage
//! invariants, latency monotonicity, and resource-model monotonicity.

use hybriddnn_estimator::{
    latency, resource, AcceleratorConfig, ConvMode, Dataflow, LayerWorkload, Partition, Profile,
};
use hybriddnn_winograd::TileConfig;
use proptest::prelude::*;

fn cfg_strategy() -> impl Strategy<Value = AcceleratorConfig> {
    (
        prop_oneof![Just(TileConfig::F2x2), Just(TileConfig::F4x4)],
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        prop_oneof![Just(1usize), Just(2), Just(4)],
    )
        .prop_filter_map("PI >= PO", |(tile, pi, po)| {
            (pi >= po).then(|| AcceleratorConfig::new(pi, po, tile))
        })
}

fn wl_strategy() -> impl Strategy<Value = LayerWorkload> {
    (
        1usize..=256,                                // k
        1usize..=128,                                // c
        prop_oneof![Just(1usize), Just(3), Just(5)], // kernel
        4usize..=64,                                 // h=w
    )
        .prop_map(|(k, c, r, hw)| LayerWorkload::conv(k, c, r, r, hw, hw, hw, hw, 1))
}

proptest! {
    /// The partition covers the whole layer exactly: groups × sizes add
    /// back to K, H, and W.
    #[test]
    fn partition_covers_layer(cfg in cfg_strategy(), wl in wl_strategy(), wino in any::<bool>()) {
        let mode = if wino { ConvMode::Winograd } else { ConvMode::Spatial };
        prop_assume!(Partition::fits(&cfg, mode, &wl));
        let p = Partition::compute(&cfg, mode, &wl);
        let k_total: usize = (0..p.gk).map(|g| p.group_k(&wl, g)).sum();
        prop_assert_eq!(k_total, wl.k);
        let rows_total: usize = (0..p.row_groups).map(|g| p.group_rows(&wl, g)).sum();
        prop_assert_eq!(rows_total, wl.out_h);
        let cols_total: usize = (0..p.width_blocks).map(|b| p.block_cols(&wl, b)).sum();
        prop_assert_eq!(cols_total, wl.out_w);
        // Every weight group is PO-aligned except possibly the last.
        for g in 0..p.gk.saturating_sub(1) {
            prop_assert_eq!(p.group_k(&wl, g) % cfg.po, 0);
        }
    }

    /// Pass traffic is at least the ideal volume (halos only ever add).
    #[test]
    fn pass_words_dominate_ideal(cfg in cfg_strategy(), wl in wl_strategy(), wino in any::<bool>()) {
        let mode = if wino { ConvMode::Winograd } else { ConvMode::Spatial };
        prop_assume!(Partition::fits(&cfg, mode, &wl));
        let p = Partition::compute(&cfg, mode, &wl);
        prop_assert!(p.input_pass_words(&cfg, &wl) >= (wl.c * wl.in_h * wl.in_w) as u64);
        let ideal_w = match mode {
            ConvMode::Spatial => wl.k * wl.c * wl.r * wl.s,
            ConvMode::Winograd => wl.k * wl.c * wl.wino_blocks() * cfg.pt() * cfg.pt(),
        } as u64;
        prop_assert!(p.weight_pass_words(&cfg, mode, &wl) >= ideal_w);
        prop_assert!(p.save_pass_words(&cfg, &wl) >= (wl.k * wl.out_h * wl.out_w) as u64);
    }

    /// Latency never improves when bandwidth shrinks.
    #[test]
    fn latency_monotone_in_bandwidth(
        cfg in cfg_strategy(),
        wl in wl_strategy(),
        wino in any::<bool>(),
        ws in any::<bool>(),
        bw_lo in 1.0f64..16.0,
        ratio in 1.0f64..16.0,
    ) {
        let mode = if wino { ConvMode::Winograd } else { ConvMode::Spatial };
        prop_assume!(Partition::fits(&cfg, mode, &wl));
        let df = if ws { Dataflow::WeightStationary } else { Dataflow::InputStationary };
        let slow = latency::layer_latency(&cfg, mode, df, &wl, bw_lo);
        let fast = latency::layer_latency(&cfg, mode, df, &wl, bw_lo * ratio);
        prop_assert!(fast.cycles <= slow.cycles * (1.0 + 1e-12));
    }

    /// Compute time never exceeds the overall latency estimate.
    #[test]
    fn compute_bounds_latency(
        cfg in cfg_strategy(),
        wl in wl_strategy(),
        wino in any::<bool>(),
        bw in 1.0f64..64.0,
    ) {
        let mode = if wino { ConvMode::Winograd } else { ConvMode::Spatial };
        prop_assume!(Partition::fits(&cfg, mode, &wl));
        let est = latency::layer_latency(&cfg, mode, Dataflow::WeightStationary, &wl, bw);
        prop_assert!(est.cycles >= latency::compute_cycles(&cfg, mode, &wl));
    }

    /// best_choice really is the minimum over the four combinations.
    #[test]
    fn best_choice_is_minimal(cfg in cfg_strategy(), wl in wl_strategy(), bw in 1.0f64..64.0) {
        prop_assume!(Partition::fits(&cfg, ConvMode::Spatial, &wl));
        let (_, _, best) = latency::best_choice(&cfg, &wl, bw);
        for mode in [ConvMode::Spatial, ConvMode::Winograd] {
            if !Partition::fits(&cfg, mode, &wl) { continue; }
            for df in [Dataflow::InputStationary, Dataflow::WeightStationary] {
                let est = latency::layer_latency(&cfg, mode, df, &wl, bw);
                prop_assert!(best.cycles <= est.cycles + 1e-9);
            }
        }
    }

    /// Resources grow monotonically in PI and PO (Eq. 3-5).
    #[test]
    fn resources_monotone(
        tile in prop_oneof![Just(TileConfig::F2x2), Just(TileConfig::F4x4)],
        pi_log in 1u32..4,
        po_log in 0u32..3,
    ) {
        prop_assume!(pi_log >= po_log);
        let small = AcceleratorConfig::new(1 << (pi_log - 1), 1 << po_log.min(pi_log - 1), tile);
        let big = AcceleratorConfig::new(1 << pi_log, 1 << po_log, tile);
        let p = Profile::vu9p();
        let rs = resource::instance_resources(&small, &p, 36);
        let rb = resource::instance_resources(&big, &p, 36);
        prop_assert!(rs.lut <= rb.lut && rs.dsp <= rb.dsp && rs.bram18 <= rb.bram18);
    }
}
