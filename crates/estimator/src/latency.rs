//! Latency models (paper Eq. 6–15).
//!
//! All quantities are in accelerator cycles; divide by `FREQ` for time.
//! Bandwidth `bw` is in data words per cycle (the paper's `BW`).

use crate::{AcceleratorConfig, ConvMode, Dataflow, LayerWorkload, Partition};

/// Which term of the `max(...)` dominated a layer's latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bottleneck {
    /// Input loading (`T_LDI`).
    LoadInput,
    /// Weight loading (`T_LDW`) — where Winograd's extra memory demand
    /// bites (Figure 6's performance dips).
    LoadWeight,
    /// The PE (`T_CP`).
    Compute,
    /// Output storing (`T_SV`).
    Save,
}

impl std::fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Bottleneck::LoadInput => "load-input",
            Bottleneck::LoadWeight => "load-weight",
            Bottleneck::Compute => "compute",
            Bottleneck::Save => "save",
        })
    }
}

/// The estimator's verdict for one layer under one (mode, dataflow).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyEstimate {
    /// Total estimated cycles (including the penalty term).
    pub cycles: f64,
    /// The dominating pipeline stage.
    pub bound: Bottleneck,
    /// The non-hidden memory prologue `T_penalty` (Eq. 12–15).
    pub penalty: f64,
    /// The partition used (§4.2.4).
    pub partition: Partition,
}

impl LatencyEstimate {
    /// Achieved throughput in GOPS for `wl` at `freq_mhz`.
    pub fn gops(&self, wl: &LayerWorkload, freq_mhz: f64) -> f64 {
        let seconds = self.cycles / (freq_mhz * 1e6);
        wl.ops() as f64 / seconds / 1e9
    }
}

/// Predicted cycles for one whole-network inference: the sum of the
/// per-layer estimates (stages synchronize at layer boundaries, so no
/// cross-layer overlap is modeled).
///
/// This is the serving runtime's *job-cost hint*: `hybriddnn-runtime`'s
/// shortest-predicted-job-first dispatch orders batches by
/// `batch size × predicted_network_cycles` without running anything.
pub fn predicted_network_cycles<'a, I>(per_layer: I) -> f64
where
    I: IntoIterator<Item = &'a LatencyEstimate>,
{
    per_layer.into_iter().map(|e| e.cycles).sum()
}

/// Predicted cycles for one inference under a *deployed* per-layer
/// strategy: re-evaluates [`layer_latency`] for each layer's chosen
/// `(mode, dataflow)` instead of trusting a cached estimate. When a
/// caller forces choices that differ from the DSE winners (e.g.
/// all-Spatial experiments), the cached per-layer estimates still
/// describe the winners — this sum describes what actually runs, which
/// is what the serving runtime's shortest-predicted-job-first dispatch
/// needs for its cost hint.
pub fn strategy_network_cycles<'a, I>(cfg: &AcceleratorConfig, layers: I, bw: f64) -> f64
where
    I: IntoIterator<Item = (ConvMode, Dataflow, &'a LayerWorkload)>,
{
    layers
        .into_iter()
        .map(|(mode, dataflow, wl)| layer_latency(cfg, mode, dataflow, wl, bw).cycles)
        .sum()
}

/// Compute cycles of the COMP module (Eq. 6 for Spatial, Eq. 7 for
/// Winograd).
pub fn compute_cycles(cfg: &AcceleratorConfig, mode: ConvMode, wl: &LayerWorkload) -> f64 {
    let pe = cfg.macs_per_cycle() as f64;
    match mode {
        ConvMode::Spatial => {
            // Eq. 6: K·C·R·S·H·W / (PI·PO·PT²)
            (wl.k * wl.c * wl.r * wl.s) as f64 * (wl.out_h * wl.out_w) as f64 / pe
        }
        ConvMode::Winograd => {
            // Eq. 7: K·C·⌈R/r⌉⌈S/r⌉·PT²·H·W / (PI·PO·PT²·m²), with H and
            // W rounded up to the tile grid — edge tiles are clipped on
            // output but still cost a full tile of PE work, and the
            // implementation (like the hardware) pays that ceiling.
            let m = cfg.m();
            let m2 = (m * m) as f64;
            let pt2 = (cfg.pt() * cfg.pt()) as f64;
            let h_pad = (wl.out_h.div_ceil(m) * m) as f64;
            let w_pad = (wl.out_w.div_ceil(m) * m) as f64;
            (wl.k * wl.c * wl.wino_blocks()) as f64 * pt2 * h_pad * w_pad / (pe * m2)
        }
    }
}

/// Weight-loading cycles for the layer's full parameter set
/// (Eq. 8 Spatial, Eq. 9 Winograd). Winograd loads `⌈R/r⌉⌈S/r⌉·PT²`
/// words per `(k, c)` pair instead of `R·S` — e.g. 5.76× more for a 5×5
/// kernel with `F(4×4, 3×3)` (§5.2).
pub fn load_weight_cycles(
    cfg: &AcceleratorConfig,
    mode: ConvMode,
    wl: &LayerWorkload,
    bw: f64,
) -> f64 {
    let words = match mode {
        ConvMode::Spatial => (wl.k * wl.c * wl.r * wl.s) as f64,
        ConvMode::Winograd => (wl.k * wl.c * wl.wino_blocks() * cfg.pt() * cfg.pt()) as f64,
    };
    let rate = bw.min((cfg.pi * cfg.po * cfg.pt()) as f64);
    words / rate
}

/// Input-loading cycles for the full input feature map (Eq. 10).
pub fn load_input_cycles(cfg: &AcceleratorConfig, wl: &LayerWorkload, bw: f64) -> f64 {
    let words = (wl.c * wl.in_h * wl.in_w) as f64;
    let rate = bw.min((cfg.pi * cfg.pt()) as f64);
    words / rate
}

/// Output-saving cycles for the full output feature map (Eq. 11).
pub fn save_cycles(cfg: &AcceleratorConfig, wl: &LayerWorkload, bw: f64) -> f64 {
    let words = (wl.k * wl.out_h * wl.out_w) as f64;
    let rate = bw.min((cfg.po * cfg.pt()) as f64);
    words / rate
}

/// Overall layer latency for one (mode, dataflow) pair — Eq. 12–15:
/// the modules run concurrently, so the slowest dominates, plus the
/// non-hidden pipeline-fill penalty `T_penalty` (one row group of input
/// and one weight group that cannot overlap anything).
pub fn layer_latency(
    cfg: &AcceleratorConfig,
    mode: ConvMode,
    dataflow: Dataflow,
    wl: &LayerWorkload,
    bw: f64,
) -> LatencyEstimate {
    let partition = Partition::compute(cfg, mode, wl);
    // Per-pass transfer times from the exact partition traffic (the
    // paper's Eq. 8-11 idealize away the row/column halos and channel
    // padding the implementation actually moves).
    let t_ldi = partition.input_pass_words(cfg, wl) as f64 / bw.min((cfg.pi * cfg.pt()) as f64);
    let t_ldw = partition.weight_pass_words(cfg, mode, wl) as f64
        / bw.min((cfg.pi * cfg.po * cfg.pt()) as f64);
    let t_cp = compute_cycles(cfg, mode, wl);
    let t_sv = partition.save_pass_words(cfg, wl) as f64 / bw.min((cfg.po * cfg.pt()) as f64);

    // Dataflow-dependent reload multipliers (Eq. 12-15): IS reloads the
    // weights once per (row group × width block); WS reloads the inputs
    // once per weight group.
    let units = (partition.row_groups * partition.width_blocks) as f64;
    let (ldi_total, ldw_total) = match dataflow {
        Dataflow::InputStationary => (t_ldi, units * t_ldw),
        Dataflow::WeightStationary => (partition.gk as f64 * t_ldi, t_ldw),
    };

    let terms = [
        (ldi_total, Bottleneck::LoadInput),
        (ldw_total, Bottleneck::LoadWeight),
        (t_cp, Bottleneck::Compute),
        (t_sv, Bottleneck::Save),
    ];
    let (max_cycles, bound) = terms
        .iter()
        .copied()
        .max_by(|a, b| a.0.partial_cmp(&b.0).expect("latencies are finite"))
        .expect("terms is non-empty");

    // Pipeline-fill penalty: the first input group and first weight group
    // of the layer cannot be hidden behind any computation.
    let penalty = t_ldi / units + t_ldw / partition.gk as f64;

    LatencyEstimate {
        cycles: max_cycles + penalty,
        bound,
        penalty,
        partition,
    }
}

/// The best (mode, dataflow) pair for a layer — the per-layer software
/// choice of DSE Step 2. Layers that cannot run in Winograd mode
/// (stride > 1, or transformed weights too large for the weight buffer)
/// only consider Spatial.
///
/// # Panics
/// Panics if not even Spatial mode fits the configuration (callers
/// filter such candidates with [`Partition::fits`]).
pub fn best_choice(
    cfg: &AcceleratorConfig,
    wl: &LayerWorkload,
    bw: f64,
) -> (ConvMode, Dataflow, LatencyEstimate) {
    let mut best: Option<(ConvMode, Dataflow, LatencyEstimate)> = None;
    for mode in [ConvMode::Spatial, ConvMode::Winograd] {
        if !Partition::fits(cfg, mode, wl) {
            continue;
        }
        // WS first, so exact ties (FC layers especially, where the
        // compiler forces WS anyway) report the dataflow that runs.
        for dataflow in [Dataflow::WeightStationary, Dataflow::InputStationary] {
            let est = layer_latency(cfg, mode, dataflow, wl, bw);
            if best.is_none_or(|(_, _, b)| est.cycles < b.cycles) {
                best = Some((mode, dataflow, est));
            }
        }
    }
    best.expect("no feasible mode for this layer on this configuration")
}

/// Splits a layer's row dimension across `ni` identical instances
/// (the multi-die execution of §6.1: each instance computes a horizontal
/// slice of the output). Returns the per-instance workload and the
/// per-instance share of memory bandwidth.
pub fn split_for_instances(wl: &LayerWorkload, ni: usize, bw: f64) -> (LayerWorkload, f64) {
    assert!(ni >= 1);
    let rows = wl.out_h.div_ceil(ni).max(1);
    let in_rows = (rows * wl.stride + wl.r.saturating_sub(1)).min(wl.in_h);
    (
        LayerWorkload {
            out_h: rows,
            in_h: in_rows,
            ..*wl
        },
        bw / ni as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybriddnn_winograd::TileConfig;

    fn cfg6() -> AcceleratorConfig {
        AcceleratorConfig::new(4, 4, TileConfig::F4x4)
    }

    fn vgg_conv(k: usize, c: usize, hw: usize) -> LayerWorkload {
        LayerWorkload::conv(k, c, 3, 3, hw, hw, hw, hw, 1)
    }

    #[test]
    fn winograd_compute_is_m2_over_blocks_faster() {
        // For a 3x3 kernel, Eq. 7 / Eq. 6 = PT²/(R·S·m²)... equivalently
        // Winograd is (m·r)²/PT² = 4x fewer cycles with F(4x4,3x3).
        let wl = vgg_conv(64, 64, 56);
        let spat = compute_cycles(&cfg6(), ConvMode::Spatial, &wl);
        let wino = compute_cycles(&cfg6(), ConvMode::Winograd, &wl);
        assert!((spat / wino - 4.0).abs() < 1e-9, "ratio {}", spat / wino);
    }

    #[test]
    fn winograd_loads_more_weights() {
        // §5.2's example: 5x5 kernel, m=4, r=3 → 5.76x more weight words.
        let wl = LayerWorkload::conv(16, 16, 5, 5, 28, 28, 28, 28, 1);
        let spat = load_weight_cycles(&cfg6(), ConvMode::Spatial, &wl, 1e9);
        let wino = load_weight_cycles(&cfg6(), ConvMode::Winograd, &wl, 1e9);
        assert!((wino / spat - 5.76).abs() < 1e-9, "ratio {}", wino / spat);
    }

    #[test]
    fn bandwidth_caps_load_rate() {
        let cfg = cfg6();
        let wl = vgg_conv(64, 64, 56);
        // With infinite BW the port rate PI·PO·PT = 96 words/cycle rules.
        let fast = load_weight_cycles(&cfg, ConvMode::Spatial, &wl, 1e9);
        assert!((fast - (64.0 * 64.0 * 9.0) / 96.0).abs() < 1e-6);
        // With BW = 4 the memory rules.
        let slow = load_weight_cycles(&cfg, ConvMode::Spatial, &wl, 4.0);
        assert!((slow - (64.0 * 64.0 * 9.0) / 4.0).abs() < 1e-6);
    }

    #[test]
    fn compute_bound_layer_reports_compute() {
        // Deep layer with plentiful bandwidth: compute dominates.
        let wl = vgg_conv(512, 512, 28);
        let est = layer_latency(
            &cfg6(),
            ConvMode::Spatial,
            Dataflow::WeightStationary,
            &wl,
            48.0,
        );
        assert_eq!(est.bound, Bottleneck::Compute);
    }

    #[test]
    fn winograd_becomes_memory_bound_at_low_bandwidth() {
        // The §6.2 observation: Winograd's compressed compute time raises
        // its bandwidth demand; when BW shrinks it goes memory-bound and
        // Spatial can win.
        let wl = vgg_conv(512, 512, 14);
        let bw = 1.0;
        let wino = layer_latency(
            &cfg6(),
            ConvMode::Winograd,
            Dataflow::WeightStationary,
            &wl,
            bw,
        );
        let spat = layer_latency(
            &cfg6(),
            ConvMode::Spatial,
            Dataflow::WeightStationary,
            &wl,
            bw,
        );
        assert_eq!(wino.bound, Bottleneck::LoadWeight);
        assert!(spat.cycles < wino.cycles, "spatial should win at BW=1");
        // And with ample bandwidth Winograd wins.
        let wino_fast = layer_latency(
            &cfg6(),
            ConvMode::Winograd,
            Dataflow::WeightStationary,
            &wl,
            48.0,
        );
        let spat_fast = layer_latency(
            &cfg6(),
            ConvMode::Spatial,
            Dataflow::WeightStationary,
            &wl,
            48.0,
        );
        assert!(wino_fast.cycles < spat_fast.cycles);
    }

    #[test]
    fn is_prefers_large_feature_maps_ws_prefers_small() {
        let cfg = cfg6();
        let bw = 8.0;
        // Large feature map, few weights → IS avoids re-loading inputs.
        let big_fmap = vgg_conv(64, 64, 224);
        let is = layer_latency(
            &cfg,
            ConvMode::Spatial,
            Dataflow::InputStationary,
            &big_fmap,
            bw,
        );
        let ws = layer_latency(
            &cfg,
            ConvMode::Spatial,
            Dataflow::WeightStationary,
            &big_fmap,
            bw,
        );
        // With GK=1 both tie; check the weight-heavy case decisively.
        assert!(is.cycles <= ws.cycles * 1.01);
        // Small feature map, many weights → WS avoids re-loading weights.
        let heavy = vgg_conv(512, 512, 14);
        let is = layer_latency(
            &cfg,
            ConvMode::Spatial,
            Dataflow::InputStationary,
            &heavy,
            bw,
        );
        let ws = layer_latency(
            &cfg,
            ConvMode::Spatial,
            Dataflow::WeightStationary,
            &heavy,
            bw,
        );
        assert!(ws.cycles < is.cycles);
    }

    #[test]
    fn best_choice_respects_stride_restriction() {
        let strided = LayerWorkload::conv(64, 64, 3, 3, 56, 56, 28, 28, 2);
        let (mode, _, _) = best_choice(&cfg6(), &strided, 48.0);
        assert_eq!(mode, ConvMode::Spatial);
    }

    #[test]
    fn best_choice_picks_winograd_with_bandwidth() {
        // The VGG16 case study: with sufficient memory bandwidth the DSE
        // selects Winograd for 3x3 layers.
        let wl = vgg_conv(256, 256, 56);
        let (mode, _, _) = best_choice(&cfg6(), &wl, 48.0);
        assert_eq!(mode, ConvMode::Winograd);
    }

    #[test]
    fn gops_inverts_cycles() {
        let wl = vgg_conv(64, 64, 56);
        let est = layer_latency(
            &cfg6(),
            ConvMode::Spatial,
            Dataflow::WeightStationary,
            &wl,
            48.0,
        );
        let gops = est.gops(&wl, 167.0);
        // Never exceeds the spatial peak of the configuration.
        assert!(
            gops > 0.0 && gops <= cfg6().peak_gops(167.0) * 1.001,
            "{gops}"
        );
    }

    #[test]
    fn penalty_is_small_fraction() {
        let wl = vgg_conv(256, 256, 56);
        let est = layer_latency(
            &cfg6(),
            ConvMode::Winograd,
            Dataflow::WeightStationary,
            &wl,
            48.0,
        );
        assert!(est.penalty > 0.0);
        assert!(
            est.penalty < est.cycles * 0.25,
            "penalty {} of {}",
            est.penalty,
            est.cycles
        );
    }

    #[test]
    fn split_for_instances_divides_rows_and_bandwidth() {
        let wl = vgg_conv(64, 64, 224);
        let (part, bw) = split_for_instances(&wl, 6, 48.0);
        assert_eq!(part.out_h, 38); // ceil(224/6)
        assert_eq!(bw, 8.0);
        assert_eq!(part.k, wl.k);
        // Degenerate split of a 1-row FC layer stays 1 row.
        let fc = LayerWorkload::fc(100, 100);
        let (p, _) = split_for_instances(&fc, 6, 48.0);
        assert_eq!(p.out_h, 1);
    }

    #[test]
    fn fc_layers_estimate_cleanly() {
        let wl = LayerWorkload::fc(4096, 25088);
        let est = layer_latency(
            &cfg6(),
            ConvMode::Spatial,
            Dataflow::WeightStationary,
            &wl,
            48.0,
        );
        // FC is completely weight-bound.
        assert_eq!(est.bound, Bottleneck::LoadWeight);
        assert!(est.cycles >= 4096.0 * 25088.0 / 48.0);
    }
}
