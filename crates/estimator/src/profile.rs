/// Profiling constants of the resource models (Eq. 3–5): "α, β, γ, and δ
/// can be pre-defined through profiling" (§5.1).
///
/// Two shipped presets are fitted so the paper's reported utilization
/// (Table 3) is reproduced by the model; a custom profile can be built for
/// other toolchains/devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Profile {
    /// Correction term related to quantization strategies (Eq. 3/4):
    /// scales the `PO · m²` inverse-transform/accumulation multiplier
    /// count.
    pub alpha: f64,
    /// DSPs used for address generation — an FPGA-independent constant
    /// (Eq. 3).
    pub beta: f64,
    /// LUTs per MAC unit (Eq. 5).
    pub gamma: f64,
    /// LUT correction for the Winograd transform logic, scaled by `m²`
    /// (Eq. 5). Setting `delta = 0` models a Spatial-only accelerator —
    /// the baseline of the §6.1 overhead comparison.
    pub delta: f64,
    /// Multiplications packed per DSP slice (1.0, or 2.0 where the
    /// synthesis packs two narrow multiplies per slice, as on the
    /// PYNQ-Z1 design whose 220 DSPs exactly fit PI=PO=4, PT=4).
    pub dsp_packing: f64,
    /// Fixed BRAM overhead per instance (instruction queue, handshake
    /// FIFOs, line buffers).
    pub bram_fixed: u64,
}

impl Profile {
    /// Profile fitted to the paper's VU9P implementation (Vivado HLS on
    /// UltraScale+): reproduces Table 3's per-instance 860 DSPs and the
    /// +26.4 % hybrid LUT overhead.
    pub fn vu9p() -> Self {
        Profile {
            alpha: 4.0,
            beta: 24.0,
            gamma: 161.7,
            delta: 0.0165,
            dsp_packing: 1.0,
            bram_fixed: 80,
        }
    }

    /// Profile fitted to the paper's PYNQ-Z1 implementation (Zynq-7000,
    /// DSP48E1 with two 8-bit multiplies packed per slice): PI=PO=4,
    /// PT=4 costs exactly 220 DSPs, matching Table 3's 100 % utilization.
    pub fn pynq_z1() -> Self {
        Profile {
            alpha: 4.0,
            beta: 24.0,
            gamma: 135.7,
            delta: 0.0165,
            dsp_packing: 2.0,
            bram_fixed: 80,
        }
    }

    /// A copy of this profile describing a Spatial-only (non-hybrid)
    /// accelerator: no Winograd transform logic (`delta = 0`) and no
    /// inverse-transform multipliers (`alpha = 0`). Used to measure the
    /// overhead of hybrid support (§6.1: +26.4 % LUTs, no extra DSPs —
    /// the paper counts the PE-sharing win by comparing against this).
    pub fn spatial_only(&self) -> Profile {
        Profile {
            alpha: 0.0,
            delta: 0.0,
            ..*self
        }
    }
}

impl Default for Profile {
    /// The VU9P profile.
    fn default() -> Self {
        Profile::vu9p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_expected() {
        let v = Profile::vu9p();
        let p = Profile::pynq_z1();
        assert_eq!(v.alpha, p.alpha);
        assert_eq!(v.beta, p.beta);
        assert_ne!(v.dsp_packing, p.dsp_packing);
    }

    #[test]
    fn spatial_only_strips_winograd_terms() {
        let s = Profile::vu9p().spatial_only();
        assert_eq!(s.alpha, 0.0);
        assert_eq!(s.delta, 0.0);
        assert_eq!(s.gamma, Profile::vu9p().gamma);
    }

    #[test]
    fn default_is_vu9p() {
        assert_eq!(Profile::default(), Profile::vu9p());
    }
}
