//! Analytical resource-utilization and latency models for HybridDNN
//! accelerators (paper §5.1–5.2, Eq. 3–15).
//!
//! The estimator is the heart of the DSE engine: it predicts, without
//! running anything,
//!
//! * how many LUTs / DSPs / BRAMs an accelerator instance with parallel
//!   factors `(PI, PO, PT)` consumes ([`resource`], Eq. 3–5, with the
//!   profiling constants α, β, γ, δ in a [`Profile`]), and
//! * how many cycles a CONV/FC layer takes for each of the four
//!   mode × dataflow combinations ([`latency`], Eq. 6–15).
//!
//! It also owns the configuration vocabulary shared by the compiler,
//! simulator, and DSE: [`AcceleratorConfig`], [`ConvMode`], [`Dataflow`],
//! and the operation partitioning of §4.2.4 ([`workload::Partition`]).
//!
//! The paper reports the analytical model within 4.27 % (VU9P) and 4.03 %
//! (PYNQ-Z1) of the implemented accelerator; this reproduction measures
//! the same error against its cycle-level simulator (see
//! `tests/estimator_vs_sim.rs` and EXPERIMENTS.md).
//!
//! # Example
//!
//! ```
//! use hybriddnn_estimator::{AcceleratorConfig, ConvMode, Dataflow, LayerWorkload, Profile};
//! use hybriddnn_fpga::FpgaSpec;
//! use hybriddnn_winograd::TileConfig;
//!
//! let cfg = AcceleratorConfig::new(4, 4, TileConfig::F4x4);
//! let device = FpgaSpec::vu9p();
//!
//! // Resource check (Eq. 3-5): one instance must fit in one die.
//! let used = hybriddnn_estimator::resource::instance_resources(
//!     &cfg, &Profile::vu9p(), device.bram_width_bits());
//! assert!(used.fits_within(&device.die_resources()));
//!
//! // Latency (Eq. 7/14) for a VGG-style 3x3 layer.
//! let wl = LayerWorkload::conv(512, 512, 3, 3, 14, 14, 14, 14, 1);
//! let est = hybriddnn_estimator::latency::layer_latency(
//!     &cfg, ConvMode::Winograd, Dataflow::WeightStationary, &wl,
//!     device.ddr_words_per_cycle());
//! assert!(est.cycles > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod latency;
mod profile;
pub mod resource;
pub mod workload;

pub use config::{AcceleratorConfig, ConvMode, Dataflow, DesignPoint};
pub use latency::{Bottleneck, LatencyEstimate};
pub use profile::Profile;
pub use workload::{LayerWorkload, Partition};
