//! Resource-utilization models (paper Eq. 3–5).

use crate::{AcceleratorConfig, Profile};
use hybriddnn_fpga::Resources;

/// DSP utilization of one accelerator instance (Eq. 3):
///
/// ```text
/// N_DSP = PI·PO·PT² / packing + α·PO·m² + PO + β
/// ```
///
/// The three contributions: (1) the PE's multiplier array, (2) the
/// output-transform/requantization multipliers, (3) per-lane accumulation,
/// plus `β` DSPs for address generation.
pub fn dsp_count(cfg: &AcceleratorConfig, profile: &Profile) -> u64 {
    let pe = (cfg.pi * cfg.po * cfg.pt() * cfg.pt()) as f64 / profile.dsp_packing;
    let xform = profile.alpha * (cfg.po * cfg.m() * cfg.m()) as f64;
    (pe.ceil() + xform + cfg.po as f64 + profile.beta).ceil() as u64
}

/// BRAM utilization of one accelerator instance (Eq. 4):
///
/// ```text
/// N_BRAM = DATA_WIDTH/BRAM_WIDTH · (PI·PT² + PI·PO·PT² + (1+α)·PO·m²)
///          + fixed
/// ```
///
/// The partition counts are the Table 1 factors for the input, weight,
/// and output (+accumulator) buffers.
pub fn bram_count(cfg: &AcceleratorConfig, profile: &Profile, bram_width_bits: u32) -> u64 {
    let pt2 = cfg.pt() * cfg.pt();
    let m2 = cfg.m() * cfg.m();
    let partitions = (cfg.pi * pt2) as f64
        + (cfg.pi * cfg.po * pt2) as f64
        + (1.0 + profile.alpha) * (cfg.po * m2) as f64;
    let width_ratio = cfg.data_width_bits as f64 / bram_width_bits as f64;
    (width_ratio * partitions).ceil() as u64 + profile.bram_fixed
}

/// LUT utilization of one accelerator instance (Eq. 5):
///
/// ```text
/// N_LUT = γ · PI·PO·PT² · (1 + δ·m²)
/// ```
///
/// `γ` is the per-MAC LUT cost; the `δ·m²` factor is the hybrid
/// (Winograd-capable) overhead — transform networks plus reconfigurable
/// load/save managers.
pub fn lut_count(cfg: &AcceleratorConfig, profile: &Profile) -> u64 {
    let macs = (cfg.pi * cfg.po * cfg.pt() * cfg.pt()) as f64;
    (profile.gamma * macs * (1.0 + profile.delta * (cfg.m() * cfg.m()) as f64)).ceil() as u64
}

/// Full resource vector of one instance.
pub fn instance_resources(
    cfg: &AcceleratorConfig,
    profile: &Profile,
    bram_width_bits: u32,
) -> Resources {
    Resources::new(
        lut_count(cfg, profile),
        dsp_count(cfg, profile),
        bram_count(cfg, profile, bram_width_bits),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybriddnn_winograd::TileConfig;

    fn vu9p_cfg() -> AcceleratorConfig {
        AcceleratorConfig::new(4, 4, TileConfig::F4x4)
    }

    fn pynq_cfg() -> AcceleratorConfig {
        AcceleratorConfig::new(4, 4, TileConfig::F2x2)
    }

    #[test]
    fn vu9p_instance_dsp_matches_table3() {
        // 6 instances × 860 = 5160 ≈ the paper's 5163 DSPs.
        let dsp = dsp_count(&vu9p_cfg(), &Profile::vu9p());
        assert_eq!(dsp, 860);
    }

    #[test]
    fn pynq_instance_dsp_is_exactly_220() {
        // Table 3 reports exactly 100% of the Zynq-7020's 220 DSPs.
        let dsp = dsp_count(&pynq_cfg(), &Profile::pynq_z1());
        assert_eq!(dsp, 220);
    }

    #[test]
    fn hybrid_lut_overhead_matches_26_percent() {
        // §6.1: hybrid support costs 26.4% extra LUTs over Spatial-only.
        let p = Profile::vu9p();
        let hybrid = lut_count(&vu9p_cfg(), &p) as f64;
        let spatial = lut_count(&vu9p_cfg(), &p.spatial_only()) as f64;
        let overhead = hybrid / spatial - 1.0;
        assert!((overhead - 0.264).abs() < 0.005, "overhead {overhead}");
    }

    #[test]
    fn hybrid_adds_no_pe_dsps_but_transform_dsps() {
        // §6.1: "no extra DSPs" for the PE itself — the hybrid's extra
        // DSP term is the α·PO·m² output transform, which the paper
        // attributes to quantization handling present in both. Verify the
        // PE array term is mode-independent.
        let p = Profile::vu9p();
        let hybrid = dsp_count(&vu9p_cfg(), &p);
        let spatial = dsp_count(&vu9p_cfg(), &p.spatial_only());
        assert!(hybrid >= spatial);
        // PE term (576) dominates and is identical.
        assert_eq!(hybrid - spatial, (p.alpha * 64.0) as u64);
    }

    #[test]
    fn vu9p_six_instances_fit_two_per_die() {
        let device = hybriddnn_fpga::FpgaSpec::vu9p();
        let inst = instance_resources(&vu9p_cfg(), &Profile::vu9p(), device.bram_width_bits());
        let two = inst * 2;
        assert!(
            two.fits_within(&device.die_resources()),
            "two instances per die: {two}"
        );
        let three = inst * 3;
        assert!(
            !three.fits_within(&device.die_resources()),
            "three must not fit: {three}"
        );
    }

    #[test]
    fn pynq_instance_fits_device() {
        let device = hybriddnn_fpga::FpgaSpec::pynq_z1();
        let inst = instance_resources(&pynq_cfg(), &Profile::pynq_z1(), device.bram_width_bits());
        assert!(inst.fits_within(&device.total_resources()), "{inst}");
    }

    #[test]
    fn resources_grow_monotonically_with_parallelism() {
        let p = Profile::vu9p();
        let small = instance_resources(&AcceleratorConfig::new(2, 2, TileConfig::F4x4), &p, 36);
        let big = instance_resources(&AcceleratorConfig::new(4, 4, TileConfig::F4x4), &p, 36);
        assert!(small.lut < big.lut);
        assert!(small.dsp < big.dsp);
        assert!(small.bram18 < big.bram18);
    }

    #[test]
    fn wider_data_needs_more_bram() {
        let p = Profile::vu9p();
        let mut cfg = vu9p_cfg();
        let b16 = bram_count(&cfg, &p, 36);
        cfg.data_width_bits = 32;
        let b32 = bram_count(&cfg, &p, 36);
        assert!(b32 > b16);
    }
}
