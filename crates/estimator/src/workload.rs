//! Layer workloads and the CONV operation partitioning of §4.2.4.

use crate::{AcceleratorConfig, ConvMode};
use hybriddnn_model::{Layer, LayerKind, Shape};

/// The geometry of one CONV/FC layer as the estimator and compiler see it.
///
/// FC layers are expressed as 1×1 convolutions over 1×1 feature maps
/// (§5.3 treats CONV and FC uniformly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerWorkload {
    /// Output channels (`K`).
    pub k: usize,
    /// Input channels (`C`).
    pub c: usize,
    /// Kernel height (`R`).
    pub r: usize,
    /// Kernel width (`S`).
    pub s: usize,
    /// Input feature-map height (unpadded).
    pub in_h: usize,
    /// Input feature-map width (unpadded).
    pub in_w: usize,
    /// Output feature-map height.
    pub out_h: usize,
    /// Output feature-map width.
    pub out_w: usize,
    /// Stride.
    pub stride: usize,
}

impl LayerWorkload {
    /// Creates a CONV workload from explicit geometry.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        k: usize,
        c: usize,
        r: usize,
        s: usize,
        in_h: usize,
        in_w: usize,
        out_h: usize,
        out_w: usize,
        stride: usize,
    ) -> Self {
        LayerWorkload {
            k,
            c,
            r,
            s,
            in_h,
            in_w,
            out_h,
            out_w,
            stride,
        }
    }

    /// Creates an FC workload (`K × C`, 1×1 geometry).
    pub fn fc(out_features: usize, in_features: usize) -> Self {
        LayerWorkload {
            k: out_features,
            c: in_features,
            r: 1,
            s: 1,
            in_h: 1,
            in_w: 1,
            out_h: 1,
            out_w: 1,
            stride: 1,
        }
    }

    /// Extracts a workload from a network layer, or `None` for layers
    /// that do not run on the COMP module (pooling).
    pub fn from_layer(layer: &Layer, input: Shape, output: Shape) -> Option<Self> {
        match layer.kind() {
            LayerKind::Conv(c) => Some(LayerWorkload {
                k: c.out_channels,
                c: c.in_channels,
                r: c.kernel_h,
                s: c.kernel_w,
                in_h: input.h,
                in_w: input.w,
                out_h: output.h,
                out_w: output.w,
                stride: c.stride,
            }),
            LayerKind::Fc(fc) => Some(LayerWorkload::fc(fc.out_features, fc.in_features)),
            _ => None,
        }
    }

    /// Kernel-decomposition block count `⌈R/r⌉ · ⌈S/r⌉` for Winograd mode
    /// with 3×3 base kernels.
    pub fn wino_blocks(&self) -> usize {
        self.r.div_ceil(3) * self.s.div_ceil(3)
    }

    /// MAC count of the layer (spatial).
    pub fn macs(&self) -> u64 {
        (self.k * self.c * self.r * self.s) as u64 * (self.out_h * self.out_w) as u64
    }

    /// Arithmetic operations (2 per MAC), the GOPS numerator.
    pub fn ops(&self) -> u64 {
        2 * self.macs()
    }

    /// Whether this layer can run in Winograd mode (stride 1; the §4.2.5
    /// decomposition covers all kernel sizes).
    pub fn supports_winograd(&self) -> bool {
        self.stride == 1
    }
}

/// The operation partitioning of a layer (§4.2.4): feature maps split
/// into row groups along `H` and width blocks along `W` (the SAVE
/// instruction's `IW_BLK`/`OW_BLK` numbers), weights into `GK` groups
/// along `K`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Partition {
    /// Output rows per row group: 1 for Spatial, `m` for Winograd.
    pub rows_per_group: usize,
    /// Number of row groups (`H` or `H/m`, rounded up).
    pub row_groups: usize,
    /// Output channels per weight group (a multiple of `PO`).
    pub k_per_group: usize,
    /// Number of weight groups (`GK`).
    pub gk: usize,
    /// Output columns per width block (balanced; last may be smaller).
    pub width_block: usize,
    /// Number of width blocks.
    pub width_blocks: usize,
}

impl Partition {
    /// Whether `wl` can execute on `cfg` in `mode` at all: the weight
    /// buffer must hold at least one `PO`-wide weight group.
    pub fn fits(cfg: &AcceleratorConfig, mode: ConvMode, wl: &LayerWorkload) -> bool {
        let words_per_k = match mode {
            ConvMode::Spatial => wl.c * wl.r * wl.s,
            ConvMode::Winograd => wl.c * wl.wino_blocks() * cfg.pt() * cfg.pt(),
        };
        cfg.weight_buffer_words() / words_per_k >= cfg.po
            && (mode == ConvMode::Spatial || wl.supports_winograd())
    }

    /// Computes the partition for `wl` on `cfg` in `mode`.
    ///
    /// The weight-group size is the largest multiple of `PO` whose
    /// weights fit the on-chip weight buffer (per ping-pong half); the
    /// input row-group is checked against the input buffer.
    ///
    /// # Panics
    /// Panics if even a single `PO`-wide weight group cannot fit the
    /// weight buffer — the configuration cannot execute the layer and
    /// the DSE must not have produced it.
    pub fn compute(cfg: &AcceleratorConfig, mode: ConvMode, wl: &LayerWorkload) -> Partition {
        let rows_per_group = match mode {
            ConvMode::Spatial => 1,
            ConvMode::Winograd => cfg.m(),
        };
        let align = match mode {
            ConvMode::Spatial => 1,
            ConvMode::Winograd => cfg.m(),
        };
        Self::compute_with(cfg, mode, wl, rows_per_group, align)
            .expect("weight buffer too small for one PO-wide group")
    }

    /// Like [`Partition::compute`], with explicit row grouping and width
    /// alignment (the compiler passes pool-adjusted values). Returns
    /// `None` when even a single `PO`-wide weight group cannot fit.
    pub fn compute_with(
        cfg: &AcceleratorConfig,
        mode: ConvMode,
        wl: &LayerWorkload,
        rows_per_group: usize,
        align: usize,
    ) -> Option<Partition> {
        let row_groups = wl.out_h.div_ceil(rows_per_group);
        let pi = cfg.pi;
        let cv = wl.c.div_ceil(pi);
        // Channel lanes padded to PI vectors (matches the weight images).
        let words_per_k = match mode {
            ConvMode::Spatial => cv * pi * wl.r * wl.s,
            ConvMode::Winograd => cv * pi * wl.wino_blocks() * cfg.pt() * cfg.pt(),
        };
        let capacity = cfg.weight_buffer_words();
        let mut k_per_group = (capacity / words_per_k) / cfg.po * cfg.po;
        if k_per_group == 0 {
            return None;
        }
        k_per_group = k_per_group
            .min(wl.k.next_multiple_of(cfg.po))
            .min(511 * cfg.po);

        // Width blocking: the widest blocks the input and output buffers
        // allow, balanced so all blocks pipeline evenly; shrink the
        // weight group if no block fits. FC-style 1×1 geometry trivially
        // blocks to 1.
        let fc_like = wl.out_h == 1 && wl.out_w == 1;
        let (width_block, width_blocks, k_per_group) = if fc_like {
            (1, 1, k_per_group)
        } else {
            let rows_loaded = (rows_per_group - 1) * wl.stride + wl.r;
            let icap = cfg.input_buffer_words();
            let ocap = cfg.output_buffer_words();
            let mut kg = k_per_group;
            loop {
                let max_cols = icap / (rows_loaded * cv * pi);
                let wb_in = if max_cols >= wl.s {
                    (max_cols - wl.s) / wl.stride + 1
                } else {
                    0
                };
                let kg_vecs = kg.div_ceil(cfg.po);
                let wb_out = ocap / (kg_vecs * cfg.po * rows_per_group);
                let wb_max = wb_in.min(wb_out).min(1023);
                if wb_max >= wl.out_w {
                    // The whole row fits: one block, no alignment needed
                    // (tiles clip at the real feature-map edge).
                    break (wl.out_w, 1, kg);
                }
                let wb_aligned = (wb_max / align) * align;
                if wb_aligned >= align {
                    // Balance block sizes so big/small alternation does
                    // not break ping-pong overlap.
                    let n = wl.out_w.div_ceil(wb_aligned);
                    let wb = (wl.out_w.div_ceil(n * align)) * align;
                    break (wb, wl.out_w.div_ceil(wb), kg);
                }
                if kg <= cfg.po {
                    return None;
                }
                kg = (kg / 2).next_multiple_of(cfg.po);
            }
        };
        let gk = wl.k.div_ceil(k_per_group);
        Some(Partition {
            rows_per_group,
            row_groups,
            k_per_group,
            gk,
            width_block,
            width_blocks,
        })
    }

    /// Output rows of row group `g` (the last group may be short).
    pub fn group_rows(&self, wl: &LayerWorkload, g: usize) -> usize {
        self.rows_per_group.min(wl.out_h - g * self.rows_per_group)
    }

    /// Output columns of width block `b` (the last block may be short).
    pub fn block_cols(&self, wl: &LayerWorkload, b: usize) -> usize {
        self.width_block.min(wl.out_w - b * self.width_block)
    }

    /// Output channels of weight group `gk` (the last may be short).
    pub fn group_k(&self, wl: &LayerWorkload, gk: usize) -> usize {
        self.k_per_group.min(wl.k - gk * self.k_per_group)
    }

    /// Exact words LOAD_INP transfers for one full pass over the input
    /// feature map (row/column halos included) — what Eq. 10 idealizes as
    /// `C·H·W`.
    pub fn input_pass_words(&self, cfg: &AcceleratorConfig, wl: &LayerWorkload) -> u64 {
        let lanes = wl.c.div_ceil(cfg.pi) * cfg.pi;
        if wl.out_h == 1 && wl.out_w == 1 {
            return lanes as u64;
        }
        let mut words = 0u64;
        for g in 0..self.row_groups {
            let rows_l = (self.group_rows(wl, g) - 1) * wl.stride + wl.r;
            for b in 0..self.width_blocks {
                let cols_l = (self.block_cols(wl, b) - 1) * wl.stride + wl.s;
                words += (rows_l * cols_l * lanes) as u64;
            }
        }
        words
    }

    /// Exact words LOAD_WGT transfers for one full pass over the weights
    /// (channel-lane and `PO`-vector padding included) — what Eq. 8/9
    /// idealize as `K·C·R·S` / `K·C·⌈R/r⌉⌈S/r⌉·PT²`.
    pub fn weight_pass_words(
        &self,
        cfg: &AcceleratorConfig,
        mode: ConvMode,
        wl: &LayerWorkload,
    ) -> u64 {
        let cv = wl.c.div_ceil(cfg.pi);
        let lanes = if wl.out_h == 1 && wl.out_w == 1 {
            // FC layers chunk the flattened input through the input
            // buffer; the weight image pads every chunk to uniform width.
            let chunk = cv.min(cfg.input_buffer_words() / cfg.pi).clamp(1, 1024);
            cv.div_ceil(chunk) * chunk * cfg.pi
        } else {
            cv * cfg.pi
        };
        let per_k = match mode {
            ConvMode::Spatial => lanes * wl.r * wl.s,
            ConvMode::Winograd => lanes * wl.wino_blocks() * cfg.pt() * cfg.pt(),
        } as u64;
        (0..self.gk)
            .map(|g| (self.group_k(wl, g).div_ceil(cfg.po) * cfg.po) as u64 * per_k)
            .sum()
    }

    /// Exact words SAVE transfers for the full output (`PO`-padded
    /// channel lanes) — Eq. 11's `K·H·W` with padding.
    pub fn save_pass_words(&self, cfg: &AcceleratorConfig, wl: &LayerWorkload) -> u64 {
        (0..self.gk)
            .map(|g| {
                (self.group_k(wl, g).div_ceil(cfg.po) * cfg.po) as u64
                    * (wl.out_h * wl.out_w) as u64
            })
            .sum()
    }

    /// Total number of COMP work units
    /// (`row_groups × width_blocks × GK`), the `H × GK` / `(H/m) × GK`
    /// counts of §4.2.4.
    pub fn units(&self) -> usize {
        self.row_groups * self.width_blocks * self.gk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybriddnn_model::zoo;
    use hybriddnn_winograd::TileConfig;

    fn cfg6() -> AcceleratorConfig {
        AcceleratorConfig::new(4, 4, TileConfig::F4x4)
    }

    #[test]
    fn workload_from_vgg16_layers() {
        let net = zoo::vgg16();
        let wl = LayerWorkload::from_layer(
            &net.layers()[0],
            net.layer_input_shape(0),
            net.layer_output_shape(0),
        )
        .unwrap();
        assert_eq!((wl.k, wl.c, wl.r, wl.s), (64, 3, 3, 3));
        assert_eq!((wl.out_h, wl.out_w), (224, 224));
        // conv1_1 MACs: 64·3·9·224² = 86 704 128.
        assert_eq!(wl.ops(), 173_408_256);
    }

    #[test]
    fn pooling_has_no_workload() {
        let net = zoo::vgg16();
        let pool_idx = net
            .layers()
            .iter()
            .position(|l| l.name() == "pool1")
            .unwrap();
        assert!(LayerWorkload::from_layer(
            &net.layers()[pool_idx],
            net.layer_input_shape(pool_idx),
            net.layer_output_shape(pool_idx),
        )
        .is_none());
    }

    #[test]
    fn fc_is_1x1_geometry() {
        let wl = LayerWorkload::fc(4096, 25088);
        assert_eq!(wl.macs(), 4096 * 25088);
        assert_eq!(wl.out_h, 1);
    }

    #[test]
    fn wino_blocks_decompose_large_kernels() {
        assert_eq!(
            LayerWorkload::conv(1, 1, 3, 3, 8, 8, 8, 8, 1).wino_blocks(),
            1
        );
        assert_eq!(
            LayerWorkload::conv(1, 1, 5, 5, 8, 8, 8, 8, 1).wino_blocks(),
            4
        );
        assert_eq!(
            LayerWorkload::conv(1, 1, 7, 7, 8, 8, 8, 8, 1).wino_blocks(),
            9
        );
        assert_eq!(
            LayerWorkload::conv(1, 1, 1, 1, 8, 8, 8, 8, 1).wino_blocks(),
            1
        );
    }

    #[test]
    fn stride_blocks_winograd() {
        assert!(LayerWorkload::conv(1, 1, 3, 3, 8, 8, 8, 8, 1).supports_winograd());
        assert!(!LayerWorkload::conv(1, 1, 3, 3, 8, 8, 4, 4, 2).supports_winograd());
    }

    #[test]
    fn partition_row_groups_follow_mode() {
        let wl = LayerWorkload::conv(64, 64, 3, 3, 224, 224, 224, 224, 1);
        let spat = Partition::compute(&cfg6(), ConvMode::Spatial, &wl);
        assert_eq!(spat.rows_per_group, 1);
        assert_eq!(spat.row_groups, 224);
        let wino = Partition::compute(&cfg6(), ConvMode::Winograd, &wl);
        assert_eq!(wino.rows_per_group, 4);
        assert_eq!(wino.row_groups, 56);
    }

    #[test]
    fn partition_splits_large_weight_tensors() {
        // conv5-style: 512×512×9 spatial words = 2.36 M; buffer holds
        // 294 912 → k_per_group = 64, GK = 8.
        let wl = LayerWorkload::conv(512, 512, 3, 3, 14, 14, 14, 14, 1);
        let p = Partition::compute(&cfg6(), ConvMode::Spatial, &wl);
        assert_eq!(p.k_per_group, 64);
        assert_eq!(p.gk, 8);
        assert_eq!(p.units(), 14 * 8);
        // Winograd inflates weights by PT²/9 per block → fewer K per group.
        let pw = Partition::compute(&cfg6(), ConvMode::Winograd, &wl);
        assert!(pw.k_per_group < p.k_per_group);
        assert!(pw.k_per_group * pw.gk >= 512);
    }

    #[test]
    fn partition_small_layer_single_group() {
        let wl = LayerWorkload::conv(8, 8, 3, 3, 16, 16, 16, 16, 1);
        let p = Partition::compute(&cfg6(), ConvMode::Spatial, &wl);
        assert_eq!(p.gk, 1);
        assert_eq!(p.k_per_group, 8);
    }

    #[test]
    fn partition_k_group_is_po_multiple() {
        let cfg = cfg6();
        for k in [8usize, 60, 64, 512, 1000] {
            let wl = LayerWorkload::conv(k, 128, 3, 3, 28, 28, 28, 28, 1);
            for mode in [ConvMode::Spatial, ConvMode::Winograd] {
                let p = Partition::compute(&cfg, mode, &wl);
                assert_eq!(p.k_per_group % cfg.po, 0, "k={k} {mode}");
                assert!(p.k_per_group * p.gk >= k);
            }
        }
    }
}
