use hybriddnn_winograd::TileConfig;
use std::fmt;

/// The CONV execution mode of a layer — the first runtime design choice
/// of §4.2.5, carried per-layer in the `WINO_FLAG` instruction field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvMode {
    /// Conventional (direct) convolution.
    Spatial,
    /// Winograd fast convolution.
    Winograd,
}

impl fmt::Display for ConvMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConvMode::Spatial => "spat",
            ConvMode::Winograd => "wino",
        })
    }
}

/// The dataflow strategy of a layer — the second runtime design choice of
/// §4.2.5, realized purely by instruction ordering (§4.2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataflow {
    /// Input Stationary: load one input row-group, stream all `GK` weight
    /// groups against it. Prefers larger feature maps.
    InputStationary,
    /// Weight Stationary: keep one weight group on chip, stream all input
    /// row-groups against it.
    WeightStationary,
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Dataflow::InputStationary => "is",
            Dataflow::WeightStationary => "ws",
        })
    }
}

/// Hardware parameters of one accelerator instance: the parallel factors
/// `(PI, PO, PT)` of §4.2.2 plus buffer depths and datapath width.
///
/// The PE is a `PT × PT` array of GEMM cores, each a `PI × PO` broadcast
/// MAC array. `PI` and `PO` scale to the FPGA's resources; `PT` is the
/// Winograd input-tile edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AcceleratorConfig {
    /// Input-channel parallelism (`PI`). Must satisfy `PI ≥ PO ≥ 1`.
    pub pi: usize,
    /// Output-channel parallelism (`PO`).
    pub po: usize,
    /// Winograd tile configuration (`PT = tile.pt() ∈ {4, 6}`).
    pub tile: TileConfig,
    /// Datapath storage width in bits (`DATA_WIDTH` of Eq. 3–5).
    pub data_width_bits: u32,
    /// Words of depth per buffer partition, per ping-pong half.
    pub buffer_depth_words: usize,
}

impl AcceleratorConfig {
    /// Default storage width: 16-bit words (12-bit activations / 8-bit
    /// weights stored in 16-bit containers, Table 4 footnote).
    pub const DEFAULT_DATA_WIDTH: u32 = 16;
    /// Default per-partition buffer depth (one 18Kb BRAM of 16-bit words
    /// split across ping/pong halves).
    pub const DEFAULT_BUFFER_DEPTH: usize = 512;

    /// Creates a configuration with default width and buffer depth.
    ///
    /// # Panics
    /// Panics unless `PI ≥ PO ≥ 1` (the paper's DSE constraint, Table 2).
    pub fn new(pi: usize, po: usize, tile: TileConfig) -> Self {
        assert!(po >= 1 && pi >= po, "constraint PI >= PO >= 1 violated");
        AcceleratorConfig {
            pi,
            po,
            tile,
            data_width_bits: Self::DEFAULT_DATA_WIDTH,
            buffer_depth_words: Self::DEFAULT_BUFFER_DEPTH,
        }
    }

    /// The input-tile edge `PT`.
    pub fn pt(&self) -> usize {
        self.tile.pt()
    }

    /// The output-tile edge `m`.
    pub fn m(&self) -> usize {
        self.tile.m()
    }

    /// MAC throughput per cycle: `PI · PO · PT²` (all GEMM cores).
    pub fn macs_per_cycle(&self) -> usize {
        self.pi * self.po * self.pt() * self.pt()
    }

    /// Input-buffer capacity in words, per ping-pong half
    /// (`PI · PT²` partitions — Table 1 — times the partition depth).
    pub fn input_buffer_words(&self) -> usize {
        self.pi * self.pt() * self.pt() * self.buffer_depth_words
    }

    /// Weight-buffer capacity in words, per ping-pong half.
    pub fn weight_buffer_words(&self) -> usize {
        self.pi * self.po * self.pt() * self.pt() * self.buffer_depth_words
    }

    /// Output-buffer capacity in words, per ping-pong half.
    pub fn output_buffer_words(&self) -> usize {
        self.po * self.m() * self.m() * self.buffer_depth_words
    }

    /// The on-chip buffer partition factors of the paper's **Table 1**
    /// for `mode`, as `(in_buffer, weight_buffer, out_buffer)` where each
    /// entry lists `(channel_partition, spatial_partition)`:
    ///
    /// * Winograd mode: in `PI × PT²`, weight `(PI·PO) × PT²`, out `PO × m²`.
    /// * Spatial mode: in `(PI·PT) × 1`... the table's bracketed factors —
    ///   all spatial parallelism folds into the channel broadcast, so the
    ///   per-dimension partitions collapse to 1.
    pub fn partition_factors(
        &self,
        mode: ConvMode,
    ) -> ((usize, usize), (usize, usize), (usize, usize)) {
        let pt2 = self.pt() * self.pt();
        let m2 = self.m() * self.m();
        match mode {
            ConvMode::Winograd => ((self.pi, pt2), (self.pi * self.po, pt2), (self.po, m2)),
            ConvMode::Spatial => (
                (self.pi * self.pt(), 1),
                (self.pi * self.po * self.pt(), 1),
                (self.po * self.pt(), 1),
            ),
        }
    }

    /// Whether both ping-pong halves of every buffer are addressable by
    /// the instruction set's buffer-base fields (20 bits for the input
    /// and weight buffers, 18 bits for the output buffer). Configurations
    /// beyond this cannot be programmed and are excluded by the DSE.
    pub fn fits_isa_addressing(&self) -> bool {
        2 * self.weight_buffer_words() <= 1 << 20
            && 2 * self.input_buffer_words() <= 1 << 20
            && 2 * self.output_buffer_words() <= 1 << 18
    }

    /// Peak arithmetic throughput in GOPS at `freq_mhz` (2 ops per MAC) in
    /// Spatial mode. Winograd mode's *effective* peak is higher by the
    /// tile's reduction factor.
    pub fn peak_gops(&self, freq_mhz: f64) -> f64 {
        2.0 * self.macs_per_cycle() as f64 * freq_mhz / 1000.0
    }
}

impl fmt::Display for AcceleratorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PI={} PO={} PT={}", self.pi, self.po, self.pt())
    }
}

/// A complete design point: one instance configuration replicated `NI`
/// times across the device (Table 2's hardware parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignPoint {
    /// Per-instance configuration.
    pub accel: AcceleratorConfig,
    /// Number of accelerator instances (`NI`).
    pub ni: usize,
}

impl DesignPoint {
    /// Creates a design point.
    ///
    /// # Panics
    /// Panics if `ni == 0`.
    pub fn new(accel: AcceleratorConfig, ni: usize) -> Self {
        assert!(ni >= 1, "at least one instance required");
        DesignPoint { accel, ni }
    }

    /// Aggregate peak GOPS across instances.
    pub fn peak_gops(&self, freq_mhz: f64) -> f64 {
        self.accel.peak_gops(freq_mhz) * self.ni as f64
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} x NI={}", self.accel, self.ni)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_have_expected_throughput() {
        // VU9P: PI=PO=4, PT=6 → 576 MACs/cycle/instance.
        let cfg = AcceleratorConfig::new(4, 4, TileConfig::F4x4);
        assert_eq!(cfg.macs_per_cycle(), 576);
        // PYNQ: PI=PO=4, PT=4 → 256 MACs/cycle.
        let cfg = AcceleratorConfig::new(4, 4, TileConfig::F2x2);
        assert_eq!(cfg.macs_per_cycle(), 256);
    }

    #[test]
    fn peak_gops_scale() {
        let cfg = AcceleratorConfig::new(4, 4, TileConfig::F4x4);
        // 576 MACs * 2 ops * 167 MHz = 192.4 GOPS per instance;
        // 6 instances = 1154 GOPS spatial peak. (Winograd's effective
        // throughput is 4x this, explaining the 3375.7 GOPS headline.)
        let one = cfg.peak_gops(167.0);
        assert!((one - 192.38).abs() < 0.1, "{one}");
        let dp = DesignPoint::new(cfg, 6);
        assert!((dp.peak_gops(167.0) - 6.0 * one).abs() < 1e-9);
    }

    #[test]
    fn buffer_capacities_follow_partitions() {
        let cfg = AcceleratorConfig::new(4, 4, TileConfig::F4x4);
        assert_eq!(cfg.input_buffer_words(), 4 * 36 * 512);
        assert_eq!(cfg.weight_buffer_words(), 16 * 36 * 512);
        assert_eq!(cfg.output_buffer_words(), 4 * 16 * 512);
    }

    #[test]
    fn table1_partition_factors() {
        // Table 1 at PI=PO=4, PT=6, m=4 (the VU9P design):
        // Winograd: in 4(x36), wgt 16(x36), out 4(x16);
        // Spatial factors in brackets: PI·PT, PI·PO·PT, PO·PT.
        let cfg = AcceleratorConfig::new(4, 4, TileConfig::F4x4);
        assert_eq!(
            cfg.partition_factors(crate::ConvMode::Winograd),
            ((4, 36), (16, 36), (4, 16))
        );
        assert_eq!(
            cfg.partition_factors(crate::ConvMode::Spatial),
            ((24, 1), (96, 1), (24, 1))
        );
    }

    #[test]
    fn isa_addressing_bounds_buffers() {
        assert!(AcceleratorConfig::new(4, 4, TileConfig::F4x4).fits_isa_addressing());
        // PI=16, PO=8, PT=4: 2^21-word weight buffer — unaddressable.
        assert!(!AcceleratorConfig::new(16, 8, TileConfig::F2x2).fits_isa_addressing());
    }

    #[test]
    #[should_panic(expected = "PI >= PO")]
    fn pi_ge_po_enforced() {
        let _ = AcceleratorConfig::new(2, 4, TileConfig::F2x2);
    }

    #[test]
    fn display_formats() {
        let cfg = AcceleratorConfig::new(8, 4, TileConfig::F2x2);
        assert_eq!(cfg.to_string(), "PI=8 PO=4 PT=4");
        assert_eq!(
            DesignPoint::new(cfg, 3).to_string(),
            "PI=8 PO=4 PT=4 x NI=3"
        );
        assert_eq!(ConvMode::Winograd.to_string(), "wino");
        assert_eq!(Dataflow::InputStationary.to_string(), "is");
    }
}
