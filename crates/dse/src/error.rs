use std::fmt;

/// Errors produced by design space exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DseError {
    /// No hardware candidate satisfies the resource constraints and can
    /// execute every layer of the network.
    NoFeasibleDesign {
        /// How many hardware candidates were considered.
        candidates: usize,
    },
    /// The network has no compute layers.
    EmptyNetwork,
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::NoFeasibleDesign { candidates } => {
                write!(
                    f,
                    "no feasible design among {candidates} hardware candidates"
                )
            }
            DseError::EmptyNetwork => write!(f, "network has no compute layers"),
        }
    }
}

impl std::error::Error for DseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(DseError::NoFeasibleDesign { candidates: 7 }
            .to_string()
            .contains('7'));
    }
}
