//! Design space exploration for HybridDNN accelerators (paper §5.3).
//!
//! The optimization problem of Table 2:
//!
//! * **HW parameters** — `PI, PO, PT, NI`;
//! * **SW parameters** — per-layer CONV mode (Spatial/Winograd) and
//!   dataflow (IS/WS);
//! * **constraints** — `PI ≥ PO ≥ 1`, `PT ∈ {4, 6}`, and the resource
//!   models Eq. 3–5 within the device budget (per die: an accelerator
//!   instance must not straddle SLRs);
//! * **objective** — minimize `Σ T_l` (per-image latency; instances are
//!   batch-parallel, so device throughput scales by `NI`).
//!
//! The 3-step algorithm:
//!
//! 1. enumerate hardware candidates — for each legal `PT`, grow `PI`/`PO`
//!    until resources are exhausted, then replicate instances per die;
//! 2. pick the best (mode, dataflow) per layer from Eq. 12–15;
//! 3. select the candidate with the highest device throughput
//!    (ties: larger `NI` — better timing closure on multi-die parts —
//!    then fewer DSPs).
//!
//! # Example
//!
//! ```
//! use hybriddnn_dse::DseEngine;
//! use hybriddnn_estimator::Profile;
//! use hybriddnn_fpga::FpgaSpec;
//! use hybriddnn_model::zoo;
//!
//! # fn main() -> Result<(), hybriddnn_dse::DseError> {
//! let engine = DseEngine::new(FpgaSpec::vu9p(), Profile::vu9p());
//! let result = engine.explore(&zoo::vgg16())?;
//! // The paper's §6.1 configuration: PI = PO = 4, PT = 6, 6 instances.
//! assert_eq!(result.design.accel.pi, 4);
//! assert_eq!(result.design.accel.po, 4);
//! assert_eq!(result.design.accel.pt(), 6);
//! assert_eq!(result.design.ni, 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;

pub use engine::{DseEngine, DseResult, LayerChoice};
pub use error::DseError;
