//! The 3-step DSE algorithm.

use crate::DseError;
use hybriddnn_estimator::{
    latency, resource, AcceleratorConfig, ConvMode, Dataflow, DesignPoint, LatencyEstimate,
    LayerWorkload, Partition, Profile,
};
use hybriddnn_fpga::{FpgaSpec, Resources};
use hybriddnn_model::Network;
use hybriddnn_par::WorkPool;
use hybriddnn_winograd::TileConfig;

/// The DSE's per-layer verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerChoice {
    /// Layer name.
    pub name: String,
    /// The layer's workload geometry.
    pub workload: LayerWorkload,
    /// Chosen CONV mode.
    pub mode: ConvMode,
    /// Chosen dataflow.
    pub dataflow: Dataflow,
    /// The winning latency estimate.
    pub estimate: LatencyEstimate,
}

/// The complete result of a design space exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct DseResult {
    /// The winning hardware design.
    pub design: DesignPoint,
    /// Modeled resources of one instance (Eq. 3–5).
    pub instance_resources: Resources,
    /// Modeled resources of all `NI` instances.
    pub total_resources: Resources,
    /// Per-layer software choices, in compute-layer order.
    pub per_layer: Vec<LayerChoice>,
    /// Estimated per-image latency in cycles (`Σ T_l`, the Table 2
    /// objective).
    pub total_cycles: f64,
    /// Number of hardware candidates enumerated in Step 1.
    pub candidates: usize,
}

impl DseResult {
    /// The per-layer `(mode, dataflow)` choices in the form the compiler's
    /// `MappingStrategy` consumes.
    pub fn strategy_choices(&self) -> Vec<(ConvMode, Dataflow)> {
        self.per_layer
            .iter()
            .map(|c| (c.mode, c.dataflow))
            .collect()
    }

    /// Estimated per-image latency in milliseconds at `freq_mhz`.
    pub fn latency_ms(&self, freq_mhz: f64) -> f64 {
        self.total_cycles / (freq_mhz * 1e6) * 1e3
    }

    /// Estimated device throughput in GOPS at `freq_mhz` (instances are
    /// batch-parallel: `NI × ops / T`).
    pub fn throughput_gops(&self, freq_mhz: f64) -> f64 {
        let ops: u64 = self.per_layer.iter().map(|c| c.workload.ops()).sum();
        self.design.ni as f64 * ops as f64 / (self.total_cycles / (freq_mhz * 1e6)) / 1e9
    }
}

/// The design space exploration engine (Figure 1 Step 2).
#[derive(Debug, Clone)]
pub struct DseEngine {
    device: FpgaSpec,
    profile: Profile,
    threads: usize,
}

impl DseEngine {
    /// Creates an engine for a device with its fitted resource profile.
    /// Candidate evaluation uses the process-wide default thread count
    /// (see [`hybriddnn_par::default_threads`]); override it with
    /// [`DseEngine::with_threads`].
    pub fn new(device: FpgaSpec, profile: Profile) -> Self {
        DseEngine {
            device,
            profile,
            threads: 0,
        }
    }

    /// Sets the thread budget for candidate evaluation (`0` = the
    /// process-wide default). The exploration result is bit-identical at
    /// any thread count: candidates are evaluated independently and
    /// reduced in enumeration order.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The device this engine targets.
    pub fn device(&self) -> &FpgaSpec {
        &self.device
    }

    /// Step 1: enumerate hardware candidates.
    ///
    /// For each `PT ∈ {4, 6}` and each `PI ≥ PO` over power-of-two
    /// parallel factors, keep configurations whose single instance fits
    /// within one die, and replicate to the per-die maximum (`NI`),
    /// bounded by the shell's DMA-port count.
    pub fn enumerate_candidates(&self) -> Vec<(DesignPoint, Resources)> {
        let mut out = Vec::new();
        let die = self.device.die_resources();
        for tile in TileConfig::ALL {
            for pi_log in 0..=6 {
                for po_log in 0..=pi_log {
                    let (pi, po) = (1usize << pi_log, 1usize << po_log);
                    // Step 1 "takes turns to increase the value of PI, PO,
                    // and NI" (§5.3): the alternating growth keeps PI
                    // within one doubling of PO, which also reflects the
                    // broadcast-fanout routing cost of very wide PI.
                    if pi > 2 * po {
                        continue;
                    }
                    let cfg = AcceleratorConfig::new(pi, po, tile);
                    if !cfg.fits_isa_addressing() {
                        continue;
                    }
                    let inst = resource::instance_resources(
                        &cfg,
                        &self.profile,
                        self.device.bram_width_bits(),
                    );
                    if !inst.fits_within(&die) {
                        continue;
                    }
                    // Instances per die: largest n with n·inst ≤ die.
                    let mut per_die: u64 = 1;
                    while (inst * (per_die + 1)).fits_within(&die) {
                        per_die += 1;
                    }
                    let ni =
                        (per_die as usize * self.device.dies()).min(self.device.max_instances());
                    out.push((DesignPoint::new(cfg, ni), inst));
                }
            }
        }
        out
    }

    /// Step 2: evaluate the per-layer software choices for one candidate.
    /// Returns `None` if any layer cannot execute on the configuration.
    pub fn evaluate(&self, design: &DesignPoint, net: &Network) -> Option<(Vec<LayerChoice>, f64)> {
        let bw = self.device.instance_bandwidth(design.ni);
        let mut per_layer = Vec::new();
        let mut total = 0.0;
        for (i, layer) in net.layers().iter().enumerate() {
            let Some(wl) = LayerWorkload::from_layer(
                layer,
                net.layer_input_shape(i),
                net.layer_output_shape(i),
            ) else {
                continue; // pooling rides along in SAVE
            };
            if !Partition::fits(&design.accel, ConvMode::Spatial, &wl) {
                return None;
            }
            let (mode, dataflow, estimate) = latency::best_choice(&design.accel, &wl, bw);
            total += estimate.cycles;
            per_layer.push(LayerChoice {
                name: layer.name().to_string(),
                workload: wl,
                mode,
                dataflow,
                estimate,
            });
        }
        if per_layer.is_empty() {
            return None;
        }
        Some((per_layer, total))
    }

    /// Steps 1–3: full exploration.
    ///
    /// # Errors
    /// Returns [`DseError::NoFeasibleDesign`] if no candidate can run the
    /// network, or [`DseError::EmptyNetwork`] for networks with no
    /// compute layers.
    pub fn explore(&self, net: &Network) -> Result<DseResult, DseError> {
        if !net.layers().iter().any(|l| l.is_compute()) {
            return Err(DseError::EmptyNetwork);
        }
        let candidates = self.enumerate_candidates();
        let n_candidates = candidates.len();
        // Candidates are independent: fan them across the pool, then
        // reduce sequentially in enumeration order — `map` returns
        // index-ordered results, so the winner (ties included) is the
        // same at any thread count. Each evaluation is only tens of
        // microseconds, so several candidates must back each extra
        // worker before forking pays.
        let pool = WorkPool::new(self.threads).capped(n_candidates / 8);
        let evaluated = pool.map(&candidates, |(design, inst)| {
            let (per_layer, total_cycles) = self.evaluate(design, net)?;
            Some(DseResult {
                design: *design,
                instance_resources: *inst,
                total_resources: *inst * design.ni as u64,
                per_layer,
                total_cycles,
                candidates: n_candidates,
            })
        });
        let mut best: Option<DseResult> = None;
        for result in evaluated.into_iter().flatten() {
            let better = match &best {
                None => true,
                Some(b) => {
                    // Objective: device throughput (ΣT / NI). Candidates
                    // within 1% are equivalent — well inside the model's
                    // ~4% accuracy (§6.2) — and resolved by preferring
                    // more instances (per-die replication is the paper's
                    // answer to multi-die timing closure), then fewer
                    // DSPs.
                    let a_score = result.total_cycles / result.design.ni as f64;
                    let b_score = b.total_cycles / b.design.ni as f64;
                    if (a_score - b_score).abs() > 0.01 * b_score.max(1.0) {
                        a_score < b_score
                    } else if result.design.ni != b.design.ni {
                        result.design.ni > b.design.ni
                    } else {
                        result.total_resources.dsp < b.total_resources.dsp
                    }
                }
            };
            if better {
                best = Some(result);
            }
        }
        best.ok_or(DseError::NoFeasibleDesign {
            candidates: n_candidates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybriddnn_model::zoo;

    fn vu9p_engine() -> DseEngine {
        DseEngine::new(FpgaSpec::vu9p(), Profile::vu9p())
    }

    fn pynq_engine() -> DseEngine {
        DseEngine::new(FpgaSpec::pynq_z1(), Profile::pynq_z1())
    }

    #[test]
    fn candidates_respect_die_budget() {
        let engine = vu9p_engine();
        let die = engine.device().die_resources();
        let cands = engine.enumerate_candidates();
        assert!(!cands.is_empty());
        for (dp, inst) in &cands {
            assert!(inst.fits_within(&die), "{dp}");
            let per_die = dp.ni / engine.device().dies();
            assert!((*inst * per_die as u64).fits_within(&die));
        }
    }

    #[test]
    fn vu9p_dse_reproduces_paper_config() {
        // §6.1: PI = PO = 4, PT = 6, six instances (two per die).
        let result = vu9p_engine().explore(&zoo::vgg16()).unwrap();
        assert_eq!(result.design.accel.pi, 4, "picked {}", result.design);
        assert_eq!(result.design.accel.po, 4);
        assert_eq!(result.design.accel.pt(), 6);
        assert_eq!(result.design.ni, 6);
    }

    #[test]
    fn pynq_dse_reproduces_paper_config() {
        // §6.1: PI = PO = 4, PT = 4, one instance.
        let result = pynq_engine().explore(&zoo::vgg16()).unwrap();
        assert_eq!(result.design.accel.pi, 4, "picked {}", result.design);
        assert_eq!(result.design.accel.po, 4);
        assert_eq!(result.design.accel.pt(), 4);
        assert_eq!(result.design.ni, 1);
    }

    #[test]
    fn vgg16_conv_layers_choose_winograd_on_vu9p() {
        // §6.2: "the DSE selects all CONV layers of VGG16 to be
        // implemented in Winograd mode due to the sufficient memory
        // bandwidth."
        let result = vu9p_engine().explore(&zoo::vgg16()).unwrap();
        for choice in &result.per_layer {
            if choice.workload.out_h > 1 {
                assert_eq!(
                    choice.mode,
                    ConvMode::Winograd,
                    "layer {} chose {:?}",
                    choice.name,
                    choice.mode
                );
            }
        }
    }

    #[test]
    fn low_bandwidth_flips_choices_to_spatial() {
        // §6.2: in bandwidth-limited scenarios Spatial outperforms.
        let device = FpgaSpec::vu9p().with_ddr_words_per_cycle(2.0);
        let engine = DseEngine::new(device, Profile::vu9p());
        let result = engine.explore(&zoo::vgg16()).unwrap();
        let spatial = result
            .per_layer
            .iter()
            .filter(|c| c.mode == ConvMode::Spatial)
            .count();
        assert!(
            spatial > result.per_layer.len() / 2,
            "only {spatial}/{} layers spatial at BW=2",
            result.per_layer.len()
        );
    }

    #[test]
    fn strategy_choices_match_compute_layers() {
        let net = zoo::vgg16();
        let result = vu9p_engine().explore(&net).unwrap();
        let compute = net.layers().iter().filter(|l| l.is_compute()).count();
        assert_eq!(result.strategy_choices().len(), compute);
        assert_eq!(result.per_layer.len(), 16);
    }

    #[test]
    fn throughput_and_latency_are_consistent() {
        let result = vu9p_engine().explore(&zoo::vgg16()).unwrap();
        let ms = result.latency_ms(167.0);
        let gops = result.throughput_gops(167.0);
        assert!(ms > 0.0);
        // ops/latency·NI must equal gops.
        let ops: u64 = result.per_layer.iter().map(|c| c.workload.ops()).sum();
        let manual = result.design.ni as f64 * ops as f64 / (ms / 1e3) / 1e9;
        assert!((manual - gops).abs() / gops < 1e-9);
    }

    #[test]
    fn hopeless_device_reports_no_feasible_design() {
        use crate::DseError;
        let toy = FpgaSpec::new(
            "toy",
            1,
            hybriddnn_fpga::Resources::new(500, 10, 4),
            36,
            50.0,
            1.0,
            1,
        );
        let engine = DseEngine::new(toy, Profile::vu9p());
        let err = engine.explore(&zoo::vgg16()).unwrap_err();
        assert!(matches!(err, DseError::NoFeasibleDesign { .. }), "{err}");
    }

    #[test]
    fn total_resources_stay_within_device() {
        for engine in [vu9p_engine(), pynq_engine()] {
            let result = engine.explore(&zoo::vgg16()).unwrap();
            assert!(result
                .total_resources
                .fits_within(&engine.device().total_resources()));
        }
    }
}
