//! Developer probe: rank every DSE hardware candidate for VGG16 on the
//! VU9P by device throughput. Useful when tuning profiles or tie-breaks.
//!
//! ```text
//! cargo run --release -p hybriddnn-dse --example dse_probe
//! ```

use hybriddnn_dse::DseEngine;
use hybriddnn_estimator::Profile;
use hybriddnn_fpga::FpgaSpec;
use hybriddnn_model::zoo;

fn main() {
    let engine = DseEngine::new(FpgaSpec::vu9p(), Profile::vu9p());
    let net = zoo::vgg16();
    let mut rows: Vec<(f64, String)> = vec![];
    for (dp, inst) in engine.enumerate_candidates() {
        if let Some((_, total)) = engine.evaluate(&dp, &net) {
            let score = total / dp.ni as f64;
            rows.push((score, format!("{dp} score {score:.0} inst {inst}")));
        }
    }
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    for (_, r) in rows.iter().take(12) {
        println!("{r}");
    }
}
