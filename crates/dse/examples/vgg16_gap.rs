//! Developer probe: per-layer DSE verdicts (mode, dataflow, bound,
//! partition) for VGG16 on the VU9P.

use hybriddnn_dse::DseEngine;
use hybriddnn_estimator::Profile;
use hybriddnn_fpga::FpgaSpec;
use hybriddnn_model::zoo;

fn main() {
    let engine = DseEngine::new(FpgaSpec::vu9p(), Profile::vu9p());
    let net = zoo::vgg16();
    let result = engine.explore(&net).unwrap();
    for c in &result.per_layer {
        println!(
            "{:<10} {} {} est {:>10.0} bound {} gk {} rg {}",
            c.name,
            c.mode,
            c.dataflow,
            c.estimate.cycles,
            c.estimate.bound,
            c.estimate.partition.gk,
            c.estimate.partition.row_groups
        );
    }
}
