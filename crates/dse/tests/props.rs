//! Property-based tests of the DSE engine: whatever device it is given,
//! every result it returns is feasible, consistent, and optimal within
//! its own candidate set and tie-break rules.

use hybriddnn_dse::DseEngine;
use hybriddnn_estimator::{ConvMode, Profile};
use hybriddnn_fpga::{FpgaSpec, Resources};
use hybriddnn_model::{zoo, NetworkBuilder, Shape};
use proptest::prelude::*;

fn device_strategy() -> impl Strategy<Value = FpgaSpec> {
    (
        1usize..4,          // dies
        60_000u64..500_000, // die LUTs
        300u64..2500,       // die DSPs
        200u64..1500,       // die BRAMs
        50.0f64..300.0,     // MHz
        4.0f64..512.0,      // BW
        1usize..8,          // max instances
    )
        .prop_map(|(dies, lut, dsp, bram, mhz, bw, ports)| {
            FpgaSpec::new(
                "prop",
                dies,
                Resources::new(lut, dsp, bram),
                36,
                mhz,
                bw,
                ports,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the device, a feasible result fits the device, respects
    /// the die budget, honours PI≥PO and PT∈{4,6}, and beats (or ties)
    /// every other candidate under the engine's own scoring.
    #[test]
    fn explore_results_are_feasible_and_optimal(device in device_strategy()) {
        let engine = DseEngine::new(device, Profile::vu9p());
        let net = zoo::vgg_tiny();
        let Ok(result) = engine.explore(&net) else { return Ok(()); };

        // Structural constraints (Table 2).
        prop_assert!(result.design.accel.pi >= result.design.accel.po);
        prop_assert!([4, 6].contains(&result.design.accel.pt()));
        prop_assert!(result.design.ni <= engine.device().max_instances());
        prop_assert!(result
            .total_resources
            .fits_within(&engine.device().total_resources()));
        let per_die = result.design.ni.div_ceil(engine.device().dies());
        prop_assert!((result.instance_resources * per_die as u64)
            .fits_within(&engine.device().die_resources()));

        // Per-layer choices cover exactly the compute layers.
        let compute = net.layers().iter().filter(|l| l.is_compute()).count();
        prop_assert_eq!(result.per_layer.len(), compute);
        prop_assert!(result.total_cycles > 0.0);

        // No other candidate scores more than 1% better.
        let winner_score = result.total_cycles / result.design.ni as f64;
        for (dp, _) in engine.enumerate_candidates() {
            if let Some((_, cycles)) = engine.evaluate(&dp, &net) {
                let score = cycles / dp.ni as f64;
                prop_assert!(
                    score >= winner_score * 0.99 - 1e-6,
                    "{dp} scores {score} < winner {winner_score}"
                );
            }
        }
    }

    /// Strided layers never get Winograd mode.
    #[test]
    fn strided_layers_stay_spatial(device in device_strategy(), stride in 2usize..4) {
        let conv = hybriddnn_model::Conv2d {
            in_channels: 4,
            out_channels: 8,
            kernel_h: 3,
            kernel_w: 3,
            stride,
            padding: hybriddnn_model::Padding::same(1),
            activation: hybriddnn_model::Activation::Relu,
            bias: true,
        };
        let net = NetworkBuilder::new(Shape::new(4, 24, 24))
            .conv_cfg("s", conv)
            .build()
            .expect("consistent");
        let engine = DseEngine::new(device, Profile::vu9p());
        let Ok(result) = engine.explore(&net) else { return Ok(()); };
        prop_assert_eq!(result.per_layer[0].mode, ConvMode::Spatial);
    }

    /// More bandwidth never increases the estimated total latency for
    /// the same network.
    #[test]
    fn more_bandwidth_never_hurts(device in device_strategy(), ratio in 1.0f64..8.0) {
        let engine = DseEngine::new(device.clone(), Profile::vu9p());
        let net = zoo::vgg_tiny();
        let Ok(slow) = engine.explore(&net) else { return Ok(()); };
        let fast_dev = device.with_ddr_words_per_cycle(device.ddr_words_per_cycle() * ratio);
        let fast = DseEngine::new(fast_dev, Profile::vu9p())
            .explore(&net)
            .expect("bigger budget stays feasible");
        let slow_score = slow.total_cycles / slow.design.ni as f64;
        let fast_score = fast.total_cycles / fast.design.ni as f64;
        prop_assert!(fast_score <= slow_score * 1.0 + 1e-6);
    }
}
