//! Std-only nonblocking reactor primitives for the HybridDNN serving
//! stack.
//!
//! This crate is the event-driven substrate `crates/server` runs on:
//!
//! * [`Poller`] — an epoll-backed readiness selector (level-triggered)
//!   with a POSIX `poll(2)` fallback on non-Linux unix, registration
//!   [`Token`]s, an [`Interest`] set, and a cross-thread [`Waker`].
//! * [`TimerWheel`] — deadline-ordered timers (idle timeouts, drain
//!   grace periods) replacing per-socket `set_read_timeout` ticks.
//! * [`RingBuf`] — a contiguous-window ring buffer that frames decode
//!   out of incrementally with zero intermediate copies.
//! * [`BufPool`] — recycled byte buffers keeping the steady-state
//!   response write path alloc-free.
//! * [`raise_nofile_limit`] — an `RLIMIT_NOFILE` helper for
//!   high-concurrency load generators.
//!
//! No external dependencies: the few syscalls needed are declared by
//! hand in `sys` (std already links libc). Everything here is
//! runtime-agnostic — no futures, no executor — just the readiness
//! loop, which is all a single-digit-thread serving front-end needs.

#![warn(missing_docs)]
#![forbid(unsafe_op_in_unsafe_fn)]

mod poller;
mod pool;
mod ring;
mod sys;
mod timer;

pub use poller::{raise_nofile_limit, Event, Interest, Poller, Token, Waker};
pub use pool::BufPool;
pub use ring::RingBuf;
pub use timer::{TimerKey, TimerWheel};
