//! Shared buffer pool for the alloc-free response write path.
//!
//! Response bodies used to be encoded into a fresh `Vec<u8>` per reply
//! and dropped after the socket write. `BufPool` recycles those
//! vectors: the completion pump checks one out, encodes into it, and
//! the reactor returns it once the bytes are on the wire. Two caps keep
//! the pool honest — a count cap bounds idle memory, and a per-buffer
//! capacity cap stops one giant tensor response from pinning megabytes
//! forever.

use std::sync::Mutex;

/// Mutex-guarded stack of recycled byte buffers.
#[derive(Debug)]
pub struct BufPool {
    bufs: Mutex<Vec<Vec<u8>>>,
    max_pooled: usize,
    max_buf_capacity: usize,
}

impl BufPool {
    /// A pool retaining at most `max_pooled` buffers, discarding any
    /// returned buffer whose capacity exceeds `max_buf_capacity`.
    pub fn new(max_pooled: usize, max_buf_capacity: usize) -> BufPool {
        BufPool {
            bufs: Mutex::new(Vec::new()),
            max_pooled,
            max_buf_capacity,
        }
    }

    /// Check out an empty buffer (recycled when available).
    pub fn get(&self) -> Vec<u8> {
        self.bufs.lock().unwrap().pop().unwrap_or_default()
    }

    /// Return a buffer for reuse; cleared here, dropped if over caps.
    pub fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > self.max_buf_capacity {
            return;
        }
        buf.clear();
        let mut bufs = self.bufs.lock().unwrap();
        if bufs.len() < self.max_pooled {
            bufs.push(buf);
        }
    }

    /// Number of buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.bufs.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::BufPool;

    #[test]
    fn recycles_capacity() {
        let pool = BufPool::new(4, 1 << 20);
        let mut b = pool.get();
        b.extend_from_slice(&[1u8; 100]);
        let cap = b.capacity();
        pool.put(b);
        assert_eq!(pool.idle(), 1);
        let b2 = pool.get();
        assert!(b2.is_empty());
        assert_eq!(b2.capacity(), cap);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn caps_are_enforced() {
        let pool = BufPool::new(2, 64);
        // Oversized buffer is dropped, not pooled.
        pool.put(Vec::with_capacity(128));
        assert_eq!(pool.idle(), 0);
        // Count cap: only two retained.
        for _ in 0..5 {
            pool.put(Vec::with_capacity(16));
        }
        assert_eq!(pool.idle(), 2);
        // Zero-capacity buffers aren't worth pooling.
        pool.put(Vec::new());
        assert_eq!(pool.idle(), 2);
    }
}
