//! Readiness polling: `Poller`, registration `Token`s, and a cross-thread
//! `Waker`.
//!
//! A `Poller` owns one OS selector (epoll on Linux, poll(2) elsewhere)
//! plus a self-wake channel: a nonblocking socketpair whose read half is
//! registered under a reserved internal token. Any thread holding the
//! matching [`Waker`] can interrupt a blocked [`Poller::wait`], which is
//! how reactor command queues (new connection, response ready, drain)
//! get serviced promptly without timeouts doing the work.

use crate::sys::{self, Selector};
use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

pub use crate::sys::{Interest, RawEvent};

/// Caller-chosen registration key; reported back in every [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Reserved for the poller's internal wake channel; never user-visible.
const WAKER_TOKEN: usize = usize::MAX;

/// One readiness notification delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: Token,
    /// The fd is readable (data, EOF, or a pending accept).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// Error or hangup; the connection should be torn down after any
    /// final readable data is consumed.
    pub closed: bool,
}

/// Wakes a [`Poller`] blocked in [`Poller::wait`] from another thread.
///
/// Cloneable (via `Arc` internally) and cheap: a wake is a 1-byte write
/// to a nonblocking socketpair; if the pair is already full a wakeup is
/// already pending and the write is a no-op.
#[derive(Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Interrupt the paired poller's current (or next) `wait`.
    pub fn wake(&self) {
        // WouldBlock means unread wake bytes are already queued — the
        // poller is guaranteed to wake — so ignoring the error is safe.
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// OS-backed readiness poller with token registration and self-wake.
pub struct Poller {
    selector: Selector,
    wake_rx: UnixStream,
    waker: Waker,
    raw: Vec<RawEvent>,
}

impl Poller {
    /// Create a poller and its internal wake channel.
    pub fn new() -> io::Result<Poller> {
        let selector = Selector::new()?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        selector.register(wake_rx.as_raw_fd(), WAKER_TOKEN, Interest::READABLE)?;
        Ok(Poller {
            selector,
            wake_rx,
            waker: Waker {
                tx: Arc::new(wake_tx),
            },
            raw: Vec::with_capacity(1024),
        })
    }

    /// A handle other threads can use to interrupt [`Poller::wait`].
    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }

    /// Start watching `fd` under `token` for `interest`.
    ///
    /// `Token(usize::MAX)` is reserved for the internal wake channel.
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        assert_ne!(token.0, WAKER_TOKEN, "Token(usize::MAX) is reserved");
        self.selector.register(fd, token.0, interest)
    }

    /// Change the interest set of an existing registration.
    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        assert_ne!(token.0, WAKER_TOKEN, "Token(usize::MAX) is reserved");
        self.selector.reregister(fd, token.0, interest)
    }

    /// Stop watching `fd`. Must be called before the fd is closed.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.selector.deregister(fd)
    }

    /// Block until at least one event, the timeout, or a wake.
    ///
    /// Appends readiness to `events` (cleared first). Returns `true` if
    /// a cross-thread wake was consumed — the caller should drain its
    /// command queue in that case. A `None` timeout blocks indefinitely.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<bool> {
        events.clear();
        self.raw.clear();
        self.selector.wait(&mut self.raw, timeout)?;
        let mut woken = false;
        for ev in &self.raw {
            if ev.token == WAKER_TOKEN {
                woken = true;
                // Drain every pending wake byte so level-triggered
                // readiness doesn't spin the loop.
                let mut sink = [0u8; 64];
                while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
                continue;
            }
            events.push(Event {
                token: Token(ev.token),
                readable: ev.readable,
                writable: ev.writable,
                closed: ev.closed,
            });
        }
        Ok(woken)
    }
}

/// Re-export of the rlimit helper so binaries need only this crate.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    sys::raise_nofile_limit(want)
}
