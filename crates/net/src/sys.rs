//! Raw OS bindings for the poller.
//!
//! The crate is std-only by policy, so the handful of syscalls the
//! reactor needs are declared by hand here (std already links libc, so
//! the symbols resolve without any external crate). Two backends are
//! provided behind one `Selector` type:
//!
//! * **Linux** — `epoll` in level-triggered mode. Level-triggered keeps
//!   the reactor logic simple: readiness is re-reported until the
//!   condition is consumed, so a partial read never strands a socket.
//! * **Other unix** — POSIX `poll(2)` over a rebuilt pollfd array. This
//!   is the portable fallback named in the design (macOS/BSD would use
//!   kqueue for scale; `poll` keeps them correct without another ~300
//!   lines of bindings the CI host can never exercise).
//!
//! Both backends expose the same readiness vocabulary: readable,
//! writable, and closed (error/hangup), keyed by a caller-chosen token.

#![allow(non_camel_case_types)]

use std::io;

pub type c_int = i32;

/// Readiness of one registered file descriptor, as reported by the OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawEvent {
    /// Caller-chosen key supplied at registration time.
    pub token: usize,
    /// Data can be read (or an incoming connection accepted).
    pub readable: bool,
    /// The socket send buffer has room.
    pub writable: bool,
    /// Error or hangup: the peer is gone or the fd is dead.
    pub closed: bool,
}

/// Which readiness conditions a registration listens for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when the fd becomes readable.
    pub readable: bool,
    /// Report when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Listen for readability only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Listen for writability only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Listen for both readability and writability.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// Raise the process `RLIMIT_NOFILE` soft limit towards `want`.
///
/// Returns the soft limit now in effect. High-concurrency benches call
/// this before opening thousands of sockets; the hard limit caps what we
/// can ask for without privileges.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    #[repr(C)]
    struct rlimit {
        rlim_cur: u64,
        rlim_max: u64,
    }
    // RLIMIT_NOFILE is 7 on Linux and 8 on most BSDs/macOS.
    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: c_int = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: c_int = 8;
    extern "C" {
        fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
    }
    let mut lim = rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.rlim_cur >= want {
        return Ok(lim.rlim_cur);
    }
    lim.rlim_cur = want.min(lim.rlim_max);
    if unsafe { setrlimit(RLIMIT_NOFILE, &lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(lim.rlim_cur)
}

#[cfg(target_os = "linux")]
pub use epoll::Selector;
#[cfg(all(unix, not(target_os = "linux")))]
pub use posix_poll::Selector;

#[cfg(target_os = "linux")]
mod epoll {
    use super::{c_int, Interest, RawEvent};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    // The kernel ABI packs this struct on x86-64 (12 bytes, not 16).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct epoll_event {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// epoll-backed readiness selector (level-triggered).
    pub struct Selector {
        epfd: RawFd,
        buf: Vec<epoll_event>,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Selector {
                epfd,
                buf: vec![epoll_event { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, interest: Interest, token: usize) -> io::Result<()> {
            let mut events = EPOLLRDHUP;
            if interest.readable {
                events |= EPOLLIN;
            }
            if interest.writable {
                events |= EPOLLOUT;
            }
            let mut ev = epoll_event {
                events,
                data: token as u64,
            };
            let evp = if op == EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut ev
            };
            if unsafe { epoll_ctl(self.epfd, op, fd, evp) } != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest, token)
        }

        pub fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest, token)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_DEL,
                fd,
                Interest {
                    readable: false,
                    writable: false,
                },
                0,
            )
        }

        pub fn wait(
            &mut self,
            out: &mut Vec<RawEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let millis: c_int = match timeout {
                None => -1,
                // Round up so a 100µs deadline doesn't become a spin.
                Some(d) => {
                    d.as_millis().min(i32::MAX as u128) as c_int
                        + if d.subsec_nanos() % 1_000_000 != 0 {
                            1
                        } else {
                            0
                        }
                }
            };
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    millis,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in &self.buf[..n as usize] {
                let bits = ev.events;
                out.push(RawEvent {
                    token: ev.data as usize,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            if n as usize == self.buf.len() {
                // Saturated the event buffer: grow so a 4k-connection
                // stampede doesn't take multiple wakeups to observe.
                let ev = epoll_event { events: 0, data: 0 };
                self.buf.resize(self.buf.len() * 2, ev);
            }
            Ok(())
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod posix_poll {
    use super::{c_int, Interest, RawEvent};
    use std::collections::HashMap;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct pollfd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut pollfd, nfds: u64, timeout: c_int) -> c_int;
    }

    /// poll(2)-backed fallback selector for non-Linux unix hosts.
    ///
    /// O(n) per wakeup, which is fine for the fallback role; Linux hosts
    /// (CI, production) get the epoll backend.
    pub struct Selector {
        registered: Mutex<HashMap<RawFd, (usize, Interest)>>,
        fds: Vec<pollfd>,
        tokens: Vec<usize>,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            Ok(Selector {
                registered: Mutex::new(HashMap::new()),
                fds: Vec::new(),
                tokens: Vec::new(),
            })
        }

        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.registered
                .lock()
                .unwrap()
                .insert(fd, (token, interest));
            Ok(())
        }

        pub fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.register(fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().unwrap().remove(&fd);
            Ok(())
        }

        pub fn wait(
            &mut self,
            out: &mut Vec<RawEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            self.fds.clear();
            self.tokens.clear();
            for (&fd, &(token, interest)) in self.registered.lock().unwrap().iter() {
                let mut events = 0i16;
                if interest.readable {
                    events |= POLLIN;
                }
                if interest.writable {
                    events |= POLLOUT;
                }
                self.fds.push(pollfd {
                    fd,
                    events,
                    revents: 0,
                });
                self.tokens.push(token);
            }
            let millis: c_int = match timeout {
                None => -1,
                Some(d) => {
                    d.as_millis().min(i32::MAX as u128) as c_int
                        + if d.subsec_nanos() % 1_000_000 != 0 {
                            1
                        } else {
                            0
                        }
                }
            };
            let n = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as u64, millis) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (pfd, &token) in self.fds.iter().zip(&self.tokens) {
                let bits = pfd.revents;
                if bits == 0 {
                    continue;
                }
                out.push(RawEvent {
                    token,
                    readable: bits & (POLLIN | POLLHUP) != 0,
                    writable: bits & POLLOUT != 0,
                    closed: bits & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}
