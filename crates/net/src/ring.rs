//! Contiguous-window ring buffer for incremental frame decoding.
//!
//! `RingBuf` keeps unconsumed bytes in one contiguous slice so a frame
//! decoder can borrow `&buf[..]` directly — zero intermediate copies on
//! the hot path. Consuming advances a head offset instead of memmoving
//! the tail (the per-frame `Vec::drain` the thread-per-connection server
//! paid); compaction happens only when the write cursor hits capacity
//! and there is dead space to reclaim, and the whole buffer resets to
//! offset zero whenever it empties — the common case for pipelined
//! request streams that drain between wakeups.

/// Growable byte buffer with O(1) amortized consume from the front.
#[derive(Debug, Default)]
pub struct RingBuf {
    buf: Vec<u8>,
    head: usize,
    tail: usize,
}

impl RingBuf {
    /// An empty buffer with no backing allocation yet.
    pub fn new() -> RingBuf {
        RingBuf::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> RingBuf {
        RingBuf {
            buf: vec![0; cap],
            head: 0,
            tail: 0,
        }
    }

    /// Number of unconsumed bytes.
    pub fn len(&self) -> usize {
        self.tail - self.head
    }

    /// True when no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// The unconsumed bytes as one contiguous slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.head..self.tail]
    }

    /// Drop `n` bytes from the front (they were decoded).
    ///
    /// # Panics
    /// If `n` exceeds [`RingBuf::len`].
    pub fn consume(&mut self, n: usize) {
        assert!(n <= self.len(), "consume past end of buffer");
        self.head += n;
        if self.head == self.tail {
            // Empty: reset so future writes use the full capacity
            // without ever compacting.
            self.head = 0;
            self.tail = 0;
        }
    }

    /// A writable slice of at least `min` bytes after the live window.
    ///
    /// Compacts (one `copy_within`) or grows only when the space between
    /// the write cursor and capacity is smaller than `min`. Call
    /// [`RingBuf::advance`] with the number of bytes actually written.
    pub fn space(&mut self, min: usize) -> &mut [u8] {
        if self.buf.len() - self.tail < min {
            let len = self.len();
            if self.head > 0 {
                // Reclaim the consumed prefix before considering growth.
                self.buf.copy_within(self.head..self.tail, 0);
                self.head = 0;
                self.tail = len;
            }
            if self.buf.len() - self.tail < min {
                let want = (self.tail + min).max(self.buf.len() * 2).max(64);
                self.buf.resize(want, 0);
            }
        }
        &mut self.buf[self.tail..]
    }

    /// Commit `n` bytes written into the slice returned by `space`.
    ///
    /// # Panics
    /// If `n` exceeds the writable space.
    pub fn advance(&mut self, n: usize) {
        assert!(
            self.tail + n <= self.buf.len(),
            "advance past end of buffer"
        );
        self.tail += n;
    }

    /// Append `bytes`, growing if needed (convenience for tests/clients).
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        let space = self.space(bytes.len().max(1));
        space[..bytes.len()].copy_from_slice(bytes);
        self.advance(bytes.len());
    }

    /// Current backing allocation in bytes (capacity telemetry).
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Frees the backing allocation if the buffer is empty and its
    /// capacity exceeds `keep` bytes.
    ///
    /// Mostly-idle connections call this after draining a read burst so
    /// thousands of parked sockets do not each pin a read-chunk-sized
    /// allocation; the hot path regrows from the allocator's bins, which
    /// keeps reusing the same chunk instead of growing the heap.
    pub fn shrink_if_empty(&mut self, keep: usize) {
        if self.is_empty() && self.buf.len() > keep {
            self.buf = Vec::new();
            self.head = 0;
            self.tail = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::RingBuf;

    #[test]
    fn consume_resets_when_empty() {
        let mut rb = RingBuf::with_capacity(8);
        rb.extend_from_slice(b"abcdef");
        rb.consume(6);
        assert!(rb.is_empty());
        assert_eq!(rb.as_slice(), b"");
        // head/tail reset: full capacity available without compaction
        let s = rb.space(8);
        assert!(s.len() >= 8);
    }

    #[test]
    fn partial_consume_keeps_window() {
        let mut rb = RingBuf::new();
        rb.extend_from_slice(b"hello world");
        rb.consume(6);
        assert_eq!(rb.as_slice(), b"world");
        rb.extend_from_slice(b"!");
        assert_eq!(rb.as_slice(), b"world!");
    }

    #[test]
    fn compaction_preserves_bytes() {
        let mut rb = RingBuf::with_capacity(16);
        rb.extend_from_slice(&[1u8; 12]);
        rb.consume(10);
        // 2 live bytes at offset 10; asking for 10 forces compaction.
        let s = rb.space(10);
        assert!(s.len() >= 10);
        s[..3].copy_from_slice(&[2, 3, 4]);
        rb.advance(3);
        assert_eq!(rb.as_slice(), &[1, 1, 2, 3, 4]);
    }

    #[test]
    fn shrink_frees_only_when_empty() {
        let mut rb = RingBuf::new();
        rb.extend_from_slice(&[7u8; 4096]);
        rb.consume(4000);
        rb.shrink_if_empty(0);
        assert_eq!(rb.as_slice(), &[7u8; 96]); // live bytes survive
        rb.consume(96);
        rb.shrink_if_empty(0);
        assert_eq!(rb.capacity(), 0);
        rb.extend_from_slice(b"again");
        assert_eq!(rb.as_slice(), b"again");
    }

    #[test]
    fn growth_preserves_bytes() {
        let mut rb = RingBuf::with_capacity(4);
        rb.extend_from_slice(b"abcd");
        rb.extend_from_slice(b"efgh");
        assert_eq!(rb.as_slice(), b"abcdefgh");
        assert!(rb.capacity() >= 8);
    }
}
