//! Deadline-ordered timer wheel for reactor threads.
//!
//! Replaces the per-socket `set_read_timeout` tick loops of the old
//! server: each reactor owns one `TimerWheel`, arms one entry per
//! connection deadline (idle timeout, drain grace), and derives its
//! poll timeout from [`TimerWheel::next_deadline`]. Backed by a
//! `BTreeMap` keyed `(deadline, seq)` — insert, cancel, and
//! pop-expired are all O(log n), and the sequence number disambiguates
//! identical deadlines so no entry is ever lost.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Handle identifying one armed timer; pass to [`TimerWheel::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerKey {
    at: Instant,
    seq: u64,
}

/// Deadline-ordered collection of timers carrying a `u64` payload.
#[derive(Debug, Default)]
pub struct TimerWheel {
    entries: BTreeMap<(Instant, u64), u64>,
    seq: u64,
}

impl TimerWheel {
    /// An empty wheel.
    pub fn new() -> TimerWheel {
        TimerWheel {
            entries: BTreeMap::new(),
            seq: 0,
        }
    }

    /// Arm a timer firing at `at`, carrying `data` back on expiry.
    pub fn insert(&mut self, at: Instant, data: u64) -> TimerKey {
        self.seq += 1;
        let key = TimerKey { at, seq: self.seq };
        self.entries.insert((at, key.seq), data);
        key
    }

    /// Disarm `key`. Returns the payload if it had not yet fired.
    pub fn cancel(&mut self, key: TimerKey) -> Option<u64> {
        self.entries.remove(&(key.at, key.seq))
    }

    /// The earliest pending deadline, if any timer is armed.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.entries.keys().next().map(|&(at, _)| at)
    }

    /// How long until the earliest deadline, saturating at zero.
    ///
    /// `None` when the wheel is empty (block indefinitely).
    pub fn timeout_from(&self, now: Instant) -> Option<Duration> {
        self.next_deadline()
            .map(|at| at.saturating_duration_since(now))
    }

    /// Remove and yield the payload of every timer due at or before `now`.
    pub fn pop_expired(&mut self, now: Instant, out: &mut Vec<u64>) {
        while let Some((&(at, seq), _)) = self.entries.iter().next() {
            if at > now {
                break;
            }
            let data = self.entries.remove(&(at, seq)).expect("entry vanished");
            out.push(data);
        }
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no timers are armed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::TimerWheel;
    use std::time::{Duration, Instant};

    #[test]
    fn fires_in_deadline_order() {
        let mut w = TimerWheel::new();
        let t0 = Instant::now();
        w.insert(t0 + Duration::from_millis(30), 3);
        w.insert(t0 + Duration::from_millis(10), 1);
        w.insert(t0 + Duration::from_millis(20), 2);
        let mut out = Vec::new();
        w.pop_expired(t0 + Duration::from_millis(25), &mut out);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(w.len(), 1);
        out.clear();
        w.pop_expired(t0 + Duration::from_millis(30), &mut out);
        assert_eq!(out, vec![3]);
        assert!(w.is_empty());
    }

    #[test]
    fn identical_deadlines_all_fire() {
        let mut w = TimerWheel::new();
        let at = Instant::now();
        w.insert(at, 7);
        w.insert(at, 8);
        w.insert(at, 9);
        let mut out = Vec::new();
        w.pop_expired(at, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![7, 8, 9]);
    }

    #[test]
    fn cancel_prevents_fire() {
        let mut w = TimerWheel::new();
        let t0 = Instant::now();
        let k = w.insert(t0, 42);
        w.insert(t0, 43);
        assert_eq!(w.cancel(k), Some(42));
        assert_eq!(w.cancel(k), None);
        let mut out = Vec::new();
        w.pop_expired(t0 + Duration::from_millis(1), &mut out);
        assert_eq!(out, vec![43]);
    }

    #[test]
    fn timeout_saturates_at_zero() {
        let mut w = TimerWheel::new();
        assert!(w.timeout_from(Instant::now()).is_none());
        let t0 = Instant::now();
        w.insert(t0, 1);
        assert_eq!(
            w.timeout_from(t0 + Duration::from_secs(1)),
            Some(Duration::ZERO)
        );
    }
}
