//! Integration tests for the reactor primitives against real sockets.

use hybriddnn_net::{Event, Interest, Poller, Token};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::thread;
use std::time::{Duration, Instant};

fn wait_for(poller: &mut Poller, events: &mut Vec<Event>, pred: impl Fn(&Event) -> bool) -> Event {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        assert!(Instant::now() < deadline, "timed out waiting for event");
        poller
            .wait(events, Some(Duration::from_millis(100)))
            .unwrap();
        if let Some(ev) = events.iter().find(|e| pred(e)) {
            return *ev;
        }
    }
}

#[test]
fn readiness_accept_read_write() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.set_nonblocking(true).unwrap();
    let addr = listener.local_addr().unwrap();

    let mut poller = Poller::new().unwrap();
    poller
        .register(listener.as_raw_fd(), Token(0), Interest::READABLE)
        .unwrap();

    let mut client = TcpStream::connect(addr).unwrap();
    let mut events = Vec::new();

    // Listener becomes readable: a connection is pending.
    wait_for(&mut poller, &mut events, |e| {
        e.token == Token(0) && e.readable
    });
    let (server_side, _) = listener.accept().unwrap();
    server_side.set_nonblocking(true).unwrap();
    poller
        .register(server_side.as_raw_fd(), Token(1), Interest::BOTH)
        .unwrap();

    // A fresh socket with room in its send buffer reports writable.
    wait_for(&mut poller, &mut events, |e| {
        e.token == Token(1) && e.writable
    });

    // Client bytes make the server side readable.
    client.write_all(b"ping").unwrap();
    wait_for(&mut poller, &mut events, |e| {
        e.token == Token(1) && e.readable
    });
    let mut buf = [0u8; 16];
    let n = (&server_side).read(&mut buf).unwrap();
    assert_eq!(&buf[..n], b"ping");

    // Dropping interest in writability stops the writable reports.
    poller
        .reregister(server_side.as_raw_fd(), Token(1), Interest::READABLE)
        .unwrap();
    poller
        .wait(&mut events, Some(Duration::from_millis(50)))
        .unwrap();
    assert!(!events
        .iter()
        .any(|e| e.token == Token(1) && e.writable && !e.readable));

    // Peer hangup reports closed.
    drop(client);
    let ev = wait_for(&mut poller, &mut events, |e| {
        e.token == Token(1) && e.closed
    });
    assert!(ev.closed);

    poller.deregister(server_side.as_raw_fd()).unwrap();
    poller.deregister(listener.as_raw_fd()).unwrap();
}

#[test]
fn waker_interrupts_blocked_wait() {
    let mut poller = Poller::new().unwrap();
    let waker = poller.waker();
    let handle = thread::spawn(move || {
        thread::sleep(Duration::from_millis(50));
        waker.wake();
    });
    let mut events = Vec::new();
    let start = Instant::now();
    // Blocks "indefinitely" until the wake arrives.
    let woken = poller
        .wait(&mut events, Some(Duration::from_secs(10)))
        .unwrap();
    assert!(woken, "wait should report the cross-thread wake");
    assert!(start.elapsed() < Duration::from_secs(5));
    assert!(
        events.is_empty(),
        "wake channel must not surface as a user event"
    );
    handle.join().unwrap();
}

#[test]
fn coalesced_wakes_do_not_spin() {
    let mut poller = Poller::new().unwrap();
    let waker = poller.waker();
    for _ in 0..1000 {
        waker.wake();
    }
    let mut events = Vec::new();
    let woken = poller
        .wait(&mut events, Some(Duration::from_millis(100)))
        .unwrap();
    assert!(woken);
    // All pending wake bytes were drained: the next wait times out
    // instead of reporting a stale wake.
    let woken = poller
        .wait(&mut events, Some(Duration::from_millis(20)))
        .unwrap();
    assert!(!woken);
}

#[test]
fn timeout_expires_without_events() {
    let mut poller = Poller::new().unwrap();
    let mut events = Vec::new();
    let start = Instant::now();
    let woken = poller
        .wait(&mut events, Some(Duration::from_millis(30)))
        .unwrap();
    assert!(!woken);
    assert!(events.is_empty());
    assert!(start.elapsed() >= Duration::from_millis(25));
}
