//! Property-based tests of the FPGA substrate: resource-vector algebra,
//! memory round trips, and energy-model laws.

use hybriddnn_fpga::{EnergyModel, ExternalMemory, FpgaSpec, MemoryClient, Resources};
use proptest::prelude::*;

fn res_strategy() -> impl Strategy<Value = Resources> {
    (0u64..1 << 20, 0u64..1 << 13, 0u64..1 << 12).prop_map(|(l, d, b)| Resources::new(l, d, b))
}

proptest! {
    /// Addition is commutative/associative and respects fits_within.
    #[test]
    fn resource_algebra(a in res_strategy(), b in res_strategy(), c in res_strategy()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert!(a.fits_within(&(a + b)));
        prop_assert_eq!(a * 2, a + a);
        prop_assert_eq!((a + b).saturating_sub(&b), a);
    }

    /// fits_within is a partial order consistent with utilization ≤ 1.
    #[test]
    fn fits_iff_utilization_at_most_one(used in res_strategy(), total in res_strategy()) {
        prop_assume!(total.lut > 0 && total.dsp > 0 && total.bram18 > 0);
        let fits = used.fits_within(&total);
        let max = used.max_utilization(&total);
        prop_assert_eq!(fits, max <= 1.0, "fits {} max {}", fits, max);
    }

    /// Memory: the last write to an address wins; reads elsewhere are
    /// unaffected.
    #[test]
    fn memory_last_write_wins(
        writes in prop::collection::vec((0u64..256, -100.0f32..100.0), 1..50),
        probe in 0u64..256,
    ) {
        let mut mem = ExternalMemory::new();
        let mut model = std::collections::HashMap::new();
        for (addr, v) in &writes {
            mem.write(*addr, *v, MemoryClient::Save);
            model.insert(*addr, *v);
        }
        let expect = model.get(&probe).copied().unwrap_or(0.0);
        prop_assert_eq!(mem.host_load(probe), expect);
    }

    /// Traffic counters equal the exact word counts of the operations.
    #[test]
    fn traffic_counts_are_exact(
        reads in prop::collection::vec(0u64..64, 0..20),
        burst in 0usize..40,
    ) {
        let mut mem = ExternalMemory::with_capacity_words(64);
        for &a in &reads {
            let _ = mem.read(a, MemoryClient::LoadInput);
        }
        let _ = mem.read_burst(0, burst, MemoryClient::LoadWeight);
        let t = mem.traffic();
        prop_assert_eq!(t.input_reads, reads.len() as u64);
        prop_assert_eq!(t.weight_reads, burst as u64);
        prop_assert_eq!(t.total(), reads.len() as u64 + burst as u64);
    }

    /// Power is monotone in resources and affine in frequency.
    #[test]
    fn power_laws(a in res_strategy(), b in res_strategy(), f in 10.0f64..500.0) {
        let m = EnergyModel::calibrated();
        let pa = m.power(&a, f).total_w();
        let pab = m.power(&(a + b), f).total_w();
        prop_assert!(pab >= pa - 1e-12);
        // doubling frequency doubles the dynamic part exactly
        let p1 = m.power(&a, f);
        let p2 = m.power(&a, 2.0 * f);
        let dyn1 = p1.total_w() - p1.static_w;
        let dyn2 = p2.total_w() - p2.static_w;
        prop_assert!((dyn2 - 2.0 * dyn1).abs() < 1e-9);
    }

    /// Instance bandwidth partitions the device budget exactly.
    #[test]
    fn bandwidth_partitions(ni in 1usize..16) {
        let d = FpgaSpec::vu9p();
        let share = d.instance_bandwidth(ni);
        prop_assert!((share * ni as f64 - d.ddr_words_per_cycle()).abs() < 1e-9);
    }
}
