//! External (DDR) memory: word-addressable storage with traffic counters.
//!
//! The accelerator's LOAD_INP / LOAD_WGT / SAVE modules address external
//! memory through `DRAM_BASE` instruction fields; the simulator charges
//! bandwidth for every word moved (paper Eq. 8–11 model loading as
//! `min(BW, consumer rate)`).

/// Cumulative read/write word counts, split by requester.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryTraffic {
    /// Words read by LOAD_INP.
    pub input_reads: u64,
    /// Words read by LOAD_WGT (weights and bias).
    pub weight_reads: u64,
    /// Words written by SAVE.
    pub output_writes: u64,
}

impl MemoryTraffic {
    /// Total words moved in either direction.
    pub fn total(&self) -> u64 {
        self.input_reads + self.weight_reads + self.output_writes
    }
}

/// Which functional module issued a memory transaction (for traffic
/// accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryClient {
    /// The LOAD_INP module.
    LoadInput,
    /// The LOAD_WGT module.
    LoadWeight,
    /// The SAVE module.
    Save,
}

/// A flat, word-addressable external memory holding `f32` data words.
///
/// Addresses are word indices (the 128-bit instruction encodes word
/// addresses in its `DRAM_BASE` field). Reads outside the allocated range
/// return zero — matching a freshly initialized DRAM — while writes grow
/// the backing store on demand.
#[derive(Debug, Clone, PartialEq)]
pub struct ExternalMemory {
    words: Vec<f32>,
    traffic: MemoryTraffic,
}

impl ExternalMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        ExternalMemory {
            words: Vec::new(),
            traffic: MemoryTraffic::default(),
        }
    }

    /// Creates a memory pre-sized to `words` zeroed words.
    pub fn with_capacity_words(words: usize) -> Self {
        ExternalMemory {
            words: vec![0.0; words],
            traffic: MemoryTraffic::default(),
        }
    }

    /// Number of allocated words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether no words are allocated.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads one word (zero if unallocated), charging `client`'s counter.
    pub fn read(&mut self, addr: u64, client: MemoryClient) -> f32 {
        self.charge(client, 1, false);
        self.words.get(addr as usize).copied().unwrap_or(0.0)
    }

    /// Reads a burst of `len` words starting at `addr`.
    pub fn read_burst(&mut self, addr: u64, len: usize, client: MemoryClient) -> Vec<f32> {
        let mut out = vec![0.0; len];
        self.read_into(addr, &mut out, client);
        out
    }

    /// Reads `dst.len()` words starting at `addr` into `dst` — the
    /// allocation-free form of [`ExternalMemory::read_burst`] used on the
    /// simulator's per-inference hot path.
    pub fn read_into(&mut self, addr: u64, dst: &mut [f32], client: MemoryClient) {
        self.charge(client, dst.len() as u64, false);
        let start = addr as usize;
        let in_range = self.words.len().saturating_sub(start).min(dst.len());
        dst[..in_range].copy_from_slice(&self.words[start..start + in_range]);
        dst[in_range..].fill(0.0);
    }

    /// Writes one word, growing the store if needed.
    pub fn write(&mut self, addr: u64, value: f32, client: MemoryClient) {
        self.charge(client, 1, true);
        let idx = addr as usize;
        if idx >= self.words.len() {
            self.words.resize(idx + 1, 0.0);
        }
        self.words[idx] = value;
    }

    /// Writes a burst of words starting at `addr`.
    pub fn write_burst(&mut self, addr: u64, values: &[f32], client: MemoryClient) {
        self.charge(client, values.len() as u64, true);
        let start = addr as usize;
        if start + values.len() > self.words.len() {
            self.words.resize(start + values.len(), 0.0);
        }
        self.words[start..start + values.len()].copy_from_slice(values);
    }

    /// Writes `values[i]` to `base + i·stride`, growing the store once and
    /// charging one `values.len()`-word burst — the SAVE module's strided
    /// row store. Equivalent to `values.len()` calls to
    /// [`ExternalMemory::write`] at those addresses.
    ///
    /// # Panics
    /// Panics if `stride == 0` and more than one value is given.
    pub fn write_strided(&mut self, base: u64, stride: u64, values: &[f32], client: MemoryClient) {
        self.charge(client, values.len() as u64, true);
        let Some(last) = values.len().checked_sub(1) else {
            return;
        };
        assert!(stride > 0 || last == 0, "zero stride with multiple values");
        let start = base as usize;
        let end = start + last * stride as usize + 1;
        if end > self.words.len() {
            self.words.resize(end, 0.0);
        }
        let step = (stride as usize).max(1);
        for (slot, &v) in self.words[start..end].iter_mut().step_by(step).zip(values) {
            *slot = v;
        }
    }

    /// Host-side strided store (DMA from the host CPU): writes
    /// `values[i]` to `base + i·stride`, growing the store once. Does
    /// *not* count as accelerator traffic — the host-side twin of
    /// [`ExternalMemory::write_strided`].
    ///
    /// # Panics
    /// Panics if `stride == 0` and more than one value is given.
    pub fn host_write_strided(&mut self, base: u64, stride: u64, values: &[f32]) {
        let Some(last) = values.len().checked_sub(1) else {
            return;
        };
        assert!(stride > 0 || last == 0, "zero stride with multiple values");
        let start = base as usize;
        let end = start + last * stride as usize + 1;
        if end > self.words.len() {
            self.words.resize(end, 0.0);
        }
        let step = (stride as usize).max(1);
        for (slot, &v) in self.words[start..end].iter_mut().step_by(step).zip(values) {
            *slot = v;
        }
    }

    /// Host-side store (DMA from the host CPU): does *not* count as
    /// accelerator traffic.
    pub fn host_write(&mut self, addr: u64, values: &[f32]) {
        let start = addr as usize;
        if start + values.len() > self.words.len() {
            self.words.resize(start + values.len(), 0.0);
        }
        self.words[start..start + values.len()].copy_from_slice(values);
    }

    /// Host-side store of a single word (DMA from the host CPU); does not
    /// count as accelerator traffic.
    pub fn host_store(&mut self, addr: u64, value: f32) {
        let idx = addr as usize;
        if idx >= self.words.len() {
            self.words.resize(idx + 1, 0.0);
        }
        self.words[idx] = value;
    }

    /// Host-side load of a single word; does not count as traffic.
    pub fn host_load(&self, addr: u64) -> f32 {
        self.words.get(addr as usize).copied().unwrap_or(0.0)
    }

    /// Host-side load: does not count as accelerator traffic.
    pub fn host_read(&self, addr: u64, len: usize) -> Vec<f32> {
        let start = addr as usize;
        let in_range = self.words.len().saturating_sub(start).min(len);
        let mut out = vec![0.0; len];
        out[..in_range].copy_from_slice(&self.words[start..start + in_range]);
        out
    }

    /// Traffic counters accumulated so far.
    pub fn traffic(&self) -> MemoryTraffic {
        self.traffic
    }

    /// Resets traffic counters (e.g. between layers).
    pub fn reset_traffic(&mut self) {
        self.traffic = MemoryTraffic::default();
    }

    fn charge(&mut self, client: MemoryClient, words: u64, write: bool) {
        match (client, write) {
            (MemoryClient::LoadInput, false) => self.traffic.input_reads += words,
            (MemoryClient::LoadWeight, false) => self.traffic.weight_reads += words,
            (MemoryClient::Save, true) => self.traffic.output_writes += words,
            // Unusual pairings (e.g. SAVE reading for pooling re-fetch)
            // are charged to the nearest counter.
            (MemoryClient::Save, false) => self.traffic.output_writes += words,
            (_, true) => self.traffic.output_writes += words,
        }
    }
}

impl Default for ExternalMemory {
    fn default() -> Self {
        ExternalMemory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_unallocated_is_zero() {
        let mut mem = ExternalMemory::new();
        assert_eq!(mem.read(1000, MemoryClient::LoadInput), 0.0);
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut mem = ExternalMemory::new();
        mem.write(5, 2.5, MemoryClient::Save);
        assert_eq!(mem.read(5, MemoryClient::LoadInput), 2.5);
        assert_eq!(mem.len(), 6);
    }

    #[test]
    fn bursts_roundtrip() {
        let mut mem = ExternalMemory::new();
        mem.write_burst(10, &[1.0, 2.0, 3.0], MemoryClient::Save);
        assert_eq!(
            mem.read_burst(9, 5, MemoryClient::LoadWeight),
            vec![0.0, 1.0, 2.0, 3.0, 0.0]
        );
    }

    #[test]
    fn strided_write_scatters_and_charges_once() {
        let mut mem = ExternalMemory::new();
        mem.write_strided(2, 3, &[1.0, 2.0, 3.0], MemoryClient::Save);
        assert_eq!(mem.len(), 9);
        for (addr, want) in [(2, 1.0), (5, 2.0), (8, 3.0), (3, 0.0), (4, 0.0)] {
            assert_eq!(mem.host_load(addr), want);
        }
        assert_eq!(mem.traffic().output_writes, 3);
        // Degenerate cases: empty burst, unit burst with zero stride.
        mem.write_strided(0, 5, &[], MemoryClient::Save);
        mem.write_strided(0, 0, &[9.0], MemoryClient::Save);
        assert_eq!(mem.host_load(0), 9.0);
        assert_eq!(mem.traffic().output_writes, 4);
    }

    #[test]
    fn traffic_is_attributed_per_client() {
        let mut mem = ExternalMemory::new();
        mem.write_burst(0, &[0.0; 4], MemoryClient::Save);
        let _ = mem.read_burst(0, 3, MemoryClient::LoadInput);
        let _ = mem.read(0, MemoryClient::LoadWeight);
        let t = mem.traffic();
        assert_eq!(t.output_writes, 4);
        assert_eq!(t.input_reads, 3);
        assert_eq!(t.weight_reads, 1);
        assert_eq!(t.total(), 8);
    }

    #[test]
    fn host_io_is_untracked() {
        let mut mem = ExternalMemory::new();
        mem.host_write(0, &[1.0, 2.0]);
        assert_eq!(mem.host_read(0, 2), vec![1.0, 2.0]);
        assert_eq!(mem.traffic().total(), 0);
    }

    #[test]
    fn reset_traffic_clears_counters() {
        let mut mem = ExternalMemory::new();
        mem.write(0, 1.0, MemoryClient::Save);
        mem.reset_traffic();
        assert_eq!(mem.traffic().total(), 0);
    }
}
