//! FPGA device substrate for the HybridDNN framework.
//!
//! The paper targets a cloud FPGA (Xilinx VU9P on a Semptian NSA.241) and
//! an embedded FPGA (Xilinx PYNQ-Z1). Since this reproduction has no
//! silicon, the device is modeled by the quantities the framework actually
//! consumes:
//!
//! * [`Resources`] — LUT / DSP / 18Kb-BRAM vectors with arithmetic and
//!   utilization accounting (the units of Table 3 and Eq. 3–5).
//! * [`FpgaSpec`] — a named device: per-die resource pools (VU9P has three
//!   dies; accelerator instances must fit within a die to avoid the
//!   cross-die timing violations the paper motivates with), BRAM word
//!   width, achievable clock, and DDR bandwidth.
//! * [`ExternalMemory`] — a word-addressable external DRAM with traffic
//!   counters, shared by the simulator's LOAD/SAVE modules.
//! * [`EnergyModel`] — an analytical power model used to regenerate the
//!   GOPS/W column of Table 4 (documented as modeled, not measured).
//!
//! # Example
//!
//! ```
//! use hybriddnn_fpga::{FpgaSpec, Resources};
//!
//! let vu9p = FpgaSpec::vu9p();
//! assert_eq!(vu9p.dies(), 3);
//! let need = Resources::new(100_000, 800, 500);
//! assert!(need.fits_within(&vu9p.die_resources()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod energy;
mod memory;
mod resources;

pub use device::FpgaSpec;
pub use energy::{EnergyModel, PowerBreakdown};
pub use memory::{ExternalMemory, MemoryClient, MemoryTraffic};
pub use resources::Resources;
