use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// An FPGA resource vector: LUTs, DSP slices, and 18Kb BRAM blocks —
/// the three budgets of the paper's DSE constraints (Table 2) and the
/// columns of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Resources {
    /// Look-up tables.
    pub lut: u64,
    /// DSP slices (each one multiplier-accumulator at the modeled widths).
    pub dsp: u64,
    /// 18Kb block-RAM units.
    pub bram18: u64,
}

impl Resources {
    /// Creates a resource vector.
    pub const fn new(lut: u64, dsp: u64, bram18: u64) -> Self {
        Resources { lut, dsp, bram18 }
    }

    /// The zero vector.
    pub const fn zero() -> Self {
        Resources::new(0, 0, 0)
    }

    /// Whether every component of `self` fits within `budget`.
    pub fn fits_within(&self, budget: &Resources) -> bool {
        self.lut <= budget.lut && self.dsp <= budget.dsp && self.bram18 <= budget.bram18
    }

    /// Component-wise utilization fractions of `self` against `total`
    /// `(lut, dsp, bram)`; components with a zero budget report 0.
    pub fn utilization(&self, total: &Resources) -> (f64, f64, f64) {
        let frac = |used: u64, avail: u64| {
            if avail == 0 {
                0.0
            } else {
                used as f64 / avail as f64
            }
        };
        (
            frac(self.lut, total.lut),
            frac(self.dsp, total.dsp),
            frac(self.bram18, total.bram18),
        )
    }

    /// The largest utilization fraction across the three components.
    pub fn max_utilization(&self, total: &Resources) -> f64 {
        let (l, d, b) = self.utilization(total);
        l.max(d).max(b)
    }

    /// Saturating component-wise subtraction.
    pub fn saturating_sub(&self, other: &Resources) -> Resources {
        Resources::new(
            self.lut.saturating_sub(other.lut),
            self.dsp.saturating_sub(other.dsp),
            self.bram18.saturating_sub(other.bram18),
        )
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources::new(
            self.lut + rhs.lut,
            self.dsp + rhs.dsp,
            self.bram18 + rhs.bram18,
        )
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Sub for Resources {
    type Output = Resources;
    /// Component-wise subtraction.
    ///
    /// # Panics
    /// Panics on underflow (use [`Resources::saturating_sub`] otherwise).
    fn sub(self, rhs: Resources) -> Resources {
        Resources::new(
            self.lut - rhs.lut,
            self.dsp - rhs.dsp,
            self.bram18 - rhs.bram18,
        )
    }
}

impl Mul<u64> for Resources {
    type Output = Resources;
    fn mul(self, n: u64) -> Resources {
        Resources::new(self.lut * n, self.dsp * n, self.bram18 * n)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUT, {} DSP, {} BRAM18",
            self.lut, self.dsp, self.bram18
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Resources::new(10, 2, 3);
        let b = Resources::new(5, 1, 1);
        assert_eq!(a + b, Resources::new(15, 3, 4));
        assert_eq!(a - b, Resources::new(5, 1, 2));
        assert_eq!(a * 3, Resources::new(30, 6, 9));
        let mut c = a;
        c += b;
        assert_eq!(c, Resources::new(15, 3, 4));
    }

    #[test]
    fn fits_within_is_componentwise() {
        let budget = Resources::new(100, 10, 10);
        assert!(Resources::new(100, 10, 10).fits_within(&budget));
        assert!(!Resources::new(101, 1, 1).fits_within(&budget));
        assert!(!Resources::new(1, 11, 1).fits_within(&budget));
        assert!(!Resources::new(1, 1, 11).fits_within(&budget));
    }

    #[test]
    fn utilization_fractions() {
        let total = Resources::new(200, 100, 50);
        let used = Resources::new(100, 75, 50);
        let (l, d, b) = used.utilization(&total);
        assert_eq!((l, d, b), (0.5, 0.75, 1.0));
        assert_eq!(used.max_utilization(&total), 1.0);
    }

    #[test]
    fn utilization_zero_budget_is_zero() {
        let (l, d, b) = Resources::new(1, 1, 1).utilization(&Resources::zero());
        assert_eq!((l, d, b), (0.0, 0.0, 0.0));
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = Resources::new(1, 1, 1);
        let b = Resources::new(5, 0, 2);
        assert_eq!(a.saturating_sub(&b), Resources::new(0, 1, 0));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            Resources::new(1, 2, 3).to_string(),
            "1 LUT, 2 DSP, 3 BRAM18"
        );
    }
}
