use crate::Resources;
use std::fmt;

/// A target FPGA platform specification — the "FPGA Spec." input of the
/// design flow (Figure 1, Step 1).
///
/// Resources are modeled per die: the latest-generation cloud FPGAs the
/// paper targets "have widely utilized multiple dies", and an accelerator
/// instance that straddles dies risks cross-die routing timing violations
/// (§1). HybridDNN therefore sizes instances to fit within one die and
/// replicates them (`NI` instances; six on VU9P, two per die).
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaSpec {
    name: String,
    dies: usize,
    die_resources: Resources,
    bram_width_bits: u32,
    freq_mhz: f64,
    /// External memory bandwidth in data words per accelerator cycle (the
    /// paper's `BW` in Eq. 8–11).
    ddr_words_per_cycle: f64,
    /// Independent DMA/instruction ports on the shell — an upper bound on
    /// the number of accelerator instances regardless of logic capacity.
    max_instances: usize,
}

impl FpgaSpec {
    /// Creates a custom device spec.
    ///
    /// # Panics
    /// Panics if `dies == 0`, `freq_mhz <= 0`, or `ddr_words_per_cycle <= 0`.
    pub fn new(
        name: impl Into<String>,
        dies: usize,
        die_resources: Resources,
        bram_width_bits: u32,
        freq_mhz: f64,
        ddr_words_per_cycle: f64,
        max_instances: usize,
    ) -> Self {
        assert!(dies > 0, "device must have at least one die");
        assert!(freq_mhz > 0.0, "clock frequency must be positive");
        assert!(
            ddr_words_per_cycle > 0.0,
            "memory bandwidth must be positive"
        );
        assert!(max_instances > 0, "device must host at least one instance");
        FpgaSpec {
            name: name.into(),
            dies,
            die_resources,
            bram_width_bits,
            freq_mhz,
            ddr_words_per_cycle,
            max_instances,
        }
    }

    /// The Xilinx Virtex UltraScale+ VU9P (Semptian NSA.241 board):
    /// 3 SLR dies, 1 182 240 LUTs, 6 840 DSPs, 4 320 18Kb BRAMs total;
    /// the paper's cloud design closes timing at 167 MHz with DDR4 over
    /// PCIe.
    pub fn vu9p() -> Self {
        FpgaSpec::new(
            "VU9P",
            3,
            Resources::new(1_182_240 / 3, 6_840 / 3, 4_320 / 3),
            36,
            167.0,
            // The NSA.241 board exposes multiple DDR4 channels. `BW` is the
            // *device-level* effective budget per module class (input /
            // weight / save streams each see this much); instances share
            // it equally (see `instance_bandwidth`). Calibrated so the
            // paper's six-instance VGG16 design sees ~64 words/cycle per
            // instance and lands at the reported operating point
            // (EXPERIMENTS.md).
            384.0,
            // Six DMA/instruction ports on the NSA.241 shell — the
            // paper's six-instance ceiling.
            6,
        )
    }

    /// The Xilinx PYNQ-Z1 (Zynq-7020): single die, 53 200 LUTs, 220 DSPs,
    /// 280 18Kb BRAMs; the paper's embedded design runs at 100 MHz.
    pub fn pynq_z1() -> Self {
        FpgaSpec::new(
            "PYNQ-Z1",
            1,
            Resources::new(53_200, 220, 280),
            36,
            100.0,
            // DDR3-1050 x16 through the PS: ~4.2 GB/s shared; modeled at
            // 16 16-bit words per 100 MHz cycle.
            16.0,
            // The Zynq PS exposes four HP ports.
            4,
        )
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of dies (SLRs).
    pub fn dies(&self) -> usize {
        self.dies
    }

    /// Resources available within a single die.
    pub fn die_resources(&self) -> Resources {
        self.die_resources
    }

    /// Total resources across all dies.
    pub fn total_resources(&self) -> Resources {
        self.die_resources * self.dies as u64
    }

    /// Native BRAM port width in bits (`BRAM_WIDTH` of Eq. 4).
    pub fn bram_width_bits(&self) -> u32 {
        self.bram_width_bits
    }

    /// Accelerator clock frequency in MHz (`FREQ`).
    pub fn freq_mhz(&self) -> f64 {
        self.freq_mhz
    }

    /// External memory bandwidth in words per cycle (`BW`): the
    /// device-level budget of each module-class DDR channel.
    pub fn ddr_words_per_cycle(&self) -> f64 {
        self.ddr_words_per_cycle
    }

    /// Maximum accelerator instances the shell can host (DMA ports).
    pub fn max_instances(&self) -> usize {
        self.max_instances
    }

    /// The bandwidth share of one accelerator instance when `ni`
    /// batch-parallel instances contend for the device's channels.
    ///
    /// # Panics
    /// Panics if `ni == 0`.
    pub fn instance_bandwidth(&self, ni: usize) -> f64 {
        assert!(ni > 0, "at least one instance");
        self.ddr_words_per_cycle / ni as f64
    }

    /// Returns a copy with a different memory bandwidth — used by the
    /// bandwidth-sweep ablation (the "IoT scenario" of §6.2 where limited
    /// bandwidth makes Spatial outperform Winograd).
    pub fn with_ddr_words_per_cycle(&self, bw: f64) -> Self {
        assert!(bw > 0.0, "memory bandwidth must be positive");
        FpgaSpec {
            ddr_words_per_cycle: bw,
            ..self.clone()
        }
    }

    /// Returns a copy with a different clock frequency.
    pub fn with_freq_mhz(&self, freq: f64) -> Self {
        assert!(freq > 0.0, "clock frequency must be positive");
        FpgaSpec {
            freq_mhz: freq,
            ..self.clone()
        }
    }
}

impl fmt::Display for FpgaSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} die(s), {} per die, {} MHz, BW {} words/cycle)",
            self.name, self.dies, self.die_resources, self.freq_mhz, self.ddr_words_per_cycle
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vu9p_matches_datasheet_totals() {
        let d = FpgaSpec::vu9p();
        assert_eq!(d.dies(), 3);
        assert_eq!(d.total_resources(), Resources::new(1_182_240, 6_840, 4_320));
    }

    #[test]
    fn pynq_matches_zynq7020() {
        let d = FpgaSpec::pynq_z1();
        assert_eq!(d.dies(), 1);
        assert_eq!(d.total_resources(), Resources::new(53_200, 220, 280));
    }

    #[test]
    fn table3_utilization_percentages_are_consistent() {
        // Table 3 reports percentages relative to these totals.
        let vu9p = FpgaSpec::vu9p().total_resources();
        assert!((706_353_f64 / vu9p.lut as f64 - 0.598).abs() < 0.01);
        assert!((5_163_f64 / vu9p.dsp as f64 - 0.755).abs() < 0.01);
        assert!((3_169_f64 / vu9p.bram18 as f64 - 0.734).abs() < 0.01);
        let pynq = FpgaSpec::pynq_z1().total_resources();
        assert!((37_034_f64 / pynq.lut as f64 - 0.6961).abs() < 0.005);
        assert!((220_f64 / pynq.dsp as f64 - 1.0).abs() < 1e-9);
        assert!((277_f64 / pynq.bram18 as f64 - 0.9893).abs() < 0.005);
    }

    #[test]
    fn instance_bandwidth_divides_evenly() {
        let d = FpgaSpec::vu9p();
        assert_eq!(d.instance_bandwidth(6), 64.0);
        assert_eq!(d.instance_bandwidth(1), 384.0);
    }

    #[test]
    fn with_modifiers_return_copies() {
        let d = FpgaSpec::pynq_z1();
        let slow = d.with_ddr_words_per_cycle(1.0);
        assert_eq!(slow.ddr_words_per_cycle(), 1.0);
        assert_eq!(d.ddr_words_per_cycle(), 16.0);
        let fast = d.with_freq_mhz(200.0);
        assert_eq!(fast.freq_mhz(), 200.0);
    }

    #[test]
    #[should_panic(expected = "at least one die")]
    fn zero_dies_rejected() {
        let _ = FpgaSpec::new("x", 0, Resources::zero(), 36, 100.0, 1.0, 1);
    }

    #[test]
    fn display_mentions_name() {
        assert!(FpgaSpec::vu9p().to_string().contains("VU9P"));
    }
}
